# Empty compiler generated dependencies file for bench_fig5_1_actual_vs_predicted.
# This may be replaced when dependencies are built.
