# Empty dependencies file for bench_table5_3_time_cost.
# This may be replaced when dependencies are built.
