# Empty compiler generated dependencies file for bench_fig1_1_klru_mrcs.
# This may be replaced when dependencies are built.
