file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_1_klru_mrcs.dir/bench_fig1_1_klru_mrcs.cpp.o"
  "CMakeFiles/bench_fig1_1_klru_mrcs.dir/bench_fig1_1_klru_mrcs.cpp.o.d"
  "bench_fig1_1_klru_mrcs"
  "bench_fig1_1_klru_mrcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_1_klru_mrcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
