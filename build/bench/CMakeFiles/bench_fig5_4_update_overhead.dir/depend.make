# Empty dependencies file for bench_fig5_4_update_overhead.
# This may be replaced when dependencies are built.
