file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_3_varsize.dir/bench_fig5_3_varsize.cpp.o"
  "CMakeFiles/bench_fig5_3_varsize.dir/bench_fig5_3_varsize.cpp.o.d"
  "bench_fig5_3_varsize"
  "bench_fig5_3_varsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_3_varsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
