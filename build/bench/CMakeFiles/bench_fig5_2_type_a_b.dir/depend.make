# Empty dependencies file for bench_fig5_2_type_a_b.
# This may be replaced when dependencies are built.
