file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_2_type_a_b.dir/bench_fig5_2_type_a_b.cpp.o"
  "CMakeFiles/bench_fig5_2_type_a_b.dir/bench_fig5_2_type_a_b.cpp.o.d"
  "bench_fig5_2_type_a_b"
  "bench_fig5_2_type_a_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_type_a_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
