# Empty dependencies file for bench_fig5_5_redis_validation.
# This may be replaced when dependencies are built.
