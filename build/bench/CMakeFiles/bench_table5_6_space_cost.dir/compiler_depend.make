# Empty compiler generated dependencies file for bench_table5_6_space_cost.
# This may be replaced when dependencies are built.
