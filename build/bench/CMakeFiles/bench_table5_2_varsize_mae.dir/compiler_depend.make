# Empty compiler generated dependencies file for bench_table5_2_varsize_mae.
# This may be replaced when dependencies are built.
