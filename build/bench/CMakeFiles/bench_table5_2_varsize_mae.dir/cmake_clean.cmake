file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_2_varsize_mae.dir/bench_table5_2_varsize_mae.cpp.o"
  "CMakeFiles/bench_table5_2_varsize_mae.dir/bench_table5_2_varsize_mae.cpp.o.d"
  "bench_table5_2_varsize_mae"
  "bench_table5_2_varsize_mae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_2_varsize_mae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
