file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_4_master_trace.dir/bench_table5_4_master_trace.cpp.o"
  "CMakeFiles/bench_table5_4_master_trace.dir/bench_table5_4_master_trace.cpp.o.d"
  "bench_table5_4_master_trace"
  "bench_table5_4_master_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_4_master_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
