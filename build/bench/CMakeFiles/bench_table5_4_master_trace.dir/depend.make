# Empty dependencies file for bench_table5_4_master_trace.
# This may be replaced when dependencies are built.
