file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sizearray.dir/bench_ablation_sizearray.cpp.o"
  "CMakeFiles/bench_ablation_sizearray.dir/bench_ablation_sizearray.cpp.o.d"
  "bench_ablation_sizearray"
  "bench_ablation_sizearray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sizearray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
