# Empty dependencies file for bench_ablation_sizearray.
# This may be replaced when dependencies are built.
