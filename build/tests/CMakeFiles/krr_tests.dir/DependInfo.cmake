
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_models.cpp" "tests/CMakeFiles/krr_tests.dir/test_baseline_models.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_baseline_models.cpp.o.d"
  "/root/repo/tests/test_counter_stacks.cpp" "tests/CMakeFiles/krr_tests.dir/test_counter_stacks.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_counter_stacks.cpp.o.d"
  "/root/repo/tests/test_coverage_extra.cpp" "tests/CMakeFiles/krr_tests.dir/test_coverage_extra.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_coverage_extra.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/krr_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fenwick.cpp" "tests/CMakeFiles/krr_tests.dir/test_fenwick.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_fenwick.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/krr_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/krr_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_histogram_mrc.cpp" "tests/CMakeFiles/krr_tests.dir/test_histogram_mrc.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_histogram_mrc.cpp.o.d"
  "/root/repo/tests/test_hyperloglog.cpp" "tests/CMakeFiles/krr_tests.dir/test_hyperloglog.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_hyperloglog.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/krr_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_klru_cache.cpp" "tests/CMakeFiles/krr_tests.dir/test_klru_cache.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_klru_cache.cpp.o.d"
  "/root/repo/tests/test_krr_stack.cpp" "tests/CMakeFiles/krr_tests.dir/test_krr_stack.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_krr_stack.cpp.o.d"
  "/root/repo/tests/test_lru_cache.cpp" "tests/CMakeFiles/krr_tests.dir/test_lru_cache.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_lru_cache.cpp.o.d"
  "/root/repo/tests/test_lru_stack.cpp" "tests/CMakeFiles/krr_tests.dir/test_lru_stack.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_lru_stack.cpp.o.d"
  "/root/repo/tests/test_naive_stack.cpp" "tests/CMakeFiles/krr_tests.dir/test_naive_stack.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_naive_stack.cpp.o.d"
  "/root/repo/tests/test_olken_tree.cpp" "tests/CMakeFiles/krr_tests.dir/test_olken_tree.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_olken_tree.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/krr_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_priority_stack.cpp" "tests/CMakeFiles/krr_tests.dir/test_priority_stack.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_priority_stack.cpp.o.d"
  "/root/repo/tests/test_prng.cpp" "tests/CMakeFiles/krr_tests.dir/test_prng.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_prng.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/krr_tests.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_redis_cache.cpp" "tests/CMakeFiles/krr_tests.dir/test_redis_cache.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_redis_cache.cpp.o.d"
  "/root/repo/tests/test_reuse_models.cpp" "tests/CMakeFiles/krr_tests.dir/test_reuse_models.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_reuse_models.cpp.o.d"
  "/root/repo/tests/test_sampling_models.cpp" "tests/CMakeFiles/krr_tests.dir/test_sampling_models.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_sampling_models.cpp.o.d"
  "/root/repo/tests/test_shards_fixed.cpp" "tests/CMakeFiles/krr_tests.dir/test_shards_fixed.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_shards_fixed.cpp.o.d"
  "/root/repo/tests/test_size_tracker.cpp" "tests/CMakeFiles/krr_tests.dir/test_size_tracker.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_size_tracker.cpp.o.d"
  "/root/repo/tests/test_spatial_filter.cpp" "tests/CMakeFiles/krr_tests.dir/test_spatial_filter.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_spatial_filter.cpp.o.d"
  "/root/repo/tests/test_status.cpp" "tests/CMakeFiles/krr_tests.dir/test_status.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_status.cpp.o.d"
  "/root/repo/tests/test_swap_sampler.cpp" "tests/CMakeFiles/krr_tests.dir/test_swap_sampler.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_swap_sampler.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/krr_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_trace_reader.cpp" "tests/CMakeFiles/krr_tests.dir/test_trace_reader.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_trace_reader.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/krr_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_workload_factory.cpp" "tests/CMakeFiles/krr_tests.dir/test_workload_factory.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_workload_factory.cpp.o.d"
  "/root/repo/tests/test_zipf.cpp" "tests/CMakeFiles/krr_tests.dir/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/krr_tests.dir/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
