# Empty compiler generated dependencies file for krr_tests.
# This may be replaced when dependencies are built.
