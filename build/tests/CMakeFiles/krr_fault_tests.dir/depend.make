# Empty dependencies file for krr_fault_tests.
# This may be replaced when dependencies are built.
