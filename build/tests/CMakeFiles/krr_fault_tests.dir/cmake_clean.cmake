file(REMOVE_RECURSE
  "CMakeFiles/krr_fault_tests.dir/test_fault_injection.cpp.o"
  "CMakeFiles/krr_fault_tests.dir/test_fault_injection.cpp.o.d"
  "krr_fault_tests"
  "krr_fault_tests.pdb"
  "krr_fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krr_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
