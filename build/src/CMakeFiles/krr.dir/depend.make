# Empty dependencies file for krr.
# This may be replaced when dependencies are built.
