file(REMOVE_RECURSE
  "libkrr.a"
)
