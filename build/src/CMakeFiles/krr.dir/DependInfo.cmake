
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aet.cpp" "src/CMakeFiles/krr.dir/baselines/aet.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/aet.cpp.o.d"
  "/root/repo/src/baselines/counter_stacks.cpp" "src/CMakeFiles/krr.dir/baselines/counter_stacks.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/counter_stacks.cpp.o.d"
  "/root/repo/src/baselines/hotl.cpp" "src/CMakeFiles/krr.dir/baselines/hotl.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/hotl.cpp.o.d"
  "/root/repo/src/baselines/hyperloglog.cpp" "src/CMakeFiles/krr.dir/baselines/hyperloglog.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/hyperloglog.cpp.o.d"
  "/root/repo/src/baselines/lru_stack.cpp" "src/CMakeFiles/krr.dir/baselines/lru_stack.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/lru_stack.cpp.o.d"
  "/root/repo/src/baselines/mimir.cpp" "src/CMakeFiles/krr.dir/baselines/mimir.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/mimir.cpp.o.d"
  "/root/repo/src/baselines/naive_stack.cpp" "src/CMakeFiles/krr.dir/baselines/naive_stack.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/naive_stack.cpp.o.d"
  "/root/repo/src/baselines/olken_tree.cpp" "src/CMakeFiles/krr.dir/baselines/olken_tree.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/olken_tree.cpp.o.d"
  "/root/repo/src/baselines/priority_stack.cpp" "src/CMakeFiles/krr.dir/baselines/priority_stack.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/priority_stack.cpp.o.d"
  "/root/repo/src/baselines/shards.cpp" "src/CMakeFiles/krr.dir/baselines/shards.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/shards.cpp.o.d"
  "/root/repo/src/baselines/shards_fixed.cpp" "src/CMakeFiles/krr.dir/baselines/shards_fixed.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/shards_fixed.cpp.o.d"
  "/root/repo/src/baselines/statstack.cpp" "src/CMakeFiles/krr.dir/baselines/statstack.cpp.o" "gcc" "src/CMakeFiles/krr.dir/baselines/statstack.cpp.o.d"
  "/root/repo/src/core/dlru.cpp" "src/CMakeFiles/krr.dir/core/dlru.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/dlru.cpp.o.d"
  "/root/repo/src/core/krr_stack.cpp" "src/CMakeFiles/krr.dir/core/krr_stack.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/krr_stack.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/CMakeFiles/krr.dir/core/profiler.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/profiler.cpp.o.d"
  "/root/repo/src/core/size_tracker.cpp" "src/CMakeFiles/krr.dir/core/size_tracker.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/size_tracker.cpp.o.d"
  "/root/repo/src/core/spatial_filter.cpp" "src/CMakeFiles/krr.dir/core/spatial_filter.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/spatial_filter.cpp.o.d"
  "/root/repo/src/core/swap_sampler.cpp" "src/CMakeFiles/krr.dir/core/swap_sampler.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/swap_sampler.cpp.o.d"
  "/root/repo/src/core/windowed_profiler.cpp" "src/CMakeFiles/krr.dir/core/windowed_profiler.cpp.o" "gcc" "src/CMakeFiles/krr.dir/core/windowed_profiler.cpp.o.d"
  "/root/repo/src/sim/klru_cache.cpp" "src/CMakeFiles/krr.dir/sim/klru_cache.cpp.o" "gcc" "src/CMakeFiles/krr.dir/sim/klru_cache.cpp.o.d"
  "/root/repo/src/sim/lru_cache.cpp" "src/CMakeFiles/krr.dir/sim/lru_cache.cpp.o" "gcc" "src/CMakeFiles/krr.dir/sim/lru_cache.cpp.o.d"
  "/root/repo/src/sim/miniature.cpp" "src/CMakeFiles/krr.dir/sim/miniature.cpp.o" "gcc" "src/CMakeFiles/krr.dir/sim/miniature.cpp.o.d"
  "/root/repo/src/sim/redis_cache.cpp" "src/CMakeFiles/krr.dir/sim/redis_cache.cpp.o" "gcc" "src/CMakeFiles/krr.dir/sim/redis_cache.cpp.o.d"
  "/root/repo/src/sim/sampled_priority_cache.cpp" "src/CMakeFiles/krr.dir/sim/sampled_priority_cache.cpp.o" "gcc" "src/CMakeFiles/krr.dir/sim/sampled_priority_cache.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/krr.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/krr.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/CMakeFiles/krr.dir/trace/generator.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/generator.cpp.o.d"
  "/root/repo/src/trace/msr.cpp" "src/CMakeFiles/krr.dir/trace/msr.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/msr.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/krr.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/krr.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/trace_reader.cpp" "src/CMakeFiles/krr.dir/trace/trace_reader.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/trace_reader.cpp.o.d"
  "/root/repo/src/trace/twitter.cpp" "src/CMakeFiles/krr.dir/trace/twitter.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/twitter.cpp.o.d"
  "/root/repo/src/trace/workload_factory.cpp" "src/CMakeFiles/krr.dir/trace/workload_factory.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/workload_factory.cpp.o.d"
  "/root/repo/src/trace/ycsb.cpp" "src/CMakeFiles/krr.dir/trace/ycsb.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/ycsb.cpp.o.d"
  "/root/repo/src/trace/zipf.cpp" "src/CMakeFiles/krr.dir/trace/zipf.cpp.o" "gcc" "src/CMakeFiles/krr.dir/trace/zipf.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/CMakeFiles/krr.dir/util/crc32.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/crc32.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/krr.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/mrc.cpp" "src/CMakeFiles/krr.dir/util/mrc.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/mrc.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/krr.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/options.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/krr.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/reuse_histogram.cpp" "src/CMakeFiles/krr.dir/util/reuse_histogram.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/reuse_histogram.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/krr.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/status.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/krr.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/krr.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
