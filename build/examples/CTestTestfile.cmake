# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--requests=20000" "--keys=2000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "--requests=30000" "--keys=3000")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sampling_size_advisor "/root/repo/build/examples/sampling_size_advisor" "--workload=ycsb_c" "--requests=30000")
set_tests_properties(example_sampling_size_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_profiler "/root/repo/build/examples/online_profiler" "--requests=50000")
set_tests_properties(example_online_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_cache "/root/repo/build/examples/adaptive_cache" "--capacity=300" "--epoch=5000" "--phase=20000")
set_tests_properties(example_adaptive_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mrc_zoo "/root/repo/build/examples/mrc_zoo" "--requests=30000" "--footprint=3000")
set_tests_properties(example_mrc_zoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
