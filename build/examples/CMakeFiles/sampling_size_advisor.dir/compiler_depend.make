# Empty compiler generated dependencies file for sampling_size_advisor.
# This may be replaced when dependencies are built.
