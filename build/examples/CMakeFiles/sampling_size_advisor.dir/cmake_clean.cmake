file(REMOVE_RECURSE
  "CMakeFiles/sampling_size_advisor.dir/sampling_size_advisor.cpp.o"
  "CMakeFiles/sampling_size_advisor.dir/sampling_size_advisor.cpp.o.d"
  "sampling_size_advisor"
  "sampling_size_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_size_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
