file(REMOVE_RECURSE
  "CMakeFiles/online_profiler.dir/online_profiler.cpp.o"
  "CMakeFiles/online_profiler.dir/online_profiler.cpp.o.d"
  "online_profiler"
  "online_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
