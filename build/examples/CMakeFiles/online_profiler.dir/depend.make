# Empty dependencies file for online_profiler.
# This may be replaced when dependencies are built.
