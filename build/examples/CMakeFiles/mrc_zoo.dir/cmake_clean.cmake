file(REMOVE_RECURSE
  "CMakeFiles/mrc_zoo.dir/mrc_zoo.cpp.o"
  "CMakeFiles/mrc_zoo.dir/mrc_zoo.cpp.o.d"
  "mrc_zoo"
  "mrc_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrc_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
