# Empty compiler generated dependencies file for mrc_zoo.
# This may be replaced when dependencies are built.
