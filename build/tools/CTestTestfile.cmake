# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_workloads "/root/repo/build/tools/krr_cli" "workloads")
set_tests_properties(cli_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/krr_cli" "compare" "--workload=zipf:0.9" "--n=20000" "--footprint=2000" "--k=5" "--sizes=5")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/krr_cli" "profile" "--workload=msr:web" "--n=20000" "--footprint=2000" "--k=5" "--rate=0.5")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/krr_cli" "simulate" "--workload=uniform" "--n=10000" "--footprint=1000" "--policy=redis" "--sizes=4")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_command "/root/repo/build/tools/krr_cli" "frobnicate")
set_tests_properties(cli_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exit_usage_is_2 "sh" "-c" "\"/root/repo/build/tools/krr_cli\" frobnicate; test \$? -eq 2")
set_tests_properties(cli_exit_usage_is_2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exit_bad_flag_is_2 "sh" "-c" "\"/root/repo/build/tools/krr_cli\" profile --workload=zipf:0.9 --recovery=yolo; test \$? -eq 2")
set_tests_properties(cli_exit_bad_flag_is_2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exit_missing_trace_is_1 "sh" "-c" "\"/root/repo/build/tools/krr_cli\" profile --trace=/nonexistent/t.bin --k=5; test \$? -eq 1")
set_tests_properties(cli_exit_missing_trace_is_1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exit_corrupt_strict_is_3 "sh" "-c" "d=\$(mktemp -d) || exit 1; trap 'rm -rf \"\$d\"' EXIT; cli=\"/root/repo/build/tools/krr_cli\"; \"\$cli\" generate --workload=zipf:0.9 --footprint=500 --n=5000 --out=\"\$d/t.bin\" || exit 1; head -c 60000 \"\$d/t.bin\" > \"\$d/cut.bin\" || exit 1; \"\$cli\" profile --trace=\"\$d/cut.bin\" --k=5 --strict; test \$? -eq 3 || exit 1; \"\$cli\" profile --trace=\"\$d/cut.bin\" --k=5")
set_tests_properties(cli_exit_corrupt_strict_is_3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
