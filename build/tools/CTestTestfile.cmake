# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_workloads "/root/repo/build/tools/krr_cli" "workloads")
set_tests_properties(cli_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/krr_cli" "compare" "--workload=zipf:0.9" "--n=20000" "--footprint=2000" "--k=5" "--sizes=5")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/krr_cli" "profile" "--workload=msr:web" "--n=20000" "--footprint=2000" "--k=5" "--rate=0.5")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/krr_cli" "simulate" "--workload=uniform" "--n=10000" "--footprint=1000" "--policy=redis" "--sizes=4")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_command "/root/repo/build/tools/krr_cli" "frobnicate")
set_tests_properties(cli_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
