file(REMOVE_RECURSE
  "CMakeFiles/krr_cli.dir/krr_cli.cpp.o"
  "CMakeFiles/krr_cli.dir/krr_cli.cpp.o.d"
  "krr_cli"
  "krr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
