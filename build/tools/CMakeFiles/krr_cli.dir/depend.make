# Empty dependencies file for krr_cli.
# This may be replaced when dependencies are built.
