#include "obs/heartbeat.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace krr::obs {

namespace {

/// 12345678 -> "12.35M", 9301 -> "9.30k" — heartbeat lines stay narrow.
std::string human_count(double v) {
  char buf[32];
  if (v >= 1e9) std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  else if (v >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  else if (v >= 1e3) std::snprintf(buf, sizeof(buf), "%.2fk", v / 1e3);
  else std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string human_bytes(double v) {
  char buf[32];
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", v / (1024.0 * 1024.0 * 1024.0));
  } else if (v >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", v);
  }
  return buf;
}

}  // namespace

Heartbeat::Heartbeat(double interval_seconds, std::ostream& os)
    : interval_seconds_(interval_seconds), os_(os) {}

void Heartbeat::beat(const HeartbeatSnapshot& snapshot) {
  emit(snapshot, /*final_beat=*/false);
}

void Heartbeat::finish(const HeartbeatSnapshot& snapshot) {
  // Fold in the final partial stride: the snapshot may predate the last
  // (ticks_ % kStride) records, but the tick counter saw every one.
  HeartbeatSnapshot reconciled = snapshot;
  reconciled.records = std::max(reconciled.records, baseline_ + ticks_);
  emit(reconciled, /*final_beat=*/true);
}

void Heartbeat::emit(const HeartbeatSnapshot& snapshot, bool final_beat) {
  const double now = watch_.seconds();
  // Interval throughput for periodic beats; whole-run throughput for the
  // final summary line.
  const double dt = final_beat ? now : now - last_beat_seconds_;
  const double dn = final_beat
                        ? static_cast<double>(snapshot.records)
                        : static_cast<double>(snapshot.records - last_records_);
  const double rate = dt > 0.0 ? dn / dt : 0.0;
  char head[64];
  std::snprintf(head, sizeof(head), "[krr%s] t=%.1fs", final_beat ? " done" : "",
                now);
  os_ << head << " records=" << snapshot.records << " ("
      << human_count(rate) << "/s) sampled=" << snapshot.sampled
      << " depth=" << snapshot.stack_depth << " mem="
      << human_bytes(static_cast<double>(snapshot.resident_bytes))
      << " rate=" << snapshot.sampling_rate
      << " degraded=" << snapshot.degradation_events << std::endl;
  last_beat_seconds_ = now;
  last_records_ = snapshot.records;
  ++beats_;
}

}  // namespace krr::obs
