#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace krr::obs {

/// Minimal JSON document model for the metrics export: enough to build the
/// snapshot (`MetricsRegistry::to_json`), dump it deterministically, and
/// parse it back in tests and tooling (`BENCH_*.json` round-trips). Not a
/// general-purpose JSON library: numbers are kept in three lanes (uint64,
/// int64, double) so 64-bit counters survive a round-trip bit-exactly
/// instead of being squeezed through a double.
class Json {
 public:
  enum class Type { kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::uint64_t u) : type_(Type::kUint), uint_(u) {}
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}
  Json(int i) : type_(Type::kInt), int_(i) {}
  Json(double d) : type_(Type::kDouble), double_(d) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_number() const noexcept {
    return type_ == Type::kUint || type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }

  bool as_bool() const { return bool_; }
  /// Any numeric lane widened to double (lossy above 2^53).
  double as_double() const;
  std::uint64_t as_uint() const;
  std::int64_t as_int() const;
  const std::string& as_string() const { return string_; }

  /// Array access.
  void push_back(Json value);
  std::size_t size() const noexcept;
  const Json& at(std::size_t i) const;

  /// Object access. Insertion order is preserved (the export reads better
  /// grouped than alphabetized). set() replaces an existing key in place.
  void set(const std::string& key, Json value);
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const { return object_; }

  /// Serializes with 2-space indentation (stable output: object member
  /// order is insertion order). `indent` is the starting depth.
  void dump(std::ostream& os, int indent = 0) const;
  std::string dump() const;

  /// Strict parser for the subset dump() emits (standard JSON minus
  /// non-finite numbers). Returns nullopt and fills `error` (if given) on
  /// malformed input; never throws on bad bytes.
  static std::optional<Json> parse(const std::string& text, std::string* error = nullptr);

 private:
  Type type_;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace krr::obs
