#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "obs/json.h"

namespace krr::obs {

/// Monotonic event counter. Relaxed atomics: hot paths increment without
/// synchronization and readers (heartbeat, final export) see a value that
/// is exact once the writers quiesce — the same contract as per-CPU stats
/// counters. A single increment is one `lock xadd`, so instrumented code
/// pays nanoseconds, not mutexes.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (stack depth, sampling rate, phase
/// seconds). Stored as a double; set/load are relaxed atomics.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram for latencies, depths, and chain lengths:
/// bucket 0 holds the value 0, bucket i (1..64) holds [2^(i-1), 2^i).
/// Recording is two relaxed increments and a `std::bit_width` — cheap
/// enough for per-access instrumentation. Quantiles are approximate (the
/// geometric midpoint of the containing bucket), which is the right
/// resolution for "where does the time go" telemetry.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  static std::uint64_t bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
  }
  static std::uint64_t bucket_hi(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate quantile (q in [0, 1]): the geometric midpoint of the
  /// bucket containing the q-th recorded value. 0 on an empty histogram.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named metric store. Registration (`counter("stack.swaps")`) takes a
/// mutex and returns a reference with a stable address for the registry's
/// lifetime (deque storage), so instrumented components resolve their
/// metrics once at attach time and the hot path never touches the
/// registry again — reads and increments are lock-free.
///
/// Metric name convention: `<component>.<quantity>`, e.g.
/// `filter.dropped`, `stack.update_ns`, `phase.profile_seconds`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric with this name, creating it on first use.
  /// Re-registering an existing name returns the same instance.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  /// Snapshot of every registered metric:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count,sum,mean,p50,p90,p99,buckets}}}
  /// Extend the returned object (run_report, phase data) before dumping.
  Json to_json() const;

  void write_json(std::ostream& os) const;

  /// Human-readable aligned dump (the CLI's --format=table).
  void write_table(std::ostream& os) const;

 private:
  mutable std::mutex mu_;  // guards registration, not metric updates
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, LogHistogram>> histograms_;
};

/// Whether the hot-path instrumentation was compiled in (the KRR_METRICS
/// CMake option). When false, attach_metrics() calls are no-ops and the
/// per-access counters/histograms stay at zero; end-of-run gauges (filled
/// from public accessors) still work.
#ifdef KRR_METRICS_ENABLED
inline constexpr bool kHotPathInstrumentation = true;
#else
inline constexpr bool kHotPathInstrumentation = false;
#endif

/// The KrrStack-level slice of the pipeline metrics: what the stack update
/// itself can observe (Fig. 5.4's update-overhead quantities). Plain
/// pointers so the stack can be instrumented in tests without a registry.
struct StackMetrics {
  Counter* cold_misses = nullptr;  ///< stack.cold_misses — first-ever references
  Counter* swaps = nullptr;        ///< stack.swaps — swap positions processed
  LogHistogram* chain_len = nullptr;  ///< stack.chain_len — swap-chain length/access
  LogHistogram* update_ns = nullptr;  ///< stack.update_ns — access cost (sampled)
};

/// The sharded-pipeline fan-out slice: what the producer/merge side of a
/// ShardedKrrProfiler run can observe. Per-shard model metrics (stack
/// depth, final rate, degradations) are exported as named gauges via
/// ShardedKrrProfiler::export_shard_gauges, not through fixed pointers,
/// because the shard count is a runtime choice.
struct ShardedMetrics {
  Counter* enqueued = nullptr;        ///< sharded.enqueued — records fanned out
  Counter* producer_stalls = nullptr; ///< sharded.producer_stalls — full-queue waits
  LogHistogram* queue_depth = nullptr;///< sharded.queue_depth — depth sampled at enqueue
  Gauge* shards = nullptr;            ///< sharded.shards — shard count S
  Gauge* threads = nullptr;           ///< sharded.threads — worker threads T
  Gauge* merge_seconds = nullptr;     ///< sharded.merge_seconds — histogram merge+MRC time
  Gauge* stall_seconds = nullptr;     ///< sharded.producer_stall_seconds — fan-out backpressure
  Counter* shard_failures = nullptr;  ///< sharded.shard_failures — shards dropped (best-effort)
  Counter* backpressure_sleeps = nullptr;  ///< sharded.backpressure_sleeps — producer sleep steps
  Counter* resurrections = nullptr;   ///< recovery.resurrections — workers revived by replay
  Counter* replayed_records = nullptr;///< recovery.replayed_records — journal records re-applied
};

/// The model-agnostic gauge slice every registered estimator publishes via
/// MrcEstimator::refresh_metrics_gauges, whatever its family: stack models
/// report stack depth, tree models tracked objects, reuse-time collectors
/// their sampled set, sketches their live counters. One shared name table
/// lets the conformance tests and the CLI's --metrics output treat the
/// whole zoo uniformly.
struct ModelMetrics {
  Gauge* depth = nullptr;           ///< model.depth — stack/tree/tracked-set size
  Gauge* resident_bytes = nullptr;  ///< model.resident_bytes — state footprint
  Gauge* sampling_rate = nullptr;   ///< model.sampling_rate — realized rate
  Gauge* samples = nullptr;         ///< model.samples — refs/objects ingested
  Gauge* degradations = nullptr;    ///< model.degradations — shed/prune steps
  Gauge* histogram_bins = nullptr;  ///< model.histogram_bins — distinct bins
};

/// The wiring between the profiling pipeline and a registry: one struct of
/// resolved metric pointers handed to KrrProfiler::attach_metrics(). Kept
/// in obs (not core) so the metric name table lives in one place.
struct PipelineMetrics {
  explicit PipelineMetrics(MetricsRegistry& registry);

  // Profiler / spatial filter.
  Counter* accesses;          ///< profiler.accesses — references processed
  Counter* filter_passed;     ///< filter.passed — references entering the stack
  Counter* filter_dropped;    ///< filter.dropped — references rejected by hash
  Counter* filter_halvings;   ///< filter.halvings — rate-halving epochs
  Counter* degradations;      ///< profiler.degradations — memory-ceiling events
  Gauge* sampling_rate;       ///< filter.rate — current realized rate
  Gauge* stack_depth;         ///< stack.depth — distinct sampled objects
  Gauge* resident_bytes;      ///< stack.resident_bytes — §5.6 accounting
  Gauge* histogram_bins;      ///< histogram.bins — distinct distance bins

  /// KrrStack update internals (handed to KrrStack::attach_metrics).
  StackMetrics stack;

  /// Sharded fan-out internals (handed to ShardedKrrProfiler).
  ShardedMetrics sharded;

  /// Registry-wide per-model gauges (filled by refresh_metrics_gauges).
  ModelMetrics model;
};

}  // namespace krr::obs
