#pragma once

#include <cstdint>
#include <iosfwd>

#include "util/stopwatch.h"

namespace krr::obs {

/// What one heartbeat line reports: cumulative progress plus the
/// profiler's instantaneous state. Built by the caller (who owns the
/// profiler) only when a beat is actually due.
struct HeartbeatSnapshot {
  std::uint64_t records = 0;            ///< references processed so far
  std::uint64_t sampled = 0;            ///< references past the spatial filter
  std::uint64_t stack_depth = 0;        ///< distinct sampled objects
  std::uint64_t resident_bytes = 0;     ///< §5.6 space accounting
  double sampling_rate = 1.0;           ///< currently effective rate
  std::uint64_t degradation_events = 0; ///< rate halvings so far
};

/// Periodic progress reporter for long profiling runs (the CLI's
/// --progress). The per-record cost is one increment and one branch: the
/// clock is only consulted every kStride records, so ticking from a hot
/// loop is safe. Emits single-line snapshots with cumulative and
/// since-last-beat throughput; finish() always emits a final summary line,
/// so every run with --progress produces at least one heartbeat.
class Heartbeat {
 public:
  /// Clock checks happen at most once per kStride ticks. At ~10M rec/s the
  /// check itself runs ~2.4k times/s — invisible next to the stack update.
  static constexpr std::uint64_t kStride = 4096;

  /// interval_seconds <= 0 beats on every stride check (testing hook).
  Heartbeat(double interval_seconds, std::ostream& os);

  /// Per-record tick; `make_snapshot` is only invoked when a beat is due.
  template <typename SnapshotFn>
  void tick(SnapshotFn&& make_snapshot) {
    if (++ticks_ % kStride != 0) return;
    if (watch_.seconds() - last_beat_seconds_ < interval_seconds_) return;
    beat(make_snapshot());
  }

  /// Unconditionally emits one heartbeat line.
  void beat(const HeartbeatSnapshot& snapshot);

  /// Emits the final summary line (marked "done") with whole-run rates.
  /// The last periodic beat lands at most kStride ticks before the end of
  /// input, so the caller's snapshot can trail the true count by a partial
  /// stride; finish() folds the remaining ticks in by reporting
  /// max(snapshot.records, baseline + ticks) — with one tick per record,
  /// the summary's `records` always equals the true processed count.
  void finish(const HeartbeatSnapshot& snapshot);

  /// Records processed before this heartbeat was constructed (a resumed
  /// run); added to the tick count when finish() reconciles `records`.
  void set_baseline(std::uint64_t records) noexcept { baseline_ = records; }

  std::uint64_t beats() const noexcept { return beats_; }
  /// tick() calls so far — the records this heartbeat itself witnessed.
  std::uint64_t ticks() const noexcept { return ticks_; }
  double elapsed_seconds() const { return watch_.seconds(); }

 private:
  void emit(const HeartbeatSnapshot& snapshot, bool final_beat);

  double interval_seconds_;
  std::ostream& os_;
  Stopwatch watch_;
  std::uint64_t ticks_ = 0;
  std::uint64_t baseline_ = 0;
  std::uint64_t beats_ = 0;
  double last_beat_seconds_ = 0.0;
  std::uint64_t last_records_ = 0;
};

}  // namespace krr::obs
