#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace krr::obs {

double LogHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (static_cast<double>(seen) >= target) {
      // Geometric midpoint of [lo, hi]; bucket 0 is exactly the value 0.
      if (i == 0) return 0.0;
      const double lo = static_cast<double>(bucket_lo(i));
      const double hi = static_cast<double>(bucket_hi(i));
      return std::sqrt(lo * hi);
    }
  }
  return static_cast<double>(bucket_hi(kBuckets - 1));
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

template <typename Deque>
auto& find_or_add(Deque& deque, const std::string& name) {
  for (auto& [n, metric] : deque) {
    if (n == name) return metric;
  }
  // Atomics make the metric types immovable; build the pair in place.
  deque.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                     std::forward_as_tuple());
  return deque.back().second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_add(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_add(gauges_, name);
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_add(histograms_, name);
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json root = Json::object();
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, Json(c.value()));
  root.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, Json(g.value()));
  root.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry.set("count", Json(h.count()));
    entry.set("sum", Json(h.sum()));
    entry.set("mean", Json(h.mean()));
    entry.set("p50", Json(h.quantile(0.50)));
    entry.set("p90", Json(h.quantile(0.90)));
    entry.set("p99", Json(h.quantile(0.99)));
    Json buckets = Json::array();
    for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;
      Json bucket = Json::array();
      bucket.push_back(Json(LogHistogram::bucket_lo(i)));
      bucket.push_back(Json(LogHistogram::bucket_hi(i)));
      bucket.push_back(Json(n));
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  to_json().dump(os, 0);
  os << '\n';
}

void MetricsRegistry::write_table(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t width = 8;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) width = std::max(width, name.size());
  os << "-- counters --\n";
  for (const auto& [name, c] : counters_) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  "
       << c.value() << '\n';
  }
  os << "-- gauges --\n";
  for (const auto& [name, g] : gauges_) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  "
       << g.value() << '\n';
  }
  os << "-- histograms (count / mean / p50 / p99) --\n";
  for (const auto& [name, h] : histograms_) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  "
       << h.count() << " / " << h.mean() << " / " << h.quantile(0.5) << " / "
       << h.quantile(0.99) << '\n';
  }
}

PipelineMetrics::PipelineMetrics(MetricsRegistry& registry)
    : accesses(&registry.counter("profiler.accesses")),
      filter_passed(&registry.counter("filter.passed")),
      filter_dropped(&registry.counter("filter.dropped")),
      filter_halvings(&registry.counter("filter.halvings")),
      degradations(&registry.counter("profiler.degradations")),
      sampling_rate(&registry.gauge("filter.rate")),
      stack_depth(&registry.gauge("stack.depth")),
      resident_bytes(&registry.gauge("stack.resident_bytes")),
      histogram_bins(&registry.gauge("histogram.bins")) {
  stack.cold_misses = &registry.counter("stack.cold_misses");
  stack.swaps = &registry.counter("stack.swaps");
  stack.chain_len = &registry.histogram("stack.chain_len");
  stack.update_ns = &registry.histogram("stack.update_ns");
  sharded.enqueued = &registry.counter("sharded.enqueued");
  sharded.producer_stalls = &registry.counter("sharded.producer_stalls");
  sharded.queue_depth = &registry.histogram("sharded.queue_depth");
  sharded.shards = &registry.gauge("sharded.shards");
  sharded.threads = &registry.gauge("sharded.threads");
  sharded.merge_seconds = &registry.gauge("sharded.merge_seconds");
  sharded.stall_seconds = &registry.gauge("sharded.producer_stall_seconds");
  sharded.shard_failures = &registry.counter("sharded.shard_failures");
  sharded.backpressure_sleeps = &registry.counter("sharded.backpressure_sleeps");
  sharded.resurrections = &registry.counter("recovery.resurrections");
  sharded.replayed_records = &registry.counter("recovery.replayed_records");
  model.depth = &registry.gauge("model.depth");
  model.resident_bytes = &registry.gauge("model.resident_bytes");
  model.sampling_rate = &registry.gauge("model.sampling_rate");
  model.samples = &registry.gauge("model.samples");
  model.degradations = &registry.gauge("model.degradations");
  model.histogram_bins = &registry.gauge("model.histogram_bins");
}

}  // namespace krr::obs
