#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace krr::obs {

double Json::as_double() const {
  switch (type_) {
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kInt: return static_cast<double>(int_);
    case Type::kDouble: return double_;
    default: throw std::logic_error("Json: not a number");
  }
}

std::uint64_t Json::as_uint() const {
  switch (type_) {
    case Type::kUint: return uint_;
    case Type::kInt:
      if (int_ < 0) throw std::logic_error("Json: negative to as_uint");
      return static_cast<std::uint64_t>(int_);
    case Type::kDouble: return static_cast<std::uint64_t>(double_);
    default: throw std::logic_error("Json: not a number");
  }
}

std::int64_t Json::as_int() const {
  switch (type_) {
    case Type::kUint: return static_cast<std::int64_t>(uint_);
    case Type::kInt: return int_;
    case Type::kDouble: return static_cast<std::int64_t>(double_);
    default: throw std::logic_error("Json: not a number");
  }
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) throw std::logic_error("Json: push_back on non-array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const noexcept {
  return type_ == Type::kArray ? array_.size() : object_.size();
}

const Json& Json::at(std::size_t i) const { return array_.at(i); }

void Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) throw std::logic_error("Json: set on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Make sure the token re-parses as a double, not an integer, so the
  // numeric lane survives a round-trip.
  std::string out(buf);
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  os << out;
}

void pad(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

}  // namespace

void Json::dump(std::ostream& os, int indent) const {
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kUint: os << uint_; break;
    case Type::kInt: os << int_; break;
    case Type::kDouble: write_double(os, double_); break;
    case Type::kString: write_escaped(os, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        pad(os, indent + 1);
        array_[i].dump(os, indent + 1);
        if (i + 1 < array_.size()) os << ',';
        os << '\n';
      }
      pad(os, indent);
      os << ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        pad(os, indent + 1);
        write_escaped(os, object_[i].first);
        os << ": ";
        object_[i].second.dump(os, indent + 1);
        if (i + 1 < object_.size()) os << ',';
        os << '\n';
      }
      pad(os, indent);
      os << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  dump(os, 0);
  return os.str();
}

namespace {

/// Recursive-descent parser over the in-memory text. Depth-limited so a
/// hostile "[[[[..." cannot blow the stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  std::optional<Json> run() {
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void set_error(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      set_error("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(&code)) return std::nullopt;
            // Surrogate pair: a high surrogate must be followed by
            // \uDC00..\uDFFF, and the pair combines into one supplementary
            // code point. Lone or out-of-order surrogates are rejected —
            // emitting them raw would produce invalid UTF-8.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                set_error("lone high surrogate in \\u escape");
                return std::nullopt;
              }
              pos_ += 2;
              unsigned low = 0;
              if (!parse_hex4(&low)) return std::nullopt;
              if (low < 0xDC00 || low > 0xDFFF) {
                set_error("bad low surrogate in \\u escape");
                return std::nullopt;
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              set_error("lone low surrogate in \\u escape");
              return std::nullopt;
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xF0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            set_error("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    set_error("unterminated string");
    return std::nullopt;
  }

  /// Reads exactly four hex digits at pos_ into *code.
  bool parse_hex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) {
      set_error("bad \\u escape");
      return false;
    }
    unsigned out = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      out <<= 4;
      if (h >= '0' && h <= '9') out |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') out |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') out |= static_cast<unsigned>(h - 'A' + 10);
      else {
        set_error("bad \\u escape");
        return false;
      }
    }
    *code = out;
    return true;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      set_error("expected number");
      return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    if (is_double) {
      const double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) {
        set_error("malformed number");
        return std::nullopt;
      }
      return Json(d);
    }
    if (token[0] == '-') {
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE || end != token.c_str() + token.size()) {
        set_error("integer out of range");
        return std::nullopt;
      }
      return Json(static_cast<std::int64_t>(i));
    }
    const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
    if (errno == ERANGE || end != token.c_str() + token.size()) {
      set_error("integer out of range");
      return std::nullopt;
    }
    return Json(static_cast<std::uint64_t>(u));
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) {
      set_error("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      set_error("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      if (literal("null")) return Json();
      set_error("bad literal");
      return std::nullopt;
    }
    if (c == 't') {
      if (literal("true")) return Json(true);
      set_error("bad literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (literal("false")) return Json(false);
      set_error("bad literal");
      return std::nullopt;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        arr.push_back(std::move(*v));
        if (consume(',')) continue;
        if (consume(']')) return arr;
        set_error("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key) return std::nullopt;
        if (!consume(':')) {
          set_error("expected ':'");
          return std::nullopt;
        }
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        obj.set(*key, std::move(*v));
        if (consume(',')) continue;
        if (consume('}')) return obj;
        set_error("expected ',' or '}'");
        return std::nullopt;
      }
    }
    return parse_number();
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

}  // namespace krr::obs
