#include "obs/tracer.h"

#include <algorithm>
#include <fstream>

namespace krr::obs {

namespace {

/// Process-unique tracer ids key the thread-local ring cache, so a cache
/// entry can never alias a ring of a destroyed tracer whose address was
/// reused by a later one.
std::atomic<std::uint64_t> g_next_tracer_id{1};

struct RingCache {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
};

thread_local RingCache t_ring_cache;

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      ring_capacity_(std::max<std::size_t>(ring_capacity, 16)) {}

Tracer::Ring* Tracer::ring_for_current_thread() noexcept {
  if (t_ring_cache.tracer_id == id_) {
    return static_cast<Ring*>(t_ring_cache.ring);
  }
  Ring* ring = nullptr;
  try {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ring_by_thread_.find(std::this_thread::get_id());
    if (it != ring_by_thread_.end()) {
      ring = it->second;
    } else {
      rings_.push_back(std::make_unique<Ring>(ring_capacity_));
      ring = rings_.back().get();
      ring_by_thread_.emplace(std::this_thread::get_id(), ring);
    }
  } catch (...) {
    // Allocation failure while registering: drop the event rather than
    // propagate out of a noexcept instrumentation call.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  t_ring_cache = {id_, ring};
  return ring;
}

void Tracer::record(TraceEvent ev,
                    std::initializer_list<TraceArg> args) noexcept {
  ev.n_args = 0;
  for (const TraceArg& arg : args) {
    if (ev.n_args == TraceEvent::kMaxArgs) break;
    ev.args[ev.n_args++] = arg;
  }
  Ring* ring = ring_for_current_thread();
  if (ring == nullptr) return;
  const std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  if (n >= ring->events.size()) {
    // Drop-newest: the front of the run (phase starts, first degradations)
    // is usually the interesting part, and overwriting old events would
    // need a second index the hot path doesn't want to maintain.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->events[n] = ev;
  // Release pairs with the drain's acquire so the event payload is visible
  // once the count is.
  ring->count.store(n + 1, std::memory_order_release);
}

void Tracer::instant(const char* name, const char* cat, std::uint32_t lane,
                     std::initializer_list<TraceArg> args) noexcept {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.lane = lane;
  ev.ts_ns = now_ns();
  record(ev, args);
}

void Tracer::complete(const char* name, const char* cat, std::uint32_t lane,
                      std::uint64_t ts_ns, std::uint64_t dur_ns,
                      std::initializer_list<TraceArg> args) noexcept {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'X';
  ev.lane = lane;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  record(ev, args);
}

void Tracer::set_lane_name(std::uint32_t lane, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[lane] = std::move(name);
}

std::uint64_t Tracer::recorded() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->count.load(std::memory_order_acquire);
  }
  return total;
}

namespace {

Json metadata_event(const char* name, std::uint32_t tid,
                    const std::string& value) {
  Json ev = Json::object();
  ev.set("name", Json(name));
  ev.set("ph", Json("M"));
  ev.set("pid", Json(std::uint64_t{0}));
  ev.set("tid", Json(static_cast<std::uint64_t>(tid)));
  Json args = Json::object();
  args.set("name", Json(value));
  ev.set("args", std::move(args));
  return ev;
}

}  // namespace

Json Tracer::to_json() const {
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& ring : rings_) {
      total += ring->count.load(std::memory_order_acquire);
    }
    events.reserve(total);
    for (const auto& ring : rings_) {
      const std::uint64_t n = ring->count.load(std::memory_order_acquire);
      events.insert(events.end(), ring->events.begin(),
                    ring->events.begin() + static_cast<std::ptrdiff_t>(n));
    }
    lanes = lane_names_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  if (lanes.find(0) == lanes.end()) lanes[0] = "main";

  Json trace_events = Json::array();
  trace_events.push_back(metadata_event("process_name", 0, "krr"));
  for (const auto& [lane, name] : lanes) {
    trace_events.push_back(metadata_event("thread_name", lane, name));
  }
  for (const TraceEvent& ev : events) {
    Json out = Json::object();
    out.set("name", Json(ev.name));
    out.set("cat", Json(ev.cat));
    out.set("ph", Json(std::string(1, ev.phase)));
    // Chrome trace-event timestamps are microseconds; fractional µs keep
    // nanosecond resolution.
    out.set("ts", Json(static_cast<double>(ev.ts_ns) / 1e3));
    if (ev.phase == 'X') {
      out.set("dur", Json(static_cast<double>(ev.dur_ns) / 1e3));
    } else {
      out.set("s", Json("t"));  // instant scope: thread
    }
    out.set("pid", Json(std::uint64_t{0}));
    out.set("tid", Json(static_cast<std::uint64_t>(ev.lane)));
    if (ev.n_args != 0) {
      Json args = Json::object();
      for (std::uint8_t i = 0; i < ev.n_args; ++i) {
        args.set(ev.args[i].key, Json(ev.args[i].value));
      }
      out.set("args", std::move(args));
    }
    trace_events.push_back(std::move(out));
  }

  Json root = Json::object();
  root.set("traceEvents", std::move(trace_events));
  root.set("displayTimeUnit", Json("ms"));
  Json other = Json::object();
  other.set("recorded", Json(static_cast<std::uint64_t>(events.size())));
  other.set("dropped", Json(dropped()));
  root.set("otherData", std::move(other));
  return root;
}

Status Tracer::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return io_error("cannot open trace output file: " + path);
  to_json().dump(os, 0);
  os << '\n';
  os.flush();
  if (!os) return io_error("short write to trace output file: " + path);
  return Status::ok();
}

}  // namespace krr::obs
