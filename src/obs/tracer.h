#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace krr::obs {

/// One key=value annotation on a trace event. The key must be a string
/// literal (or otherwise outlive the tracer): events store the pointer, not
/// a copy, so recording stays allocation-free on the hot path.
struct TraceArg {
  const char* key;
  double value;
};

/// One recorded event, POD so ring slots assign without allocation.
/// `name` and `cat` must be string literals for the same lifetime reason as
/// TraceArg::key. Timestamps are nanoseconds on the tracer's own steady
/// clock (zero at tracer construction); the exporter converts to the
/// microseconds Chrome's trace-event format expects.
struct TraceEvent {
  static constexpr std::uint8_t kMaxArgs = 4;

  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'i';          ///< 'X' = complete span, 'i' = instant
  std::uint32_t lane = 0;    ///< exported as tid: 0 = main/producer, 1.. = shards
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< complete spans only
  std::uint8_t n_args = 0;
  TraceArg args[kMaxArgs];
};

/// Low-overhead span/instant-event tracer exporting Chrome trace-event JSON
/// (chrome://tracing, Perfetto). The design mirrors the rest of the obs
/// layer: pay at attach time, not on the hot path.
///
///  - Each recording thread gets its own fixed-capacity ring (registered
///    under a mutex on that thread's first event, cached thread-locally
///    after), so recording is a relaxed counter bump and a struct store —
///    no locks, no allocation, no cache-line sharing between threads.
///  - Rings drop-newest on overflow and count the drops; a trace that lost
///    events says so in the export instead of blocking the pipeline.
///  - Clock reads are the caller's problem by design: per-record code paths
///    stride-gate them exactly like Heartbeat::tick (see
///    ShardedKrrProfiler's drain-batch gating), so a traced run reads the
///    clock thousands of times per second, not millions.
///  - Draining happens once, single-threaded, in to_json() after the
///    recording threads have quiesced (finish()/join has happened) — the
///    export is not safe to race with recording.
///
/// Every instrumentation point takes `Tracer*` and treats nullptr as
/// "tracing detached": the detached cost is one pointer compare.
class Tracer {
 public:
  /// Events per thread ring. 16k events ≈ 1 MiB/thread; a full profiling
  /// run emits hundreds of phase/governor events and a few thousand gated
  /// drain spans, so the default leaves generous headroom.
  static constexpr std::size_t kDefaultRingCapacity = 1u << 14;

  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since tracer construction (steady clock). Stride-gate
  /// calls from per-record paths.
  std::uint64_t now_ns() const noexcept { return watch_.nanos(); }

  /// Records an instant event at now_ns().
  void instant(const char* name, const char* cat, std::uint32_t lane,
               std::initializer_list<TraceArg> args = {}) noexcept;

  /// Records a complete span [ts_ns, ts_ns + dur_ns).
  void complete(const char* name, const char* cat, std::uint32_t lane,
                std::uint64_t ts_ns, std::uint64_t dur_ns,
                std::initializer_list<TraceArg> args = {}) noexcept;

  /// Names a lane in the exported trace (Perfetto shows it as the thread
  /// name). Lane 0 defaults to "main"; sharded runs name lanes 1..S
  /// "shard 0".."shard S-1" at attach time.
  void set_lane_name(std::uint32_t lane, std::string name);

  /// Events recorded (across all rings) and dropped on ring overflow.
  std::uint64_t recorded() const noexcept;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drains every ring into one Chrome trace-event document:
  ///   {"traceEvents": [...], "displayTimeUnit": "ms",
  ///    "otherData": {"recorded": N, "dropped": D}}
  /// Events are sorted by timestamp; lane names become thread_name metadata
  /// records. Call only after recording threads have quiesced.
  Json to_json() const;

  /// Serializes to_json() to `path`. kIoError when the file cannot be
  /// written.
  Status write_file(const std::string& path) const;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : events(capacity) {}
    std::vector<TraceEvent> events;
    /// Single writer (the owning thread); drained after quiesce.
    std::atomic<std::uint64_t> count{0};
  };

  void record(TraceEvent ev, std::initializer_list<TraceArg> args) noexcept;
  Ring* ring_for_current_thread() noexcept;

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  const std::size_t ring_capacity_;
  Stopwatch watch_;
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mu_;  ///< guards ring registration and lane names
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<std::thread::id, Ring*> ring_by_thread_;
  std::map<std::uint32_t, std::string> lane_names_;
};

/// RAII complete-span helper; a null tracer makes construction and
/// destruction each a single branch.
///
///   { ScopedTraceSpan span(tracer, "ingest", "phase"); read_trace(...); }
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(Tracer* tracer, const char* name, const char* cat,
                  std::uint32_t lane = 0) noexcept
      : tracer_(tracer), name_(name), cat_(cat), lane_(lane),
        start_ns_(tracer != nullptr ? tracer->now_ns() : 0) {}

  ~ScopedTraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, cat_, lane_, start_ns_,
                        tracer_->now_ns() - start_ns_);
    }
  }

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  std::uint32_t lane_;
  std::uint64_t start_ns_;
};

}  // namespace krr::obs
