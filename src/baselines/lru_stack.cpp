#include "baselines/lru_stack.h"

namespace krr {

LruStackProfiler::LruStackProfiler(bool byte_granularity,
                                   std::uint64_t histogram_quantum)
    : byte_granularity_(byte_granularity), histogram_(histogram_quantum) {}

std::uint64_t LruStackProfiler::access(const Request& req) {
  ++time_;
  markers_.ensure_size(time_);
  const std::int64_t marker =
      byte_granularity_ ? static_cast<std::int64_t>(req.size) : 1;
  auto it = last_access_.find(req.key);
  if (it == last_access_.end()) {
    histogram_.record_infinite();
    markers_.add(time_, marker);
    last_access_.emplace(req.key, ObjectState{time_, req.size});
    return 0;
  }
  // Objects touched strictly after x's last access sit above x on the LRU
  // stack; x's own marker (possibly an updated size) completes the
  // inclusive distance.
  const std::int64_t above = markers_.range_sum(it->second.last_time + 1, time_ - 1);
  const std::uint64_t distance = static_cast<std::uint64_t>(above) +
                                 static_cast<std::uint64_t>(marker);
  histogram_.record(distance);
  markers_.add(it->second.last_time, byte_granularity_
                                         ? -static_cast<std::int64_t>(it->second.size)
                                         : -1);
  markers_.add(time_, marker);
  it->second.last_time = time_;
  it->second.size = req.size;
  return distance;
}

}  // namespace krr
