#pragma once

#include <string>

#include "core/checkpoint.h"
#include "util/reuse_histogram.h"

namespace krr {

/// Shared checkpoint codec for the reuse-time family (AET, StatStack,
/// HOTL): all three profilers are thin solvers over a ReuseTimeCollector,
/// so one (save, load) pair serializes the whole family's mutable state.
/// The bytes are a flat ckpt::append_* sequence meant to travel inside a
/// tagged section (kSectionCollector) of a model's state stream.
///
/// Per-object maps travel as (key, first, last) triples sorted by key, so
/// the payload is canonical regardless of hash-table iteration order;
/// restore() rebuilds the maps, and every output the profilers derive from
/// them is made iteration-order-independent separately (HOTL sorts its
/// edge-correction sums), keeping resumed runs bit-identical.
void save_collector_state(const ReuseTimeCollector& collector,
                          std::string& out);

/// Restores from bytes produced by save_collector_state. Returns false —
/// collector untouched or cleared-but-unusable, caller discards it — on a
/// truncated buffer, a config mismatch (stream_scale and the sampling
/// modulus are construction config, not run state), or impossible values.
bool load_collector_state(ReuseTimeCollector& collector,
                          ckpt::ByteReader& reader);

}  // namespace krr
