#include "baselines/statstack.h"

#include <algorithm>
#include <cmath>

#include "baselines/reuse_state.h"

namespace krr {

StatStackProfiler::StatStackProfiler(std::uint32_t sub_buckets)
    : collector_(sub_buckets) {}

void StatStackProfiler::access(const Request& req) { collector_.access(req.key); }

double StatStackProfiler::expected_stack_distance(std::uint64_t reuse_time) const {
  // sd(r) = sum_{j=1}^{r-1} P(rt > j), evaluated piecewise over the bins:
  // P is constant between bin bounds, so each segment contributes
  // P * segment_length.
  const double total = static_cast<double>(collector_.processed());
  if (total <= 0.0 || reuse_time <= 1) return 1.0;
  const double r = static_cast<double>(reuse_time);
  double greater = total;  // count with rt > j (cold counts as infinite)
  double prev = 0.0;
  double sd = 0.0;
  bool done = false;
  collector_.histogram().for_each_bin([&](std::uint64_t upper, double weight) {
    if (done) return;
    const double bound = std::min(static_cast<double>(upper), r - 1.0);
    if (bound > prev) {
      sd += (greater / total) * (bound - prev);
      prev = bound;
    }
    if (static_cast<double>(upper) >= r - 1.0) {
      done = true;
      return;
    }
    greater -= weight;
  });
  if (!done && r - 1.0 > prev) {
    sd += (greater / total) * (r - 1.0 - prev);
  }
  // The re-referenced object itself occupies one stack slot.
  return std::max(1.0, sd + 1.0);
}

MissRatioCurve StatStackProfiler::mrc() const {
  DistanceHistogram distances;
  const double total = static_cast<double>(collector_.processed());
  if (total <= 0.0) return MissRatioCurve{};
  collector_.histogram().for_each_bin([&](std::uint64_t upper, double weight) {
    const double sd = expected_stack_distance(upper);
    distances.record(
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(sd))),
        weight);
  });
  distances.record_infinite(collector_.cold_count());
  return distances.to_mrc();
}


void StatStackProfiler::save_state(std::string& out) const {
  save_collector_state(collector_, out);
}

bool StatStackProfiler::load_state(ckpt::ByteReader& reader) {
  return load_collector_state(collector_, reader);
}

}  // namespace krr
