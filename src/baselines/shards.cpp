#include "baselines/shards.h"

#include <cmath>

namespace krr {

ShardsProfiler::ShardsProfiler(double rate, bool adjustment, bool byte_granularity,
                               std::uint64_t histogram_quantum)
    : filter_(rate),
      adjustment_(adjustment),
      histogram_quantum_(histogram_quantum),
      stack_(byte_granularity, histogram_quantum) {}

void ShardsProfiler::access(const Request& req) {
  ++processed_;
  if (!filter_.sampled(req.key)) return;
  ++sampled_;
  stack_.access(req);
}

MissRatioCurve ShardsProfiler::mrc() const {
  // Rebuild the rescaled histogram from the sampled one: each sampled
  // distance d estimates an unsampled distance d/R.
  DistanceHistogram scaled(histogram_quantum_);
  const double factor = filter_.scale();
  for (const auto& [dist, weight] : stack_.histogram().sorted_bins()) {
    scaled.record(static_cast<std::uint64_t>(
                      std::llround(static_cast<double>(dist) * factor)),
                  weight);
  }
  if (adjustment_) {
    // SHARDS-adj (FAST '15, §3.2): the sample should contain N*R
    // references; the shortfall or excess — dominated by over/under-
    // represented hot objects, whose reuse distances are tiny — is applied
    // to the first histogram bucket. The correction may be negative; the
    // MRC construction clamps ratios into [0, 1].
    const double expected = static_cast<double>(processed_) * filter_.rate();
    const double diff = expected - static_cast<double>(sampled_);
    if (diff != 0.0) scaled.record(1, diff);
  }
  scaled.record_infinite(stack_.histogram().infinite_weight());
  return scaled.to_mrc();
}

}  // namespace krr
