#include "baselines/shards.h"

#include <cmath>
#include <utility>
#include <vector>

namespace krr {

ShardsProfiler::ShardsProfiler(double rate, bool adjustment, bool byte_granularity,
                               std::uint64_t histogram_quantum,
                               std::uint32_t shard_count)
    : filter_(rate),
      adjustment_(adjustment),
      stack_(byte_granularity, histogram_quantum),
      histogram_(histogram_quantum),
      shard_scale_(shard_count == 0 ? 1.0 : static_cast<double>(shard_count)) {}

void ShardsProfiler::access(const Request& req) {
  ++processed_;
  if (!filter_.sampled(req.key)) return;
  ++sampled_;
  sampled_weight_ += 1.0;
  const std::uint64_t distance = stack_.access(req);
  if (distance == 0) {
    histogram_.record_infinite();
    return;
  }
  // A sampled distance d estimates an unsampled distance d/R, at the rate
  // in force when the reference was seen (scaling at access time is what
  // lets the rate change mid-run); a shard-local distance additionally
  // estimates a global distance d*S.
  histogram_.record(static_cast<std::uint64_t>(
      std::llround(static_cast<double>(distance) * filter_.scale() *
                   shard_scale_)));
}

void ShardsProfiler::absorb(const ShardsProfiler& other) {
  histogram_.merge(other.histogram_);
  // Freeze both adjustment epochs at their current expected counts, then
  // add: the merged expected_sampled() equals the sum of the operands'.
  expected_base_ = expected_sampled() + other.expected_sampled();
  processed_ += other.processed_;
  processed_at_change_ = processed_;
  sampled_ += other.sampled_;
  sampled_weight_ += other.sampled_weight_;
  degradations_ += other.degradations_;
}

void ShardsProfiler::scale_mass(double factor) {
  expected_base_ = expected_sampled() * factor;
  processed_at_change_ = processed_;
  sampled_weight_ *= factor;
  histogram_.scale(factor);
}

bool ShardsProfiler::halve_rate() {
  if (filter_.threshold() <= 1) return false;
  expected_base_ = expected_sampled();
  processed_at_change_ = processed_;
  filter_.halve();
  stack_.retain([this](std::uint64_t key) { return filter_.sampled(key); });
  ++degradations_;
  return true;
}

Status ShardsProfiler::save_state(std::string* out) const {
  if (out == nullptr) return invalid_argument_error("save_state: null output");
  out->clear();
  ckpt::StateWriter writer(*out);
  std::string core;
  ckpt::append_u32(core, adjustment_ ? 1 : 0);
  ckpt::append_double(core, shard_scale_);
  ckpt::append_u64(core, filter_.modulus());
  ckpt::append_u64(core, filter_.threshold());
  ckpt::append_u64(core, filter_.halvings());
  ckpt::append_u64(core, processed_);
  ckpt::append_u64(core, sampled_);
  ckpt::append_double(core, sampled_weight_);
  ckpt::append_u64(core, degradations_);
  ckpt::append_double(core, expected_base_);
  ckpt::append_u64(core, processed_at_change_);
  const auto bins = histogram_.sorted_bins();
  ckpt::append_u64(core, bins.size());
  for (const auto& [dist, weight] : bins) {
    ckpt::append_u64(core, dist);
    ckpt::append_double(core, weight);
  }
  ckpt::append_double(core, histogram_.infinite_weight());
  ckpt::append_double(core, histogram_.total_weight());
  writer.add_section(ckpt::kSectionModelCore, core);
  std::string stack;
  stack_.save_state(stack);
  writer.add_section(ckpt::kSectionLruStack, stack);
  return Status::ok();
}

Status ShardsProfiler::load_state(const std::string& payload) {
  auto parsed = ckpt::StateReader::parse(payload);
  if (!parsed.is_ok()) return parsed.status();
  const ckpt::StateReader& sections = parsed.value();
  const std::string* core = sections.find(ckpt::kSectionModelCore);
  const std::string* stack = sections.find(ckpt::kSectionLruStack);
  if (core == nullptr || stack == nullptr) {
    return bad_record_error("SHARDS snapshot is missing a required section");
  }
  ckpt::ByteReader reader(*core);
  std::uint32_t adjustment_flag = 0;
  double shard_scale = 0.0;
  std::uint64_t filter_modulus = 0, filter_threshold = 0, filter_halvings = 0;
  std::uint64_t bin_count = 0;
  if (!reader.read_u32(&adjustment_flag) || !reader.read_double(&shard_scale) ||
      !reader.read_u64(&filter_modulus) || !reader.read_u64(&filter_threshold) ||
      !reader.read_u64(&filter_halvings)) {
    return truncated_error("SHARDS snapshot core section is truncated");
  }
  if ((adjustment_flag != 0) != adjustment_ || shard_scale != shard_scale_ ||
      filter_modulus != filter_.modulus()) {
    return bad_record_error(
        "SHARDS snapshot was taken with different profiler options");
  }
  std::uint64_t processed = 0, sampled = 0, degradations = 0;
  std::uint64_t processed_at_change = 0;
  double sampled_weight = 0.0, expected_base = 0.0;
  if (!reader.read_u64(&processed) || !reader.read_u64(&sampled) ||
      !reader.read_double(&sampled_weight) || !reader.read_u64(&degradations) ||
      !reader.read_double(&expected_base) ||
      !reader.read_u64(&processed_at_change) || !reader.read_u64(&bin_count)) {
    return truncated_error("SHARDS snapshot core section is truncated");
  }
  if (bin_count > reader.remaining() / 16) {
    return bad_record_error("SHARDS snapshot histogram length is impossible");
  }
  std::vector<std::pair<std::uint64_t, double>> bins;
  bins.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    std::uint64_t dist = 0;
    double weight = 0.0;
    if (!reader.read_u64(&dist) || !reader.read_double(&weight)) {
      return truncated_error("SHARDS snapshot histogram is truncated");
    }
    bins.emplace_back(dist, weight);
  }
  double infinite = 0.0, total = 0.0;
  if (!reader.read_double(&infinite) || !reader.read_double(&total)) {
    return truncated_error("SHARDS snapshot histogram is truncated");
  }
  if (!reader.exhausted()) {
    return bad_record_error("SHARDS snapshot core section has trailing bytes");
  }
  ckpt::ByteReader stack_reader(*stack);
  if (!stack_.load_state(stack_reader) || !stack_reader.exhausted()) {
    return bad_record_error("SHARDS snapshot stack section is corrupt");
  }
  filter_.restore(filter_threshold, filter_halvings);
  processed_ = processed;
  sampled_ = sampled;
  sampled_weight_ = sampled_weight;
  degradations_ = degradations;
  expected_base_ = expected_base;
  processed_at_change_ = processed_at_change;
  histogram_.restore(bins, infinite, total);
  return Status::ok();
}

std::uint64_t ShardsProfiler::space_overhead_bytes() const noexcept {
  return stack_.space_overhead_bytes() + histogram_.bin_count() * 16;
}

MissRatioCurve ShardsProfiler::mrc() const {
  DistanceHistogram adjusted = histogram_;
  if (adjustment_) {
    // SHARDS-adj (FAST '15, §3.2): the sample should contain N*R
    // references; the shortfall or excess — dominated by over/under-
    // represented hot objects, whose reuse distances are tiny — is applied
    // to the first histogram bucket. The correction may be negative; the
    // MRC construction clamps ratios into [0, 1].
    const double diff = expected_sampled() - sampled_weight_;
    if (diff != 0.0) adjusted.record(1, diff);
  }
  return adjusted.to_mrc();
}

}  // namespace krr
