#include "baselines/shards.h"

#include <cmath>

namespace krr {

ShardsProfiler::ShardsProfiler(double rate, bool adjustment, bool byte_granularity,
                               std::uint64_t histogram_quantum,
                               std::uint32_t shard_count)
    : filter_(rate),
      adjustment_(adjustment),
      stack_(byte_granularity, histogram_quantum),
      histogram_(histogram_quantum),
      shard_scale_(shard_count == 0 ? 1.0 : static_cast<double>(shard_count)) {}

void ShardsProfiler::access(const Request& req) {
  ++processed_;
  if (!filter_.sampled(req.key)) return;
  ++sampled_;
  sampled_weight_ += 1.0;
  const std::uint64_t distance = stack_.access(req);
  if (distance == 0) {
    histogram_.record_infinite();
    return;
  }
  // A sampled distance d estimates an unsampled distance d/R, at the rate
  // in force when the reference was seen (scaling at access time is what
  // lets the rate change mid-run); a shard-local distance additionally
  // estimates a global distance d*S.
  histogram_.record(static_cast<std::uint64_t>(
      std::llround(static_cast<double>(distance) * filter_.scale() *
                   shard_scale_)));
}

void ShardsProfiler::absorb(const ShardsProfiler& other) {
  histogram_.merge(other.histogram_);
  // Freeze both adjustment epochs at their current expected counts, then
  // add: the merged expected_sampled() equals the sum of the operands'.
  expected_base_ = expected_sampled() + other.expected_sampled();
  processed_ += other.processed_;
  processed_at_change_ = processed_;
  sampled_ += other.sampled_;
  sampled_weight_ += other.sampled_weight_;
  degradations_ += other.degradations_;
}

void ShardsProfiler::scale_mass(double factor) {
  expected_base_ = expected_sampled() * factor;
  processed_at_change_ = processed_;
  sampled_weight_ *= factor;
  histogram_.scale(factor);
}

bool ShardsProfiler::halve_rate() {
  if (filter_.threshold() <= 1) return false;
  expected_base_ = expected_sampled();
  processed_at_change_ = processed_;
  filter_.halve();
  stack_.retain([this](std::uint64_t key) { return filter_.sampled(key); });
  ++degradations_;
  return true;
}

std::uint64_t ShardsProfiler::space_overhead_bytes() const noexcept {
  return stack_.space_overhead_bytes() + histogram_.bin_count() * 16;
}

MissRatioCurve ShardsProfiler::mrc() const {
  DistanceHistogram adjusted = histogram_;
  if (adjustment_) {
    // SHARDS-adj (FAST '15, §3.2): the sample should contain N*R
    // references; the shortfall or excess — dominated by over/under-
    // represented hot objects, whose reuse distances are tiny — is applied
    // to the first histogram bucket. The correction may be negative; the
    // MRC construction clamps ratios into [0, 1].
    const double diff = expected_sampled() - sampled_weight_;
    if (diff != 0.0) adjusted.record(1, diff);
  }
  return adjusted.to_mrc();
}

}  // namespace krr
