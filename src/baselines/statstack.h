#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/reuse_histogram.h"

namespace krr {

/// StatStack (Eklov & Hagersten, ISPASS '10; §6.1): converts the reuse-time
/// distribution into an *expected stack distance* distribution for exact
/// LRU. For a reuse with reuse time r, the expected number of distinct
/// objects among the r-1 intervening references is
///
///     sd(r) = sum_{j=1}^{r-1} P(reuse time > j)
///
/// (an intervening reference contributes a distinct object iff its own
/// next reuse falls beyond our reuse point). The model therefore assumes
/// reuse times are i.i.d. — exact for IRM traces, approximate otherwise.
class StatStackProfiler {
 public:
  explicit StatStackProfiler(std::uint32_t sub_buckets = 256);

  /// Processes one reference.
  void access(const Request& req);

  /// Expected-stack-distance MRC for exact LRU.
  MissRatioCurve mrc() const;

  /// The sd(r) mapping itself (exposed for tests): expected stack distance
  /// of a reuse with reuse time r.
  double expected_stack_distance(std::uint64_t reuse_time) const;

  std::uint64_t processed() const noexcept { return collector_.processed(); }
  std::size_t distinct_objects() const noexcept {
    return collector_.distinct_objects();
  }

  /// Memory governance: spatially down-samples the tracked object set
  /// (primary step) or coarsens the reuse-time histogram (secondary).
  bool halve_sample() { return collector_.halve_sample(); }
  bool coarsen_histogram() { return collector_.coarsen_histogram(); }
  std::uint64_t space_overhead_bytes() const noexcept {
    return collector_.space_overhead_bytes();
  }
  double sampling_rate() const noexcept { return collector_.sampling_rate(); }
  std::size_t histogram_bins() const noexcept {
    return collector_.histogram().bin_count();
  }

  /// Checkpoint support: flat collector bytes (baselines/reuse_state.h).
  void save_state(std::string& out) const;
  bool load_state(ckpt::ByteReader& reader);

 private:
  ReuseTimeCollector collector_;
};

}  // namespace krr
