#include "baselines/priority_stack.h"

#include <queue>
#include <set>
#include <stdexcept>
#include <tuple>

namespace krr {

std::string to_string(PriorityPolicy policy) {
  switch (policy) {
    case PriorityPolicy::kLru:
      return "lru";
    case PriorityPolicy::kMru:
      return "mru";
    case PriorityPolicy::kLfu:
      return "lfu";
    case PriorityPolicy::kOpt:
      return "opt";
  }
  return "unknown";
}

PriorityMattsonStack::PriorityMattsonStack(PriorityPolicy policy) : policy_(policy) {}

bool PriorityMattsonStack::resident_wins(std::uint64_t resident,
                                         std::uint64_t carried) const {
  const ObjectState& r = state_.at(resident);
  const ObjectState& c = state_.at(carried);
  switch (policy_) {
    case PriorityPolicy::kLru:
      // More recently used stays; the carried object always came from
      // above, so under LRU it always wins (full downshift).
      return r.last_access > c.last_access;
    case PriorityPolicy::kMru:
      // MRU keeps the *least* recently used in small caches.
      return r.last_access < c.last_access;
    case PriorityPolicy::kLfu:
      // Higher frequency stays; recency breaks ties.
      if (r.frequency != c.frequency) return r.frequency > c.frequency;
      return r.last_access > c.last_access;
    case PriorityPolicy::kOpt:
      // The object reused sooner stays; among never-reused objects any
      // consistent order is optimal — recency keeps it deterministic.
      if (r.next_use != c.next_use) return r.next_use < c.next_use;
      return r.last_access > c.last_access;
  }
  return false;
}

std::uint64_t PriorityMattsonStack::access(const Request& req, std::uint64_t next_use) {
  ++time_;
  std::uint64_t phi;
  bool cold = false;
  auto it = position_.find(req.key);
  if (it == position_.end()) {
    cold = true;
    stack_.push_back(req.key);
    position_.emplace(req.key, stack_.size() - 1);
    phi = stack_.size();
    histogram_.record_infinite();
  } else {
    phi = it->second + 1;
    histogram_.record(phi);
  }
  // Refresh the referenced object's priority *before* the update (its new
  // priority takes effect now; it is not part of the carry walk).
  ObjectState& st = state_[req.key];
  st.last_access = time_;
  ++st.frequency;
  st.next_use = next_use;

  if (phi > 1) {
    std::uint64_t carried = stack_[0];
    for (std::uint64_t i = 2; i < phi; ++i) {
      if (resident_wins(stack_[i - 1], carried)) continue;
      std::swap(carried, stack_[i - 1]);
      position_[stack_[i - 1]] = i - 1;
    }
    stack_[phi - 1] = carried;
    position_[carried] = phi - 1;
    stack_[0] = req.key;
    position_[req.key] = 0;
  }
  return cold ? 0 : phi;
}

std::size_t PriorityMattsonStack::evict_bottom(std::size_t count) {
  std::size_t evicted = 0;
  while (evicted < count && !stack_.empty()) {
    const std::uint64_t key = stack_.back();
    stack_.pop_back();
    position_.erase(key);
    state_.erase(key);
    ++evicted;
  }
  return evicted;
}

std::uint64_t PriorityMattsonStack::space_overhead_bytes() const noexcept {
  return stack_.size() * sizeof(std::uint64_t) +
         position_.size() * (sizeof(std::uint64_t) + sizeof(std::size_t) + 32) +
         state_.size() * (sizeof(std::uint64_t) + sizeof(ObjectState) + 32) +
         histogram_.bin_count() * 16;
}

std::vector<std::uint64_t> preprocess_next_uses(const std::vector<Request>& trace) {
  std::vector<std::uint64_t> next(trace.size(), PriorityMattsonStack::kNever);
  std::unordered_map<std::uint64_t, std::uint64_t> upcoming;
  upcoming.reserve(trace.size() / 2);
  for (std::size_t i = trace.size(); i-- > 0;) {
    auto [it, inserted] = upcoming.try_emplace(trace[i].key, i);
    if (!inserted) {
      next[i] = it->second;
      it->second = i;
    }
  }
  return next;
}

double simulate_opt_miss_ratio(const std::vector<Request>& trace,
                               std::uint64_t capacity) {
  if (capacity == 0) throw std::invalid_argument("OPT capacity must be > 0");
  const auto next = preprocess_next_uses(trace);
  std::unordered_map<std::uint64_t, std::uint64_t> resident;  // key -> next use
  // Max-heap of (next use, key) with lazy invalidation.
  std::priority_queue<std::pair<std::uint64_t, std::uint64_t>> heap;
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint64_t key = trace[i].key;
    auto it = resident.find(key);
    if (it != resident.end()) {
      it->second = next[i];
      heap.emplace(next[i], key);
      continue;
    }
    ++misses;
    if (resident.size() >= capacity) {
      for (;;) {
        const auto [nu, victim] = heap.top();
        heap.pop();
        auto vit = resident.find(victim);
        if (vit != resident.end() && vit->second == nu) {
          resident.erase(vit);
          break;
        }
      }
    }
    resident.emplace(key, next[i]);
    heap.emplace(next[i], key);
  }
  return static_cast<double>(misses) / static_cast<double>(trace.size());
}

double simulate_lfu_miss_ratio(const std::vector<Request>& trace,
                               std::uint64_t capacity) {
  if (capacity == 0) throw std::invalid_argument("LFU capacity must be > 0");
  struct State {
    std::uint64_t frequency = 0;
    std::uint64_t last_access = 0;
    bool resident = false;
  };
  std::unordered_map<std::uint64_t, State> objects;  // frequency persists
  // Eviction order: lowest (frequency, last_access) first.
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> queue;
  std::uint64_t time = 0;
  std::uint64_t misses = 0;
  std::size_t resident_count = 0;
  for (const Request& r : trace) {
    ++time;
    State& st = objects[r.key];
    if (st.resident) {
      queue.erase({st.frequency, st.last_access, r.key});
    } else {
      ++misses;
      if (resident_count >= capacity) {
        const auto victim = *queue.begin();
        queue.erase(queue.begin());
        objects[std::get<2>(victim)].resident = false;
        --resident_count;
      }
      st.resident = true;
      ++resident_count;
    }
    ++st.frequency;
    st.last_access = time;
    queue.insert({st.frequency, st.last_access, r.key});
  }
  return static_cast<double>(misses) / static_cast<double>(trace.size());
}

}  // namespace krr
