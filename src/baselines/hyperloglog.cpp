#include "baselines/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace krr {

HyperLogLog::HyperLogLog(std::uint32_t p) : p_(p) {
  if (p < 4 || p > 18) throw std::invalid_argument("HLL precision must be in [4,18]");
  registers_.assign(std::size_t{1} << p, 0);
}

void HyperLogLog::add(std::uint64_t hashed_key) {
  const std::size_t index = hashed_key >> (64 - p_);
  // Rank of the first set bit in the remaining 64-p bits (1-based); an
  // all-zero remainder gets the maximum rank.
  const std::uint64_t rest = hashed_key << p_;
  const std::uint8_t rank =
      rest == 0 ? static_cast<std::uint8_t>(64 - p_ + 1)
                : static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double alpha =
      registers_.size() == 16 ? 0.673
      : registers_.size() == 32 ? 0.697
      : registers_.size() == 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros != 0) {
    // Small-range correction: linear counting on empty registers.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.p_ != p_) throw std::invalid_argument("HLL precision mismatch in merge");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

bool HyperLogLog::empty() const {
  return std::all_of(registers_.begin(), registers_.end(),
                     [](std::uint8_t r) { return r == 0; });
}

}  // namespace krr
