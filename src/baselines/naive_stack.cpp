#include "baselines/naive_stack.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace krr {

GenericMattsonStack::GenericMattsonStack(StayProbabilityFn stay_probability,
                                         std::uint64_t seed)
    : stay_probability_(std::move(stay_probability)), rng_(seed), histogram_(1) {
  if (!stay_probability_) {
    throw std::invalid_argument("stay probability function must be set");
  }
}

GenericMattsonStack GenericMattsonStack::lru(std::uint64_t seed) {
  return GenericMattsonStack([](std::uint64_t) { return 0.0; }, seed);
}

GenericMattsonStack GenericMattsonStack::krr(double k, std::uint64_t seed) {
  if (k < 1.0) throw std::invalid_argument("KRR exponent must be >= 1");
  return GenericMattsonStack(
      [k](std::uint64_t i) {
        return std::pow(static_cast<double>(i - 1) / static_cast<double>(i), k);
      },
      seed);
}

GenericMattsonStack GenericMattsonStack::rr(std::uint64_t seed) {
  return krr(1.0, seed);
}

std::uint64_t GenericMattsonStack::access(const Request& req) {
  std::uint64_t phi;
  bool cold = false;
  auto it = position_.find(req.key);
  if (it == position_.end()) {
    cold = true;
    // Cold reference: attach at the stack end before the update (Alg. 1's
    // convention), then record an infinite distance.
    stack_.push_back(req.key);
    position_.emplace(req.key, stack_.size() - 1);
    phi = stack_.size();
    histogram_.record_infinite();
  } else {
    phi = it->second + 1;
    histogram_.record(phi);
  }
  if (phi == 1) return cold ? 0 : 1;
  // Linear Mattson update: carry y starts as the old stack top; at each
  // position the resident either stays (carry passes by) or is displaced
  // (carry lands, displaced object becomes the new carry). Positions 1 and
  // phi always swap (Eq. 2.1a/2.1c).
  std::uint64_t carry = stack_[0];
  for (std::uint64_t i = 2; i < phi; ++i) {
    const double stay = stay_probability_(i);
    if (stay > 0.0 && rng_.next_double() < stay) continue;
    std::swap(carry, stack_[i - 1]);
    position_[stack_[i - 1]] = i - 1;
  }
  stack_[phi - 1] = carry;
  position_[carry] = phi - 1;
  stack_[0] = req.key;
  position_[req.key] = 0;
  return cold ? 0 : phi;
}

std::size_t GenericMattsonStack::evict_bottom(std::size_t count) {
  std::size_t evicted = 0;
  while (evicted < count && !stack_.empty()) {
    position_.erase(stack_.back());
    stack_.pop_back();
    ++evicted;
  }
  return evicted;
}

std::uint64_t GenericMattsonStack::space_overhead_bytes() const noexcept {
  return stack_.size() * sizeof(std::uint64_t) +
         position_.size() * (sizeof(std::uint64_t) + sizeof(std::size_t) + 32) +
         histogram_.bin_count() * 16;
}

}  // namespace krr
