#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {

/// MIMIR (Saemundsson et al., SoCC '14; §6.1): approximate exact-LRU stack
/// distances from a coarse-grained bucketed ghost list. The LRU stack is
/// partitioned into B variable-size buckets ordered newest to oldest; a hit
/// in bucket i has a stack distance bracketed by the sizes of the buckets
/// above it, estimated here at the bracket midpoint. When the newest
/// bucket grows beyond the average (n/B), a fresh bucket opens (the
/// ROUNDER aging scheme); the two oldest buckets merge when the bucket
/// count exceeds B.
class MimirProfiler {
 public:
  /// buckets: the number of ghost-list buckets B (the paper reports B=128
  /// gives very accurate MRCs).
  explicit MimirProfiler(std::uint32_t buckets = 128,
                         std::uint64_t histogram_quantum = 1);

  /// Processes one reference.
  void access(const Request& req);

  MissRatioCurve mrc() const { return histogram_.to_mrc(); }
  const DistanceHistogram& histogram() const noexcept { return histogram_; }

  std::size_t tracked_objects() const noexcept { return bucket_of_.size(); }
  std::size_t bucket_count() const noexcept { return sizes_.size(); }
  std::uint64_t processed() const noexcept { return processed_; }

  /// Memory governance: drops the oldest ghost-list bucket and every key
  /// it holds (future references to them read as cold — a conservative
  /// error confined to the largest cache sizes). Returns false once a
  /// single bucket remains.
  bool evict_oldest_bucket();

  /// Times evict_oldest_bucket() actually dropped a bucket.
  std::uint64_t degradation_events() const noexcept { return degradations_; }

  /// Estimated resident bytes (ghost map + bucket sizes + histogram).
  std::uint64_t space_overhead_bytes() const noexcept;

 private:
  void open_new_bucket();

  std::uint32_t max_buckets_;
  DistanceHistogram histogram_;
  // Buckets are identified by a monotonically increasing id; sizes_ holds
  // the live buckets' object counts, newest at the back. front_id_ is the
  // id of sizes_.front() (the oldest live bucket).
  std::deque<std::uint64_t> sizes_;
  std::uint64_t next_id_ = 0;
  std::uint64_t front_id_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> bucket_of_;  // key -> bucket id
  std::uint64_t processed_ = 0;
  std::uint64_t degradations_ = 0;
};

}  // namespace krr
