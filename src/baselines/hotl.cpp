#include "baselines/hotl.h"

#include <algorithm>
#include <cmath>

#include "baselines/reuse_state.h"

namespace krr {

HotlProfiler::HotlProfiler(std::uint32_t sub_buckets) : collector_(sub_buckets) {}

void HotlProfiler::access(const Request& req) { collector_.access(req.key); }

std::vector<std::uint64_t> HotlProfiler::sorted_first_times() const {
  std::vector<std::uint64_t> times;
  times.reserve(collector_.first_access_times().size());
  for (const auto& [key, ft] : collector_.first_access_times()) {
    times.push_back(ft);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<std::uint64_t> HotlProfiler::sorted_reverse_last_times() const {
  const std::uint64_t n = collector_.processed();
  std::vector<std::uint64_t> times;
  times.reserve(collector_.last_access_times().size());
  for (const auto& [key, last] : collector_.last_access_times()) {
    times.push_back(n - last + 1);
  }
  std::sort(times.begin(), times.end());
  return times;
}

double HotlProfiler::footprint_with(
    std::uint64_t w, const std::vector<std::uint64_t>& first_times,
    const std::vector<std::uint64_t>& reverse_last_times) const {
  const std::uint64_t n = collector_.processed();
  // Under governance the collector tracks a spatial sample; m and the
  // per-object edge corrections scale by 1/R (exactly 1.0 unsampled),
  // while the histogram term already carries scaled weights.
  const double s = collector_.scale();
  const double m = collector_.estimated_distinct();
  if (n == 0 || w == 0) return 0.0;
  if (w >= n) return m;
  double deficit = 0.0;
  // Reuse-time term: an object whose consecutive accesses are rt > w apart
  // is absent from rt - w of the windows between them.
  collector_.histogram().for_each_bin([&](std::uint64_t upper, double weight) {
    if (upper > w) deficit += (static_cast<double>(upper - w)) * weight;
  });
  // Window-edge corrections: an object first accessed at ft is absent from
  // the ft - w windows that end before ft; symmetrically for the reverse
  // last-access time.
  for (const std::uint64_t ft : first_times) {
    if (ft > w) deficit += static_cast<double>(ft - w) * s;
  }
  for (const std::uint64_t lt : reverse_last_times) {
    if (lt > w) deficit += static_cast<double>(lt - w) * s;
  }
  const double windows = static_cast<double>(n - w + 1);
  return std::clamp(m - deficit / windows, 0.0, m);
}

double HotlProfiler::footprint(std::uint64_t w) const {
  return footprint_with(w, sorted_first_times(), sorted_reverse_last_times());
}

MissRatioCurve HotlProfiler::mrc(std::size_t n_points) const {
  MissRatioCurve curve;
  const std::uint64_t n = collector_.processed();
  if (n == 0) return curve;
  const double total = static_cast<double>(n);
  curve.add_point(0.0, 1.0);
  // Logarithmically spaced window lengths cover all cache-size scales.
  std::vector<std::uint64_t> windows;
  const double log_max = std::log(static_cast<double>(n));
  for (std::size_t i = 1; i <= n_points; ++i) {
    const double lw = log_max * static_cast<double>(i) / static_cast<double>(n_points);
    const auto w = static_cast<std::uint64_t>(std::llround(std::exp(lw)));
    if (windows.empty() || w > windows.back()) windows.push_back(w);
  }
  const std::vector<std::uint64_t> first_times = sorted_first_times();
  const std::vector<std::uint64_t> reverse_last_times =
      sorted_reverse_last_times();
  for (std::uint64_t w : windows) {
    const double c = footprint_with(w, first_times, reverse_last_times);
    // mr(fp(w)) = P(rt > w) + cold share: the fraction of references whose
    // reuse window exceeds w and therefore miss in a cache holding fp(w).
    const double mr =
        (collector_.histogram().tail_weight(w) + collector_.cold_count()) / total;
    curve.add_point(c, mr);
  }
  return curve;
}

void HotlProfiler::save_state(std::string& out) const {
  save_collector_state(collector_, out);
}

bool HotlProfiler::load_state(ckpt::ByteReader& reader) {
  return load_collector_state(collector_, reader);
}

}  // namespace krr
