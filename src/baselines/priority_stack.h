#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {

/// Deterministic stack policies from the NSP class (Bilardi et al., CF '11;
/// related work §6.2): an object's priority changes only when it is
/// accessed, which makes the policy a Mattson stack algorithm and its MRC
/// constructible in one pass.
enum class PriorityPolicy : std::uint8_t {
  kLru = 0,  ///< priority = last access time (reference implementation)
  kMru = 1,  ///< evict the most recently used (stack keeps the *least* recent)
  kLfu = 2,  ///< priority = access frequency, ties broken by recency
  kOpt = 3,  ///< Belady's MIN: priority = soonness of the next use
             ///< (requires the next-use preprocessing pass)
};

std::string to_string(PriorityPolicy policy);

/// Mattson's generic stack for deterministic total-order priorities
/// (Fig. 2.1 with a comparator instead of a coin): one pass produces the
/// exact stack-distance histogram — and hence the exact MRC at *every*
/// cache size — for any policy satisfying the inclusion property.
///
/// The update is the textbook O(M) scan; this class is a reference oracle
/// and analysis tool, not a fast profiler.
///
/// For kOpt, the caller must announce each access's next-use index via the
/// two-argument access(); `preprocess_next_uses` computes them.
class PriorityMattsonStack {
 public:
  explicit PriorityMattsonStack(PriorityPolicy policy);

  /// Processes one reference; returns its stack distance (0 when cold).
  /// next_use: for kOpt, the time of this key's next reference (or
  /// kNever); ignored by the other policies.
  static constexpr std::uint64_t kNever = ~0ULL;
  std::uint64_t access(const Request& req, std::uint64_t next_use = kNever);

  const DistanceHistogram& histogram() const noexcept { return histogram_; }
  MissRatioCurve mrc() const { return histogram_.to_mrc(); }

  PriorityPolicy policy() const noexcept { return policy_; }
  std::size_t depth() const noexcept { return stack_.size(); }

  /// Keys from stack top to bottom (diagnostics).
  const std::vector<std::uint64_t>& stack() const noexcept { return stack_; }

  /// Memory governance (Mattson bounded eviction): drops up to `count`
  /// objects from the stack bottom, including their priority state — a
  /// re-reference reads as cold (for kLfu this also forgets the evicted
  /// object's frequency, so the degraded stack is no longer "perfect"
  /// LFU above the retained depth). Returns the number actually evicted.
  std::size_t evict_bottom(std::size_t count);

  /// Estimated resident bytes (stack + position/state maps + histogram).
  std::uint64_t space_overhead_bytes() const noexcept;

 private:
  struct ObjectState {
    std::uint64_t last_access = 0;
    std::uint64_t frequency = 0;
    std::uint64_t next_use = kNever;
  };

  /// True if the resident at stack position i outranks the carried object
  /// (i.e. maxPriority keeps the resident).
  bool resident_wins(std::uint64_t resident, std::uint64_t carried) const;

  PriorityPolicy policy_;
  DistanceHistogram histogram_;
  std::vector<std::uint64_t> stack_;  // keys; index 0 = top
  std::unordered_map<std::uint64_t, std::size_t> position_;
  std::unordered_map<std::uint64_t, ObjectState> state_;
  std::uint64_t time_ = 0;
};

/// Next-use times for OPT: out[i] is the index of the next reference to
/// trace[i].key after i (or PriorityMattsonStack::kNever).
std::vector<std::uint64_t> preprocess_next_uses(const std::vector<Request>& trace);

/// Exact Belady/MIN (OPT) cache simulation at one capacity — the oracle
/// the OPT stack is validated against. Object-count capacities only
/// (sizes are ignored; every object costs one slot).
double simulate_opt_miss_ratio(const std::vector<Request>& trace,
                               std::uint64_t capacity);

/// Exact LFU cache simulation (ties broken by recency, frequency persists
/// for evicted objects — "perfect LFU"), matching the kLfu stack policy.
double simulate_lfu_miss_ratio(const std::vector<Request>& trace,
                               std::uint64_t capacity);

}  // namespace krr
