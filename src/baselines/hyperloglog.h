#pragma once

#include <cstdint>
#include <vector>

namespace krr {

/// HyperLogLog cardinality sketch (Flajolet et al. 2007), the probabilistic
/// counter Counter Stacks builds on. Standard-error ~ 1.04/sqrt(2^p).
///
/// Keys are expected to be pre-hashed 64-bit values (use hash64); the
/// sketch splits the hash into a p-bit register index and uses the leading-
/// zero rank of the remainder.
class HyperLogLog {
 public:
  /// p in [4, 18]: 2^p single-byte registers.
  explicit HyperLogLog(std::uint32_t p = 12);

  /// Inserts a (hashed) key.
  void add(std::uint64_t hashed_key);

  /// Estimated number of distinct keys added, with the standard small-range
  /// (linear counting) correction.
  double estimate() const;

  /// Merges another sketch of the same precision (register-wise max).
  void merge(const HyperLogLog& other);

  std::uint32_t precision() const noexcept { return p_; }
  std::size_t register_count() const noexcept { return registers_.size(); }

  /// True if no key has ever been added.
  bool empty() const;

 private:
  std::uint32_t p_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace krr
