#pragma once

#include <cstdint>
#include <deque>

#include "baselines/hyperloglog.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {

/// Counter Stacks (Wires et al., OSDI '14): approximate *exact-LRU* MRC
/// construction from a stack of probabilistic cardinality counters
/// (§6.1). A new counter starts every `counter_interval` requests; each
/// request is added to every live counter. A counter started at time s
/// reports |distinct keys in (s, now]|; a request that is new to a young
/// counter but already known to the next older one has an LRU stack
/// distance bracketed by the two counters' counts, so per-interval count
/// deltas yield a stack-distance histogram.
///
/// Pruning keeps memory logarithmic: when an older counter's count is
/// within (1 + prune_delta) of its younger neighbour, the two windows have
/// effectively converged and the younger one is dropped.
class CounterStacksProfiler {
 public:
  /// counter_interval: requests between counter starts (also the batch
  /// granularity of the histogram updates — smaller is more accurate and
  /// more expensive). hll_precision: register-count exponent per counter.
  explicit CounterStacksProfiler(std::uint64_t counter_interval = 1000,
                                 double prune_delta = 0.02,
                                 std::uint32_t hll_precision = 12);

  /// Processes one reference.
  void access(const Request& req);

  /// Approximate exact-LRU MRC from the accumulated histogram. Call at the
  /// end of the trace (flushes the current partial interval).
  MissRatioCurve mrc() const;

  std::uint64_t processed() const noexcept { return processed_; }
  std::size_t live_counters() const noexcept { return counters_.size(); }

  /// Memory governance: inflates the prune tolerance until at least one
  /// live counter converges away. Returns false once the stack is down to
  /// two counters (the oldest plus the in-flight one — the minimum that
  /// still yields a curve) or no further convergence is possible.
  bool degrade();

  /// Times degrade() actually removed counters.
  std::uint64_t degradation_events() const noexcept { return degradations_; }

  /// Estimated resident bytes: one byte-register array per live counter
  /// plus the histogram.
  std::uint64_t space_overhead_bytes() const noexcept;

 private:
  struct Counter {
    HyperLogLog sketch;
    double last_count = 0.0;   // estimate at the previous interval boundary
    double delta = 0.0;        // increase during the current interval
  };

  void close_interval();
  std::size_t prune_converged();

  std::uint64_t counter_interval_;
  double prune_delta_;
  std::uint32_t hll_precision_;
  std::uint64_t processed_ = 0;
  std::uint64_t in_interval_ = 0;
  std::uint64_t degradations_ = 0;
  std::deque<Counter> counters_;  // front = oldest
  DistanceHistogram histogram_;
};

}  // namespace krr
