#include "baselines/olken_tree.h"

namespace krr {

OlkenTreeProfiler::OlkenTreeProfiler(bool byte_granularity,
                                     std::uint64_t histogram_quantum,
                                     std::uint64_t seed)
    : byte_granularity_(byte_granularity),
      histogram_(histogram_quantum),
      rng_(seed) {}

void OlkenTreeProfiler::pull(std::uint32_t n) {
  Node& node = nodes_[n];
  node.size = 1 + size_of(node.left) + size_of(node.right);
  node.subtree_weight = node.weight + weight_of(node.left) + weight_of(node.right);
}

void OlkenTreeProfiler::split(std::uint32_t n, std::uint64_t t, std::uint32_t& left,
                              std::uint32_t& right) {
  if (n == kNil) {
    left = right = kNil;
    return;
  }
  if (nodes_[n].time <= t) {
    left = n;
    split(nodes_[n].right, t, nodes_[n].right, right);
    pull(n);
  } else {
    right = n;
    split(nodes_[n].left, t, left, nodes_[n].left);
    pull(n);
  }
}

std::uint32_t OlkenTreeProfiler::merge(std::uint32_t a, std::uint32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].heap_priority > nodes_[b].heap_priority) {
    nodes_[a].right = merge(nodes_[a].right, b);
    pull(a);
    return a;
  }
  nodes_[b].left = merge(a, nodes_[b].left);
  pull(b);
  return b;
}

std::uint32_t OlkenTreeProfiler::alloc(std::uint64_t t, std::uint32_t weight) {
  std::uint32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    nodes_.emplace_back();
    n = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  nodes_[n] = Node{t, rng_(), weight, 1, kNil, kNil, weight};
  return n;
}

void OlkenTreeProfiler::insert(std::uint64_t t, std::uint32_t weight) {
  // Times are unique and inserted in increasing order, so the new node is
  // the rightmost; a split at t-1 keeps the code general for reuse.
  std::uint32_t left, right;
  split(root_, t, left, right);
  root_ = merge(merge(left, alloc(t, weight)), right);
}

void OlkenTreeProfiler::erase(std::uint64_t t) {
  std::uint32_t left, mid, right;
  split(root_, t - 1, left, mid);
  std::uint32_t target;
  split(mid, t, target, right);
  if (target != kNil) free_.push_back(target);
  root_ = merge(left, right);
}

std::uint64_t OlkenTreeProfiler::weight_after(std::uint64_t t) {
  std::uint32_t left, right;
  split(root_, t, left, right);
  const std::uint64_t result = weight_of(right);
  root_ = merge(left, right);
  return result;
}

std::uint64_t OlkenTreeProfiler::access(const Request& req) {
  ++time_;
  const std::uint32_t weight = byte_granularity_ ? req.size : 1;
  auto it = last_access_.find(req.key);
  if (it == last_access_.end()) {
    histogram_.record_infinite();
    insert(time_, weight);
    last_access_.emplace(req.key, ObjectState{time_, req.size});
    return 0;
  }
  const std::uint64_t above = weight_after(it->second.last_time);
  const std::uint64_t distance = above + weight;
  histogram_.record(distance);
  erase(it->second.last_time);
  insert(time_, weight);
  it->second.last_time = time_;
  it->second.size = req.size;
  return distance;
}

void OlkenTreeProfiler::remove(std::uint64_t key) {
  auto it = last_access_.find(key);
  if (it == last_access_.end()) return;
  erase(it->second.last_time);
  last_access_.erase(it);
}

}  // namespace krr
