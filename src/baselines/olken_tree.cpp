#include "baselines/olken_tree.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace krr {

OlkenTreeProfiler::OlkenTreeProfiler(bool byte_granularity,
                                     std::uint64_t histogram_quantum,
                                     std::uint64_t seed)
    : byte_granularity_(byte_granularity),
      histogram_(histogram_quantum),
      rng_(seed) {}

void OlkenTreeProfiler::pull(std::uint32_t n) {
  Node& node = nodes_[n];
  node.size = 1 + size_of(node.left) + size_of(node.right);
  node.subtree_weight = node.weight + weight_of(node.left) + weight_of(node.right);
}

void OlkenTreeProfiler::split(std::uint32_t n, std::uint64_t t, std::uint32_t& left,
                              std::uint32_t& right) {
  if (n == kNil) {
    left = right = kNil;
    return;
  }
  if (nodes_[n].time <= t) {
    left = n;
    split(nodes_[n].right, t, nodes_[n].right, right);
    pull(n);
  } else {
    right = n;
    split(nodes_[n].left, t, left, nodes_[n].left);
    pull(n);
  }
}

std::uint32_t OlkenTreeProfiler::merge(std::uint32_t a, std::uint32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].heap_priority > nodes_[b].heap_priority) {
    nodes_[a].right = merge(nodes_[a].right, b);
    pull(a);
    return a;
  }
  nodes_[b].left = merge(a, nodes_[b].left);
  pull(b);
  return b;
}

std::uint32_t OlkenTreeProfiler::alloc(std::uint64_t t, std::uint32_t weight) {
  std::uint32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    nodes_.emplace_back();
    n = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  nodes_[n] = Node{t, rng_(), weight, 1, kNil, kNil, weight};
  return n;
}

void OlkenTreeProfiler::insert(std::uint64_t t, std::uint32_t weight) {
  // Times are unique and inserted in increasing order, so the new node is
  // the rightmost; a split at t-1 keeps the code general for reuse.
  std::uint32_t left, right;
  split(root_, t, left, right);
  root_ = merge(merge(left, alloc(t, weight)), right);
}

void OlkenTreeProfiler::erase(std::uint64_t t) {
  std::uint32_t left, mid, right;
  split(root_, t - 1, left, mid);
  std::uint32_t target;
  split(mid, t, target, right);
  if (target != kNil) free_.push_back(target);
  root_ = merge(left, right);
}

std::uint64_t OlkenTreeProfiler::weight_after(std::uint64_t t) {
  std::uint32_t left, right;
  split(root_, t, left, right);
  const std::uint64_t result = weight_of(right);
  root_ = merge(left, right);
  return result;
}

std::uint64_t OlkenTreeProfiler::access(const Request& req) {
  ++time_;
  const std::uint32_t weight = byte_granularity_ ? req.size : 1;
  auto it = last_access_.find(req.key);
  if (it == last_access_.end()) {
    histogram_.record_infinite();
    insert(time_, weight);
    last_access_.emplace(req.key, ObjectState{time_, req.size});
    return 0;
  }
  const std::uint64_t above = weight_after(it->second.last_time);
  const std::uint64_t distance = above + weight;
  histogram_.record(distance);
  erase(it->second.last_time);
  insert(time_, weight);
  it->second.last_time = time_;
  it->second.size = req.size;
  return distance;
}

void OlkenTreeProfiler::remove(std::uint64_t key) {
  auto it = last_access_.find(key);
  if (it == last_access_.end()) return;
  erase(it->second.last_time);
  last_access_.erase(it);
}

std::uint64_t OlkenTreeProfiler::evict_oldest(std::size_t count) {
  if (count == 0 || last_access_.empty()) return 0;
  count = std::min(count, last_access_.size());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_time;  // (time, key)
  by_time.reserve(last_access_.size());
  for (const auto& [key, state] : last_access_) {
    by_time.emplace_back(state.last_time, key);
  }
  std::nth_element(by_time.begin(), by_time.begin() + (count - 1),
                   by_time.end());
  by_time.resize(count);
  for (const auto& [t, key] : by_time) remove(key);
  return count;
}

std::uint64_t OlkenTreeProfiler::retain(
    const std::function<bool(std::uint64_t)>& keep) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [key, state] : last_access_) {
    if (!keep(key)) doomed.push_back(key);
  }
  for (const std::uint64_t key : doomed) remove(key);
  return doomed.size();
}

std::uint64_t OlkenTreeProfiler::space_overhead_bytes() const noexcept {
  const std::uint64_t live_nodes = nodes_.size() - free_.size();
  // ~48 B per unordered_map entry (key, value, bucket/next overhead);
  // 16 B per histogram bin (key + weight).
  return live_nodes * sizeof(Node) +
         last_access_.size() * (sizeof(ObjectState) + 48) +
         histogram_.bin_count() * 16;
}

}  // namespace krr
