#include "baselines/olken_tree.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace krr {

OlkenTreeProfiler::OlkenTreeProfiler(bool byte_granularity,
                                     std::uint64_t histogram_quantum,
                                     std::uint64_t seed)
    : byte_granularity_(byte_granularity),
      histogram_(histogram_quantum),
      rng_(seed) {}

void OlkenTreeProfiler::pull(std::uint32_t n) {
  Node& node = nodes_[n];
  node.size = 1 + size_of(node.left) + size_of(node.right);
  node.subtree_weight = node.weight + weight_of(node.left) + weight_of(node.right);
}

void OlkenTreeProfiler::split(std::uint32_t n, std::uint64_t t, std::uint32_t& left,
                              std::uint32_t& right) {
  if (n == kNil) {
    left = right = kNil;
    return;
  }
  if (nodes_[n].time <= t) {
    left = n;
    split(nodes_[n].right, t, nodes_[n].right, right);
    pull(n);
  } else {
    right = n;
    split(nodes_[n].left, t, left, nodes_[n].left);
    pull(n);
  }
}

std::uint32_t OlkenTreeProfiler::merge(std::uint32_t a, std::uint32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].heap_priority > nodes_[b].heap_priority) {
    nodes_[a].right = merge(nodes_[a].right, b);
    pull(a);
    return a;
  }
  nodes_[b].left = merge(a, nodes_[b].left);
  pull(b);
  return b;
}

std::uint32_t OlkenTreeProfiler::alloc(std::uint64_t t, std::uint32_t weight) {
  std::uint32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    nodes_.emplace_back();
    n = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  nodes_[n] = Node{t, rng_(), weight, 1, kNil, kNil, weight};
  return n;
}

void OlkenTreeProfiler::insert(std::uint64_t t, std::uint32_t weight) {
  // Times are unique and inserted in increasing order, so the new node is
  // the rightmost; a split at t-1 keeps the code general for reuse.
  std::uint32_t left, right;
  split(root_, t, left, right);
  root_ = merge(merge(left, alloc(t, weight)), right);
}

void OlkenTreeProfiler::erase(std::uint64_t t) {
  std::uint32_t left, mid, right;
  split(root_, t - 1, left, mid);
  std::uint32_t target;
  split(mid, t, target, right);
  if (target != kNil) free_.push_back(target);
  root_ = merge(left, right);
}

std::uint64_t OlkenTreeProfiler::weight_after(std::uint64_t t) {
  std::uint32_t left, right;
  split(root_, t, left, right);
  const std::uint64_t result = weight_of(right);
  root_ = merge(left, right);
  return result;
}

std::uint64_t OlkenTreeProfiler::access(const Request& req) {
  ++time_;
  const std::uint32_t weight = byte_granularity_ ? req.size : 1;
  auto it = last_access_.find(req.key);
  if (it == last_access_.end()) {
    histogram_.record_infinite();
    insert(time_, weight);
    last_access_.emplace(req.key, ObjectState{time_, req.size});
    return 0;
  }
  const std::uint64_t above = weight_after(it->second.last_time);
  const std::uint64_t distance = above + weight;
  histogram_.record(distance);
  erase(it->second.last_time);
  insert(time_, weight);
  it->second.last_time = time_;
  it->second.size = req.size;
  return distance;
}

void OlkenTreeProfiler::remove(std::uint64_t key) {
  auto it = last_access_.find(key);
  if (it == last_access_.end()) return;
  erase(it->second.last_time);
  last_access_.erase(it);
}

std::uint64_t OlkenTreeProfiler::evict_oldest(std::size_t count) {
  if (count == 0 || last_access_.empty()) return 0;
  count = std::min(count, last_access_.size());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_time;  // (time, key)
  by_time.reserve(last_access_.size());
  for (const auto& [key, state] : last_access_) {
    by_time.emplace_back(state.last_time, key);
  }
  std::nth_element(by_time.begin(), by_time.begin() + (count - 1),
                   by_time.end());
  by_time.resize(count);
  for (const auto& [t, key] : by_time) remove(key);
  return count;
}

std::uint64_t OlkenTreeProfiler::retain(
    const std::function<bool(std::uint64_t)>& keep) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [key, state] : last_access_) {
    if (!keep(key)) doomed.push_back(key);
  }
  for (const std::uint64_t key : doomed) remove(key);
  return doomed.size();
}

void OlkenTreeProfiler::save_state(std::string& out) const {
  ckpt::append_u32(out, byte_granularity_ ? 1 : 0);
  ckpt::append_u64(out, histogram_.quantum());
  ckpt::append_u64(out, time_);
  std::uint64_t rng_state[4];
  rng_.save_state(rng_state);
  for (const std::uint64_t word : rng_state) ckpt::append_u64(out, word);
  const auto bins = histogram_.sorted_bins();
  ckpt::append_u64(out, bins.size());
  for (const auto& [distance, weight] : bins) {
    ckpt::append_u64(out, distance);
    ckpt::append_double(out, weight);
  }
  ckpt::append_double(out, histogram_.infinite_weight());
  ckpt::append_double(out, histogram_.total_weight());
  // Map entries travel sorted by key so the payload bytes are canonical
  // regardless of hash-table iteration order.
  std::vector<std::pair<std::uint64_t, ObjectState>> entries(
      last_access_.begin(), last_access_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ckpt::append_u64(out, entries.size());
  for (const auto& [key, state] : entries) {
    ckpt::append_u64(out, key);
    ckpt::append_u64(out, state.last_time);
    ckpt::append_u32(out, state.size);
  }
}

bool OlkenTreeProfiler::load_state(ckpt::ByteReader& reader) {
  std::uint32_t byte_flag = 0;
  std::uint64_t quantum = 0;
  std::uint64_t time = 0;
  if (!reader.read_u32(&byte_flag) || !reader.read_u64(&quantum) ||
      !reader.read_u64(&time)) {
    return false;
  }
  // Granularity and quantum are construction-time config; a snapshot taken
  // under different settings is not bit-compatible with this instance.
  if ((byte_flag != 0) != byte_granularity_ ||
      quantum != histogram_.quantum()) {
    return false;
  }
  std::uint64_t rng_state[4];
  for (std::uint64_t& word : rng_state) {
    if (!reader.read_u64(&word)) return false;
  }
  std::uint64_t bin_count = 0;
  if (!reader.read_u64(&bin_count)) return false;
  if (bin_count > reader.remaining() / 16) return false;
  std::vector<std::pair<std::uint64_t, double>> bins;
  bins.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    std::uint64_t distance = 0;
    double weight = 0.0;
    if (!reader.read_u64(&distance) || !reader.read_double(&weight)) {
      return false;
    }
    bins.emplace_back(distance, weight);
  }
  double infinite = 0.0, total = 0.0;
  if (!reader.read_double(&infinite) || !reader.read_double(&total)) {
    return false;
  }
  std::uint64_t tracked = 0;
  if (!reader.read_u64(&tracked)) return false;
  if (tracked > reader.remaining() / 20) return false;
  std::vector<std::pair<std::uint64_t, ObjectState>> entries;
  entries.reserve(tracked);
  for (std::uint64_t i = 0; i < tracked; ++i) {
    std::uint64_t key = 0, last_time = 0;
    std::uint32_t size = 0;
    if (!reader.read_u64(&key) || !reader.read_u64(&last_time) ||
        !reader.read_u32(&size)) {
      return false;
    }
    if (last_time == 0 || last_time > time) return false;
    entries.emplace_back(key, ObjectState{last_time, size});
  }

  time_ = time;
  histogram_.restore(bins, infinite, total);
  nodes_.clear();
  free_.clear();
  root_ = kNil;
  last_access_.clear();
  last_access_.reserve(entries.size());
  // Rebuild in ascending access-time order (the order the live entries
  // were originally inserted in). Treap priorities come from wherever the
  // RNG happens to be; the shape they produce is irrelevant to distances,
  // and the saved RNG words are reinstated below so the resumed random
  // stream matches the uninterrupted run.
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.second.last_time < b.second.last_time;
  });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    // Access times are unique by construction; duplicates would corrupt
    // the time-keyed treap (and reject key duplicates via the map).
    if (i > 0 && entries[i].second.last_time == entries[i - 1].second.last_time) {
      return false;
    }
    const auto& [key, state] = entries[i];
    if (!last_access_.emplace(key, state).second) return false;
    insert(state.last_time, byte_granularity_ ? state.size : 1);
  }
  rng_.load_state(rng_state);
  return true;
}

std::uint64_t OlkenTreeProfiler::space_overhead_bytes() const noexcept {
  const std::uint64_t live_nodes = nodes_.size() - free_.size();
  // ~48 B per unordered_map entry (key, value, bucket/next overhead);
  // 16 B per histogram bin (key + weight).
  return live_nodes * sizeof(Node) +
         last_access_.size() * (sizeof(ObjectState) + 48) +
         histogram_.bin_count() * 16;
}

}  // namespace krr
