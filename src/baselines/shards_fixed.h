#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/olken_tree.h"
#include "core/checkpoint.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {

/// Fixed-size SHARDS (SHARDS_smax, Waldspurger et al. FAST '15 §4):
/// bounded-memory MRC construction. Instead of a fixed sampling rate, at
/// most `max_objects` sampled objects are tracked; when the set is full,
/// the object with the largest hash value is evicted and the sampling
/// threshold T permanently lowers to that value, so the effective rate
/// adapts downward as the working set grows.
///
/// Each sampled reference is recorded with the rate in force at that
/// moment: distance d at rate R contributes weight 1/R at scaled distance
/// d/R, which keeps the final curve in unsampled units even though R
/// changes over time.
class ShardsFixedSizeProfiler {
 public:
  /// shard_count: extra distance scale for shard-local use — a profiler
  /// fed a uniform 1/S hash partition sees distances S times shorter than
  /// global ones, so rescaled distances gain a factor S (weights are
  /// unchanged; the per-shard rate already accounts for within-shard
  /// sampling). 1 multiplies by exactly 1.0: bit-identical serial.
  explicit ShardsFixedSizeProfiler(std::size_t max_objects,
                                   std::uint64_t modulus = 1ULL << 24,
                                   std::uint64_t histogram_quantum = 1,
                                   std::uint32_t shard_count = 1);

  /// Processes one reference.
  void access(const Request& req);

  /// MRC over rescaled distances with the SHARDS-adj correction.
  MissRatioCurve mrc() const;

  double current_rate() const noexcept {
    return static_cast<double>(threshold_) / static_cast<double>(modulus_);
  }
  std::size_t tracked_objects() const noexcept { return tracked_.size(); }
  std::size_t max_objects() const noexcept { return max_objects_; }
  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t sampled() const noexcept { return sampled_; }

  /// Graceful degradation: halves the object budget and immediately evicts
  /// down to it via the normal largest-hash mechanism (so the threshold
  /// keeps its only-decreases invariant). Returns false once the budget
  /// has bottomed out at 1 object.
  bool shrink_capacity();

  /// Times shrink_capacity() actually lowered the budget.
  std::uint64_t degradation_events() const noexcept { return degradations_; }

  /// Estimated resident bytes (stack + heap + tracked map + histogram).
  std::uint64_t space_overhead_bytes() const noexcept;

  /// Folds another shard's accumulated statistics into this profiler:
  /// histogram mass, reference counts, and the adjustment target all add,
  /// so the merged curve's SHARDS-adj residual is the sum of per-shard
  /// residuals. The tracked set and threshold stay this shard's own.
  void absorb(const ShardsFixedSizeProfiler& other);

  /// Survivor extrapolation for best-effort sharded runs: scales the
  /// histogram and the adjustment target by `factor`. Ratios, and hence
  /// the MRC, are unchanged; no further access() calls are expected.
  void scale_mass(double factor);

  /// Checkpoint support: tagged-section state stream (kSectionModelCore =
  /// budget/threshold/counters/histogram/eviction heap/tracked map,
  /// kSectionLruStack = Olken treap). The heap array is serialized
  /// verbatim — it is a plain vector kept in heap order with
  /// push_heap/pop_heap precisely so its bytes round-trip bit-identically.
  Status save_state(std::string* out) const;
  Status load_state(const std::string& payload);

 private:
  struct HeapEntry {
    std::uint64_t hash_value;
    std::uint64_t key;
  };
  struct HeapCompare {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.hash_value < b.hash_value;  // max-heap on hash value
    }
  };

  void evict_largest_hash();

  std::size_t max_objects_;
  std::uint64_t modulus_;
  std::uint64_t threshold_;  // only ever decreases
  OlkenTreeProfiler stack_;
  // Max-heap on hash value, maintained with std::push_heap/std::pop_heap
  // (exactly what std::priority_queue does internally) so the backing
  // array is directly serializable.
  std::vector<HeapEntry> heap_;
  std::unordered_map<std::uint64_t, std::uint64_t> tracked_;  // key -> hash value
  DistanceHistogram histogram_;
  double shard_scale_ = 1.0;
  // The adjustment-side view of processed_: the weight the histogram
  // should integrate to. Identical to processed_ (sums of 1.0) until
  // scale_mass() rescales it along with the histogram.
  double adjust_target_ = 0.0;
  std::uint64_t processed_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t degradations_ = 0;
};

}  // namespace krr
