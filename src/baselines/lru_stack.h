#pragma once

#include <cstdint>
#include <unordered_map>

#include "trace/request.h"
#include "util/fenwick.h"
#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {

/// Exact LRU stack-distance profiler in O(log M) per access — the
/// comparison baseline of §5.1 ("Mattson's LRU stack algorithm using a
/// balanced search tree", Olken 1981). Instead of a tree, this uses the
/// equivalent Fenwick-over-timestamps formulation: each resident object
/// contributes one marker at its last access time, so the number of objects
/// more recently used than x is a suffix count, and x's stack distance is
/// that count plus one.
///
/// With `byte_granularity`, markers carry object sizes and the reported
/// distance is the exact byte-level stack distance (cumulative size of the
/// stack down to and including the referenced object) — the ground truth
/// the paper's sizeArray approximates.
class LruStackProfiler {
 public:
  explicit LruStackProfiler(bool byte_granularity = false,
                            std::uint64_t histogram_quantum = 1);

  /// Processes one reference and returns its stack distance (0 on a cold
  /// reference, which is recorded as an infinite distance).
  std::uint64_t access(const Request& req);

  const DistanceHistogram& histogram() const noexcept { return histogram_; }
  MissRatioCurve mrc() const { return histogram_.to_mrc(); }

  std::uint64_t processed() const noexcept { return time_; }
  std::size_t distinct_objects() const noexcept { return last_access_.size(); }

 private:
  struct ObjectState {
    std::uint64_t last_time;
    std::uint32_t size;
  };

  bool byte_granularity_;
  DistanceHistogram histogram_;
  Fenwick<std::int64_t> markers_;  // size (or 1) at each resident's last time
  std::unordered_map<std::uint64_t, ObjectState> last_access_;
  std::uint64_t time_ = 0;
};

}  // namespace krr
