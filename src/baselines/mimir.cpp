#include "baselines/mimir.h"

#include <algorithm>
#include <stdexcept>

namespace krr {

MimirProfiler::MimirProfiler(std::uint32_t buckets, std::uint64_t histogram_quantum)
    : max_buckets_(buckets), histogram_(histogram_quantum) {
  if (max_buckets_ < 2) throw std::invalid_argument("MIMIR needs >= 2 buckets");
  open_new_bucket();
}

void MimirProfiler::open_new_bucket() {
  sizes_.push_back(0);
  ++next_id_;
  if (sizes_.size() > max_buckets_) {
    // ROUNDER aging: the two oldest buckets merge; keys mapping to the
    // retired id are clamped to the (new) oldest bucket lazily on access.
    sizes_[1] += sizes_[0];
    sizes_.pop_front();
    ++front_id_;
  }
}

void MimirProfiler::access(const Request& req) {
  ++processed_;
  auto it = bucket_of_.find(req.key);
  const std::uint64_t newest_id = next_id_ - 1;
  if (it != bucket_of_.end()) {
    const std::uint64_t b = std::max(it->second, front_id_);
    const std::size_t index = static_cast<std::size_t>(b - front_id_);
    // Bracket midpoint: everything in newer buckets is certainly above the
    // object; within its own bucket the position is unknown.
    double above = 0.0;
    for (std::size_t j = index + 1; j < sizes_.size(); ++j) {
      above += static_cast<double>(sizes_[j]);
    }
    const double estimate = above + static_cast<double>(sizes_[index]) * 0.5;
    histogram_.record(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(estimate + 0.5)));
    --sizes_[index];
    it->second = newest_id;
  } else {
    histogram_.record_infinite();
    bucket_of_.emplace(req.key, newest_id);
  }
  ++sizes_.back();
  // Open a fresh bucket once the newest holds its fair share of the ghost
  // list (n/B), keeping bucket sizes balanced.
  const std::uint64_t fair_share =
      std::max<std::uint64_t>(1, bucket_of_.size() / max_buckets_);
  if (sizes_.back() >= fair_share && bucket_of_.size() >= max_buckets_) {
    open_new_bucket();
  }
}

bool MimirProfiler::evict_oldest_bucket() {
  if (sizes_.size() <= 1) return false;
  // Keys clamped into the oldest bucket (id <= front_id_, lazily merged by
  // ROUNDER aging) leave the ghost list entirely.
  for (auto it = bucket_of_.begin(); it != bucket_of_.end();) {
    if (it->second <= front_id_) {
      it = bucket_of_.erase(it);
    } else {
      ++it;
    }
  }
  sizes_.pop_front();
  ++front_id_;
  ++degradations_;
  return true;
}

std::uint64_t MimirProfiler::space_overhead_bytes() const noexcept {
  return bucket_of_.size() * (2 * sizeof(std::uint64_t) + 32) +
         sizes_.size() * sizeof(std::uint64_t) + histogram_.bin_count() * 16;
}

}  // namespace krr
