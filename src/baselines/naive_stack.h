#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/prng.h"

namespace krr {

/// Mattson's generic stack algorithm (Fig. 2.1), with the priority decision
/// injected as a per-position stay probability:
///
///   stay_probability(i) — chance that maxPriority keeps the resident of
///   stack position i when the carried object y reaches it.
///
/// This is the textbook O(M)-per-access update ("Basic Stack" in
/// Table 5.3). It serves two roles:
///  * reference oracle: with stay_probability == 0 it is the exact LRU
///    stack; with the KRR probability ((i-1)/i)^K it performs the identical
///    draws (same positions, same order) as the fast KRR stack's Linear
///    strategy, so seeded runs must agree bit-for-bit;
///  * the baseline row of the Table 5.3 timing comparison.
class GenericMattsonStack {
 public:
  using StayProbabilityFn = std::function<double(std::uint64_t position)>;

  GenericMattsonStack(StayProbabilityFn stay_probability, std::uint64_t seed);

  /// Exact LRU variant (stay probability 0 at every position).
  static GenericMattsonStack lru(std::uint64_t seed = 1);

  /// KRR variant with exponent k (Eq. 4.1): stay prob ((i-1)/i)^k.
  static GenericMattsonStack krr(double k, std::uint64_t seed);

  /// Mattson's RR variant, i.e. KRR with k == 1.
  static GenericMattsonStack rr(std::uint64_t seed);

  /// Processes one reference; returns its stack distance (0 when cold,
  /// recorded as infinite).
  std::uint64_t access(const Request& req);

  const DistanceHistogram& histogram() const noexcept { return histogram_; }
  MissRatioCurve mrc() const { return histogram_.to_mrc(); }

  std::size_t depth() const noexcept { return stack_.size(); }

  /// Keys from stack top to bottom (test/diagnostic helper).
  const std::vector<std::uint64_t>& stack() const noexcept { return stack_; }

  /// Memory governance (Mattson bounded eviction): drops up to `count`
  /// objects from the stack bottom. Re-references to dropped objects read
  /// as cold, so the curve stays exact below the retained depth and only
  /// degrades above it. Returns the number actually evicted.
  std::size_t evict_bottom(std::size_t count);

  /// Estimated resident bytes (stack + position map + histogram).
  std::uint64_t space_overhead_bytes() const noexcept;

 private:
  StayProbabilityFn stay_probability_;
  Xoshiro256ss rng_;
  DistanceHistogram histogram_;
  std::vector<std::uint64_t> stack_;  // index 0 = stack top
  std::unordered_map<std::uint64_t, std::size_t> position_;  // key -> index
};

}  // namespace krr
