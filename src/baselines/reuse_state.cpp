#include "baselines/reuse_state.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace krr {

void save_collector_state(const ReuseTimeCollector& collector,
                          std::string& out) {
  ckpt::append_u64(out, collector.stream_scale());
  ckpt::append_u64(out, collector.sample_modulus());
  ckpt::append_u64(out, collector.sample_threshold());
  ckpt::append_double(out, collector.cold_count());
  ckpt::append_u64(out, collector.processed());
  ckpt::append_u64(out, collector.absorbed_distinct());
  ckpt::append_double(out, collector.absorbed_estimated_distinct());
  const ReuseTimeHistogram& histogram = collector.histogram();
  ckpt::append_u32(out, histogram.sub_buckets());
  ckpt::append_u64(out, histogram.bins().size());
  for (const double bin : histogram.bins()) ckpt::append_double(out, bin);
  ckpt::append_double(out, histogram.total());
  std::vector<ReuseTimeCollector::ObjectTimes> objects;
  objects.reserve(collector.last_access_times().size());
  for (const auto& [key, last] : collector.last_access_times()) {
    const auto first_it = collector.first_access_times().find(key);
    const std::uint64_t first =
        first_it == collector.first_access_times().end() ? last
                                                         : first_it->second;
    objects.push_back(ReuseTimeCollector::ObjectTimes{key, first, last});
  }
  std::sort(objects.begin(), objects.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  ckpt::append_u64(out, objects.size());
  for (const auto& object : objects) {
    ckpt::append_u64(out, object.key);
    ckpt::append_u64(out, object.first);
    ckpt::append_u64(out, object.last);
  }
}

bool load_collector_state(ReuseTimeCollector& collector,
                          ckpt::ByteReader& reader) {
  std::uint64_t stream_scale = 0, modulus = 0, threshold = 0;
  std::uint64_t time = 0, absorbed_distinct = 0;
  double cold = 0.0, absorbed_estimated = 0.0;
  if (!reader.read_u64(&stream_scale) || !reader.read_u64(&modulus) ||
      !reader.read_u64(&threshold) || !reader.read_double(&cold) ||
      !reader.read_u64(&time) || !reader.read_u64(&absorbed_distinct) ||
      !reader.read_double(&absorbed_estimated)) {
    return false;
  }
  if (stream_scale != collector.stream_scale() ||
      modulus != collector.sample_modulus()) {
    return false;
  }
  std::uint32_t sub_buckets = 0;
  std::uint64_t bin_count = 0;
  if (!reader.read_u32(&sub_buckets) || !reader.read_u64(&bin_count)) {
    return false;
  }
  if (bin_count > reader.remaining() / 8) return false;
  std::vector<double> bins;
  bins.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    double bin = 0.0;
    if (!reader.read_double(&bin)) return false;
    bins.push_back(bin);
  }
  double total = 0.0;
  if (!reader.read_double(&total)) return false;
  std::uint64_t object_count = 0;
  if (!reader.read_u64(&object_count)) return false;
  if (object_count > reader.remaining() / 24) return false;
  std::vector<ReuseTimeCollector::ObjectTimes> objects;
  objects.reserve(object_count);
  for (std::uint64_t i = 0; i < object_count; ++i) {
    ReuseTimeCollector::ObjectTimes object{};
    if (!reader.read_u64(&object.key) || !reader.read_u64(&object.first) ||
        !reader.read_u64(&object.last)) {
      return false;
    }
    objects.push_back(object);
  }
  return collector.restore(sub_buckets, std::move(bins), total, cold, time,
                           objects, threshold, absorbed_distinct,
                           absorbed_estimated);
}

}  // namespace krr
