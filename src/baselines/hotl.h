#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "trace/request.h"
#include "util/mrc.h"
#include "util/reuse_histogram.h"

namespace krr {

/// HOTL (Xiang et al., ASPLOS '13; §6.1): the footprint theory of locality.
/// The average footprint fp(w) — the mean number of distinct objects in a
/// length-w window — is computed from the reuse-time distribution plus
/// first/last-access corrections:
///
///   fp(w) = m - (1/(N-w+1)) * [ sum_{rt > w} (rt - w) h(rt)
///                             + sum_i max(0, ft_i - w)
///                             + sum_i max(0, lt_i - w) ]
///
/// with m distinct objects, ft_i the first-access time of object i, and
/// lt_i its reverse last-access time (N - last + 1). HOTL converts fp to an
/// LRU MRC via the derivative relation: the miss ratio of a cache of size
/// fp(w) is the fraction of references with reuse time > w (plus colds).
class HotlProfiler {
 public:
  explicit HotlProfiler(std::uint32_t sub_buckets = 256);

  /// Processes one reference.
  void access(const Request& req);

  /// Average footprint of windows of length w (1 <= w <= N).
  double footprint(std::uint64_t w) const;

  /// LRU MRC from the footprint curve, evaluated at `n_points` window
  /// lengths spread logarithmically over the trace.
  MissRatioCurve mrc(std::size_t n_points = 64) const;

  std::uint64_t processed() const noexcept { return collector_.processed(); }
  std::size_t distinct_objects() const noexcept {
    return collector_.distinct_objects();
  }

  /// Memory governance: spatially down-samples the tracked object set
  /// (primary step) or coarsens the reuse-time histogram (secondary).
  bool halve_sample() { return collector_.halve_sample(); }
  bool coarsen_histogram() { return collector_.coarsen_histogram(); }
  std::uint64_t space_overhead_bytes() const noexcept {
    return collector_.space_overhead_bytes();
  }
  double sampling_rate() const noexcept { return collector_.sampling_rate(); }
  std::size_t histogram_bins() const noexcept {
    return collector_.histogram().bin_count();
  }

  /// Checkpoint support: flat collector bytes (baselines/reuse_state.h).
  void save_state(std::string& out) const;
  bool load_state(ckpt::ByteReader& reader);

 private:
  /// Edge-correction times sorted ascending. The per-object maps are hash
  /// tables, so summing over them directly would make the footprint depend
  /// on iteration order — and floating-point addition is not associative,
  /// which would break bit-identical resume after the maps are rebuilt
  /// from a snapshot. Sorting fixes the summation order.
  std::vector<std::uint64_t> sorted_first_times() const;
  std::vector<std::uint64_t> sorted_reverse_last_times() const;
  double footprint_with(std::uint64_t w,
                        const std::vector<std::uint64_t>& first_times,
                        const std::vector<std::uint64_t>& reverse_last_times)
      const;

  ReuseTimeCollector collector_;
};

}  // namespace krr
