#include "baselines/counter_stacks.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hashing.h"

namespace krr {

CounterStacksProfiler::CounterStacksProfiler(std::uint64_t counter_interval,
                                             double prune_delta,
                                             std::uint32_t hll_precision)
    : counter_interval_(counter_interval),
      prune_delta_(prune_delta),
      hll_precision_(hll_precision) {
  if (counter_interval_ == 0) {
    throw std::invalid_argument("counter interval must be > 0");
  }
  if (prune_delta_ < 0.0) throw std::invalid_argument("prune delta must be >= 0");
  counters_.push_back(Counter{HyperLogLog(hll_precision_), 0.0, 0.0});
}

void CounterStacksProfiler::access(const Request& req) {
  const std::uint64_t h = hash64(req.key);
  for (Counter& c : counters_) c.sketch.add(h);
  ++processed_;
  if (++in_interval_ == counter_interval_) close_interval();
}

void CounterStacksProfiler::close_interval() {
  if (in_interval_ == 0) return;
  // Refresh counts and per-interval deltas, oldest (largest window) first.
  for (Counter& c : counters_) {
    const double count = c.sketch.estimate();
    c.delta = std::max(0.0, count - c.last_count);
    c.last_count = count;
  }
  const std::size_t m = counters_.size();
  // Enforce the structural constraints that estimation noise can violate:
  // a window sees at most in_interval new keys, and a key new to an older
  // (larger) window is necessarily new to every younger one, so deltas are
  // non-increasing from youngest to oldest.
  counters_[m - 1].delta =
      std::min(counters_[m - 1].delta, static_cast<double>(in_interval_));
  for (std::size_t i = m - 1; i-- > 0;) {
    counters_[i].delta = std::min(counters_[i].delta, counters_[i + 1].delta);
  }
  // Reuses resolved within the youngest window: distance in
  // (0, count_youngest]; attribute the bracket midpoint.
  const double youngest_new = counters_[m - 1].delta;
  const double within = std::max(0.0, static_cast<double>(in_interval_) - youngest_new);
  if (within > 0.0) {
    histogram_.record(
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(counters_[m - 1].last_count / 2.0)),
        within);
  }
  // A request new to the younger counter i+1 but already inside the older
  // window i reused at a distance bracketed by the two counts; attribute
  // the bracket midpoint (the older count alone would bias the curve
  // pessimistically by half a bracket).
  for (std::size_t i = m - 1; i-- > 0;) {
    const double bracketed = counters_[i + 1].delta - counters_[i].delta;
    if (bracketed > 0.0) {
      const double mid =
          0.5 * (counters_[i].last_count + counters_[i + 1].last_count);
      histogram_.record(
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(mid)), bracketed);
    }
  }
  // New to the oldest counter (whose window is the whole trace): cold.
  if (counters_[0].delta > 0.0) histogram_.record_infinite(counters_[0].delta);

  // Prune younger counters that have converged onto their older neighbour.
  prune_converged();
  // Start the next interval's counter.
  counters_.push_back(Counter{HyperLogLog(hll_precision_), 0.0, 0.0});
  in_interval_ = 0;
}

std::size_t CounterStacksProfiler::prune_converged() {
  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < counters_.size();) {
    if (counters_[i].last_count <=
        counters_[i + 1].last_count * (1.0 + prune_delta_)) {
      counters_.erase(counters_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

bool CounterStacksProfiler::degrade() {
  if (counters_.size() <= 2) return false;
  // Refresh counts at an interval boundary so pruning sees current state
  // (mid-run degradation shifts the boundary; the histogram stays valid
  // because every closed interval is self-contained).
  if (in_interval_ > 0) close_interval();
  while (counters_.size() > 2) {
    prune_delta_ = prune_delta_ * 2.0 + 0.01;
    if (prune_converged() > 0) {
      ++degradations_;
      return true;
    }
    // A younger counter with a zero count (never estimated) can never
    // satisfy the convergence test; once the tolerance is this large the
    // remaining counters are unprunable.
    if (prune_delta_ > 1e6) break;
  }
  return false;
}

std::uint64_t CounterStacksProfiler::space_overhead_bytes() const noexcept {
  const std::uint64_t per_counter =
      (1ULL << hll_precision_) + sizeof(Counter) + 16;
  return counters_.size() * per_counter + histogram_.bin_count() * 16;
}

MissRatioCurve CounterStacksProfiler::mrc() const {
  // Flush the partial interval on a copy so mrc() stays const and
  // repeatable mid-stream.
  CounterStacksProfiler snapshot = *this;
  snapshot.close_interval();
  return snapshot.histogram_.to_mrc();
}

}  // namespace krr
