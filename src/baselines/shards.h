#pragma once

#include <cstdint>

#include "baselines/lru_stack.h"
#include "core/spatial_filter.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {

/// SHARDS (Waldspurger et al., FAST '15): approximate *exact-LRU* MRC
/// construction via spatial sampling. References surviving the hash filter
/// are run through an exact LRU stack-distance profiler; each sampled
/// distance d estimates an unsampled distance d/R, so the histogram is
/// built over rescaled distances with per-reference weight 1.
///
/// This is the fixed-rate variant with the optional SHARDS-adj correction:
/// the difference between the expected sampled reference count (N*R) and
/// the actual count is added to the first histogram bin, compensating the
/// miss-ratio bias of over/under-sampled workloads.
///
/// SHARDS models the exact LRU policy only; the paper's point (§5.3) is
/// that it cannot capture K-LRU for small K, which bench_fig5_2 shows.
class ShardsProfiler {
 public:
  /// rate: spatial sampling rate in (0, 1].
  /// byte_granularity: rescaled byte-level distances for var-size traces.
  explicit ShardsProfiler(double rate, bool adjustment = true,
                          bool byte_granularity = false,
                          std::uint64_t histogram_quantum = 1);

  /// Processes one reference (filtered internally).
  void access(const Request& req);

  /// MRC over rescaled distances, including the SHARDS-adj correction if
  /// enabled.
  MissRatioCurve mrc() const;

  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t sampled() const noexcept { return sampled_; }
  const SpatialFilter& filter() const noexcept { return filter_; }

 private:
  SpatialFilter filter_;
  bool adjustment_;
  std::uint64_t histogram_quantum_;
  LruStackProfiler stack_;
  std::uint64_t processed_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace krr
