#pragma once

#include <cstdint>
#include <string>

#include "baselines/olken_tree.h"
#include "core/checkpoint.h"
#include "core/spatial_filter.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {

/// SHARDS (Waldspurger et al., FAST '15): approximate *exact-LRU* MRC
/// construction via spatial sampling. References surviving the hash filter
/// are run through an exact LRU stack-distance profiler; each sampled
/// distance d estimates an unsampled distance d/R, so the histogram is
/// built over rescaled distances with per-reference weight 1.
///
/// Distances are rescaled at access time by the rate then in force, with
/// the same epoch bookkeeping the KRR profiler uses, so the rate may be
/// halved mid-run (halve_rate(), the memory-governance degradation step)
/// without invalidating what was already recorded. The exact stack is the
/// Olken treap rather than the Fenwick formulation because rate halving
/// must evict residents that fall out of the sample.
///
/// This is the fixed-rate variant with the optional SHARDS-adj correction:
/// the difference between the expected sampled reference count (N*R,
/// accumulated per rate epoch) and the actual count is added to the first
/// histogram bin, compensating the miss-ratio bias of over/under-sampled
/// workloads.
///
/// SHARDS models the exact LRU policy only; the paper's point (§5.3) is
/// that it cannot capture K-LRU for small K, which bench_fig5_2 shows.
class ShardsProfiler {
 public:
  /// rate: spatial sampling rate in (0, 1].
  /// byte_granularity: rescaled byte-level distances for var-size traces.
  /// shard_count: extra distance scale for shard-local use — a profiler
  /// fed a uniform 1/S hash partition of the stream sees distances S times
  /// shorter than global ones, so sampled distances are rescaled by
  /// scale()*S (the same closure-under-thinning argument the filter's own
  /// rescale rests on). 1 multiplies by exactly 1.0: bit-identical serial.
  explicit ShardsProfiler(double rate, bool adjustment = true,
                          bool byte_granularity = false,
                          std::uint64_t histogram_quantum = 1,
                          std::uint32_t shard_count = 1);

  /// Processes one reference (filtered internally).
  void access(const Request& req);

  /// MRC over rescaled distances, including the SHARDS-adj correction if
  /// enabled.
  MissRatioCurve mrc() const;

  /// Graceful degradation: halves the sampling rate and evicts residents
  /// that fall out of the sample (their reuse behaviour stays valid — the
  /// surviving key set is an exact subset). Returns false once the filter
  /// has bottomed out at threshold 1.
  bool halve_rate();

  /// Estimated resident bytes (exact stack + rescaled histogram).
  std::uint64_t space_overhead_bytes() const noexcept;

  /// Times halve_rate() actually lowered the rate.
  std::uint64_t degradation_events() const noexcept { return degradations_; }

  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t sampled() const noexcept { return sampled_; }
  std::size_t tracked_objects() const noexcept {
    return stack_.tracked_objects();
  }
  const SpatialFilter& filter() const noexcept { return filter_; }

  /// Folds another shard's accumulated statistics into this profiler:
  /// histogram mass, reference counts, and the SHARDS-adj epoch accounting
  /// all add (the merged expected/actual sampled counts equal the sums, so
  /// the adjustment of the merged curve is the sum of per-shard
  /// adjustments). Only the histogram side merges — the exact stack stays
  /// this shard's own, which is fine post-run when only mrc() matters.
  void absorb(const ShardsProfiler& other);

  /// Survivor extrapolation for best-effort sharded runs: scales recorded
  /// mass (histogram + adjustment accounting) by `factor` so F dead shards
  /// out of S leave a curve with ≈ the full run's mass. Ratios, and hence
  /// the MRC, are unchanged; no further access() calls are expected.
  void scale_mass(double factor);

  /// Checkpoint support: a tagged-section state stream — kSectionModelCore
  /// carries the filter, counters, and rescaled histogram; kSectionLruStack
  /// carries the Olken treap's logical state. Restoring into a profiler
  /// constructed with the same options resumes bit-identically.
  Status save_state(std::string* out) const;
  Status load_state(const std::string& payload);

 private:
  /// Expected sampled references: sum over rate epochs of (epoch length *
  /// epoch rate). Equals processed * R exactly while the rate is constant.
  double expected_sampled() const noexcept {
    return expected_base_ +
           static_cast<double>(processed_ - processed_at_change_) *
               filter_.rate();
  }

  SpatialFilter filter_;
  bool adjustment_;
  OlkenTreeProfiler stack_;
  DistanceHistogram histogram_;
  double shard_scale_ = 1.0;
  std::uint64_t processed_ = 0;
  std::uint64_t sampled_ = 0;
  // The adjustment-side view of sampled_: identical (sums of 1.0) until
  // scale_mass() rescales it along with the histogram.
  double sampled_weight_ = 0.0;
  std::uint64_t degradations_ = 0;
  double expected_base_ = 0.0;
  std::uint64_t processed_at_change_ = 0;
};

}  // namespace krr
