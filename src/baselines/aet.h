#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "trace/request.h"
#include "util/mrc.h"
#include "util/reuse_histogram.h"

namespace krr {

/// AET (Hu et al., ATC '16 / TOS '18): a kinetic, reuse-time-based model of
/// the *exact LRU* eviction process, implemented as a related-work baseline
/// (§6.1). It collects the reuse-time distribution in one pass and solves
///
///     integral_0^{AET(c)} P(t) dt = c
///
/// where P(t) is the probability a reference's reuse time exceeds t; the
/// predicted miss ratio of cache size c is then P(AET(c)).
class AetProfiler {
 public:
  /// sub_buckets: reuse-time bin resolution (power of two).
  /// stream_scale: reuse-time scale for shard-local use — a profiler fed a
  /// uniform 1/S hash partition ticks its clock S times slower, so
  /// shard-local reuse times times S estimate global ones. 1 (default) is
  /// bit-identical to the unscaled profiler.
  explicit AetProfiler(std::uint32_t sub_buckets = 256,
                       std::uint64_t stream_scale = 1);

  /// Processes one reference, recording its reuse time (or a cold miss).
  void access(const Request& req);

  /// MRC over the given cache sizes (in objects).
  MissRatioCurve mrc(const std::vector<double>& sizes) const;

  /// MRC over n sizes evenly spaced up to the (estimated) distinct-object
  /// count.
  MissRatioCurve mrc(std::size_t n_points = 64) const;

  std::uint64_t processed() const noexcept { return collector_.processed(); }
  std::size_t distinct_objects() const noexcept {
    return collector_.distinct_objects();
  }

  /// Memory governance: spatially down-samples the tracked object set
  /// (primary step) or coarsens the reuse-time histogram (secondary).
  bool halve_sample() { return collector_.halve_sample(); }
  bool coarsen_histogram() { return collector_.coarsen_histogram(); }
  std::uint64_t space_overhead_bytes() const noexcept {
    return collector_.space_overhead_bytes();
  }
  double sampling_rate() const noexcept { return collector_.sampling_rate(); }
  std::size_t histogram_bins() const noexcept {
    return collector_.histogram().bin_count();
  }

  /// Folds another shard's collector into this one (histogram mass, cold
  /// count, clock ticks, distinct estimates — all additive across the
  /// key-disjoint shards of a hash partition).
  void absorb(const AetProfiler& other) { collector_.absorb(other.collector_); }

  /// Survivor extrapolation for best-effort sharded runs: scales all
  /// accumulated mass by `factor`; P(t) ratios and the MRC are unchanged.
  void scale_mass(double factor) { collector_.scale_mass(factor); }

  /// Checkpoint support: flat collector bytes (baselines/reuse_state.h).
  void save_state(std::string& out) const;
  bool load_state(ckpt::ByteReader& reader);

 private:
  ReuseTimeCollector collector_;
};

}  // namespace krr
