#include "baselines/shards_fixed.h"

#include <cmath>
#include <stdexcept>

#include "util/hashing.h"

namespace krr {

ShardsFixedSizeProfiler::ShardsFixedSizeProfiler(std::size_t max_objects,
                                                 std::uint64_t modulus,
                                                 std::uint64_t histogram_quantum,
                                                 std::uint32_t shard_count)
    : max_objects_(max_objects),
      modulus_(modulus),
      threshold_(modulus),  // start at rate 1.0
      stack_(false, histogram_quantum),
      histogram_(histogram_quantum),
      shard_scale_(shard_count == 0 ? 1.0 : static_cast<double>(shard_count)) {
  if (max_objects_ == 0) throw std::invalid_argument("max_objects must be > 0");
  if (modulus_ == 0) throw std::invalid_argument("modulus must be > 0");
}

void ShardsFixedSizeProfiler::access(const Request& req) {
  ++processed_;
  adjust_target_ += 1.0;
  const std::uint64_t h = hash64(req.key) % modulus_;
  if (h >= threshold_) return;  // below the (ever-tightening) sample
  ++sampled_;
  const double rate = current_rate();
  const double weight = 1.0 / rate;
  const std::uint64_t distance = stack_.access(req);
  if (distance == 0) {
    histogram_.record_infinite(weight);
    tracked_.emplace(req.key, h);
    heap_.push(HeapEntry{h, req.key});
    while (tracked_.size() > max_objects_) evict_largest_hash();
  } else {
    histogram_.record(
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(distance) / rate *
                                shard_scale_))),
        weight);
  }
}

void ShardsFixedSizeProfiler::absorb(const ShardsFixedSizeProfiler& other) {
  histogram_.merge(other.histogram_);
  adjust_target_ += other.adjust_target_;
  processed_ += other.processed_;
  sampled_ += other.sampled_;
  degradations_ += other.degradations_;
}

void ShardsFixedSizeProfiler::scale_mass(double factor) {
  histogram_.scale(factor);
  adjust_target_ *= factor;
}

void ShardsFixedSizeProfiler::evict_largest_hash() {
  const std::uint64_t largest = heap_.top().hash_value;
  // Evict every tracked object at this hash value and lower the threshold
  // so no future reference at or above it is sampled.
  while (!heap_.empty() && heap_.top().hash_value == largest) {
    const HeapEntry entry = heap_.top();
    heap_.pop();
    stack_.remove(entry.key);
    tracked_.erase(entry.key);
  }
  threshold_ = largest;
}

bool ShardsFixedSizeProfiler::shrink_capacity() {
  if (max_objects_ <= 1) return false;
  max_objects_ /= 2;
  while (tracked_.size() > max_objects_) evict_largest_hash();
  ++degradations_;
  return true;
}

std::uint64_t ShardsFixedSizeProfiler::space_overhead_bytes() const noexcept {
  // The heap can briefly hold stale entries for already-evicted keys (one
  // push per cold insert, group pops on evict), so it is charged by its
  // own size, not the tracked count.
  return stack_.space_overhead_bytes() + heap_.size() * sizeof(HeapEntry) +
         tracked_.size() * (2 * sizeof(std::uint64_t) + 32) +
         histogram_.bin_count() * 16;
}

MissRatioCurve ShardsFixedSizeProfiler::mrc() const {
  // SHARDS-adj: the recorded weights should integrate to the processed
  // request count; apply the residual to the first bucket.
  DistanceHistogram adjusted = histogram_;
  const double diff = adjust_target_ - histogram_.total_weight();
  if (diff != 0.0) adjusted.record(1, diff);
  return adjusted.to_mrc();
}

}  // namespace krr
