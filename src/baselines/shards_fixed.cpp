#include "baselines/shards_fixed.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/hashing.h"

namespace krr {

ShardsFixedSizeProfiler::ShardsFixedSizeProfiler(std::size_t max_objects,
                                                 std::uint64_t modulus,
                                                 std::uint64_t histogram_quantum,
                                                 std::uint32_t shard_count)
    : max_objects_(max_objects),
      modulus_(modulus),
      threshold_(modulus),  // start at rate 1.0
      stack_(false, histogram_quantum),
      histogram_(histogram_quantum),
      shard_scale_(shard_count == 0 ? 1.0 : static_cast<double>(shard_count)) {
  if (max_objects_ == 0) throw std::invalid_argument("max_objects must be > 0");
  if (modulus_ == 0) throw std::invalid_argument("modulus must be > 0");
}

void ShardsFixedSizeProfiler::access(const Request& req) {
  ++processed_;
  adjust_target_ += 1.0;
  const std::uint64_t h = hash64(req.key) % modulus_;
  if (h >= threshold_) return;  // below the (ever-tightening) sample
  ++sampled_;
  const double rate = current_rate();
  const double weight = 1.0 / rate;
  const std::uint64_t distance = stack_.access(req);
  if (distance == 0) {
    histogram_.record_infinite(weight);
    tracked_.emplace(req.key, h);
    heap_.push_back(HeapEntry{h, req.key});
    std::push_heap(heap_.begin(), heap_.end(), HeapCompare{});
    while (tracked_.size() > max_objects_) evict_largest_hash();
  } else {
    histogram_.record(
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(distance) / rate *
                                shard_scale_))),
        weight);
  }
}

void ShardsFixedSizeProfiler::absorb(const ShardsFixedSizeProfiler& other) {
  histogram_.merge(other.histogram_);
  adjust_target_ += other.adjust_target_;
  processed_ += other.processed_;
  sampled_ += other.sampled_;
  degradations_ += other.degradations_;
}

void ShardsFixedSizeProfiler::scale_mass(double factor) {
  histogram_.scale(factor);
  adjust_target_ *= factor;
}

void ShardsFixedSizeProfiler::evict_largest_hash() {
  const std::uint64_t largest = heap_.front().hash_value;
  // Evict every tracked object at this hash value and lower the threshold
  // so no future reference at or above it is sampled.
  while (!heap_.empty() && heap_.front().hash_value == largest) {
    const HeapEntry entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
    heap_.pop_back();
    stack_.remove(entry.key);
    tracked_.erase(entry.key);
  }
  threshold_ = largest;
}

bool ShardsFixedSizeProfiler::shrink_capacity() {
  if (max_objects_ <= 1) return false;
  max_objects_ /= 2;
  while (tracked_.size() > max_objects_) evict_largest_hash();
  ++degradations_;
  return true;
}

Status ShardsFixedSizeProfiler::save_state(std::string* out) const {
  if (out == nullptr) return invalid_argument_error("save_state: null output");
  out->clear();
  ckpt::StateWriter writer(*out);
  std::string core;
  ckpt::append_u64(core, modulus_);
  ckpt::append_double(core, shard_scale_);
  ckpt::append_u64(core, max_objects_);
  ckpt::append_u64(core, threshold_);
  ckpt::append_u64(core, processed_);
  ckpt::append_u64(core, sampled_);
  ckpt::append_u64(core, degradations_);
  ckpt::append_double(core, adjust_target_);
  const auto bins = histogram_.sorted_bins();
  ckpt::append_u64(core, bins.size());
  for (const auto& [dist, weight] : bins) {
    ckpt::append_u64(core, dist);
    ckpt::append_double(core, weight);
  }
  ckpt::append_double(core, histogram_.infinite_weight());
  ckpt::append_double(core, histogram_.total_weight());
  // The eviction heap travels verbatim (its array order is part of the
  // bit-identity contract); the tracked map travels key-sorted so the
  // payload is canonical.
  ckpt::append_u64(core, heap_.size());
  for (const HeapEntry& entry : heap_) {
    ckpt::append_u64(core, entry.hash_value);
    ckpt::append_u64(core, entry.key);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> tracked(
      tracked_.begin(), tracked_.end());
  std::sort(tracked.begin(), tracked.end());
  ckpt::append_u64(core, tracked.size());
  for (const auto& [key, hash_value] : tracked) {
    ckpt::append_u64(core, key);
    ckpt::append_u64(core, hash_value);
  }
  writer.add_section(ckpt::kSectionModelCore, core);
  std::string stack;
  stack_.save_state(stack);
  writer.add_section(ckpt::kSectionLruStack, stack);
  return Status::ok();
}

Status ShardsFixedSizeProfiler::load_state(const std::string& payload) {
  auto parsed = ckpt::StateReader::parse(payload);
  if (!parsed.is_ok()) return parsed.status();
  const ckpt::StateReader& sections = parsed.value();
  const std::string* core = sections.find(ckpt::kSectionModelCore);
  const std::string* stack = sections.find(ckpt::kSectionLruStack);
  if (core == nullptr || stack == nullptr) {
    return bad_record_error(
        "fixed-size SHARDS snapshot is missing a required section");
  }
  ckpt::ByteReader reader(*core);
  std::uint64_t modulus = 0, max_objects = 0, threshold = 0;
  double shard_scale = 0.0;
  if (!reader.read_u64(&modulus) || !reader.read_double(&shard_scale) ||
      !reader.read_u64(&max_objects) || !reader.read_u64(&threshold)) {
    return truncated_error(
        "fixed-size SHARDS snapshot core section is truncated");
  }
  if (modulus != modulus_ || shard_scale != shard_scale_) {
    return bad_record_error(
        "fixed-size SHARDS snapshot was taken with different profiler options");
  }
  // max_objects is run state, not config: shrink_capacity() halves it
  // mid-run. It still must be a sane value for this modulus.
  if (max_objects == 0 || threshold > modulus) {
    return bad_record_error(
        "fixed-size SHARDS snapshot carries impossible budget state");
  }
  std::uint64_t processed = 0, sampled = 0, degradations = 0;
  double adjust_target = 0.0;
  std::uint64_t bin_count = 0;
  if (!reader.read_u64(&processed) || !reader.read_u64(&sampled) ||
      !reader.read_u64(&degradations) || !reader.read_double(&adjust_target) ||
      !reader.read_u64(&bin_count)) {
    return truncated_error(
        "fixed-size SHARDS snapshot core section is truncated");
  }
  if (bin_count > reader.remaining() / 16) {
    return bad_record_error(
        "fixed-size SHARDS snapshot histogram length is impossible");
  }
  std::vector<std::pair<std::uint64_t, double>> bins;
  bins.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    std::uint64_t dist = 0;
    double weight = 0.0;
    if (!reader.read_u64(&dist) || !reader.read_double(&weight)) {
      return truncated_error("fixed-size SHARDS snapshot histogram is truncated");
    }
    bins.emplace_back(dist, weight);
  }
  double infinite = 0.0, total = 0.0;
  if (!reader.read_double(&infinite) || !reader.read_double(&total)) {
    return truncated_error("fixed-size SHARDS snapshot histogram is truncated");
  }
  std::uint64_t heap_size = 0;
  if (!reader.read_u64(&heap_size)) {
    return truncated_error("fixed-size SHARDS snapshot heap is truncated");
  }
  if (heap_size > reader.remaining() / 16) {
    return bad_record_error(
        "fixed-size SHARDS snapshot heap length is impossible");
  }
  std::vector<HeapEntry> heap;
  heap.reserve(heap_size);
  for (std::uint64_t i = 0; i < heap_size; ++i) {
    HeapEntry entry{};
    if (!reader.read_u64(&entry.hash_value) || !reader.read_u64(&entry.key)) {
      return truncated_error("fixed-size SHARDS snapshot heap is truncated");
    }
    heap.push_back(entry);
  }
  if (!std::is_heap(heap.begin(), heap.end(), HeapCompare{})) {
    return bad_record_error(
        "fixed-size SHARDS snapshot heap does not satisfy the heap property");
  }
  std::uint64_t tracked_count = 0;
  if (!reader.read_u64(&tracked_count)) {
    return truncated_error("fixed-size SHARDS snapshot tracked map is truncated");
  }
  if (tracked_count > reader.remaining() / 16) {
    return bad_record_error(
        "fixed-size SHARDS snapshot tracked-map length is impossible");
  }
  std::unordered_map<std::uint64_t, std::uint64_t> tracked;
  tracked.reserve(tracked_count);
  for (std::uint64_t i = 0; i < tracked_count; ++i) {
    std::uint64_t key = 0, hash_value = 0;
    if (!reader.read_u64(&key) || !reader.read_u64(&hash_value)) {
      return truncated_error(
          "fixed-size SHARDS snapshot tracked map is truncated");
    }
    if (!tracked.emplace(key, hash_value).second) {
      return bad_record_error(
          "fixed-size SHARDS snapshot tracked map repeats a key");
    }
  }
  if (!reader.exhausted()) {
    return bad_record_error(
        "fixed-size SHARDS snapshot core section has trailing bytes");
  }
  ckpt::ByteReader stack_reader(*stack);
  if (!stack_.load_state(stack_reader) || !stack_reader.exhausted()) {
    return bad_record_error(
        "fixed-size SHARDS snapshot stack section is corrupt");
  }
  max_objects_ = static_cast<std::size_t>(max_objects);
  threshold_ = threshold;
  processed_ = processed;
  sampled_ = sampled;
  degradations_ = degradations;
  adjust_target_ = adjust_target;
  histogram_.restore(bins, infinite, total);
  heap_ = std::move(heap);
  tracked_ = std::move(tracked);
  return Status::ok();
}

std::uint64_t ShardsFixedSizeProfiler::space_overhead_bytes() const noexcept {
  // The heap can briefly hold stale entries for already-evicted keys (one
  // push per cold insert, group pops on evict), so it is charged by its
  // own size, not the tracked count.
  return stack_.space_overhead_bytes() + heap_.size() * sizeof(HeapEntry) +
         tracked_.size() * (2 * sizeof(std::uint64_t) + 32) +
         histogram_.bin_count() * 16;
}

MissRatioCurve ShardsFixedSizeProfiler::mrc() const {
  // SHARDS-adj: the recorded weights should integrate to the processed
  // request count; apply the residual to the first bucket.
  DistanceHistogram adjusted = histogram_;
  const double diff = adjust_target_ - histogram_.total_weight();
  if (diff != 0.0) adjusted.record(1, diff);
  return adjusted.to_mrc();
}

}  // namespace krr
