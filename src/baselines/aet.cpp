#include "baselines/aet.h"

#include <algorithm>

#include "baselines/reuse_state.h"

namespace krr {

AetProfiler::AetProfiler(std::uint32_t sub_buckets, std::uint64_t stream_scale)
    : collector_(sub_buckets, stream_scale) {}

void AetProfiler::access(const Request& req) { collector_.access(req.key); }

MissRatioCurve AetProfiler::mrc(const std::vector<double>& sizes) const {
  MissRatioCurve curve;
  const double total = static_cast<double>(collector_.processed());
  if (total <= 0.0) return curve;
  std::vector<double> targets(sizes);
  std::sort(targets.begin(), targets.end());
  curve.add_point(0.0, 1.0);

  // Sweep t upward; P(t) is constant between consecutive bin bounds, so the
  // integral of P grows linearly segment by segment. Whenever it crosses a
  // target cache size c, AET(c) lies in this segment and mr(c) = P(segment).
  double greater = total;  // references with reuse time > t (cold = infinite)
  double integral = 0.0;
  double prev_t = 0.0;
  std::size_t next_target = 0;
  collector_.histogram().for_each_bin([&](std::uint64_t upper, double weight) {
    if (next_target >= targets.size()) return;
    const double t_next = static_cast<double>(upper);
    const double p = greater / total;
    const double seg = p * (t_next - prev_t);
    while (next_target < targets.size() && integral + seg >= targets[next_target]) {
      curve.add_point(targets[next_target], p);
      ++next_target;
    }
    integral += seg;
    greater -= weight;
    prev_t = t_next;
  });
  // Beyond the largest finite reuse time only cold references remain.
  const double tail_p = collector_.cold_count() / total;
  while (next_target < targets.size()) {
    curve.add_point(targets[next_target], tail_p);
    ++next_target;
  }
  return curve;
}

MissRatioCurve AetProfiler::mrc(std::size_t n_points) const {
  if (collector_.distinct_objects() == 0) return MissRatioCurve{};
  // estimated_distinct() == distinct_objects() while unsampled; under
  // governance it rescales the grid back to full-stream units.
  return mrc(evenly_spaced_sizes(collector_.estimated_distinct(), n_points));
}


void AetProfiler::save_state(std::string& out) const {
  save_collector_state(collector_, out);
}

bool AetProfiler::load_state(ckpt::ByteReader& reader) {
  return load_collector_state(collector_, reader);
}

}  // namespace krr
