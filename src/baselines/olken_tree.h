#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/checkpoint.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/prng.h"

namespace krr {

/// Olken's balanced-tree LRU stack (Olken 1981) — the O(N logM)
/// implementation the paper benchmarks against (§5.1), here as a
/// size-augmented treap keyed by last-access time. The stack distance of a
/// reference is one plus the number of tree nodes with a later access time.
///
/// Functionally identical to LruStackProfiler (Fenwick formulation); kept
/// as an independent implementation for cross-validation and because,
/// unlike the Fenwick tree, it supports removing objects — which the
/// fixed-size SHARDS variant needs when it lowers its sampling threshold.
class OlkenTreeProfiler {
 public:
  explicit OlkenTreeProfiler(bool byte_granularity = false,
                             std::uint64_t histogram_quantum = 1,
                             std::uint64_t seed = 1);

  /// Processes one reference; returns its stack distance (0 when cold).
  std::uint64_t access(const Request& req);

  /// Removes an object from the stack entirely (fixed-size SHARDS
  /// eviction). No-op if the key is not tracked.
  void remove(std::uint64_t key);

  /// Evicts the `count` least-recently-used objects — Mattson's bounded-
  /// eviction trick: reuses of evicted keys come back as cold misses,
  /// which is exactly what a cache smaller than the retained depth would
  /// see, so the curve stays correct below that depth. Returns the number
  /// actually evicted.
  std::uint64_t evict_oldest(std::size_t count);

  /// Removes every tracked object whose key fails the predicate (SHARDS
  /// rate-halving: survivors of a threshold drop are an exact subset).
  /// Returns the eviction count.
  std::uint64_t retain(const std::function<bool(std::uint64_t)>& keep);

  /// Estimated resident bytes (governance accounting): live treap nodes +
  /// last-access map entries + histogram bins. Logical accounting, like
  /// the KRR stack's — freed slots on the node free-list are not charged.
  std::uint64_t space_overhead_bytes() const noexcept;

  const DistanceHistogram& histogram() const noexcept { return histogram_; }
  MissRatioCurve mrc() const { return histogram_.to_mrc(); }

  std::size_t tracked_objects() const noexcept { return last_access_.size(); }
  std::uint64_t processed() const noexcept { return time_; }

  /// Checkpoint support. The treap itself is not serialized: a reference's
  /// stack distance is the total weight of nodes with a later access time,
  /// which depends only on the (time, weight) value set, never on tree
  /// shape. So save captures the last-access map, histogram, clock, and
  /// RNG; load rebuilds a fresh treap by reinserting entries in ascending
  /// access-time order and then reinstates the saved RNG words, making the
  /// resumed run's outputs bit-identical to the uninterrupted one.
  void save_state(std::string& out) const;
  bool load_state(ckpt::ByteReader& reader);

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::uint64_t time;
    std::uint64_t heap_priority;
    std::uint64_t subtree_weight;  // bytes (or object count) in subtree
    std::uint32_t size;            // node count in subtree
    std::uint32_t left;
    std::uint32_t right;
    std::uint32_t weight;          // this node's bytes (or 1)
  };

  std::uint64_t weight_of(std::uint32_t n) const {
    return n == kNil ? 0 : nodes_[n].subtree_weight;
  }
  std::uint32_t size_of(std::uint32_t n) const {
    return n == kNil ? 0 : nodes_[n].size;
  }
  void pull(std::uint32_t n);
  /// Splits by time: left subtree holds times <= t, right holds times > t.
  void split(std::uint32_t n, std::uint64_t t, std::uint32_t& left,
             std::uint32_t& right);
  std::uint32_t merge(std::uint32_t a, std::uint32_t b);
  std::uint32_t alloc(std::uint64_t t, std::uint32_t weight);
  void insert(std::uint64_t t, std::uint32_t weight);
  void erase(std::uint64_t t);
  /// Total weight of nodes with time strictly greater than t.
  std::uint64_t weight_after(std::uint64_t t);

  struct ObjectState {
    std::uint64_t last_time;
    std::uint32_t size;
  };

  bool byte_granularity_;
  DistanceHistogram histogram_;
  Xoshiro256ss rng_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t root_ = kNil;
  std::unordered_map<std::uint64_t, ObjectState> last_access_;
  std::uint64_t time_ = 0;
};

}  // namespace krr
