#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.h"
#include "util/retry.h"
#include "util/status.h"

namespace krr {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// What the ingestion layer does when it meets corruption (flipped bytes,
/// truncation, hostile headers). KRR is a statistical model (§4), so a
/// profile built from a trace with records dropped is still sound — the
/// non-strict policies exploit exactly that.
enum class RecoveryPolicy {
  /// Fail fast with a typed Status; never deliver a record from a stream
  /// known to be damaged. For archival/verification pipelines.
  kStrict,
  /// Skip damaged records/blocks (resynchronizing on the v2 block magic
  /// when framing is lost) and keep going, up to
  /// TraceReaderOptions::max_bad_records; every drop is counted in the
  /// report. The production-profiling default.
  kSkipAndCount,
  /// Keep everything parsed before the first corruption and stop there
  /// with an OK status. For salvaging partially downloaded traces.
  kBestEffort,
};

const char* recovery_policy_name(RecoveryPolicy policy);

struct TraceReaderOptions {
  RecoveryPolicy policy = RecoveryPolicy::kStrict;
  /// kSkipAndCount gives up with kResourceLimit once this many records
  /// have been dropped (guards against profiling pure garbage).
  std::uint64_t max_bad_records = 1024;
  /// Upper bound on records reserved up front when the stream is not
  /// seekable and the header's declared count cannot be cross-checked
  /// against the stream size (hostile-header OOM guard).
  std::uint64_t max_preallocate_records = 1u << 20;
  /// Optional recovery-event tracing (cat "ingest", lane 0): checksum
  /// failures, resync scans with bytes discarded, and the truncation cut.
  /// Corruption events are rare by construction, so these are emitted
  /// inline, not stride-gated. Non-owning; may be null.
  obs::Tracer* tracer = nullptr;
  /// load_trace_file only: kIoError results (open races, flaky mounts,
  /// injected trace.read faults) restart the whole read under this policy.
  /// The default (max_attempts = 1) keeps the old fail-fast behavior;
  /// every restart is counted in TraceReadReport::read_retries and traced
  /// as an ingest.read_retry instant.
  RetryPolicy read_retry{.max_attempts = 1};
};

/// Ingestion accounting, valid whether or not reading succeeded. A clean
/// read has records_skipped == checksum_failures == 0 and
/// truncated_tail == false.
struct TraceReadReport {
  std::uint64_t records_read = 0;      ///< records delivered to the caller
  std::uint64_t records_skipped = 0;   ///< records dropped by recovery
  std::uint64_t checksum_failures = 0; ///< v2 blocks whose CRC32 mismatched
  std::uint64_t resyncs = 0;           ///< scans forward to a v2 block magic
  std::uint64_t bytes_read = 0;        ///< stream bytes consumed (any purpose)
  std::uint64_t bytes_discarded = 0;   ///< bytes consumed by resync scans
  std::uint64_t declared_records = 0;  ///< the header's record count claim
  std::uint32_t format_version = 0;    ///< 1 or 2 once the header parsed
  std::uint64_t read_retries = 0;      ///< whole-file retries (load_trace_file)
  bool truncated_tail = false;         ///< stream ended before declared end
};

/// Mirrors the ingestion accounting into `ingest.*` registry counters
/// (records_read, records_skipped, checksum_failures, resyncs, bytes_read,
/// bytes_discarded), so trace-reader telemetry lands in the same snapshot
/// as the profiler's. Call once per finished read; the counters accumulate
/// across multiple reads into the same registry.
void fold_ingest_metrics(const TraceReadReport& report,
                         obs::MetricsRegistry& registry);

/// Streaming trace reader for the binary formats: v1 (unchecksummed 13-byte
/// records) and v2 (CRC32-checksummed blocks, written by
/// write_trace_binary_v2). The format is auto-detected from the header.
///
///   TraceReader reader(is, {.policy = RecoveryPolicy::kSkipAndCount});
///   Request r;
///   while (reader.next(r)) profiler.access(r);
///   if (!reader.status().is_ok()) ...   // typed failure
///   reader.report();                    // skip/corruption accounting
///
/// next() never throws; header and record problems surface through
/// status() according to the recovery policy.
class TraceReader {
 public:
  explicit TraceReader(std::istream& is, const TraceReaderOptions& options = {});

  /// Delivers the next record. Returns false at end of stream *or* on
  /// error — distinguish via status(): OK means a clean (or policy-
  /// accepted) end.
  bool next(Request& out);

  const Status& status() const noexcept { return status_; }
  const TraceReadReport& report() const noexcept { return report_; }

  /// A hint for vector::reserve, already clamped against the stream size
  /// (when seekable) and max_preallocate_records — never trust the raw
  /// header count.
  std::uint64_t reserve_hint() const noexcept { return reserve_hint_; }

 private:
  enum class State { kUnopened, kStreaming, kDone, kError };

  void open();
  bool next_v1(Request& out);
  bool next_v2(Request& out);
  bool load_block();
  bool resync_to_block_magic();
  bool fail(Status status);
  void finish_truncated();
  bool count_skipped(std::uint64_t n);
  std::size_t read_bytes(unsigned char* out, std::size_t n);
  void unread(const unsigned char* data, std::size_t n);

  std::istream& is_;
  TraceReaderOptions options_;
  Status status_;
  TraceReadReport report_;
  State state_ = State::kUnopened;
  std::uint64_t reserve_hint_ = 0;
  std::uint64_t remaining_bytes_ = 0;  ///< stream bytes past the header
  bool seekable_ = false;
  std::uint32_t records_per_block_ = 0;   // v2 only
  std::vector<Request> block_;            // v2: current decoded block
  std::size_t block_pos_ = 0;
  std::vector<unsigned char> payload_;    // v2: raw block payload buffer
  std::vector<unsigned char> pending_;    // bytes pushed back during resync
};

/// Reads a whole binary trace (v1 or v2) under the given policy. On
/// success the report (if provided) holds the ingestion accounting; on
/// failure it is still filled with everything counted up to the error.
StatusOr<std::vector<Request>> read_trace(std::istream& is,
                                          const TraceReaderOptions& options = {},
                                          TraceReadReport* report = nullptr);

/// File wrapper around read_trace; adds kIoError for open failures.
StatusOr<std::vector<Request>> load_trace_file(const std::string& path,
                                               const TraceReaderOptions& options = {},
                                               TraceReadReport* report = nullptr);

/// Writes trace format v2: the v1 header extended with a block size and a
/// header CRC32, followed by blocks of up to records_per_block records,
/// each framed as (block magic, record count, payload CRC32, payload).
/// Readers can verify integrity per block and resynchronize on the magic.
void write_trace_binary_v2(std::ostream& os, const std::vector<Request>& trace,
                           std::uint32_t records_per_block = 4096);

}  // namespace krr
