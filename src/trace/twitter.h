#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/prng.h"

namespace krr {

/// Parameter set for a synthetic in-memory KV-cache workload in the style of
/// one Twitter production cluster (Yang et al., OSDI '20). The real traces
/// are multi-hundred-GB downloads, so each profile captures the published
/// shape: Zipf-popular keys, heavy-tailed value sizes stable per key, a
/// get/set mix, and (for Type A clusters) a recency-driven drift component.
struct TwitterProfile {
  std::string name;          ///< cluster id, e.g. "cluster26.0"
  std::uint64_t key_count;   ///< distinct keys
  double zipf_alpha;         ///< key popularity skew
  double write_fraction;     ///< fraction of set operations
  double drift_weight;       ///< fraction of requests from a sliding window
  std::uint64_t drift_window;
  double drift_step;
  // value sizes: generalized-Pareto-ish tail over a lognormal body
  double size_log_mean;      ///< lognormal body location (log bytes)
  double size_log_sigma;     ///< lognormal body scale
  std::uint32_t size_min;
  std::uint32_t size_max;
  /// Popularity-correlated size gradient across the key space (1.0 = off);
  /// see MsrProfile::size_region_amplitude for semantics.
  double size_region_amplitude = 1.0;
};

/// Built-in profiles for the four clusters the paper evaluates
/// (26.0, 34.1, 45.0, 52.7). 34.1 is tuned Type A; 45.0 Type B, matching
/// the paper's Fig. 5.2 placement.
const std::vector<TwitterProfile>& twitter_profiles();

/// Looks up a built-in profile by name; throws std::out_of_range if absent.
const TwitterProfile& twitter_profile(const std::string& name);

/// Synthetic Twitter-style KV trace generator (see TwitterProfile).
class TwitterGenerator final : public TraceGenerator {
 public:
  /// uniform_size != 0 forces fixed object sizes (for §5.3).
  TwitterGenerator(TwitterProfile profile, std::uint64_t seed,
                   std::uint64_t key_count_override = 0,
                   std::uint32_t uniform_size = 0);

  Request next() override;
  void reset() override;
  std::string name() const override;

  const TwitterProfile& profile() const noexcept { return profile_; }

  /// Deterministic per-key value size under this profile's size model.
  std::uint32_t size_for_key(std::uint64_t key) const;

 private:
  TwitterProfile profile_;
  std::uint64_t seed_;
  std::uint32_t uniform_size_;
  ZipfianDraw zipf_;
  Xoshiro256ss rng_;
  double drift_base_ = 0.0;
};

}  // namespace krr
