#include "trace/synthetic.h"

#include <algorithm>
#include <stdexcept>

namespace krr {

LoopGenerator::LoopGenerator(std::uint64_t n, std::uint32_t object_size)
    : n_(n), object_size_(object_size) {
  if (n == 0) throw std::invalid_argument("loop length must be > 0");
}

Request LoopGenerator::next() {
  const std::uint64_t key = pos_;
  pos_ = (pos_ + 1) % n_;
  return Request{key, object_size_, Op::kGet};
}

void LoopGenerator::reset() { pos_ = 0; }

std::string LoopGenerator::name() const { return "loop"; }

StackDepthGenerator::StackDepthGenerator(double reuse_prob, std::uint64_t depth_range,
                                         std::uint64_t seed, std::uint32_t object_size)
    : reuse_prob_(reuse_prob),
      depth_range_(depth_range),
      seed_(seed),
      rng_(seed),
      object_size_(object_size) {
  if (reuse_prob < 0.0 || reuse_prob > 1.0) {
    throw std::invalid_argument("reuse probability must be in [0,1]");
  }
  if (depth_range == 0) throw std::invalid_argument("depth range must be > 0");
}

Request StackDepthGenerator::next() {
  std::uint64_t key;
  if (!recent_.empty() && rng_.next_double() < reuse_prob_) {
    const std::uint64_t depth =
        rng_.next_below(std::min<std::uint64_t>(depth_range_, recent_.size()));
    key = recent_[depth];
    recent_.erase(recent_.begin() + static_cast<std::ptrdiff_t>(depth));
  } else {
    key = next_key_++;
  }
  recent_.insert(recent_.begin(), key);
  // Keep only what can ever be re-referenced; anything deeper is dead.
  if (recent_.size() > depth_range_) recent_.resize(depth_range_);
  return Request{key, object_size_, Op::kGet};
}

void StackDepthGenerator::reset() {
  rng_ = Xoshiro256ss(seed_);
  recent_.clear();
  next_key_ = 0;
}

std::string StackDepthGenerator::name() const { return "stack_depth"; }

InterleaveGenerator::InterleaveGenerator(
    std::vector<std::unique_ptr<TraceGenerator>> streams, std::vector<double> weights,
    std::uint64_t seed, std::uint64_t key_stride)
    : streams_(std::move(streams)), seed_(seed), rng_(seed), key_stride_(key_stride) {
  if (streams_.empty()) throw std::invalid_argument("interleave needs >= 1 stream");
  if (weights.size() != streams_.size()) {
    throw std::invalid_argument("interleave weights must match stream count");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("interleave weights must be > 0");
    total += w;
  }
  double cum = 0.0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    cum += w / total;
    cumulative_.push_back(cum);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

Request InterleaveGenerator::next() {
  const double u = rng_.next_double();
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
      cumulative_.begin());
  Request r = streams_[i]->next();
  r.key += key_stride_ * (i + 1);
  return r;
}

void InterleaveGenerator::reset() {
  rng_ = Xoshiro256ss(seed_);
  for (auto& s : streams_) s->reset();
}

std::string InterleaveGenerator::name() const { return "interleave"; }

ReplayGenerator::ReplayGenerator(std::vector<Request> trace, std::string name)
    : trace_(std::move(trace)), name_(std::move(name)) {
  if (trace_.empty()) throw std::invalid_argument("replay trace must be non-empty");
}

Request ReplayGenerator::next() {
  if (pos_ == trace_.size()) {
    pos_ = 0;
    wrapped_ = true;
  }
  return trace_[pos_++];
}

void ReplayGenerator::reset() {
  pos_ = 0;
  wrapped_ = false;
}

std::string ReplayGenerator::name() const { return name_; }

}  // namespace krr
