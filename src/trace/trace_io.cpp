#include "trace/trace_io.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <string_view>

#include "trace/trace_codec.h"

namespace krr {

namespace c = codec;

namespace {

/// Strips spaces, tabs, and CR from both ends (CSV files routinely arrive
/// with CRLF endings or padded fields).
std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Digits-only unsigned parse: refuses signs (so "-1" cannot wrap the way
/// std::stoul silently does), stray characters, and overflow.
bool parse_u64(std::string_view s, std::uint64_t* out) {
  s = trim(s);
  if (s.empty()) return false;
  for (const char ch : s) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) return false;
  }
  const auto result = std::from_chars(s.data(), s.data() + s.size(), *out);
  return result.ec == std::errc() && result.ptr == s.data() + s.size();
}

bool parse_csv_row(std::string_view line, Request* r) {
  const auto first = line.find(',');
  if (first == std::string_view::npos) return false;
  const auto second = line.find(',', first + 1);
  if (second == std::string_view::npos) return false;
  if (line.find(',', second + 1) != std::string_view::npos) return false;
  std::uint64_t key = 0;
  std::uint64_t size = 0;
  if (!parse_u64(line.substr(0, first), &key)) return false;
  if (!parse_u64(line.substr(first + 1, second - first - 1), &size)) return false;
  if (size > std::numeric_limits<std::uint32_t>::max()) return false;
  const std::string_view op = trim(line.substr(second + 1));
  if (op == "get") {
    r->op = Op::kGet;
  } else if (op == "set") {
    r->op = Op::kSet;
  } else {
    return false;
  }
  r->key = key;
  r->size = static_cast<std::uint32_t>(size);
  return true;
}

}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<Request>& trace) {
  os << "key,size,op\n";
  for (const Request& r : trace) {
    os << r.key << ',' << r.size << ',' << (r.op == Op::kSet ? "set" : "get") << '\n';
  }
}

StatusOr<std::vector<Request>> read_trace_csv(std::istream& is,
                                              const TraceReaderOptions& options,
                                              TraceReadReport* report) {
  TraceReadReport local;
  TraceReadReport& rep = report ? *report : local;
  rep = {};
  std::vector<Request> trace;
  std::string line;
  if (!std::getline(is, line)) {
    return corrupt_header_error("empty trace CSV");
  }
  if (trim(line).rfind("key,", 0) != 0) {
    return corrupt_header_error("missing trace CSV header");
  }
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    Request r;
    if (!parse_csv_row(line, &r)) {
      switch (options.policy) {
        case RecoveryPolicy::kStrict:
          rep.records_read = trace.size();
          return bad_record_error("malformed trace CSV at line " +
                                  std::to_string(lineno));
        case RecoveryPolicy::kSkipAndCount:
          if (++rep.records_skipped > options.max_bad_records) {
            rep.records_read = trace.size();
            return resource_limit_error(
                "more than " + std::to_string(options.max_bad_records) +
                " bad records (--max-bad-records); refusing to profile garbage");
          }
          continue;
        case RecoveryPolicy::kBestEffort:
          rep.truncated_tail = true;
          rep.records_read = trace.size();
          return trace;
      }
    }
    trace.push_back(r);
  }
  rep.records_read = trace.size();
  return trace;
}

std::vector<Request> read_trace_csv(std::istream& is) {
  return value_or_throw(
      read_trace_csv(is, {.policy = RecoveryPolicy::kStrict}));
}

void write_trace_binary(std::ostream& os, const std::vector<Request>& trace) {
  os.write(c::kMagic, sizeof(c::kMagic));
  c::put_u32(os, c::kVersion1);
  c::put_u64(os, trace.size());
  unsigned char rec[c::kRecordBytes];
  for (const Request& r : trace) {
    c::encode_record(rec, r);
    os.write(reinterpret_cast<const char*>(rec), sizeof(rec));
  }
}

std::vector<Request> read_trace_binary(std::istream& is) {
  return value_or_throw(read_trace(is, {.policy = RecoveryPolicy::kStrict}));
}

void save_trace(const std::string& path, const std::vector<Request>& trace,
                TraceFormat format) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw StatusError(io_error("cannot open for write: " + path));
  if (format == TraceFormat::kV2) {
    write_trace_binary_v2(os, trace);
  } else {
    write_trace_binary(os, trace);
  }
  os.flush();
  if (!os) throw StatusError(io_error("write failed: " + path));
}

std::vector<Request> load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw StatusError(io_error("cannot open for read: " + path));
  return value_or_throw(read_trace(is, {.policy = RecoveryPolicy::kStrict}));
}

}  // namespace krr
