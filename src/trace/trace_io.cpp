#include "trace/trace_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace krr {

namespace {

constexpr char kMagic[8] = {'K', 'R', 'R', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  std::array<char, 4> b;
  for (int i = 0; i < 4; ++i) b[static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
  os.write(b.data(), b.size());
}

void put_u64(std::ostream& os, std::uint64_t v) {
  std::array<char, 8> b;
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
  os.write(b.data(), b.size());
}

std::uint32_t get_u32(std::istream& is) {
  std::array<unsigned char, 4> b;
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!is) throw std::runtime_error("truncated trace stream");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::array<unsigned char, 8> b;
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!is) throw std::runtime_error("truncated trace stream");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<Request>& trace) {
  os << "key,size,op\n";
  for (const Request& r : trace) {
    os << r.key << ',' << r.size << ',' << (r.op == Op::kSet ? "set" : "get") << '\n';
  }
}

std::vector<Request> read_trace_csv(std::istream& is) {
  std::vector<Request> trace;
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty trace CSV");
  if (line.rfind("key,", 0) != 0) throw std::runtime_error("missing trace CSV header");
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string key_s, size_s, op_s;
    if (!std::getline(ss, key_s, ',') || !std::getline(ss, size_s, ',') ||
        !std::getline(ss, op_s)) {
      throw std::runtime_error("malformed trace CSV at line " + std::to_string(lineno));
    }
    Request r;
    try {
      r.key = std::stoull(key_s);
      r.size = static_cast<std::uint32_t>(std::stoul(size_s));
    } catch (const std::exception&) {
      throw std::runtime_error("bad number in trace CSV at line " + std::to_string(lineno));
    }
    if (op_s == "get") {
      r.op = Op::kGet;
    } else if (op_s == "set") {
      r.op = Op::kSet;
    } else {
      throw std::runtime_error("bad op in trace CSV at line " + std::to_string(lineno));
    }
    trace.push_back(r);
  }
  return trace;
}

void write_trace_binary(std::ostream& os, const std::vector<Request>& trace) {
  os.write(kMagic, sizeof(kMagic));
  put_u32(os, kVersion);
  put_u64(os, trace.size());
  for (const Request& r : trace) {
    put_u64(os, r.key);
    put_u32(os, r.size);
    const char op = static_cast<char>(r.op);
    os.write(&op, 1);
  }
}

std::vector<Request> read_trace_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad trace magic");
  }
  const std::uint32_t version = get_u32(is);
  if (version != kVersion) {
    throw std::runtime_error("unsupported trace version " + std::to_string(version));
  }
  const std::uint64_t count = get_u64(is);
  std::vector<Request> trace;
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Request r;
    r.key = get_u64(is);
    r.size = get_u32(is);
    char op;
    is.read(&op, 1);
    if (!is) throw std::runtime_error("truncated trace payload");
    if (op != 0 && op != 1) throw std::runtime_error("bad op byte in trace");
    r.op = static_cast<Op>(op);
    trace.push_back(r);
  }
  return trace;
}

void save_trace(const std::string& path, const std::vector<Request>& trace) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_trace_binary(os, trace);
  if (!os) throw std::runtime_error("write failed: " + path);
}

std::vector<Request> load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_trace_binary(is);
}

}  // namespace krr
