#pragma once

// Internal little-endian wire codec for the binary trace formats, shared by
// trace_io.cpp (writers, legacy API) and trace_reader.cpp (fault-tolerant
// reader). Not installed through krr.h.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <ostream>

#include "trace/request.h"

namespace krr::codec {

inline constexpr char kMagic[8] = {'K', 'R', 'R', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kVersion1 = 1;
inline constexpr std::uint32_t kVersion2 = 2;
/// "KRBL" as a little-endian u32 — the per-block sync marker of format v2.
inline constexpr std::uint32_t kBlockMagic = 0x4C42524Bu;
inline constexpr std::size_t kRecordBytes = 13;   // key u64 + size u32 + op u8
inline constexpr std::size_t kBlockHeaderBytes = 12;  // magic + count + crc
/// v1: magic + version + count. v2 adds records_per_block + header crc.
inline constexpr std::size_t kV1HeaderBytes = 20;
inline constexpr std::size_t kV2HeaderBytes = 28;
/// Upper bound on a sane records_per_block claim (16 Mi records ≈ 208 MB
/// per block is already absurd; anything larger is a hostile header).
inline constexpr std::uint32_t kMaxRecordsPerBlock = 1u << 24;

inline void encode_u32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline void encode_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint32_t decode_u32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

inline std::uint64_t decode_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

inline void encode_record(unsigned char* out, const Request& r) {
  encode_u64(out, r.key);
  encode_u32(out + 8, r.size);
  out[12] = static_cast<unsigned char>(r.op);
}

/// Decodes the fixed 13-byte record layout. The op byte is returned raw;
/// the caller validates it (0 or 1) so recovery policies can react.
inline unsigned char decode_record(const unsigned char* in, Request* r) {
  r->key = decode_u64(in);
  r->size = decode_u32(in + 8);
  const unsigned char op = in[12];
  r->op = static_cast<Op>(op);
  return op;
}

inline void put_u32(std::ostream& os, std::uint32_t v) {
  unsigned char b[4];
  encode_u32(b, v);
  os.write(reinterpret_cast<const char*>(b), sizeof(b));
}

inline void put_u64(std::ostream& os, std::uint64_t v) {
  unsigned char b[8];
  encode_u64(b, v);
  os.write(reinterpret_cast<const char*>(b), sizeof(b));
}

}  // namespace krr::codec
