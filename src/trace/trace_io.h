#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.h"

namespace krr {

/// Writes a trace as CSV lines `key,size,op` (op is "get" or "set"),
/// preceded by a header. The textual format is for interchange with
/// external tooling; use the binary format for bulk storage.
void write_trace_csv(std::ostream& os, const std::vector<Request>& trace);

/// Parses the CSV format produced by write_trace_csv. Throws
/// std::runtime_error on malformed input.
std::vector<Request> read_trace_csv(std::istream& is);

/// Writes a trace in the library's packed little-endian binary format:
/// an 16-byte header ("KRRTRACE", version, count) followed by
/// 13-byte records (key u64, size u32, op u8).
void write_trace_binary(std::ostream& os, const std::vector<Request>& trace);

/// Reads the binary format; throws std::runtime_error on a bad magic,
/// version, or truncated payload.
std::vector<Request> read_trace_binary(std::istream& is);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_trace(const std::string& path, const std::vector<Request>& trace);
std::vector<Request> load_trace(const std::string& path);

}  // namespace krr
