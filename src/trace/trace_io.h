#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.h"
#include "trace/trace_reader.h"
#include "util/status.h"

namespace krr {

/// On-disk binary trace flavors. kV2 (checksummed blocks) is the default
/// for new files; readers auto-detect and accept both.
enum class TraceFormat { kV1 = 1, kV2 = 2 };

/// Writes a trace as CSV lines `key,size,op` (op is "get" or "set"),
/// preceded by a header. The textual format is for interchange with
/// external tooling; use the binary format for bulk storage.
void write_trace_csv(std::ostream& os, const std::vector<Request>& trace);

/// Parses the CSV format produced by write_trace_csv, under a recovery
/// policy. Tolerates CRLF line endings and surrounding whitespace in
/// fields; rejects negative or > 32-bit sizes as bad records instead of
/// letting them wrap. The report (optional) is filled either way.
StatusOr<std::vector<Request>> read_trace_csv(std::istream& is,
                                              const TraceReaderOptions& options,
                                              TraceReadReport* report = nullptr);

/// Legacy strict wrapper: throws StatusError (a std::runtime_error) on
/// malformed input.
std::vector<Request> read_trace_csv(std::istream& is);

/// Writes the v1 packed little-endian binary format: a 20-byte header
/// ("KRRTRACE", version, count) followed by 13-byte records (key u64,
/// size u32, op u8). Prefer write_trace_binary_v2 (trace_reader.h) for new
/// files — it adds per-block CRC32 integrity.
void write_trace_binary(std::ostream& os, const std::vector<Request>& trace);

/// Legacy strict reader for either binary format; throws StatusError (a
/// std::runtime_error) on a bad magic, version, checksum, hostile header,
/// or truncated payload. Fault-tolerant callers should use TraceReader /
/// read_trace (trace_reader.h) instead.
std::vector<Request> read_trace_binary(std::istream& is);

/// Convenience file wrappers (throw StatusError on I/O failure).
void save_trace(const std::string& path, const std::vector<Request>& trace,
                TraceFormat format = TraceFormat::kV2);
std::vector<Request> load_trace(const std::string& path);

}  // namespace krr
