#include "trace/generator.h"

#include <unordered_map>
#include <unordered_set>

namespace krr {

std::vector<Request> materialize(TraceGenerator& gen, std::size_t n) {
  std::vector<Request> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trace.push_back(gen.next());
  return trace;
}

std::size_t count_distinct(const std::vector<Request>& trace) {
  std::unordered_set<std::uint64_t> keys;
  keys.reserve(trace.size() / 2);
  for (const Request& r : trace) keys.insert(r.key);
  return keys.size();
}

std::uint64_t working_set_bytes(const std::vector<Request>& trace) {
  std::unordered_map<std::uint64_t, std::uint32_t> first_size;
  first_size.reserve(trace.size() / 2);
  std::uint64_t total = 0;
  for (const Request& r : trace) {
    if (first_size.emplace(r.key, r.size).second) total += r.size;
  }
  return total;
}

}  // namespace krr
