#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/prng.h"

namespace krr {

/// Parameter set for a synthetic block-I/O workload in the style of one MSR
/// Cambridge server trace. The real traces are not redistributable, so each
/// profile is a mixture of three reference processes over one block space:
///
///  * `zipf`  — IRM references to a Zipf-popular hot set (frequency-driven,
///              recency-agnostic: pushes the trace toward Type B, where
///              K-LRU miss ratios barely depend on K);
///  * `seq`   — long sequential scan runs that restart at random offsets
///              (streaming/loop behaviour);
///  * `drift` — uniform references inside a window that slides across the
///              block space (strongly recency-driven: pushes the trace
///              toward Type A, where the LRU-vs-RR gap is large).
///
/// Component weights must sum to 1. Block sizes for the variable-size
/// experiments are a deterministic per-key lognormal, rounded to
/// `size_align` bytes — mirroring §5.2's "size of the first request to each
/// object" convention.
struct MsrProfile {
  std::string name;
  std::uint64_t footprint;  ///< number of distinct blocks
  double zipf_weight;
  double seq_weight;
  double drift_weight;
  double zipf_theta;
  std::uint64_t seq_run_length;  ///< mean sequential run length
  std::uint64_t drift_window;    ///< sliding window size (blocks)
  double drift_step;             ///< blocks the window advances per request
  double write_fraction;
  // variable object size model (lognormal in bytes)
  double size_log_mean;
  double size_log_sigma;
  std::uint32_t size_min;
  std::uint32_t size_max;
  std::uint32_t size_align;
  /// Popularity-correlated size gradient: sizes are additionally scaled by
  /// amplitude^(1 - 2*key/footprint) (low keys large, high keys small), and
  /// the Zipf hot-set component emits *unscrambled* ranks so the hottest
  /// objects sit at low keys and are systematically larger than average.
  /// 1.0 disables the gradient. The persistent size/recency correlation is
  /// what makes the uniform-size assumption visibly fail (Fig. 5.3 panel
  /// A): the mean object size near the stack top differs from the global
  /// mean at every point in time.
  double size_region_amplitude = 1.0;
};

/// The 13 built-in profiles: src1, src2, web, proj, usr, hm, rsrch, stg,
/// ts, wdev, mds, prn, prxy.
const std::vector<MsrProfile>& msr_profiles();

/// Looks up a built-in profile by name; throws std::out_of_range if absent.
const MsrProfile& msr_profile(const std::string& name);

/// Synthetic MSR-style block trace generator (see MsrProfile).
class MsrGenerator final : public TraceGenerator {
 public:
  /// footprint_override/size scaling let benches shrink or grow a profile
  /// while keeping its shape. uniform_size != 0 forces fixed object sizes
  /// (the paper's 200-byte convention for §5.3).
  MsrGenerator(MsrProfile profile, std::uint64_t seed,
               std::uint64_t footprint_override = 0, std::uint32_t uniform_size = 0);

  Request next() override;
  void reset() override;
  std::string name() const override;

  const MsrProfile& profile() const noexcept { return profile_; }

  /// Deterministic per-key object size under this profile's size model.
  std::uint32_t size_for_key(std::uint64_t key) const;

 private:
  MsrProfile profile_;
  std::uint64_t seed_;
  std::uint32_t uniform_size_;
  ZipfianDraw zipf_;
  Xoshiro256ss rng_;
  // sequential scan state
  std::uint64_t seq_pos_ = 0;
  // drifting window state (fractional so sub-block steps accumulate)
  double drift_base_ = 0.0;
};

/// The merged "master" MSR workload (§5.5, Table 5.4): the 13 profile
/// streams interleaved uniformly at random over disjoint key spaces.
class MsrMasterGenerator final : public TraceGenerator {
 public:
  /// footprint_scale rescales every merged stream's footprint (values < 1
  /// shrink the master trace for quick runs).
  explicit MsrMasterGenerator(std::uint64_t seed, double footprint_scale = 1.0,
                              std::uint32_t uniform_size = 0);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  std::uint64_t seed_;
  Xoshiro256ss pick_rng_;
  std::vector<MsrGenerator> streams_;
  static constexpr std::uint64_t kKeyStride = 1ULL << 40;
};

}  // namespace krr
