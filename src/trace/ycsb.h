#pragma once

#include <cstdint>
#include <string>

#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/prng.h"

namespace krr {

/// YCSB core workload C: 100% reads, keys chosen from a Zipfian
/// distribution over `record_count` records (§5.2 evaluates alpha in
/// {0.5, 0.99, 1.5}). Keys are scrambled so popularity is spread across the
/// key space, as in YCSB proper.
class YcsbWorkloadC final : public TraceGenerator {
 public:
  YcsbWorkloadC(std::uint64_t record_count, double alpha, std::uint64_t seed,
                std::uint32_t object_size = 1);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  ZipfianDraw draw_;
  double alpha_;
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  std::uint32_t object_size_;
};

/// YCSB core workload E: scan-dominant. Each logical operation picks a scan
/// start key from a Zipfian distribution and scans a uniformly distributed
/// number of consecutive records. The generator flattens scans into the
/// per-record reference stream the cache sees. Per the paper's
/// configuration, the maximum scan length equals the number of distinct
/// records, which makes the workload strongly recency-driven (Type A).
class YcsbWorkloadE final : public TraceGenerator {
 public:
  /// max_scan_length == 0 means "record_count" (the paper's setting).
  YcsbWorkloadE(std::uint64_t record_count, double alpha, std::uint64_t seed,
                std::uint64_t max_scan_length = 0, std::uint32_t object_size = 1);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  ZipfianDraw draw_;
  double alpha_;
  std::uint64_t record_count_;
  std::uint64_t max_scan_length_;
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  std::uint32_t object_size_;
  // in-flight scan state
  std::uint64_t scan_next_ = 0;
  std::uint64_t scan_remaining_ = 0;
};

}  // namespace krr
