#include "trace/ycsb.h"

#include <stdexcept>

#include "util/hashing.h"
#include "util/table.h"

namespace krr {

YcsbWorkloadC::YcsbWorkloadC(std::uint64_t record_count, double alpha,
                             std::uint64_t seed, std::uint32_t object_size)
    : draw_(record_count, alpha),
      alpha_(alpha),
      seed_(seed),
      rng_(seed),
      object_size_(object_size) {}

Request YcsbWorkloadC::next() {
  const std::uint64_t key = hash64(draw_.draw(rng_)) % draw_.item_count();
  return Request{key, object_size_, Op::kGet};
}

void YcsbWorkloadC::reset() { rng_ = Xoshiro256ss(seed_); }

std::string YcsbWorkloadC::name() const {
  return "ycsb_C_alpha" + format_double(alpha_, 3);
}

YcsbWorkloadE::YcsbWorkloadE(std::uint64_t record_count, double alpha,
                             std::uint64_t seed, std::uint64_t max_scan_length,
                             std::uint32_t object_size)
    : draw_(record_count, alpha),
      alpha_(alpha),
      record_count_(record_count),
      max_scan_length_(max_scan_length == 0 ? record_count : max_scan_length),
      seed_(seed),
      rng_(seed),
      object_size_(object_size) {
  if (max_scan_length_ == 0) throw std::invalid_argument("max scan length must be > 0");
}

Request YcsbWorkloadE::next() {
  if (scan_remaining_ == 0) {
    // Start a new scan: Zipfian start key (unscrambled, so that scans run
    // over contiguous key ranges), uniform length in [1, max_scan_length].
    scan_next_ = draw_.draw(rng_);
    scan_remaining_ = 1 + rng_.next_below(max_scan_length_);
  }
  const std::uint64_t key = scan_next_ % record_count_;
  ++scan_next_;
  --scan_remaining_;
  return Request{key, object_size_, Op::kGet};
}

void YcsbWorkloadE::reset() {
  rng_ = Xoshiro256ss(seed_);
  scan_next_ = 0;
  scan_remaining_ = 0;
}

std::string YcsbWorkloadE::name() const {
  return "ycsb_E_alpha" + format_double(alpha_, 3);
}

}  // namespace krr
