#pragma once

#include <cstdint>

namespace krr {

/// Request operation type. The modeling pipeline treats every operation as
/// a touch of the key ("standard get/set", §5.2); the type is kept so that
/// simulators and trace writers can preserve workload semantics.
enum class Op : std::uint8_t {
  kGet = 0,
  kSet = 1,
};

/// One cache reference. `size` is the object size in bytes; fixed-size
/// pipelines ignore it (or generators emit a constant, e.g. the paper's
/// 200-byte convention).
struct Request {
  std::uint64_t key = 0;
  std::uint32_t size = 1;
  Op op = Op::kGet;

  friend bool operator==(const Request&, const Request&) = default;
};

}  // namespace krr
