#pragma once

#include <cstdint>
#include <string>

#include "trace/generator.h"
#include "util/prng.h"

namespace krr {

/// Zipfian integer generator over [0, n) with skew parameter theta (the
/// paper's alpha), following Gray et al.'s "Quickly generating billion-
/// record synthetic databases" method as used by YCSB. Item 0 is the most
/// popular; popularity of rank r is proportional to 1/(r+1)^theta.
///
/// theta == 1 is handled by nudging to 0.99999 (the harmonic special case),
/// matching YCSB's implementation behaviour.
class ZipfianDraw {
 public:
  ZipfianDraw(std::uint64_t n, double theta);

  /// Draws the next rank in [0, n) using the supplied PRNG.
  std::uint64_t draw(Xoshiro256ss& rng) const;

  std::uint64_t item_count() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

/// Self-contained Zipfian trace generator: keys are ranks (0 is hottest),
/// optionally scrambled through a 64-bit mixing hash so popular keys are
/// spread across the key space (YCSB's ScrambledZipfianGenerator). Sizes
/// are a fixed constant.
class ZipfianGenerator final : public TraceGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed,
                   bool scrambled = false, std::uint32_t object_size = 1);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  ZipfianDraw draw_;
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  bool scrambled_;
  std::uint32_t object_size_;
};

/// Uniform random keys over [0, n): the IRM workload where LRU, RR and
/// every K-LRU variant have identical expected miss ratios (a Type B
/// extreme used in tests).
class UniformGenerator final : public TraceGenerator {
 public:
  UniformGenerator(std::uint64_t n, std::uint64_t seed, std::uint32_t object_size = 1);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  std::uint64_t n_;
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  std::uint32_t object_size_;
};

}  // namespace krr
