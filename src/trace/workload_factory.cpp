#include "trace/workload_factory.h"

#include <stdexcept>

#include "trace/msr.h"
#include "trace/synthetic.h"
#include "trace/twitter.h"
#include "trace/ycsb.h"
#include "trace/zipf.h"

namespace krr {

namespace {

constexpr std::uint64_t kDefaultFootprint = 20000;

double parse_alpha(const std::string& text, const std::string& spec) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric parameter in workload spec: " + spec);
  }
}

std::unique_ptr<TraceGenerator> make_workload_impl(
    const std::string& spec, const WorkloadFactoryOptions& options) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string param = colon == std::string::npos ? "" : spec.substr(colon + 1);
  const std::uint64_t footprint =
      options.footprint ? options.footprint : kDefaultFootprint;
  const std::uint32_t size = options.uniform_size ? options.uniform_size : 1;

  if (kind == "msr") {
    if (param == "master") {
      // footprint scales the merged trace relative to its built-in size.
      const double scale = options.footprint
                               ? static_cast<double>(options.footprint) / 2800000.0
                               : 0.1;
      return std::make_unique<MsrMasterGenerator>(options.seed, scale,
                                                  options.uniform_size);
    }
    return std::make_unique<MsrGenerator>(msr_profile(param), options.seed,
                                          options.footprint, options.uniform_size);
  }
  if (kind == "twitter") {
    return std::make_unique<TwitterGenerator>(twitter_profile(param), options.seed,
                                              options.footprint,
                                              options.uniform_size);
  }
  if (kind == "ycsb_c") {
    return std::make_unique<YcsbWorkloadC>(footprint, parse_alpha(param, spec),
                                           options.seed, size);
  }
  if (kind == "ycsb_e") {
    return std::make_unique<YcsbWorkloadE>(footprint, parse_alpha(param, spec),
                                           options.seed, /*max_scan_length=*/0, size);
  }
  if (kind == "zipf") {
    return std::make_unique<ZipfianGenerator>(footprint, parse_alpha(param, spec),
                                              options.seed, /*scrambled=*/true, size);
  }
  if (kind == "uniform") {
    return std::make_unique<UniformGenerator>(footprint, options.seed, size);
  }
  if (kind == "loop") {
    return std::make_unique<LoopGenerator>(footprint, size);
  }
  throw std::invalid_argument("unknown workload spec: " + spec);
}

}  // namespace

std::unique_ptr<TraceGenerator> make_workload(const std::string& spec,
                                              const WorkloadFactoryOptions& options) {
  return make_workload_impl(spec, options);
}

StatusOr<std::unique_ptr<TraceGenerator>> try_make_workload(
    const std::string& spec, const WorkloadFactoryOptions& options) {
  // Generator constructors validate their domains with invalid_argument;
  // fold those into the Status taxonomy so no exception crosses this API.
  try {
    return make_workload_impl(spec, options);
  } catch (const std::invalid_argument& e) {
    return invalid_argument_error(e.what());
  }
}

std::vector<std::string> known_workload_specs() {
  std::vector<std::string> specs;
  for (const MsrProfile& p : msr_profiles()) specs.push_back("msr:" + p.name);
  specs.push_back("msr:master");
  for (const TwitterProfile& p : twitter_profiles()) {
    specs.push_back("twitter:" + p.name);
  }
  specs.push_back("ycsb_c:<alpha>");
  specs.push_back("ycsb_e:<alpha>");
  specs.push_back("zipf:<theta>");
  specs.push_back("uniform");
  specs.push_back("loop");
  return specs;
}

}  // namespace krr
