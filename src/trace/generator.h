#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "trace/request.h"

namespace krr {

/// An infinite, deterministic stream of cache requests.
///
/// Generators are seeded and replayable: after reset() the generator
/// produces exactly the same stream again. This matters because ground-truth
/// simulation sweeps replay one trace at many cache sizes, and model-vs-
/// simulator comparisons must run on the identical reference stream.
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;

  /// Produces the next request of the stream.
  virtual Request next() = 0;

  /// Restarts the stream from the beginning (same seed, same sequence).
  virtual void reset() = 0;

  /// Human-readable workload name used in bench/table output.
  virtual std::string name() const = 0;
};

/// Draws n requests into a vector. Replaying a materialized trace is the
/// cheapest way to run multi-pass experiments (simulation sweeps).
std::vector<Request> materialize(TraceGenerator& gen, std::size_t n);

/// Number of distinct keys in a trace (the working set size M).
std::size_t count_distinct(const std::vector<Request>& trace);

/// Sum of distinct objects' sizes in bytes (byte-level working set size).
/// Each key contributes the size of its first occurrence, matching the
/// paper's convention for variable-size workloads.
std::uint64_t working_set_bytes(const std::vector<Request>& trace);

}  // namespace krr
