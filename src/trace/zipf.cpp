#include "trace/zipf.h"

#include <cmath>
#include <stdexcept>

#include "util/hashing.h"
#include "util/table.h"

namespace krr {

ZipfianDraw::ZipfianDraw(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("zipfian item count must be > 0");
  if (theta_ < 0.0) throw std::invalid_argument("zipfian theta must be >= 0");
  // theta == 1 makes the alpha = 1/(1-theta) transform singular; YCSB nudges
  // it the same way.
  if (theta_ > 0.999999 && theta_ < 1.000001) theta_ = 0.99999;
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

double ZipfianDraw::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianDraw::draw(Xoshiro256ss& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed,
                                   bool scrambled, std::uint32_t object_size)
    : draw_(n, theta),
      seed_(seed),
      rng_(seed),
      scrambled_(scrambled),
      object_size_(object_size) {}

Request ZipfianGenerator::next() {
  std::uint64_t key = draw_.draw(rng_);
  if (scrambled_) {
    // The mix hash is bijective over uint64, so scrambling preserves the
    // popularity distribution while decorrelating rank and key value.
    key = hash64(key) % draw_.item_count();
  }
  return Request{key, object_size_, Op::kGet};
}

void ZipfianGenerator::reset() { rng_ = Xoshiro256ss(seed_); }

std::string ZipfianGenerator::name() const {
  return (scrambled_ ? std::string("scrambled_zipf") : std::string("zipf")) +
         "_theta" + format_double(draw_.theta(), 3);
}

UniformGenerator::UniformGenerator(std::uint64_t n, std::uint64_t seed,
                                   std::uint32_t object_size)
    : n_(n), seed_(seed), rng_(seed), object_size_(object_size) {
  if (n == 0) throw std::invalid_argument("uniform item count must be > 0");
}

Request UniformGenerator::next() {
  return Request{rng_.next_below(n_), object_size_, Op::kGet};
}

void UniformGenerator::reset() { rng_ = Xoshiro256ss(seed_); }

std::string UniformGenerator::name() const { return "uniform"; }

}  // namespace krr
