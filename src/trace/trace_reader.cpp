#include "trace/trace_reader.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/trace_codec.h"
#include "util/crc32.h"
#include "util/faultpoint.h"

namespace krr {

namespace c = codec;

void fold_ingest_metrics(const TraceReadReport& report,
                         obs::MetricsRegistry& registry) {
  registry.counter("ingest.records_read").inc(report.records_read);
  registry.counter("ingest.records_skipped").inc(report.records_skipped);
  registry.counter("ingest.checksum_failures").inc(report.checksum_failures);
  registry.counter("ingest.resyncs").inc(report.resyncs);
  registry.counter("ingest.bytes_read").inc(report.bytes_read);
  registry.counter("ingest.bytes_discarded").inc(report.bytes_discarded);
  registry.counter("ingest.read_retries").inc(report.read_retries);
  registry.counter("ingest.truncated_tail").inc(report.truncated_tail ? 1 : 0);
}

const char* recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kStrict: return "strict";
    case RecoveryPolicy::kSkipAndCount: return "skip";
    case RecoveryPolicy::kBestEffort: return "best_effort";
  }
  return "unknown";
}

TraceReader::TraceReader(std::istream& is, const TraceReaderOptions& options)
    : is_(is), options_(options) {}

bool TraceReader::fail(Status status) {
  state_ = State::kError;
  status_ = std::move(status);
  return false;
}

/// A policy-accepted early end: OK status, tail flagged in the report.
void TraceReader::finish_truncated() {
  report_.truncated_tail = true;
  state_ = State::kDone;
  if (options_.tracer != nullptr) {
    options_.tracer->instant(
        "ingest.truncated_tail", "ingest", 0,
        {{"records_read", static_cast<double>(report_.records_read)},
         {"bytes_read", static_cast<double>(report_.bytes_read)}});
  }
}

/// Accounts n dropped records against the kSkipAndCount budget.
bool TraceReader::count_skipped(std::uint64_t n) {
  report_.records_skipped += n;
  if (options_.policy == RecoveryPolicy::kSkipAndCount &&
      report_.records_skipped > options_.max_bad_records) {
    fail(resource_limit_error(
        "more than " + std::to_string(options_.max_bad_records) +
        " bad records (--max-bad-records); refusing to profile garbage"));
    return false;
  }
  return true;
}

/// Reads up to n bytes, draining resync pushback before the stream.
std::size_t TraceReader::read_bytes(unsigned char* out, std::size_t n) {
  std::size_t got = 0;
  if (!pending_.empty()) {
    got = std::min(n, pending_.size());
    std::memcpy(out, pending_.data(), got);
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(got));
  }
  if (got < n) {
    is_.read(reinterpret_cast<char*>(out) + got,
             static_cast<std::streamsize>(n - got));
    // Count only bytes pulled off the stream: pending_ bytes were already
    // counted when first read, and resync pushback would double-bill them.
    report_.bytes_read += static_cast<std::uint64_t>(is_.gcount());
    got += static_cast<std::size_t>(is_.gcount());
    is_.clear();
  }
  return got;
}

void TraceReader::unread(const unsigned char* data, std::size_t n) {
  pending_.insert(pending_.begin(), data, data + n);
}

void TraceReader::open() {
  state_ = State::kStreaming;
  const bool strict = options_.policy == RecoveryPolicy::kStrict;

  unsigned char header[c::kV2HeaderBytes];
  std::size_t got = read_bytes(header, 12);  // magic + version
  if (got < sizeof(c::kMagic) ||
      std::memcmp(header, c::kMagic, sizeof(c::kMagic)) != 0) {
    fail(corrupt_header_error(got < sizeof(c::kMagic)
                                  ? "stream shorter than the trace magic"
                                  : "trace magic mismatch"));
    return;
  }
  if (got < 12) {
    if (strict) {
      fail(truncated_error("stream ends inside the trace header"));
    } else {
      finish_truncated();
    }
    return;
  }
  const std::uint32_t version = c::decode_u32(header + 8);
  if (version != c::kVersion1 && version != c::kVersion2) {
    fail(unsupported_version_error("trace version " + std::to_string(version)));
    return;
  }
  report_.format_version = version;

  const std::size_t rest =
      (version == c::kVersion1 ? c::kV1HeaderBytes : c::kV2HeaderBytes) - 12;
  if (read_bytes(header + 12, rest) < rest) {
    if (strict) {
      fail(truncated_error("stream ends inside the trace header"));
    } else {
      finish_truncated();
    }
    return;
  }
  report_.declared_records = c::decode_u64(header + 12);

  // Cross-check the header's claims against the actual stream size when the
  // stream is seekable; otherwise cap up-front allocation.
  const auto pos = is_.tellg();
  if (pos != std::streampos(-1)) {
    is_.seekg(0, std::ios::end);
    const auto end = is_.tellg();
    is_.seekg(pos);
    if (end != std::streampos(-1) && end >= pos) {
      seekable_ = true;
      remaining_bytes_ = static_cast<std::uint64_t>(end - pos);
    }
  }
  is_.clear();

  const std::uint64_t count = report_.declared_records;
  constexpr std::uint64_t kNoOverflow =
      std::numeric_limits<std::uint64_t>::max() / c::kRecordBytes - 1;

  if (version == c::kVersion2) {
    records_per_block_ = c::decode_u32(header + 20);
    const std::uint32_t header_crc = c::decode_u32(header + 24);
    const bool crc_ok = crc32(header, 24) == header_crc;
    const bool rpb_ok =
        records_per_block_ >= 1 && records_per_block_ <= c::kMaxRecordsPerBlock;
    if (!crc_ok) {
      ++report_.checksum_failures;
      if (options_.tracer != nullptr) {
        options_.tracer->instant("ingest.header_checksum_failure", "ingest", 0);
      }
    }
    if (strict && (!crc_ok || !rpb_ok)) {
      fail(corrupt_header_error(!crc_ok ? "header CRC32 mismatch"
                                        : "implausible records-per-block"));
      return;
    }
    // Recovery modes keep going with a permissive block-size ceiling; the
    // per-block magic and CRC still gate every delivered record.
    if (!crc_ok || !rpb_ok) records_per_block_ = c::kMaxRecordsPerBlock;
    if (strict && seekable_) {
      const std::uint64_t blocks =
          count == 0 ? 0 : (count + records_per_block_ - 1) / records_per_block_;
      if (count > kNoOverflow ||
          count * c::kRecordBytes + blocks * c::kBlockHeaderBytes >
              remaining_bytes_) {
        fail(corrupt_header_error(
            "header declares more records than the stream can hold"));
        return;
      }
    }
  } else if (strict && seekable_ &&
             (count > kNoOverflow || count * c::kRecordBytes > remaining_bytes_)) {
    fail(corrupt_header_error(
        "header declares more records than the stream can hold"));
    return;
  }

  // Never reserve on the header's word alone (a hostile count would OOM the
  // process before a single record parses).
  reserve_hint_ = count;
  if (seekable_) {
    reserve_hint_ = std::min(reserve_hint_, remaining_bytes_ / c::kRecordBytes);
  } else {
    reserve_hint_ = std::min(reserve_hint_, options_.max_preallocate_records);
  }
}

bool TraceReader::next(Request& out) {
  if (state_ == State::kUnopened) open();
  if (state_ == State::kError) return false;
  // Injected transient read faults surface as the same kIoError a flaky
  // filesystem would, so load_trace_file's retry loop is exercised for real.
  if (faults::should_fire(faults::kTraceRead)) {
    return fail(io_error("injected transient trace read fault after record " +
                         std::to_string(report_.records_read)));
  }
  // v2 may still hold delivered-but-unconsumed records from the last good
  // block after the stream itself has ended (e.g. best-effort stopping at a
  // damaged record mid-block), so it drains the buffer before checking state.
  if (report_.format_version == c::kVersion2) return next_v2(out);
  if (state_ != State::kStreaming) return false;
  return next_v1(out);
}

bool TraceReader::next_v1(Request& out) {
  const RecoveryPolicy policy = options_.policy;
  for (;;) {
    if (report_.records_read + report_.records_skipped >=
        report_.declared_records) {
      state_ = State::kDone;
      return false;
    }
    unsigned char rec[c::kRecordBytes];
    if (read_bytes(rec, sizeof(rec)) < sizeof(rec)) {
      if (policy == RecoveryPolicy::kStrict) {
        return fail(truncated_error(
            "stream ends after record " + std::to_string(report_.records_read) +
            " of " + std::to_string(report_.declared_records)));
      }
      finish_truncated();
      return false;
    }
    const unsigned char op = c::decode_record(rec, &out);
    if (op > 1) {
      if (policy == RecoveryPolicy::kStrict) {
        return fail(bad_record_error(
            "bad op byte at record " +
            std::to_string(report_.records_read + report_.records_skipped)));
      }
      if (policy == RecoveryPolicy::kSkipAndCount) {
        if (!count_skipped(1)) return false;
        continue;  // records are fixed-width: the next one starts 13 bytes on
      }
      finish_truncated();  // best effort: keep everything before the damage
      return false;
    }
    ++report_.records_read;
    return true;
  }
}

bool TraceReader::next_v2(Request& out) {
  for (;;) {
    if (block_pos_ < block_.size()) {
      out = block_[block_pos_++];
      ++report_.records_read;
      return true;
    }
    if (state_ != State::kStreaming || !load_block()) return false;
  }
}

/// Scans forward for the little-endian block magic, so kSkipAndCount can
/// re-frame the stream after a corrupted block header. The 4 magic bytes
/// are consumed; the caller resumes with the rest of the block header.
bool TraceReader::resync_to_block_magic() {
  ++report_.resyncs;
  const std::uint64_t discarded_before = report_.bytes_discarded;
  unsigned char magic_bytes[4];
  c::encode_u32(magic_bytes, c::kBlockMagic);
  std::size_t matched = 0;
  unsigned char byte;
  while (read_bytes(&byte, 1) == 1) {
    ++report_.bytes_discarded;
    if (byte == magic_bytes[matched]) {
      if (++matched == sizeof(magic_bytes)) {
        report_.bytes_discarded -= sizeof(magic_bytes);
        if (options_.tracer != nullptr) {
          options_.tracer->instant(
              "ingest.resync", "ingest", 0,
              {{"bytes_discarded", static_cast<double>(report_.bytes_discarded -
                                                       discarded_before)}});
        }
        return true;
      }
    } else {
      // The magic has no repeated prefix byte, so a failed match can only
      // restart at length 1 (current byte == first magic byte) or 0.
      matched = byte == magic_bytes[0] ? 1 : 0;
    }
  }
  finish_truncated();
  return false;
}

bool TraceReader::load_block() {
  const RecoveryPolicy policy = options_.policy;
  const bool strict = policy == RecoveryPolicy::kStrict;
  bool have_magic = false;

  for (;;) {
    std::uint32_t block_records = 0;
    std::uint32_t payload_crc = 0;
    if (!have_magic) {
      unsigned char hdr[c::kBlockHeaderBytes];
      const std::size_t got = read_bytes(hdr, sizeof(hdr));
      if (got == 0) {
        // Clean end of stream: complete iff we consumed the declared count.
        const std::uint64_t consumed =
            report_.records_read + report_.records_skipped;
        if (consumed < report_.declared_records) {
          if (strict) {
            return fail(truncated_error(
                "stream ends after " + std::to_string(consumed) + " of " +
                std::to_string(report_.declared_records) + " records"));
          }
          report_.truncated_tail = true;
        }
        state_ = State::kDone;
        return false;
      }
      if (got < sizeof(hdr)) {
        if (strict) {
          return fail(truncated_error("stream ends inside a block header"));
        }
        finish_truncated();
        return false;
      }
      if (c::decode_u32(hdr) != c::kBlockMagic) {
        if (strict) return fail(bad_record_error("block magic mismatch"));
        if (policy == RecoveryPolicy::kBestEffort) {
          finish_truncated();
          return false;
        }
        // The frame is lost; hunt for the next magic. Re-scan from one byte
        // into the header we already consumed, in case the magic is merely
        // shifted rather than destroyed.
        unread(hdr + 1, sizeof(hdr) - 1);
        ++report_.bytes_discarded;
        if (!resync_to_block_magic()) return false;
        have_magic = true;
        continue;
      }
      block_records = c::decode_u32(hdr + 4);
      payload_crc = c::decode_u32(hdr + 8);
    } else {
      have_magic = false;
      unsigned char tail[8];
      if (read_bytes(tail, sizeof(tail)) < sizeof(tail)) {
        if (strict) {
          return fail(truncated_error("stream ends inside a block header"));
        }
        finish_truncated();
        return false;
      }
      block_records = c::decode_u32(tail);
      payload_crc = c::decode_u32(tail + 4);
    }

    if (block_records == 0 || block_records > records_per_block_) {
      if (strict) {
        return fail(bad_record_error("implausible block record count " +
                                     std::to_string(block_records)));
      }
      if (policy == RecoveryPolicy::kBestEffort) {
        finish_truncated();
        return false;
      }
      if (!resync_to_block_magic()) return false;
      have_magic = true;
      continue;
    }
    if (strict && report_.records_read + report_.records_skipped +
                          block_records >
                      report_.declared_records) {
      return fail(bad_record_error(
          "stream contains more records than the header declares"));
    }

    payload_.resize(static_cast<std::size_t>(block_records) * c::kRecordBytes);
    if (read_bytes(payload_.data(), payload_.size()) < payload_.size()) {
      // A partial block cannot be checksummed, so none of it is trusted.
      if (strict) {
        return fail(truncated_error("stream ends inside a block payload"));
      }
      finish_truncated();
      return false;
    }

    if (crc32(payload_.data(), payload_.size()) != payload_crc) {
      ++report_.checksum_failures;
      if (options_.tracer != nullptr) {
        options_.tracer->instant(
            "ingest.checksum_failure", "ingest", 0,
            {{"block_records", static_cast<double>(block_records)},
             {"records_read", static_cast<double>(report_.records_read)}});
      }
      if (strict) {
        return fail(checksum_mismatch_error(
            "block CRC32 mismatch after record " +
            std::to_string(report_.records_read + report_.records_skipped)));
      }
      if (policy == RecoveryPolicy::kBestEffort) {
        finish_truncated();
        return false;
      }
      if (!count_skipped(block_records)) return false;
      continue;
    }

    block_.clear();
    block_.reserve(block_records);
    block_pos_ = 0;
    for (std::uint32_t i = 0; i < block_records; ++i) {
      Request r;
      const unsigned char op =
          c::decode_record(payload_.data() + i * c::kRecordBytes, &r);
      if (op > 1) {
        // CRC-authentic but invalid: the writer itself produced garbage.
        if (strict) {
          return fail(bad_record_error("bad op byte inside a checksummed block"));
        }
        if (policy == RecoveryPolicy::kSkipAndCount) {
          if (!count_skipped(1)) return false;
          continue;
        }
        finish_truncated();  // best effort: keep the block prefix
        break;
      }
      block_.push_back(r);
    }
    if (block_.empty() && state_ == State::kStreaming) continue;
    return !block_.empty();
  }
}

StatusOr<std::vector<Request>> read_trace(std::istream& is,
                                          const TraceReaderOptions& options,
                                          TraceReadReport* report) {
  TraceReader reader(is, options);
  std::vector<Request> trace;
  Request r;
  bool reserved = false;
  while (reader.next(r)) {
    if (!reserved) {
      trace.reserve(static_cast<std::size_t>(reader.reserve_hint()));
      reserved = true;
    }
    trace.push_back(r);
  }
  if (report) *report = reader.report();
  if (!reader.status().is_ok()) return reader.status();
  return trace;
}

StatusOr<std::vector<Request>> load_trace_file(const std::string& path,
                                               const TraceReaderOptions& options,
                                               TraceReadReport* report) {
  // kIoError is the one transient failure class here (open races, flaky
  // network filesystems, injected trace.read faults): the file is restarted
  // from scratch under read_retry, since a mid-stream reader cannot resume.
  // Every other status is a property of the bytes and retrying is useless.
  std::uint64_t retries = 0;
  for (unsigned attempt = 1;; ++attempt) {
    StatusOr<std::vector<Request>> result = [&]() -> StatusOr<std::vector<Request>> {
      std::ifstream is(path, std::ios::binary);
      if (!is) return io_error("cannot open for read: " + path);
      return read_trace(is, options, report);
    }();
    const bool transient =
        !result.is_ok() && result.status().code() == StatusCode::kIoError;
    if (!transient || attempt >= options.read_retry.max_attempts) {
      if (report != nullptr) report->read_retries = retries;
      return result;
    }
    ++retries;
    if (options.tracer != nullptr) {
      options.tracer->instant("ingest.read_retry", "ingest", 0,
                              {{"attempt", static_cast<double>(attempt)}});
    }
    options.read_retry.sleep(attempt);
  }
}

void write_trace_binary_v2(std::ostream& os, const std::vector<Request>& trace,
                           std::uint32_t records_per_block) {
  records_per_block = std::clamp(records_per_block, 1u, c::kMaxRecordsPerBlock);
  unsigned char header[c::kV2HeaderBytes];
  std::memcpy(header, c::kMagic, sizeof(c::kMagic));
  c::encode_u32(header + 8, c::kVersion2);
  c::encode_u64(header + 12, trace.size());
  c::encode_u32(header + 20, records_per_block);
  c::encode_u32(header + 24, crc32(header, 24));
  os.write(reinterpret_cast<const char*>(header), sizeof(header));

  std::vector<unsigned char> payload;
  for (std::size_t begin = 0; begin < trace.size(); begin += records_per_block) {
    const std::size_t n =
        std::min<std::size_t>(records_per_block, trace.size() - begin);
    payload.resize(n * c::kRecordBytes);
    for (std::size_t i = 0; i < n; ++i) {
      c::encode_record(payload.data() + i * c::kRecordBytes, trace[begin + i]);
    }
    unsigned char hdr[c::kBlockHeaderBytes];
    c::encode_u32(hdr, c::kBlockMagic);
    c::encode_u32(hdr + 4, static_cast<std::uint32_t>(n));
    c::encode_u32(hdr + 8, crc32(payload.data(), payload.size()));
    os.write(reinterpret_cast<const char*>(hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  }
}

}  // namespace krr
