#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "util/prng.h"

namespace krr {

/// Cyclic scan over [0, n): 0,1,...,n-1,0,1,... — the adversarial loop
/// pattern §4.2 calls out (objects are re-referenced in exactly their
/// recency order), where the uncorrected KRR model errs the most and the
/// K' = K^1.4 correction matters.
class LoopGenerator final : public TraceGenerator {
 public:
  LoopGenerator(std::uint64_t n, std::uint32_t object_size = 1);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  std::uint64_t n_;
  std::uint64_t pos_ = 0;
  std::uint32_t object_size_;
};

/// References object i with an LRU stack depth drawn from a configurable
/// geometric-like distribution: with probability `reuse_prob` the next
/// request re-references one of the `depth_range` most recently used
/// objects (uniformly), otherwise a brand-new object. Produces precisely
/// controlled stack-distance distributions for unit tests.
class StackDepthGenerator final : public TraceGenerator {
 public:
  StackDepthGenerator(double reuse_prob, std::uint64_t depth_range, std::uint64_t seed,
                      std::uint32_t object_size = 1);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  double reuse_prob_;
  std::uint64_t depth_range_;
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  std::uint32_t object_size_;
  std::vector<std::uint64_t> recent_;  // most-recent first
  std::uint64_t next_key_ = 0;
};

/// Interleaves several sub-streams over disjoint key spaces, choosing the
/// next sub-stream by weight. Used to compose merged workloads.
class InterleaveGenerator final : public TraceGenerator {
 public:
  /// Weights need not be normalized; key spaces are separated by adding
  /// (index+1) * key_stride to each sub-stream's keys.
  InterleaveGenerator(std::vector<std::unique_ptr<TraceGenerator>> streams,
                      std::vector<double> weights, std::uint64_t seed,
                      std::uint64_t key_stride = 1ULL << 40);

  Request next() override;
  void reset() override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<TraceGenerator>> streams_;
  std::vector<double> cumulative_;  // normalized cumulative weights
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  std::uint64_t key_stride_;
};

/// Replays a materialized trace (wraps around at the end so the stream
/// stays infinite; `wrapped()` reports whether a wrap happened).
class ReplayGenerator final : public TraceGenerator {
 public:
  ReplayGenerator(std::vector<Request> trace, std::string name);

  Request next() override;
  void reset() override;
  std::string name() const override;

  bool wrapped() const noexcept { return wrapped_; }
  std::size_t length() const noexcept { return trace_.size(); }

 private:
  std::vector<Request> trace_;
  std::string name_;
  std::size_t pos_ = 0;
  bool wrapped_ = false;
};

}  // namespace krr
