#include "trace/twitter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hashing.h"

namespace krr {

namespace {

std::vector<TwitterProfile> make_profiles() {
  auto p = [](std::string name, std::uint64_t keys, double alpha, double wf,
              double dw, std::uint64_t win, double step, double mu, double sigma) {
    TwitterProfile prof;
    prof.name = std::move(name);
    prof.key_count = keys;
    prof.zipf_alpha = alpha;
    prof.write_fraction = wf;
    prof.drift_weight = dw;
    prof.drift_window = win;
    prof.drift_step = step;
    prof.size_log_mean = mu;
    prof.size_log_sigma = sigma;
    prof.size_min = 16;
    prof.size_max = 64 * 1024;
    return prof;
  };
  std::vector<TwitterProfile> v;
  // Shapes follow the published cluster statistics qualitatively: small
  // median values (tens to hundreds of bytes), strong skew, mostly reads.
  // 26.0 and 34.1 carry region-correlated sizes (Fig. 5.3 panel A).
  v.push_back(p("cluster26.0", 200000, 1.05, 0.05, 0.35, 15000, 1.0, 5.6, 1.1));
  v.back().size_region_amplitude = 2.5;
  v.push_back(p("cluster34.1", 150000, 0.85, 0.20, 0.60, 10000, 1.5, 4.9, 0.9));   // Type A
  v.back().size_region_amplitude = 2.5;
  v.push_back(p("cluster45.0", 300000, 1.10, 0.02, 0.05, 8000, 0.2, 6.2, 1.3));    // Type B
  v.push_back(p("cluster52.7", 120000, 0.95, 0.30, 0.30, 9000, 0.8, 5.2, 1.0));
  return v;
}

}  // namespace

const std::vector<TwitterProfile>& twitter_profiles() {
  static const std::vector<TwitterProfile> profiles = make_profiles();
  return profiles;
}

const TwitterProfile& twitter_profile(const std::string& name) {
  for (const TwitterProfile& p : twitter_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown Twitter profile: " + name);
}

TwitterGenerator::TwitterGenerator(TwitterProfile profile, std::uint64_t seed,
                                   std::uint64_t key_count_override,
                                   std::uint32_t uniform_size)
    : profile_(std::move(profile)),
      seed_(seed),
      uniform_size_(uniform_size),
      zipf_((key_count_override ? key_count_override : profile_.key_count),
            profile_.zipf_alpha),
      rng_(seed) {
  if (key_count_override) {
    const double ratio = static_cast<double>(key_count_override) /
                         static_cast<double>(profile_.key_count);
    profile_.key_count = key_count_override;
    profile_.drift_window = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(static_cast<double>(profile_.drift_window) * ratio));
  }
  if (profile_.drift_weight < 0.0 || profile_.drift_weight > 1.0) {
    throw std::invalid_argument("twitter drift weight must be in [0,1]");
  }
}

std::uint32_t TwitterGenerator::size_for_key(std::uint64_t key) const {
  if (uniform_size_ != 0) return uniform_size_;
  // Deterministic lognormal body with the hash-derived Box-Muller normal;
  // clamping to [size_min, size_max] reproduces the bounded KV-size range.
  const std::uint64_t h1 = hash64(key ^ 0xa24baed4963ee407ULL);
  const std::uint64_t h2 = hash64(key ^ 0x9fb21c651e98df25ULL);
  const double u1 = (static_cast<double>(h1 >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double bytes = std::exp(profile_.size_log_mean + profile_.size_log_sigma * z);
  if (profile_.size_region_amplitude != 1.0) {
    // Popularity-correlated gradient, as in MsrProfile: low keys (the
    // unscrambled hot ranks) are systematically larger.
    const double position = static_cast<double>(key % profile_.key_count) /
                            static_cast<double>(profile_.key_count);
    bytes *= std::pow(profile_.size_region_amplitude, 1.0 - 2.0 * position);
  }
  bytes = std::clamp(bytes, static_cast<double>(profile_.size_min),
                     static_cast<double>(profile_.size_max));
  return static_cast<std::uint32_t>(bytes);
}

Request TwitterGenerator::next() {
  std::uint64_t key;
  if (rng_.next_double() < profile_.drift_weight) {
    const auto base = static_cast<std::uint64_t>(drift_base_);
    key = (base + rng_.next_below(profile_.drift_window)) % profile_.key_count;
    drift_base_ += profile_.drift_step;
    if (drift_base_ >= static_cast<double>(profile_.key_count)) {
      drift_base_ -= static_cast<double>(profile_.key_count);
    }
  } else {
    const std::uint64_t rank = zipf_.draw(rng_);
    key = profile_.size_region_amplitude != 1.0
              ? rank % profile_.key_count
              : hash64(rank) % profile_.key_count;
  }
  const Op op = rng_.next_double() < profile_.write_fraction ? Op::kSet : Op::kGet;
  return Request{key, size_for_key(key), op};
}

void TwitterGenerator::reset() {
  rng_ = Xoshiro256ss(seed_);
  drift_base_ = 0.0;
}

std::string TwitterGenerator::name() const { return "tw_" + profile_.name; }

}  // namespace krr
