#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "util/status.h"

namespace krr {

/// Options shared by every factory-built generator.
struct WorkloadFactoryOptions {
  std::uint64_t seed = 1;
  /// Distinct-object count override (0 = the workload's default).
  std::uint64_t footprint = 0;
  /// Force fixed object sizes (0 = the workload's own size model).
  std::uint32_t uniform_size = 0;
};

/// Builds a trace generator from a textual spec — the format the CLI and
/// examples share:
///
///   "msr:<profile>"        e.g. msr:src1, msr:web (13 profiles)
///   "msr:master"           the merged master trace
///   "twitter:<cluster>"    e.g. twitter:cluster26.0
///   "ycsb_c:<alpha>"       e.g. ycsb_c:0.99
///   "ycsb_e:<alpha>"       e.g. ycsb_e:1.5
///   "zipf:<theta>"         scrambled Zipfian over the footprint
///   "uniform"              uniform IRM
///   "loop"                 cyclic scan
///
/// Throws std::invalid_argument on an unknown spec.
std::unique_ptr<TraceGenerator> make_workload(const std::string& spec,
                                              const WorkloadFactoryOptions& options = {});

/// Non-throwing variant: kInvalidArgument carries the reason (unknown
/// spec, malformed numeric parameter, out-of-domain generator setting).
/// This is what services and the hardened CLI call.
StatusOr<std::unique_ptr<TraceGenerator>> try_make_workload(
    const std::string& spec, const WorkloadFactoryOptions& options = {});

/// All specs the factory accepts (for --help output and sweep tooling).
std::vector<std::string> known_workload_specs();

}  // namespace krr
