#include "trace/msr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hashing.h"

namespace krr {

namespace {

// Profile table. Weights (zipf, seq, drift) control where the trace lands on
// the Type A / Type B axis (see MsrProfile docs): drift- and seq-heavy
// profiles (src1, src2, web, proj, hm, prn) show a large LRU-vs-RR gap
// (Type A); zipf-heavy profiles (usr, rsrch, stg, ts, wdev, mds, prxy) are
// K-insensitive (Type B). Footprints are laptop-scale; benches can rescale.
std::vector<MsrProfile> make_profiles() {
  auto p = [](std::string name, std::uint64_t fp, double zw, double sw, double dw,
              double theta, std::uint64_t run, std::uint64_t win, double step,
              double wf) {
    MsrProfile prof;
    prof.name = std::move(name);
    prof.footprint = fp;
    prof.zipf_weight = zw;
    prof.seq_weight = sw;
    prof.drift_weight = dw;
    prof.zipf_theta = theta;
    prof.seq_run_length = run;
    prof.drift_window = win;
    prof.drift_step = step;
    prof.write_fraction = wf;
    // Block sizes: lognormal centred near 8-16 KiB, 512 B aligned, capped at
    // 256 KiB — the broad shape reported for enterprise block traces.
    prof.size_log_mean = 9.2;  // e^9.2 ~ 9.9 KiB
    prof.size_log_sigma = 0.9;
    prof.size_min = 512;
    prof.size_max = 256 * 1024;
    prof.size_align = 512;
    return prof;
  };
  auto with_regions = [](MsrProfile prof, double amplitude) {
    prof.size_region_amplitude = amplitude;
    return prof;
  };
  std::vector<MsrProfile> v;
  // ---- Type A: recency-driven (drift/scan heavy) ----
  // src1, web, hm additionally carry region-correlated sizes, so the
  // uniform-size assumption fails visibly on them (Fig. 5.3 panel A).
  v.push_back(with_regions(
      p("src1", 400000, 0.15, 0.25, 0.60, 0.80, 2000, 40000, 2.0, 0.30), 3.0));
  v.push_back(p("src2", 120000, 0.20, 0.20, 0.60, 0.70, 1000, 12000, 1.2, 0.35));
  v.push_back(with_regions(
      p("web", 250000, 0.20, 0.15, 0.65, 0.75, 500, 25000, 1.5, 0.10), 3.0));
  v.push_back(p("proj", 600000, 0.10, 0.25, 0.65, 0.70, 4000, 30000, 1.5, 0.25));
  v.push_back(with_regions(
      p("hm", 100000, 0.25, 0.15, 0.60, 0.80, 800, 10000, 1.0, 0.40), 2.5));
  v.push_back(p("prn", 180000, 0.20, 0.30, 0.50, 0.75, 3000, 15000, 1.2, 0.50));
  // ---- Type B: frequency-driven (IRM zipf heavy) ----
  v.push_back(p("usr", 500000, 0.85, 0.05, 0.10, 0.95, 1000, 20000, 0.5, 0.20));
  v.push_back(with_regions(
      p("rsrch", 60000, 0.80, 0.05, 0.15, 0.90, 400, 5000, 0.3, 0.45), 2.5));
  v.push_back(p("stg", 150000, 0.80, 0.10, 0.10, 0.85, 1500, 8000, 0.3, 0.30));
  v.push_back(p("ts", 80000, 0.85, 0.05, 0.10, 0.90, 600, 6000, 0.2, 0.35));
  v.push_back(p("wdev", 50000, 0.85, 0.05, 0.10, 1.00, 400, 4000, 0.2, 0.50));
  v.push_back(p("mds", 90000, 0.80, 0.10, 0.10, 0.90, 800, 7000, 0.3, 0.40));
  v.push_back(p("prxy", 70000, 0.75, 0.10, 0.15, 1.05, 500, 6000, 0.4, 0.60));
  return v;
}

}  // namespace

const std::vector<MsrProfile>& msr_profiles() {
  static const std::vector<MsrProfile> profiles = make_profiles();
  return profiles;
}

const MsrProfile& msr_profile(const std::string& name) {
  for (const MsrProfile& p : msr_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown MSR profile: " + name);
}

MsrGenerator::MsrGenerator(MsrProfile profile, std::uint64_t seed,
                           std::uint64_t footprint_override, std::uint32_t uniform_size)
    : profile_(std::move(profile)),
      seed_(seed),
      uniform_size_(uniform_size),
      zipf_((footprint_override ? footprint_override : profile_.footprint),
            profile_.zipf_theta),
      rng_(seed) {
  if (footprint_override) {
    // Keep the drift window and run length proportional to the footprint.
    const double ratio = static_cast<double>(footprint_override) /
                         static_cast<double>(profile_.footprint);
    profile_.footprint = footprint_override;
    profile_.drift_window = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(static_cast<double>(profile_.drift_window) * ratio));
    profile_.seq_run_length = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(static_cast<double>(profile_.seq_run_length) * ratio));
  }
  const double wsum = profile_.zipf_weight + profile_.seq_weight + profile_.drift_weight;
  if (std::abs(wsum - 1.0) > 1e-9) {
    throw std::invalid_argument("MSR profile component weights must sum to 1");
  }
}

std::uint32_t MsrGenerator::size_for_key(std::uint64_t key) const {
  if (uniform_size_ != 0) return uniform_size_;
  // Deterministic lognormal: derive a standard normal from two key-hash
  // uniforms (Box-Muller), so a key has the same size on every reference
  // and in every run.
  const std::uint64_t h1 = hash64(key ^ 0x5bf03635f0a5b0c5ULL);
  const std::uint64_t h2 = hash64(key ^ 0x2545f4914f6cdd1dULL);
  const double u1 = (static_cast<double>(h1 >> 11) + 1.0) * 0x1.0p-53;  // (0,1]
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;          // [0,1)
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double bytes = std::exp(profile_.size_log_mean + profile_.size_log_sigma * z);
  if (profile_.size_region_amplitude != 1.0) {
    // Popularity-correlated gradient (see MsrProfile docs): low keys — the
    // unscrambled Zipf hot set — are systematically larger.
    const double position = static_cast<double>(key % profile_.footprint) /
                            static_cast<double>(profile_.footprint);
    bytes *= std::pow(profile_.size_region_amplitude, 1.0 - 2.0 * position);
  }
  bytes = std::clamp(bytes, static_cast<double>(profile_.size_min),
                     static_cast<double>(profile_.size_max));
  const auto aligned = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(bytes) + profile_.size_align - 1) /
      profile_.size_align * profile_.size_align);
  return std::max(aligned, profile_.size_min);
}

Request MsrGenerator::next() {
  const double pick = rng_.next_double();
  std::uint64_t key;
  if (pick < profile_.zipf_weight) {
    // With a size gradient, hot ranks stay at low keys so popularity and
    // size remain correlated; otherwise spread the hot set across the space.
    const std::uint64_t rank = zipf_.draw(rng_);
    key = profile_.size_region_amplitude != 1.0
              ? rank % profile_.footprint
              : hash64(rank) % profile_.footprint;
  } else if (pick < profile_.zipf_weight + profile_.seq_weight) {
    // Sequential component: advance the scan cursor; restart the run at a
    // random offset with probability 1/run_length (geometric run lengths).
    if (rng_.next_double() * static_cast<double>(profile_.seq_run_length) < 1.0) {
      seq_pos_ = rng_.next_below(profile_.footprint);
    }
    key = seq_pos_;
    seq_pos_ = (seq_pos_ + 1) % profile_.footprint;
  } else {
    // Drift component: uniform inside a window that slides one step per
    // drifted request, wrapping around the block space.
    const std::uint64_t base = static_cast<std::uint64_t>(drift_base_);
    key = (base + rng_.next_below(profile_.drift_window)) % profile_.footprint;
    drift_base_ += profile_.drift_step;
    if (drift_base_ >= static_cast<double>(profile_.footprint)) {
      drift_base_ -= static_cast<double>(profile_.footprint);
    }
  }
  const Op op = rng_.next_double() < profile_.write_fraction ? Op::kSet : Op::kGet;
  return Request{key, size_for_key(key), op};
}

void MsrGenerator::reset() {
  rng_ = Xoshiro256ss(seed_);
  seq_pos_ = 0;
  drift_base_ = 0.0;
}

std::string MsrGenerator::name() const { return "msr_" + profile_.name; }

MsrMasterGenerator::MsrMasterGenerator(std::uint64_t seed, double footprint_scale,
                                       std::uint32_t uniform_size)
    : seed_(seed), pick_rng_(seed ^ 0x9d3f0e4cba11dcedULL) {
  if (footprint_scale <= 0.0) {
    throw std::invalid_argument("master trace footprint scale must be > 0");
  }
  std::uint64_t stream_seed = seed;
  streams_.reserve(msr_profiles().size());
  for (const MsrProfile& p : msr_profiles()) {
    const auto fp = std::max<std::uint64_t>(
        1000, static_cast<std::uint64_t>(static_cast<double>(p.footprint) *
                                         footprint_scale));
    streams_.emplace_back(p, ++stream_seed, fp, uniform_size);
  }
}

Request MsrMasterGenerator::next() {
  const std::uint64_t i = pick_rng_.next_below(streams_.size());
  Request r = streams_[i].next();
  r.key += kKeyStride * (i + 1);  // disjoint key spaces per merged stream
  return r;
}

void MsrMasterGenerator::reset() {
  pick_rng_ = Xoshiro256ss(seed_ ^ 0x9d3f0e4cba11dcedULL);
  for (auto& s : streams_) s.reset();
}

std::string MsrMasterGenerator::name() const { return "msr_master"; }

}  // namespace krr
