#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/mrc.h"

namespace krr {

DistanceHistogram::DistanceHistogram(std::uint64_t quantum) : quantum_(quantum) {
  if (quantum_ == 0) throw std::invalid_argument("histogram quantum must be >= 1");
}

void DistanceHistogram::record(std::uint64_t distance, double weight) {
  // Round up so that a distance of d lands in a bin of size >= d; this keeps
  // the derived MRC conservative (never reports a hit the exact histogram
  // would count as a miss at the bin's size).
  const std::uint64_t bin = ((distance + quantum_ - 1) / quantum_) * quantum_;
  bins_[bin] += weight;
  total_ += weight;
}

void DistanceHistogram::record_infinite(double weight) {
  infinite_ += weight;
  total_ += weight;
}

std::vector<std::pair<std::uint64_t, double>> DistanceHistogram::sorted_bins() const {
  std::vector<std::pair<std::uint64_t, double>> out(bins_.begin(), bins_.end());
  std::sort(out.begin(), out.end());
  return out;
}

MissRatioCurve DistanceHistogram::to_mrc() const {
  MissRatioCurve curve;
  if (total_ <= 0.0) return curve;
  const auto sorted = sorted_bins();
  // miss ratio at size c = (weight of distances > c + cold misses) / total.
  // Walk bins ascending, accumulating the weight of distances <= c.
  double cum = 0.0;
  curve.add_point(0.0, 1.0);
  for (const auto& [dist, weight] : sorted) {
    cum += weight;
    // Negative corrective weights (SHARDS-adj) can push the ratio slightly
    // outside [0, 1]; clamp so the curve stays a valid miss ratio.
    const double ratio = std::clamp((total_ - cum) / total_, 0.0, 1.0);
    curve.add_point(static_cast<double>(dist), ratio);
  }
  return curve;
}

void DistanceHistogram::clear() {
  bins_.clear();
  infinite_ = 0.0;
  total_ = 0.0;
}

void DistanceHistogram::scale(double factor) {
  if (factor < 0.0) throw std::invalid_argument("histogram scale factor must be >= 0");
  for (auto& [dist, weight] : bins_) weight *= factor;
  infinite_ *= factor;
  total_ *= factor;
}

void DistanceHistogram::restore(
    const std::vector<std::pair<std::uint64_t, double>>& bins,
    double infinite_weight, double total_weight) {
  bins_.clear();
  for (const auto& [dist, weight] : bins) bins_[dist] = weight;
  infinite_ = infinite_weight;
  total_ = total_weight;
}

void DistanceHistogram::merge(const DistanceHistogram& other) {
  if (other.quantum_ != quantum_) {
    throw std::invalid_argument("cannot merge histograms with different quanta");
  }
  for (const auto& [dist, weight] : other.bins_) bins_[dist] += weight;
  infinite_ += other.infinite_;
  total_ += other.total_;
}

}  // namespace krr
