#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace krr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table header must be non-empty");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("table row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::to_cell(double v) { return format_double(v); }
std::string Table::to_cell(int v) { return std::to_string(v); }
std::string Table::to_cell(long v) { return std::to_string(v); }
std::string Table::to_cell(long long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long long v) { return std::to_string(v); }

}  // namespace krr
