#include "util/reuse_histogram.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "util/hashing.h"

namespace krr {

ReuseTimeHistogram::ReuseTimeHistogram(std::uint32_t sub_buckets)
    : sub_buckets_(sub_buckets) {
  if (sub_buckets_ == 0 || (sub_buckets_ & (sub_buckets_ - 1)) != 0) {
    throw std::invalid_argument("sub-bucket count must be a power of two");
  }
}

std::size_t ReuseTimeHistogram::bin_index(std::uint64_t reuse_time) const {
  const std::uint64_t s = sub_buckets_;
  if (reuse_time < 2 * s) return static_cast<std::size_t>(reuse_time);
  const int log2s = std::countr_zero(s);
  const int e = std::bit_width(reuse_time) - 1;  // 2^e <= rt < 2^(e+1)
  const int shift = e - log2s;
  return static_cast<std::size_t>(static_cast<std::uint64_t>(shift) * s +
                                  (reuse_time >> shift));
}

std::uint64_t ReuseTimeHistogram::bin_upper_bound(std::size_t index) const {
  const std::uint64_t s = sub_buckets_;
  const std::uint64_t idx = index;
  if (idx < 2 * s) return idx;
  const std::uint64_t g = idx / s - 1;
  const std::uint64_t base = idx - g * s;  // in [s, 2s)
  return ((base + 1) << g) - 1;
}

void ReuseTimeHistogram::record(std::uint64_t reuse_time, double weight) {
  if (reuse_time == 0) throw std::invalid_argument("reuse time must be >= 1");
  const std::size_t idx = bin_index(reuse_time);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += weight;
  total_ += weight;
}

double ReuseTimeHistogram::tail_weight(std::uint64_t t) const {
  double tail = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] > 0.0 && bin_upper_bound(i) > t) tail += bins_[i];
  }
  return tail;
}

bool ReuseTimeHistogram::coarsen() {
  if (sub_buckets_ <= 2) return false;
  ReuseTimeHistogram coarse(sub_buckets_ / 2);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] > 0.0) {
      coarse.record(std::max<std::uint64_t>(1, bin_upper_bound(i)), bins_[i]);
    }
  }
  *this = std::move(coarse);
  return true;
}

void ReuseTimeHistogram::merge(const ReuseTimeHistogram& other) {
  if (other.sub_buckets_ == sub_buckets_) {
    if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0.0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i) {
      bins_[i] += other.bins_[i];
    }
    total_ += other.total_;
    return;
  }
  other.for_each_bin([this](std::uint64_t upper, double weight) {
    record(std::max<std::uint64_t>(1, upper), weight);
  });
}

void ReuseTimeHistogram::scale(double factor) {
  for (double& bin : bins_) bin *= factor;
  total_ *= factor;
}

bool ReuseTimeHistogram::restore(std::uint32_t sub_buckets,
                                 std::vector<double> bins, double total) {
  if (sub_buckets == 0 || (sub_buckets & (sub_buckets - 1)) != 0) return false;
  sub_buckets_ = sub_buckets;
  bins_ = std::move(bins);
  total_ = total;
  return true;
}

ReuseTimeCollector::ReuseTimeCollector(std::uint32_t sub_buckets,
                                       std::uint64_t stream_scale)
    : histogram_(sub_buckets),
      stream_scale_(stream_scale == 0 ? 1 : stream_scale) {}

bool ReuseTimeCollector::in_sample(std::uint64_t key) const noexcept {
  return hash64(key) % sample_modulus_ < sample_threshold_;
}

std::uint64_t ReuseTimeCollector::access(std::uint64_t key) {
  ++time_;  // reuse times stay on the global clock even when sampling
  if (sample_threshold_ < sample_modulus_ && !in_sample(key)) return 0;
  auto [it, inserted] = last_access_.try_emplace(key, time_);
  if (inserted) {
    cold_ += scale();
    first_access_.emplace(key, time_);
    return 0;
  }
  const std::uint64_t reuse_time = time_ - it->second;
  it->second = time_;
  histogram_.record(reuse_time * stream_scale_, scale());
  return reuse_time;
}

void ReuseTimeCollector::absorb(const ReuseTimeCollector& other) {
  histogram_.merge(other.histogram_);
  cold_ += other.cold_;
  time_ += other.time_;
  absorbed_distinct_ += other.distinct_objects();
  absorbed_estimated_distinct_ += other.estimated_distinct();
}

void ReuseTimeCollector::scale_mass(double factor) {
  // Retire the live maps into the absorbed counters so the whole distinct
  // estimate scales uniformly; no further access() calls are expected.
  absorbed_distinct_ += last_access_.size();
  absorbed_estimated_distinct_ +=
      static_cast<double>(last_access_.size()) * scale();
  last_access_.clear();
  first_access_.clear();
  histogram_.scale(factor);
  cold_ *= factor;
  absorbed_estimated_distinct_ *= factor;
  absorbed_distinct_ = static_cast<std::size_t>(
      static_cast<double>(absorbed_distinct_) * factor + 0.5);
  time_ = static_cast<std::uint64_t>(
      static_cast<double>(time_) * factor + 0.5);
}

bool ReuseTimeCollector::restore(std::uint32_t sub_buckets,
                                 std::vector<double> histogram_bins,
                                 double histogram_total, double cold,
                                 std::uint64_t time,
                                 const std::vector<ObjectTimes>& objects,
                                 std::uint64_t sample_threshold,
                                 std::size_t absorbed_distinct,
                                 double absorbed_estimated_distinct) {
  if (sample_threshold == 0 || sample_threshold > sample_modulus_) return false;
  for (const ObjectTimes& object : objects) {
    if (object.first == 0 || object.last < object.first || object.last > time) {
      return false;
    }
  }
  if (!histogram_.restore(sub_buckets, std::move(histogram_bins),
                          histogram_total)) {
    return false;
  }
  cold_ = cold;
  time_ = time;
  sample_threshold_ = sample_threshold;
  absorbed_distinct_ = absorbed_distinct;
  absorbed_estimated_distinct_ = absorbed_estimated_distinct;
  last_access_.clear();
  first_access_.clear();
  last_access_.reserve(objects.size());
  first_access_.reserve(objects.size());
  for (const ObjectTimes& object : objects) {
    if (!last_access_.emplace(object.key, object.last).second) return false;
    first_access_.emplace(object.key, object.first);
  }
  return true;
}

bool ReuseTimeCollector::halve_sample() {
  if (sample_threshold_ <= 1) return false;
  sample_threshold_ /= 2;
  for (auto it = last_access_.begin(); it != last_access_.end();) {
    if (!in_sample(it->first)) {
      first_access_.erase(it->first);
      it = last_access_.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

std::uint64_t ReuseTimeCollector::space_overhead_bytes() const noexcept {
  // Two hash-map entries per tracked object (key, timestamp, bucket/node
  // overhead) plus the log-binned histogram.
  return last_access_.size() * 2 * (2 * sizeof(std::uint64_t) + 32) +
         histogram_.bin_count() * sizeof(double);
}

}  // namespace krr
