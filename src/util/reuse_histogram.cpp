#include "util/reuse_histogram.h"

#include <bit>
#include <stdexcept>

namespace krr {

ReuseTimeHistogram::ReuseTimeHistogram(std::uint32_t sub_buckets)
    : sub_buckets_(sub_buckets) {
  if (sub_buckets_ == 0 || (sub_buckets_ & (sub_buckets_ - 1)) != 0) {
    throw std::invalid_argument("sub-bucket count must be a power of two");
  }
}

std::size_t ReuseTimeHistogram::bin_index(std::uint64_t reuse_time) const {
  const std::uint64_t s = sub_buckets_;
  if (reuse_time < 2 * s) return static_cast<std::size_t>(reuse_time);
  const int log2s = std::countr_zero(s);
  const int e = std::bit_width(reuse_time) - 1;  // 2^e <= rt < 2^(e+1)
  const int shift = e - log2s;
  return static_cast<std::size_t>(static_cast<std::uint64_t>(shift) * s +
                                  (reuse_time >> shift));
}

std::uint64_t ReuseTimeHistogram::bin_upper_bound(std::size_t index) const {
  const std::uint64_t s = sub_buckets_;
  const std::uint64_t idx = index;
  if (idx < 2 * s) return idx;
  const std::uint64_t g = idx / s - 1;
  const std::uint64_t base = idx - g * s;  // in [s, 2s)
  return ((base + 1) << g) - 1;
}

void ReuseTimeHistogram::record(std::uint64_t reuse_time, double weight) {
  if (reuse_time == 0) throw std::invalid_argument("reuse time must be >= 1");
  const std::size_t idx = bin_index(reuse_time);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += weight;
  total_ += weight;
}

double ReuseTimeHistogram::tail_weight(std::uint64_t t) const {
  double tail = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] > 0.0 && bin_upper_bound(i) > t) tail += bins_[i];
  }
  return tail;
}

ReuseTimeCollector::ReuseTimeCollector(std::uint32_t sub_buckets)
    : histogram_(sub_buckets) {}

std::uint64_t ReuseTimeCollector::access(std::uint64_t key) {
  ++time_;
  auto [it, inserted] = last_access_.try_emplace(key, time_);
  if (inserted) {
    cold_ += 1.0;
    first_access_.emplace(key, time_);
    return 0;
  }
  const std::uint64_t reuse_time = time_ - it->second;
  it->second = time_;
  histogram_.record(reuse_time);
  return reuse_time;
}

}  // namespace krr
