#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/hashing.h"
#include "util/status.h"

namespace krr {

/// Shared retry/backoff policy for transient-failure sites: shard worker
/// resurrection, checkpoint writes, and trace-read retries all use this one
/// object so "how hard do we try" is configured in a single place. Delays
/// grow exponentially from base_delay_ms and carry deterministic jitter
/// derived from (seed, attempt) — two runs with the same seed back off for
/// exactly the same durations, which keeps fault-plan reproductions stable
/// while still decorrelating concurrent retriers in production (each site
/// folds its own salt into the seed).
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying.
  unsigned max_attempts = 3;
  double base_delay_ms = 1.0;
  double max_delay_ms = 250.0;
  /// Jitter seed, conventionally the run seed (+ a per-site salt).
  std::uint64_t seed = 0;

  /// Delay before retry number `attempt` (1-based: the delay after the
  /// first failure is delay_ms(1)): base * 2^(attempt-1), jittered into
  /// [0.5, 1.0] of itself, capped at max_delay_ms.
  double delay_ms(unsigned attempt) const noexcept {
    double delay = base_delay_ms;
    for (unsigned i = 1; i < attempt && delay < max_delay_ms; ++i) delay *= 2.0;
    if (delay > max_delay_ms) delay = max_delay_ms;
    const std::uint64_t bits = hash64(seed ^ (0x9e3779b97f4a7c15ull * attempt));
    const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
    return delay * (0.5 + 0.5 * unit);
  }

  void sleep(unsigned attempt) const {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms(attempt)));
  }
};

/// Runs `fn` (returning Status) up to policy.max_attempts times, sleeping
/// the policy's backoff between attempts. `on_retry(attempt, status)` is
/// invoked before each sleep so callers can count/trace every retry.
template <typename Fn, typename OnRetry>
Status retry_status(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) {
  Status last = Status::ok();
  for (unsigned attempt = 1;; ++attempt) {
    last = fn();
    if (last.is_ok() || attempt >= policy.max_attempts) return last;
    on_retry(attempt, last);
    policy.sleep(attempt);
  }
}

template <typename Fn>
Status retry_status(const RetryPolicy& policy, Fn&& fn) {
  return retry_status(policy, static_cast<Fn&&>(fn),
                      [](unsigned, const Status&) {});
}

/// Bounded exponential wait for spin loops (producer backpressure, quiesce):
/// the first pauses spin (cheap, latency-optimal when the stall is a worker
/// mid-batch), the next ones yield the timeslice, and persistent stalls
/// escalate to real sleeps that double up to max_sleep — so a stalled
/// producer stops burning a core without giving up sub-microsecond wakeup
/// on short stalls. pause() returns true when the step slept, so callers
/// can count backpressure sleeps distinctly from cheap spins.
class Backoff {
 public:
  explicit Backoff(std::uint32_t spin_limit = 64, std::uint32_t yield_limit = 64,
                   std::chrono::nanoseconds initial_sleep =
                       std::chrono::microseconds(1),
                   std::chrono::nanoseconds max_sleep =
                       std::chrono::microseconds(500))
      : spin_limit_(spin_limit),
        yield_limit_(yield_limit),
        initial_sleep_(initial_sleep),
        max_sleep_(max_sleep) {}

  bool pause() {
    if (steps_ < spin_limit_) {
      ++steps_;
      return false;
    }
    if (steps_ < spin_limit_ + yield_limit_) {
      ++steps_;
      std::this_thread::yield();
      return false;
    }
    std::this_thread::sleep_for(sleep_);
    if (sleep_ < max_sleep_) sleep_ = std::min(sleep_ * 2, max_sleep_);
    return true;
  }

  void reset() {
    steps_ = 0;
    sleep_ = initial_sleep_;
  }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t yield_limit_;
  std::chrono::nanoseconds initial_sleep_;
  std::chrono::nanoseconds max_sleep_;
  std::uint32_t steps_ = 0;
  std::chrono::nanoseconds sleep_ = initial_sleep_;
};

}  // namespace krr
