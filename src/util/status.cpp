#include "util/status.h"

namespace krr {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kCorruptHeader: return "corrupt_header";
    case StatusCode::kUnsupportedVersion: return "unsupported_version";
    case StatusCode::kTruncated: return "truncated";
    case StatusCode::kBadRecord: return "bad_record";
    case StatusCode::kChecksumMismatch: return "checksum_mismatch";
    case StatusCode::kResourceLimit: return "resource_limit";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status invalid_argument_error(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status corrupt_header_error(std::string message) {
  return {StatusCode::kCorruptHeader, std::move(message)};
}
Status unsupported_version_error(std::string message) {
  return {StatusCode::kUnsupportedVersion, std::move(message)};
}
Status truncated_error(std::string message) {
  return {StatusCode::kTruncated, std::move(message)};
}
Status bad_record_error(std::string message) {
  return {StatusCode::kBadRecord, std::move(message)};
}
Status checksum_mismatch_error(std::string message) {
  return {StatusCode::kChecksumMismatch, std::move(message)};
}
Status resource_limit_error(std::string message) {
  return {StatusCode::kResourceLimit, std::move(message)};
}
Status io_error(std::string message) {
  return {StatusCode::kIoError, std::move(message)};
}
Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

}  // namespace krr
