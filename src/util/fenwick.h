#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace krr {

/// Fenwick (binary indexed) tree over prefix sums of T, 1-indexed.
///
/// Two roles in this library:
///  * exact LRU stack distances: a tree over access timestamps counts the
///    distinct objects touched since a given time (Olken-equivalent,
///    O(log n) per access);
///  * exact byte-level stack distances: a tree over stack positions holds
///    object sizes, giving the precise prefix size the paper's `sizeArray`
///    approximates (used as ground truth in tests and benches).
template <typename T>
class Fenwick {
 public:
  Fenwick() = default;
  explicit Fenwick(std::size_t n) : tree_(n + 1, T{}) {}

  /// Number of addressable positions (1..size()).
  std::size_t size() const noexcept { return tree_.empty() ? 0 : tree_.size() - 1; }

  /// Grows the tree to cover at least n positions, preserving content.
  void ensure_size(std::size_t n) {
    if (n + 1 <= tree_.size()) return;
    std::size_t cap = tree_.empty() ? 16 : tree_.size();
    while (cap < n + 1) cap *= 2;
    rebuild(cap - 1);
  }

  /// Adds delta at position i (1-based).
  void add(std::size_t i, T delta) {
    assert(i >= 1 && i <= size());
    for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }

  /// Sum of positions 1..i (0 if i == 0).
  T prefix_sum(std::size_t i) const {
    assert(i <= size());
    T s{};
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

  /// Sum of positions lo..hi inclusive (empty range yields 0).
  T range_sum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return T{};
    return prefix_sum(hi) - prefix_sum(lo - 1);
  }

  void clear() { tree_.assign(tree_.size(), T{}); }

 private:
  void rebuild(std::size_t n) {
    // Rebuild from recovered point values; growth happens rarely (amortized
    // doubling), so the O(n log n) re-insertion cost is acceptable.
    std::vector<T> values(n + 1, T{});
    for (std::size_t i = 1; i < tree_.size(); ++i) values[i] = range_sum(i, i);
    tree_.assign(n + 1, T{});
    for (std::size_t i = 1; i <= n; ++i) {
      if (values[i] != T{}) add_unchecked(i, values[i]);
    }
  }

  void add_unchecked(std::size_t i, T delta) {
    for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }

  std::vector<T> tree_;
};

}  // namespace krr
