#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace krr {

/// Typed error taxonomy for the ingestion and profiling pipeline. Fallible
/// library entry points return Status / StatusOr<T> instead of throwing, so
/// callers (the CLI, long-running services) can distinguish "the input is
/// corrupt" from "the machine is out of resources" and react per policy.
enum class StatusCode : int {
  kOk = 0,
  /// A caller passed a value outside the documented domain.
  kInvalidArgument = 1,
  /// A trace header is structurally wrong: bad magic, a record count that
  /// cannot fit in the remaining stream, or a header CRC mismatch.
  kCorruptHeader = 2,
  /// The format version is not one this build can read.
  kUnsupportedVersion = 3,
  /// The stream ended in the middle of a header, block, or record.
  kTruncated = 4,
  /// A record parsed but its fields are invalid (bad op byte, negative or
  /// overflowing size, malformed CSV row).
  kBadRecord = 5,
  /// A block or header checksum did not match its payload (format v2).
  kChecksumMismatch = 6,
  /// A configured ceiling was hit: --max-bad-records exhausted, or a memory
  /// cap would be exceeded.
  kResourceLimit = 7,
  /// The operating system refused an open/read/write.
  kIoError = 8,
  /// An invariant inside the library broke; always a bug.
  kInternal = 9,
};

/// Stable lower-case identifier for a code ("corrupt_header", ...).
const char* status_code_name(StatusCode code);

/// A cheap value type carrying (code, message). The default-constructed
/// Status is OK and allocates nothing.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "corrupt_header: trace magic mismatch" (or "ok").
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience constructors mirroring the taxonomy.
Status invalid_argument_error(std::string message);
Status corrupt_header_error(std::string message);
Status unsupported_version_error(std::string message);
Status truncated_error(std::string message);
Status bad_record_error(std::string message);
Status checksum_mismatch_error(std::string message);
Status resource_limit_error(std::string message);
Status io_error(std::string message);
Status internal_error(std::string message);

/// Exception bridge for the legacy throwing API: carries the StatusCode so
/// catch sites can still branch on the taxonomy. Derives from
/// std::runtime_error, so pre-Status call sites that catch runtime_error
/// keep working unchanged.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  StatusCode code() const noexcept { return status_.code(); }
  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Either a T or a non-OK Status. Deliberately minimal: value access on an
/// error is a programming bug and throws StatusError.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = internal_error("StatusOr constructed from an OK status");
    }
  }

  bool is_ok() const noexcept { return value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  const T& value() const& {
    if (!value_) throw StatusError(status_);
    return *value_;
  }
  T& value() & {
    if (!value_) throw StatusError(status_);
    return *value_;
  }
  T&& value() && {
    if (!value_) throw StatusError(status_);
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Unwraps or rethrows as the typed exception (legacy-API shim).
template <typename T>
T value_or_throw(StatusOr<T> result) {
  if (!result.is_ok()) throw StatusError(result.status());
  return std::move(result).value();
}

}  // namespace krr
