#pragma once

#include <cstddef>
#include <cstdint>

namespace krr {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
/// by the v2 trace format's header and per-block integrity fields. Standard
/// table-driven implementation; ~1 GB/s, far faster than trace parsing, so
/// checksumming is never the ingest bottleneck.
std::uint32_t crc32(const void* data, std::size_t length,
                    std::uint32_t seed = 0);

/// Incremental form: feed successive chunks, passing the previous return
/// value as `seed`. crc32(a+b) == crc32(b, crc32(a)).
class Crc32 {
 public:
  void update(const void* data, std::size_t length) {
    value_ = crc32(data, length, value_);
  }
  std::uint32_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace krr
