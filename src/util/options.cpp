#include "util/options.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace krr {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        named_[arg.substr(2)] = "";
      } else {
        named_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::optional<std::string> Options::get(const std::string& name) const {
  auto it = named_.find(name);
  if (it == named_.end()) return std::nullopt;
  return it->second;
}

bool Options::has(const std::string& name) const { return named_.count(name) != 0; }

std::string Options::get_string(const std::string& name, const std::string& def) const {
  auto v = get(name);
  return v ? *v : def;
}

std::int64_t Options::get_int(const std::string& name, std::int64_t def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::stoll(*v);
}

double Options::get_double(const std::string& name, double def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::stod(*v);
}

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("KRR_BENCH_SCALE");
    if (!env || !*env) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

std::uint64_t scaled(std::uint64_t n, std::uint64_t min_value) {
  const double v = static_cast<double>(n) * bench_scale();
  return std::max<std::uint64_t>(min_value, static_cast<std::uint64_t>(v));
}

}  // namespace krr
