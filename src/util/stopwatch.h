#pragma once

#include <chrono>

namespace krr {

/// Monotonic wall-clock stopwatch for the timing benches (Tables 5.3/5.4).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace krr
