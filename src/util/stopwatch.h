#pragma once

#include <chrono>
#include <cstdint>

namespace krr {

/// Monotonic wall-clock stopwatch for the timing benches (Tables 5.3/5.4)
/// and the observability layer's phase timers.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  /// The obs layer assumes elapsed readings never go backwards; this is a
  /// compile-time property of the clock, surfaced so callers can
  /// static_assert on it (and so tests can document the assumption).
  static constexpr bool is_steady = clock::is_steady;

  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  /// Elapsed integral nanoseconds; the resolution the per-access update
  /// timers record at (sub-microsecond costs round to 0 in micros).
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

static_assert(Stopwatch::is_steady,
              "steady_clock must be monotonic for phase timing");

/// RAII phase timer: adds the scope's elapsed seconds into an accumulator
/// on destruction, so one `double` can sum many entries into the same
/// phase. Used by the obs layer's phase timings and the bench harnesses.
///
///   double load_seconds = 0.0;
///   { ScopedTimer t(load_seconds); load_trace(...); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { accumulator_ += watch_.seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far in this scope (the accumulator is only updated
  /// at destruction).
  double elapsed_seconds() const { return watch_.seconds(); }

 private:
  double& accumulator_;
  Stopwatch watch_;
};

}  // namespace krr
