#include "util/faultpoint.h"

#include <cstring>
#include <memory>
#include <vector>

namespace krr::faults {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class TriggerMode { kNthHit, kEveryK };

/// One armed trigger. `hits` is the per-trigger matching-hit counter; the
/// counter (not wall time or randomness) decides firing, so a plan is a
/// pure function of the run's call sequence.
struct Trigger {
  std::string point;
  bool has_detail = false;
  std::uint64_t detail = 0;
  TriggerMode mode = TriggerMode::kNthHit;
  std::uint64_t n = 1;  // Nth hit, or period K
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

/// The armed plan. Installed wholesale by arm() before any pipeline thread
/// exists (see header contract), then only read — the atomics inside each
/// trigger carry the cross-thread counting.
std::vector<std::unique_ptr<Trigger>>& plan() {
  static std::vector<std::unique_ptr<Trigger>> p;
  return p;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

Status parse_trigger(const std::string& spec, Trigger* out) {
  const std::size_t at = spec.find('@');
  if (at == std::string::npos || at == 0) {
    return invalid_argument_error("fault plan: trigger '" + spec +
                                  "' missing '@mode'");
  }
  std::string target = spec.substr(0, at);
  const std::string mode = spec.substr(at + 1);
  const std::size_t hash = target.find('#');
  if (hash != std::string::npos) {
    if (!parse_u64(target.substr(hash + 1), &out->detail)) {
      return invalid_argument_error("fault plan: bad detail in '" + spec + "'");
    }
    out->has_detail = true;
    target = target.substr(0, hash);
  }
  if (target.empty()) {
    return invalid_argument_error("fault plan: empty point name in '" + spec +
                                  "'");
  }
  out->point = target;
  if (mode == "once") {
    out->mode = TriggerMode::kNthHit;
    out->n = 1;
    return Status::ok();
  }
  if (mode.rfind("hit=", 0) == 0) {
    out->mode = TriggerMode::kNthHit;
    if (!parse_u64(mode.substr(4), &out->n) || out->n == 0) {
      return invalid_argument_error("fault plan: bad hit count in '" + spec +
                                    "'");
    }
    return Status::ok();
  }
  if (mode.rfind("every=", 0) == 0) {
    out->mode = TriggerMode::kEveryK;
    if (!parse_u64(mode.substr(6), &out->n) || out->n == 0) {
      return invalid_argument_error("fault plan: bad period in '" + spec + "'");
    }
    return Status::ok();
  }
  return invalid_argument_error(
      "fault plan: unknown mode '" + mode +
      "' (expected hit=N, every=K, or once) in '" + spec + "'");
}

}  // namespace

Status arm(const std::string& plan_spec) {
  if (!kFaultInjectionCompiledIn) {
    return invalid_argument_error(
        "fault injection not compiled in (rebuild with -DKRR_FAULTS=ON)");
  }
  disarm();
  if (plan_spec.empty()) return Status::ok();
  std::vector<std::unique_ptr<Trigger>> parsed;
  std::size_t start = 0;
  while (start <= plan_spec.size()) {
    std::size_t end = plan_spec.find_first_of(";,", start);
    if (end == std::string::npos) end = plan_spec.size();
    const std::string spec = plan_spec.substr(start, end - start);
    if (!spec.empty()) {
      auto trigger = std::make_unique<Trigger>();
      const Status status = parse_trigger(spec, trigger.get());
      if (!status.is_ok()) return status;
      parsed.push_back(std::move(trigger));
    }
    start = end + 1;
  }
  if (parsed.empty()) {
    return invalid_argument_error("fault plan: no triggers in '" + plan_spec +
                                  "'");
  }
  plan() = std::move(parsed);
  detail::g_armed.store(true, std::memory_order_release);
  return Status::ok();
}

void disarm() {
  detail::g_armed.store(false, std::memory_order_release);
  plan().clear();
}

namespace detail {

bool should_fire_impl(const char* point, std::uint64_t detail) noexcept {
  bool fire = false;
  for (const auto& trigger : plan()) {
    if (trigger->point != point) continue;
    if (trigger->has_detail && trigger->detail != detail) continue;
    const std::uint64_t hit =
        trigger->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool hit_fires = trigger->mode == TriggerMode::kNthHit
                               ? hit == trigger->n
                               : hit % trigger->n == 0;
    if (hit_fires) {
      trigger->fired.fetch_add(1, std::memory_order_relaxed);
      fire = true;  // keep counting the other triggers' hits
    }
  }
  return fire;
}

}  // namespace detail

std::uint64_t hits(const std::string& point) {
  std::uint64_t total = 0;
  for (const auto& trigger : plan()) {
    if (trigger->point == point) {
      total += trigger->hits.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t fires(const std::string& point) {
  std::uint64_t total = 0;
  for (const auto& trigger : plan()) {
    if (trigger->point == point) {
      total += trigger->fired.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t total_fires() {
  std::uint64_t total = 0;
  for (const auto& trigger : plan()) {
    total += trigger->fired.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace krr::faults
