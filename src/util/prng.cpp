#include "util/prng.h"

// All PRNG members are defined inline in the header; this translation unit
// exists so the target has a stable home for future out-of-line additions
// and so the header is compiled standalone at least once.
