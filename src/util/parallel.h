#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace krr {

/// Runs fn(i) for every i in [0, n) across up to `threads` worker threads
/// (dynamic self-scheduling via an atomic counter, so uneven per-index
/// costs — e.g. simulating small vs large cache sizes — balance out).
///
/// fn must be safe to call concurrently for distinct indices. The first
/// exception thrown by any worker is rethrown on the calling thread after
/// all workers have drained.
///
/// threads == 0 or 1, or n <= 1, degrades to a plain serial loop.
template <typename Fn>
void parallel_for_index(std::size_t n, unsigned threads, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned worker_count =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(worker_count - 1);
  for (unsigned t = 1; t < worker_count; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// A reasonable default worker count: the hardware concurrency, at least 1.
inline unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace krr
