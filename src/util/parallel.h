#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace krr {

/// Runs fn(i) for every i in [0, n) across up to `threads` worker threads
/// (dynamic self-scheduling via an atomic counter, so uneven per-index
/// costs — e.g. simulating small vs large cache sizes — balance out).
///
/// fn must be safe to call concurrently for distinct indices. The first
/// exception thrown by any worker is rethrown on the calling thread after
/// all workers have drained; once any worker throws, the remaining workers
/// stop claiming new indices (each finishes at most the call it is already
/// in), so a poisoned sweep does not run to completion.
///
/// threads == 0 or 1, or n <= 1, degrades to a plain serial loop.
template <typename Fn>
void parallel_for_index(std::size_t n, unsigned threads, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned worker_count =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(worker_count - 1);
  for (unsigned t = 1; t < worker_count; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// A reasonable default worker count: the hardware concurrency, at least 1.
inline unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Bounded single-producer / single-consumer ring buffer. Lock-free in the
/// strict sense: one push and one pop are each a couple of relaxed loads, a
/// slot copy, and one release store, with the opposite index read (acquire)
/// only when the cached copy says the queue looks full/empty. This is the
/// fan-out lane between the trace-reader thread and one shard worker in the
/// sharded profiling pipeline — exactly one thread may push and exactly one
/// thread may pop for the queue's lifetime.
///
/// Capacity is rounded up to a power of two so the ring index is a mask.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the ring is full (caller decides
  /// whether to spin, yield, or drop).
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (telemetry only: queue-depth gauges/histograms).
  std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail - head;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  /// Producer-owned line: the write index plus the producer's stale copy of
  /// the read index (refreshed only when the ring looks full).
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  /// Consumer-owned line, symmetric.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

/// Persistent worker pool: N threads consuming a mutex+condvar task queue.
/// Built for coarse, long-running tasks (a shard-drain loop, one sweep
/// partition) — submission cost is a lock and a notify, so it is not a
/// substitute for parallel_for_index on fine-grained indices.
///
/// The first exception that escapes a task is captured and rethrown from
/// the next wait_idle() call; subsequent exceptions are dropped (same
/// contract as parallel_for_index). The destructor runs every task still
/// queued, then joins — destroying a pool never silently drops work, so
/// call wait_idle() first if you need the error before teardown.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads) {
    const unsigned n = threads == 0 ? 1 : threads;
    workers_.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception (if any). Safe to call repeatedly.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
    if (first_error_) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping, queue drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++active_;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
        if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace krr
