#pragma once

#include <cstdint>

namespace krr {

/// Stateless 64-bit mixing hash (SplitMix64 finalizer). Bijective on
/// uint64_t, with strong avalanche behaviour; this is the hash used for
/// SHARDS-style spatial sampling where the sampled subset must be an
/// unbiased function of the key alone.
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Inverse of hash64 (the finalizer is bijective). Mainly used by tests to
/// demonstrate that spatial sampling is a pure function of the key.
constexpr std::uint64_t hash64_inverse(std::uint64_t x) noexcept {
  x = (x ^ (x >> 31) ^ (x >> 62)) * 0x319642b2d24d8ec3ULL;
  x = (x ^ (x >> 27) ^ (x >> 54)) * 0x96de1b173f119089ULL;
  return x ^ (x >> 30) ^ (x >> 60);
}

}  // namespace krr
