#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace krr {

/// Minimal fixed-width text table for benchmark output: the bench binaries
/// print the same rows the paper's tables report, plus a CSV dump for
/// downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with operator<< semantics.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({to_cell(cells)...});
  }

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Pretty-prints with aligned columns.
  void print(std::ostream& os) const;

  /// Prints comma-separated values (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(int v);
  static std::string to_cell(long v);
  static std::string to_cell(long long v);
  static std::string to_cell(unsigned v);
  static std::string to_cell(unsigned long v);
  static std::string to_cell(unsigned long long v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with a compact fixed precision suited for miss ratios
/// and MAEs (up to 6 significant decimals, no trailing noise).
std::string format_double(double v, int precision = 6);

}  // namespace krr
