#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace krr {

class MissRatioCurve;

/// Weighted stack-distance histogram.
///
/// Records, for each reuse, the stack distance of the referenced object; a
/// cold (first-ever) reference is recorded as an infinite distance. Weights
/// are doubles so that spatially sampled streams can record rescaled counts
/// (weight 1/R per sampled reference).
///
/// Distances may be object counts (uniform-size model) or bytes (var-KRR);
/// an optional quantum coarsens byte distances so the histogram stays small.
class DistanceHistogram {
 public:
  /// quantum: distances are rounded up to a multiple of this value before
  /// being binned. Use 1 (default) for exact object-granularity distances.
  explicit DistanceHistogram(std::uint64_t quantum = 1);

  /// Records one reuse at the given finite stack distance.
  void record(std::uint64_t distance, double weight = 1.0);

  /// Records one cold miss (infinite stack distance).
  void record_infinite(double weight = 1.0);

  /// Total recorded weight, including infinite distances.
  double total_weight() const noexcept { return total_; }

  /// Weight recorded as cold misses.
  double infinite_weight() const noexcept { return infinite_; }

  /// Number of distinct finite bins.
  std::size_t bin_count() const noexcept { return bins_.size(); }

  std::uint64_t quantum() const noexcept { return quantum_; }

  /// Converts the histogram to a miss ratio curve: for every recorded
  /// distance d, the curve has a point at cache size d whose miss ratio is
  /// P(stack distance > d). Cold misses count as misses at every size.
  /// A point at size 0 (miss ratio 1) is always included.
  MissRatioCurve to_mrc() const;

  /// Returns (distance, weight) pairs sorted by distance ascending.
  std::vector<std::pair<std::uint64_t, double>> sorted_bins() const;

  void clear();

  /// Merges another histogram into this one (bins must share the quantum).
  void merge(const DistanceHistogram& other);

  /// Multiplies every weight (finite bins, infinite mass, and the total)
  /// by `factor`. Used by the sharded profiler to extrapolate a merged
  /// histogram when some shards were dropped in best-effort mode.
  void scale(double factor);

  /// Checkpoint support: replaces the contents with previously captured
  /// state. Bin keys must already be quantized (as produced by
  /// sorted_bins()); total/infinite are reinstated verbatim so a restored
  /// histogram is bit-identical to the one that was saved.
  void restore(const std::vector<std::pair<std::uint64_t, double>>& bins,
               double infinite_weight, double total_weight);

 private:
  std::uint64_t quantum_;
  std::unordered_map<std::uint64_t, double> bins_;
  double infinite_ = 0.0;
  double total_ = 0.0;
};

}  // namespace krr
