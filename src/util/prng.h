#pragma once

#include <cstdint>
#include <limits>

namespace krr {

/// SplitMix64 generator (Steele, Lea & Flood). Used for seeding and as a
/// cheap stateless mixer; passes BigCrush for the purposes of this library.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): fast, high-quality 64-bit PRNG.
/// This is the workhorse generator for all stochastic components (K-LRU
/// eviction sampling, KRR swap sampling, workload generation).
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from a SplitMix64 stream, as recommended
  /// by the xoshiro authors (avoids the all-zero state).
  explicit Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0, suitable for inverse-CDF
  /// draws that divide or take roots (Algorithm 2 requires r in (0,1]).
  double next_double_open0() noexcept { return 1.0 - next_double(); }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (unbiased enough for simulation at 64-bit width).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Checkpoint support: copies the four raw state words out/in so a
  /// snapshotted run resumes on the exact same random stream. An all-zero
  /// state is invalid for xoshiro; load_state falls back to reseeding from
  /// word 0 in that case rather than wedging the generator.
  void save_state(std::uint64_t out[4]) const noexcept {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void load_state(const std::uint64_t in[4]) noexcept {
    std::uint64_t any = 0;
    for (int i = 0; i < 4; ++i) any |= in[i];
    if (any == 0) {
      *this = Xoshiro256ss(0);
      return;
    }
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace krr
