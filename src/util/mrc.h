#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace krr {

/// A miss ratio curve: a monotone non-increasing step function from cache
/// size (objects or bytes) to miss ratio, represented by its breakpoints.
///
/// `eval(c)` returns the miss ratio of the largest breakpoint size <= c,
/// i.e. the curve is right-continuous: between breakpoints the miss ratio of
/// the last known size applies.
class MissRatioCurve {
 public:
  struct Point {
    double size;        ///< cache size (number of objects, or bytes)
    double miss_ratio;  ///< miss ratio at exactly this size
  };

  MissRatioCurve() = default;

  /// Points need not be sorted; they are sorted on construction. Duplicate
  /// sizes keep the last-given miss ratio.
  explicit MissRatioCurve(std::vector<Point> points);

  /// Adds a breakpoint, keeping the representation sorted.
  void add_point(double size, double miss_ratio);

  /// Miss ratio at cache size c (step interpolation). An empty curve
  /// evaluates to 1.0 (everything misses); sizes below the first breakpoint
  /// also evaluate to the first breakpoint's miss ratio.
  double eval(double size) const;

  bool empty() const noexcept { return points_.empty(); }
  std::size_t size() const noexcept { return points_.size(); }
  const std::vector<Point>& points() const noexcept { return points_; }

  /// Largest breakpoint size (the working set size for curves produced by a
  /// full stack model). Returns 0 for an empty curve.
  double max_size() const;

  /// Mean absolute error against another curve, evaluated at the given
  /// cache sizes (the paper's accuracy metric, §5.3).
  double mae(const MissRatioCurve& other, const std::vector<double>& sizes) const;

  /// Maximum absolute error over the given sizes.
  double max_error(const MissRatioCurve& other, const std::vector<double>& sizes) const;

  /// Writes "size,miss_ratio" CSV lines (with header) to the stream.
  void write_csv(std::ostream& os, const std::string& label = "") const;

 private:
  std::vector<Point> points_;  // sorted by size ascending
};

/// n sizes evenly spaced over (0, max_size], i.e. max_size/n, 2*max_size/n,
/// ..., max_size — the evaluation grid the paper uses (40 sizes over the
/// working set size).
std::vector<double> evenly_spaced_sizes(double max_size, std::size_t n);

}  // namespace krr
