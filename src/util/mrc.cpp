#include "util/mrc.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace krr {

MissRatioCurve::MissRatioCurve(std::vector<Point> points) : points_(std::move(points)) {
  std::stable_sort(points_.begin(), points_.end(),
                   [](const Point& a, const Point& b) { return a.size < b.size; });
  // Collapse duplicate sizes, keeping the last-given value.
  auto out = points_.begin();
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    if (out != points_.begin() && std::prev(out)->size == it->size) {
      *std::prev(out) = *it;
    } else {
      *out++ = *it;
    }
  }
  points_.erase(out, points_.end());
}

void MissRatioCurve::add_point(double size, double miss_ratio) {
  Point p{size, miss_ratio};
  auto it = std::lower_bound(points_.begin(), points_.end(), size,
                             [](const Point& a, double s) { return a.size < s; });
  if (it != points_.end() && it->size == size) {
    it->miss_ratio = miss_ratio;
  } else {
    points_.insert(it, p);
  }
}

double MissRatioCurve::eval(double size) const {
  if (points_.empty()) return 1.0;
  auto it = std::upper_bound(points_.begin(), points_.end(), size,
                             [](double s, const Point& p) { return s < p.size; });
  if (it == points_.begin()) return it->miss_ratio;
  return std::prev(it)->miss_ratio;
}

double MissRatioCurve::max_size() const {
  return points_.empty() ? 0.0 : points_.back().size;
}

double MissRatioCurve::mae(const MissRatioCurve& other,
                           const std::vector<double>& sizes) const {
  if (sizes.empty()) throw std::invalid_argument("mae needs at least one size");
  double sum = 0.0;
  for (double s : sizes) sum += std::abs(eval(s) - other.eval(s));
  return sum / static_cast<double>(sizes.size());
}

double MissRatioCurve::max_error(const MissRatioCurve& other,
                                 const std::vector<double>& sizes) const {
  if (sizes.empty()) throw std::invalid_argument("max_error needs at least one size");
  double worst = 0.0;
  for (double s : sizes) worst = std::max(worst, std::abs(eval(s) - other.eval(s)));
  return worst;
}

void MissRatioCurve::write_csv(std::ostream& os, const std::string& label) const {
  if (label.empty()) {
    os << "size,miss_ratio\n";
    for (const Point& p : points_) os << p.size << ',' << p.miss_ratio << '\n';
  } else {
    os << "label,size,miss_ratio\n";
    for (const Point& p : points_) {
      os << label << ',' << p.size << ',' << p.miss_ratio << '\n';
    }
  }
}

std::vector<double> evenly_spaced_sizes(double max_size, std::size_t n) {
  if (n == 0 || max_size <= 0.0) {
    throw std::invalid_argument("evenly_spaced_sizes needs n>0 and max_size>0");
  }
  std::vector<double> sizes;
  sizes.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    sizes.push_back(max_size * static_cast<double>(i) / static_cast<double>(n));
  }
  return sizes;
}

}  // namespace krr
