#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace krr {

/// Log-binned histogram of reuse times (the number of references between
/// two references to the same object) — the shared substrate of the
/// reuse-time family of LRU models (AET, StatStack, HOTL §6.1). Values
/// below 2*sub_buckets are stored exactly; above, each power-of-two range
/// is split into `sub_buckets` equal sub-bins, so space is O(log N) with
/// bounded relative error.
class ReuseTimeHistogram {
 public:
  /// sub_buckets must be a power of two (resolution within each range).
  explicit ReuseTimeHistogram(std::uint32_t sub_buckets = 256);

  /// Records one reuse with the given reuse time (must be >= 1).
  void record(std::uint64_t reuse_time, double weight = 1.0);

  /// Total recorded weight.
  double total() const noexcept { return total_; }

  bool empty() const noexcept { return total_ <= 0.0; }

  /// The bin index a reuse time falls into (exposed for tests).
  std::size_t bin_index(std::uint64_t reuse_time) const;

  /// Upper bound (inclusive) of the reuse times covered by a bin.
  std::uint64_t bin_upper_bound(std::size_t index) const;

  /// Visits non-empty bins in ascending reuse-time order as
  /// (upper_bound, weight) pairs.
  template <typename Fn>
  void for_each_bin(Fn&& fn) const {
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (bins_[i] > 0.0) fn(bin_upper_bound(i), bins_[i]);
    }
  }

  /// Weight of reuses with reuse time > t (bin-resolution tail count).
  double tail_weight(std::uint64_t t) const;

 private:
  std::uint32_t sub_buckets_;
  std::vector<double> bins_;
  double total_ = 0.0;
};

/// Per-object last-access bookkeeping shared by reuse-time models: feeds
/// reuse times into a histogram and counts cold references.
class ReuseTimeCollector {
 public:
  explicit ReuseTimeCollector(std::uint32_t sub_buckets = 256);

  /// Records one reference to `key`; returns the reuse time (0 when cold).
  std::uint64_t access(std::uint64_t key);

  const ReuseTimeHistogram& histogram() const noexcept { return histogram_; }
  double cold_count() const noexcept { return cold_; }
  std::uint64_t processed() const noexcept { return time_; }
  std::size_t distinct_objects() const noexcept { return last_access_.size(); }

  /// Read-only view of last-access times (HOTL's window-edge corrections).
  const std::unordered_map<std::uint64_t, std::uint64_t>& last_access_times() const {
    return last_access_;
  }

  /// First-access times, keyed like last_access_times().
  const std::unordered_map<std::uint64_t, std::uint64_t>& first_access_times() const {
    return first_access_;
  }

 private:
  ReuseTimeHistogram histogram_;
  double cold_ = 0.0;
  std::uint64_t time_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> last_access_;
  std::unordered_map<std::uint64_t, std::uint64_t> first_access_;
};

}  // namespace krr
