#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace krr {

/// Log-binned histogram of reuse times (the number of references between
/// two references to the same object) — the shared substrate of the
/// reuse-time family of LRU models (AET, StatStack, HOTL §6.1). Values
/// below 2*sub_buckets are stored exactly; above, each power-of-two range
/// is split into `sub_buckets` equal sub-bins, so space is O(log N) with
/// bounded relative error.
class ReuseTimeHistogram {
 public:
  /// sub_buckets must be a power of two (resolution within each range).
  explicit ReuseTimeHistogram(std::uint32_t sub_buckets = 256);

  /// Records one reuse with the given reuse time (must be >= 1).
  void record(std::uint64_t reuse_time, double weight = 1.0);

  /// Total recorded weight.
  double total() const noexcept { return total_; }

  bool empty() const noexcept { return total_ <= 0.0; }

  /// The bin index a reuse time falls into (exposed for tests).
  std::size_t bin_index(std::uint64_t reuse_time) const;

  /// Upper bound (inclusive) of the reuse times covered by a bin.
  std::uint64_t bin_upper_bound(std::size_t index) const;

  /// Visits non-empty bins in ascending reuse-time order as
  /// (upper_bound, weight) pairs.
  template <typename Fn>
  void for_each_bin(Fn&& fn) const {
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (bins_[i] > 0.0) fn(bin_upper_bound(i), bins_[i]);
    }
  }

  /// Weight of reuses with reuse time > t (bin-resolution tail count).
  double tail_weight(std::uint64_t t) const;

  std::uint32_t sub_buckets() const noexcept { return sub_buckets_; }
  std::size_t bin_count() const noexcept { return bins_.size(); }

  /// Graceful degradation: halves the sub-bucket resolution, re-binning
  /// every recorded weight at its bin's upper bound (so mass only moves
  /// within a bin's covered range and tail counts stay conservative).
  /// Returns false once the resolution has bottomed out.
  bool coarsen();

  /// Folds another histogram's mass into this one. Matching resolutions
  /// add bin-wise (exact); differing resolutions re-record each of the
  /// other's bins at its upper bound, the same conservative move coarsen()
  /// makes. Bins are visited in ascending order, so merging is
  /// deterministic for a fixed operand order.
  void merge(const ReuseTimeHistogram& other);

  /// Multiplies every bin (and the total) by `factor` — the sharded
  /// runner's survivor extrapolation. Ratios of tail weights to totals are
  /// unchanged; only absolute mass scales.
  void scale(double factor);

  /// Raw bin weights, indexed as bin_index() produces (checkpoint support;
  /// sub_buckets() + bins() + total() capture the full state).
  const std::vector<double>& bins() const noexcept { return bins_; }

  /// Checkpoint support: replaces the contents with previously captured
  /// state, including the resolution — coarsen() mutates sub_buckets_, so
  /// a snapshot must carry it. Returns false (state untouched) when
  /// `sub_buckets` is not a power of two.
  bool restore(std::uint32_t sub_buckets, std::vector<double> bins,
               double total);

 private:
  std::uint32_t sub_buckets_;
  std::vector<double> bins_;
  double total_ = 0.0;
};

/// Per-object last-access bookkeeping shared by reuse-time models: feeds
/// reuse times into a histogram and counts cold references.
///
/// Supports SHARDS-style spatial down-sampling as its memory-governance
/// degradation: halve_sample() halves a hash threshold and drops tracked
/// objects that fall out of the sample; subsequent records carry weight
/// 1/R so histogram mass and cold counts stay in unsampled units (reuse
/// times themselves are measured on the global clock and need no
/// rescaling — a property of spatial sampling the reuse-time family
/// shares with SHARDS). At the initial rate 1.0 every weight is exactly
/// 1.0 and behaviour is bit-identical to the unsampled collector.
class ReuseTimeCollector {
 public:
  /// `stream_scale` rescales recorded reuse times for shard-local use:
  /// a collector fed a uniform 1/S sample of a stream ticks its clock S
  /// times slower than the full stream, so shard-local reuse times times S
  /// estimate global ones (the same closure-under-thinning argument as
  /// SHARDS distance scaling). The default 1 leaves times untouched and is
  /// bit-identical to the unscaled collector.
  explicit ReuseTimeCollector(std::uint32_t sub_buckets = 256,
                              std::uint64_t stream_scale = 1);

  /// Records one reference to `key`; returns the shard-local reuse time
  /// (0 when cold or filtered out of the sample). The histogram records
  /// the stream-scaled time.
  std::uint64_t access(std::uint64_t key);

  /// Halves the sampling threshold and evicts tracked objects that no
  /// longer pass (an exact subset survives). False once bottomed out.
  bool halve_sample();

  /// Current sampling rate (1.0 until the first halve_sample()).
  double sampling_rate() const noexcept {
    return static_cast<double>(sample_threshold_) /
           static_cast<double>(sample_modulus_);
  }

  /// 1/rate: the weight each sampled reference is recorded with.
  double scale() const noexcept { return 1.0 / sampling_rate(); }

  /// Estimated distinct objects in the full stream: tracked * scale, plus
  /// whatever absorbed shard collectors contributed (shards are
  /// key-disjoint, so the contributions add exactly).
  double estimated_distinct() const noexcept {
    return static_cast<double>(last_access_.size()) * scale() +
           absorbed_estimated_distinct_;
  }

  /// Folds another collector's accumulated state into this one: histogram
  /// mass, cold count, clock ticks, and distinct-object estimates all add.
  /// Only meaningful when the two collectors saw disjoint key sets (the
  /// sharded runner's hash partition guarantees this); the per-key maps of
  /// `other` are summarized into counters, not copied.
  void absorb(const ReuseTimeCollector& other);

  /// Survivor extrapolation for best-effort sharded runs: multiplies all
  /// accumulated mass (histogram, cold count, clock, distinct estimates)
  /// by `factor`, folding the live per-key maps into the absorbed counters
  /// first. The collector must not record further accesses afterwards.
  void scale_mass(double factor);

  /// Forwards ReuseTimeHistogram::coarsen (the cheaper degradation step).
  bool coarsen_histogram() { return histogram_.coarsen(); }

  /// Estimated resident bytes (governance accounting): both per-object
  /// maps plus the log-binned histogram.
  std::uint64_t space_overhead_bytes() const noexcept;

  const ReuseTimeHistogram& histogram() const noexcept { return histogram_; }
  double cold_count() const noexcept { return cold_; }
  std::uint64_t processed() const noexcept { return time_; }
  std::size_t distinct_objects() const noexcept {
    return last_access_.size() + absorbed_distinct_;
  }
  std::uint64_t stream_scale() const noexcept { return stream_scale_; }

  /// Read-only view of last-access times (HOTL's window-edge corrections).
  const std::unordered_map<std::uint64_t, std::uint64_t>& last_access_times() const {
    return last_access_;
  }

  /// First-access times, keyed like last_access_times().
  const std::unordered_map<std::uint64_t, std::uint64_t>& first_access_times() const {
    return first_access_;
  }

  /// Checkpoint accessors (with cold_count/processed/stream_scale and the
  /// map views above, these capture the collector's full state).
  std::uint64_t sample_threshold() const noexcept { return sample_threshold_; }
  std::uint64_t sample_modulus() const noexcept { return sample_modulus_; }
  std::size_t absorbed_distinct() const noexcept { return absorbed_distinct_; }
  double absorbed_estimated_distinct() const noexcept {
    return absorbed_estimated_distinct_;
  }

  /// One tracked object's bookkeeping, as restore() consumes it.
  struct ObjectTimes {
    std::uint64_t key;
    std::uint64_t first;
    std::uint64_t last;
  };

  /// Checkpoint support: replaces the whole collector state (histogram
  /// resolution/bins/total, cold count, clock, per-object maps, sampling
  /// threshold, absorbed-shard counters). stream_scale is construction
  /// config and is NOT restored — callers validate it separately. Returns
  /// false (state unspecified only on histogram failure: untouched) for an
  /// invalid resolution, an out-of-range threshold, a duplicate key, or
  /// object times that contradict the clock.
  bool restore(std::uint32_t sub_buckets, std::vector<double> histogram_bins,
               double histogram_total, double cold, std::uint64_t time,
               const std::vector<ObjectTimes>& objects,
               std::uint64_t sample_threshold, std::size_t absorbed_distinct,
               double absorbed_estimated_distinct);

 private:
  bool in_sample(std::uint64_t key) const noexcept;

  ReuseTimeHistogram histogram_;
  double cold_ = 0.0;
  std::uint64_t time_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> last_access_;
  std::unordered_map<std::uint64_t, std::uint64_t> first_access_;
  // SHARDS-style hash threshold (same convention as SpatialFilter, kept
  // local so util/ stays independent of core/): sampled iff
  // hash64(key) % modulus < threshold.
  std::uint64_t sample_modulus_ = 1ULL << 24;
  std::uint64_t sample_threshold_ = 1ULL << 24;
  std::uint64_t stream_scale_ = 1;
  // Contributions folded in from absorbed shard collectors (and from this
  // collector's own maps once scale_mass() retires them).
  std::size_t absorbed_distinct_ = 0;
  double absorbed_estimated_distinct_ = 0.0;
};

}  // namespace krr
