#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace krr {

/// Tiny command-line/environment option parser shared by the bench and
/// example binaries. Understands `--name=value` and bare `--flag` arguments;
/// unknown positional arguments are kept in order.
class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  /// Value of --name=..., if present.
  std::optional<std::string> get(const std::string& name) const;

  /// True if --name was given (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

/// Global benchmark scale factor, from the KRR_BENCH_SCALE environment
/// variable (default 1.0). Bench binaries multiply their trace lengths by
/// this, so `KRR_BENCH_SCALE=10 ./bench_...` approaches paper-sized runs
/// while the default stays laptop-friendly.
double bench_scale();

/// n scaled by bench_scale(), never below min_value.
std::uint64_t scaled(std::uint64_t n, std::uint64_t min_value = 1);

}  // namespace krr
