#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/status.h"

namespace krr::faults {

/// Deterministic fault injection: named fault points compiled into the
/// production code paths (shard workers, queue pushes, checkpoint writes,
/// trace reads) that fire according to an armed trigger plan. The plan
/// grammar is
///
///   plan    := trigger (';' trigger)*
///   trigger := point ['#' detail] '@' mode
///   mode    := 'hit=' N          fire on the Nth matching hit (one-shot)
///            | 'every=' K        fire on every Kth matching hit
///            | 'once'            fire on the first matching hit (== hit=1)
///
/// e.g. "sharded.worker#1@hit=500" crashes shard 1's worker at its 500th
/// record, "checkpoint.write@every=2" fails every second snapshot write.
/// The optional '#detail' restricts the trigger to hits carrying that
/// detail value (shard index for the sharded points; points without a
/// natural detail pass 0). Hit counting is per trigger and deterministic:
/// the same plan against the same run fires at the same instant every
/// time, which is what lets recovery tests assert bit-identical outcomes.
///
/// The subsystem is compiled in under the KRR_FAULTS CMake option (default
/// ON, like KRR_METRICS); when compiled out, should_fire()/maybe_fire()
/// collapse to constant-false inlines and arm() reports kInvalidArgument.
/// When compiled in but disarmed — the production state — a fault point
/// costs one relaxed atomic load.
///
/// Arming is process-global and not thread-safe against in-flight
/// should_fire() racing arm(): arm the plan before the run starts (the CLI
/// arms from --fault-plan / KRR_FAULT_PLAN before any pipeline exists, and
/// tests arm before constructing estimators).

/// Fault points wired into the pipeline. Call sites pass these exact
/// strings; plans name them verbatim.
inline constexpr const char* kShardWorker = "sharded.worker";
inline constexpr const char* kQueuePush = "sharded.queue_push";
inline constexpr const char* kCheckpointWrite = "checkpoint.write";
inline constexpr const char* kTraceRead = "trace.read";

/// Thrown by maybe_fire() at throwing call sites (shard workers). Derives
/// from std::runtime_error so existing failure handling (strict rethrow,
/// best-effort shard death) treats an injected crash like a real one.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

#ifdef KRR_FAULTS_ENABLED
inline constexpr bool kFaultInjectionCompiledIn = true;
#else
inline constexpr bool kFaultInjectionCompiledIn = false;
#endif

/// Parses and arms a trigger plan (replacing any armed plan). Empty plan ==
/// disarm. kInvalidArgument on a malformed spec or when the subsystem is
/// compiled out.
Status arm(const std::string& plan);

/// Drops the armed plan and zeroes all hit/fire accounting.
void disarm();

namespace detail {
extern std::atomic<bool> g_armed;
bool should_fire_impl(const char* point, std::uint64_t detail) noexcept;
}  // namespace detail

inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// True when an armed trigger matches this hit of `point` and elects to
/// fire. Status-returning call sites (checkpoint writes, trace reads) use
/// this directly and surface the fault as a typed Status.
inline bool should_fire(const char* point, std::uint64_t detail = 0) noexcept {
  if constexpr (!kFaultInjectionCompiledIn) {
    (void)point;
    (void)detail;
    return false;
  } else {
    return armed() && detail::should_fire_impl(point, detail);
  }
}

/// Throwing form for exception-based call sites (shard workers): fires as a
/// FaultInjectedError carrying the point name and detail.
inline void maybe_fire(const char* point, std::uint64_t detail = 0) {
  if (should_fire(point, detail)) {
    throw FaultInjectedError(std::string("injected fault at ") + point + "#" +
                             std::to_string(detail));
  }
}

/// Accounting for tests and the CLI summary: matching hits observed and
/// faults actually fired at this point, summed over the armed plan's
/// triggers. Zero when disarmed or unknown.
std::uint64_t hits(const std::string& point);
std::uint64_t fires(const std::string& point);

/// Total faults fired across all points since the last arm().
std::uint64_t total_fires();

}  // namespace krr::faults
