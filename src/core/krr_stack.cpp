#include "core/krr_stack.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace krr {

double corrected_k(double k_sample) {
  if (!(k_sample >= 1.0)) throw std::invalid_argument("sampling size must be >= 1");
  return std::pow(k_sample, 1.4);
}

KrrStack::KrrStack(const KrrStackConfig& config)
    : config_(config),
      sampler_(config.strategy, config.k, config.sampling_model),
      rng_(config.seed) {
  if (config_.track_bytes) {
    size_array_ = std::make_unique<SizeArray>(config_.size_array_base);
    if (config_.track_bytes_exact) exact_bytes_ = std::make_unique<ExactByteTracker>();
  } else if (config_.track_bytes_exact) {
    throw std::invalid_argument("track_bytes_exact requires track_bytes");
  }
}

std::uint64_t KrrStack::total_bytes() const noexcept {
  return size_array_ ? size_array_->total_bytes() : stack_.size();
}

std::uint64_t KrrStack::retain(const std::function<bool(std::uint64_t)>& keep) {
  std::size_t write = 0;
  for (std::size_t read = 0; read < stack_.size(); ++read) {
    if (!keep(stack_[read])) {
      position_.erase(stack_[read]);
      continue;
    }
    stack_[write] = stack_[read];
    sizes_[write] = sizes_[read];
    position_[stack_[write]] = write;
    ++write;
  }
  const std::uint64_t evicted = stack_.size() - write;
  if (evicted == 0) return 0;
  stack_.resize(write);
  sizes_.resize(write);
  // The byte trackers are prefix structures over stack positions; rebuild
  // them by replaying the compacted stack as appends (top first).
  if (size_array_) {
    size_array_ = std::make_unique<SizeArray>(config_.size_array_base);
    for (std::size_t i = 0; i < write; ++i) {
      size_array_->on_append(sizes_[i], i + 1);
    }
  }
  if (exact_bytes_) {
    exact_bytes_ = std::make_unique<ExactByteTracker>();
    for (std::size_t i = 0; i < write; ++i) {
      exact_bytes_->on_append(sizes_[i], i + 1);
    }
  }
  last_exact_byte_distance_.reset();
  return evicted;
}

void KrrStack::save_state(std::string& out) const {
  ckpt::append_u64(out, stack_.size());
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    ckpt::append_u64(out, stack_[i]);
    ckpt::append_u32(out, sizes_[i]);
  }
  ckpt::append_u64(out, swaps_performed_);
  std::uint64_t rng_state[4];
  rng_.save_state(rng_state);
  for (const std::uint64_t word : rng_state) ckpt::append_u64(out, word);
}

bool KrrStack::load_state(ckpt::ByteReader& reader) {
  stack_.clear();
  sizes_.clear();
  position_.clear();
  last_exact_byte_distance_.reset();
  std::uint64_t depth = 0;
  if (!reader.read_u64(&depth)) return false;
  // Each entry needs 12 payload bytes; a depth the payload cannot hold is
  // a corrupt length field, not a real stack.
  if (depth > reader.remaining() / 12) return false;
  stack_.reserve(depth);
  sizes_.reserve(depth);
  position_.reserve(depth);
  for (std::uint64_t i = 0; i < depth; ++i) {
    std::uint64_t key = 0;
    std::uint32_t size = 0;
    if (!reader.read_u64(&key) || !reader.read_u32(&size)) return false;
    // Duplicate keys would desynchronize the position index.
    if (!position_.emplace(key, stack_.size()).second) return false;
    stack_.push_back(key);
    sizes_.push_back(size);
  }
  if (!reader.read_u64(&swaps_performed_)) return false;
  std::uint64_t rng_state[4];
  for (std::uint64_t& word : rng_state) {
    if (!reader.read_u64(&word)) return false;
  }
  rng_.load_state(rng_state);
  // Prefix byte trackers are rebuilt by replaying appends, top first (the
  // same reconstruction retain() uses after compaction).
  if (size_array_) {
    size_array_ = std::make_unique<SizeArray>(config_.size_array_base);
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      size_array_->on_append(sizes_[i], i + 1);
    }
  }
  if (exact_bytes_) {
    exact_bytes_ = std::make_unique<ExactByteTracker>();
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      exact_bytes_->on_append(sizes_[i], i + 1);
    }
  }
  return true;
}

void KrrStack::attach_metrics(obs::StackMetrics* metrics) noexcept {
#ifdef KRR_METRICS_ENABLED
  metrics_ = metrics;
#else
  (void)metrics;
#endif
}

KrrStack::AccessResult KrrStack::access(std::uint64_t key, std::uint32_t size) {
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) return access_instrumented(key, size);
#endif
  return access_impl(key, size);
}

#ifdef KRR_METRICS_ENABLED
KrrStack::AccessResult KrrStack::access_instrumented(std::uint64_t key,
                                                     std::uint32_t size) {
  // Timing every access would cost two clock reads (~40 ns) against a
  // ~100 ns update — far over the obs overhead budget. Sampling every
  // kTimingStride-th access keeps update_ns statistically representative
  // at ~1/64 of that cost; the integer counters are exact.
  const bool timed = (metrics_seq_++ % kTimingStride) == 0;
  std::optional<Stopwatch> timer;
  if (timed) timer.emplace();
  const std::uint64_t swaps_before = swaps_performed_;
  const AccessResult result = access_impl(key, size);
  const std::uint64_t chain = swaps_performed_ - swaps_before;
  if (result.cold) metrics_->cold_misses->inc();
  metrics_->swaps->inc(chain);
  metrics_->chain_len->record(chain);
  if (timed) metrics_->update_ns->record(timer->nanos());
  return result;
}
#endif

KrrStack::AccessResult KrrStack::access_impl(std::uint64_t key, std::uint32_t size) {
  AccessResult result{};
  std::uint64_t phi;
  auto it = position_.find(key);
  if (it == position_.end()) {
    // Cold reference: attach at the stack end before the update, so the
    // rotation carries it to the top like any other reference (Alg. 1).
    stack_.push_back(key);
    sizes_.push_back(size);
    position_.emplace(key, stack_.size() - 1);
    phi = stack_.size();
    result.cold = true;
    if (size_array_) size_array_->on_append(size, phi);
    if (exact_bytes_) exact_bytes_->on_append(size, phi);
  } else {
    phi = it->second + 1;
    result.cold = false;
    if (sizes_[it->second] != size) {
      // A set with a new value size: resize in place before measuring.
      if (size_array_) size_array_->on_resize(phi, sizes_[it->second], size);
      if (exact_bytes_) exact_bytes_->on_resize(phi, sizes_[it->second], size);
      sizes_[it->second] = size;
    }
  }
  result.position = phi;
  if (size_array_) result.byte_distance = size_array_->byte_distance(phi);
  if (exact_bytes_) {
    last_exact_byte_distance_ = exact_bytes_->byte_distance(phi);
  }

  // Sample the swap chain and rotate: resident of chain[j] moves to
  // chain[j+1]; the referenced object lands on top.
  sampler_.sample(phi, rng_, chain_);
  swaps_performed_ += chain_.size();
  if (phi == 1) return result;
  if (size_array_) size_array_->on_rotate(chain_, sizes_, size);
  if (exact_bytes_) exact_bytes_->on_rotate(chain_, sizes_, size);
  for (std::size_t j = chain_.size(); j-- > 1;) {
    const std::uint64_t dst = chain_[j] - 1;
    const std::uint64_t src = chain_[j - 1] - 1;
    stack_[dst] = stack_[src];
    sizes_[dst] = sizes_[src];
    position_[stack_[dst]] = dst;
  }
  stack_[0] = key;
  sizes_[0] = size;
  position_[key] = 0;
  return result;
}

}  // namespace krr
