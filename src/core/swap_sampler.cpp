#include "core/swap_sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace krr {

std::string to_string(UpdateStrategy strategy) {
  switch (strategy) {
    case UpdateStrategy::kLinear:
      return "linear";
    case UpdateStrategy::kTopDown:
      return "top_down";
    case UpdateStrategy::kBackward:
      return "backward";
  }
  return "unknown";
}

std::string to_string(SamplingModel model) {
  switch (model) {
    case SamplingModel::kPlacingBack:
      return "placing_back";
    case SamplingModel::kNoPlacingBack:
      return "no_placing_back";
  }
  return "unknown";
}

SwapSampler::SwapSampler(UpdateStrategy strategy, double k, SamplingModel model)
    : strategy_(strategy), model_(model), k_(k), inv_k_(1.0 / k) {
  if (!(k >= 1.0)) throw std::invalid_argument("KRR exponent must be >= 1");
}

double SwapSampler::stay_probability(std::uint64_t i) const {
  if (i <= 1) return 0.0;
  if (model_ == SamplingModel::kPlacingBack) {
    return std::pow(static_cast<double>(i - 1) / static_cast<double>(i), k_);
  }
  // Without placing back: eviction probability K/i (Prop. 2 at rank d = C).
  const double p = 1.0 - k_ / static_cast<double>(i);
  return p > 0.0 ? p : 0.0;
}

double SwapSampler::no_swap_probability(std::uint64_t a, std::uint64_t b) const {
  if (a > b) return 1.0;  // empty interval
  if (model_ == SamplingModel::kPlacingBack) {
    return std::pow(static_cast<double>(a - 1) / static_cast<double>(b), k_);
  }
  // prod_{i=a}^{b} (i-k)/i = [G(b+1-k)/G(a-k)] / [G(b+1)/G(a)]; any
  // position <= k always swaps, so the product vanishes.
  if (static_cast<double>(a) <= k_) return 0.0;
  const double log_p = std::lgamma(static_cast<double>(b + 1) - k_) -
                       std::lgamma(static_cast<double>(a) - k_) -
                       std::lgamma(static_cast<double>(b + 1)) +
                       std::lgamma(static_cast<double>(a));
  return std::exp(log_p);
}

double SwapSampler::expected_swaps(std::uint64_t phi) const {
  // Positions 1 and phi always swap; each interior position i swaps with
  // probability 1 - stay(i).
  if (phi <= 1) return 1.0;
  double expected = 2.0;
  for (std::uint64_t i = 2; i < phi; ++i) {
    expected += 1.0 - stay_probability(i);
  }
  return expected;
}

void SwapSampler::sample(std::uint64_t phi, Xoshiro256ss& rng,
                         std::vector<std::uint64_t>& out) const {
  out.clear();
  if (phi == 0) throw std::invalid_argument("stack distance must be >= 1");
  if (phi == 1) {
    out.push_back(1);
    return;
  }
  switch (strategy_) {
    case UpdateStrategy::kLinear:
      sample_linear(phi, rng, out);
      break;
    case UpdateStrategy::kTopDown:
      sample_top_down(phi, rng, out);
      break;
    case UpdateStrategy::kBackward:
      sample_backward(phi, rng, out);
      break;
  }
}

void SwapSampler::sample_linear(std::uint64_t phi, Xoshiro256ss& rng,
                                std::vector<std::uint64_t>& out) const {
  // One Bernoulli draw per interior position, scanning top-down — exactly
  // the draw sequence of GenericMattsonStack::krr, so seeded runs of the
  // two implementations agree position for position.
  out.push_back(1);
  for (std::uint64_t i = 2; i < phi; ++i) {
    const double stay = stay_probability(i);
    if (stay > 0.0 && rng.next_double() < stay) continue;
    out.push_back(i);
  }
  out.push_back(phi);
}

void SwapSampler::sample_top_down(std::uint64_t phi, Xoshiro256ss& rng,
                                  std::vector<std::uint64_t>& out) const {
  out.push_back(1);
  // Interior positions [2, phi-1]; empty when phi == 2.
  if (phi >= 3) {
    const std::uint64_t lo = 2;
    const std::uint64_t hi = phi - 1;
    // Enter the recursion only if the interval contains >= 1 swap.
    if (rng.next_double() >= no_swap_probability(lo, hi)) {
      // Explicit stack of intervals *conditioned on containing a swap*.
      // Visiting the left child before the right keeps output ascending.
      struct Interval {
        std::uint64_t start, end;
      };
      std::vector<Interval> work;
      work.push_back({lo, hi});
      while (!work.empty()) {
        const Interval iv = work.back();
        work.pop_back();
        if (iv.start == iv.end) {
          out.push_back(iv.start);
          continue;
        }
        const std::uint64_t mid = (iv.start + iv.end + 1) / 2;  // ceil
        // Left child [start, mid-1], right child [mid, end]; conditioned on
        // >= 1 swap overall, the child pattern (left-only / right-only /
        // both) has the renormalized independent-Bernoulli probabilities.
        const double nsw1 = no_swap_probability(iv.start, mid - 1);
        const double nsw2 = no_swap_probability(mid, iv.end);
        const double sw1 = 1.0 - nsw1;
        const double sw2 = 1.0 - nsw2;
        const double only1 = sw1 * nsw2;
        const double only2 = nsw1 * sw2;
        const double weight = only1 + only2 + sw1 * sw2;
        const double u = rng.next_double() * weight;
        const bool left = u < only1 || u >= only1 + only2;
        const bool right = u >= only1;
        // LIFO: push right first so the left interval is processed first.
        if (right) work.push_back({mid, iv.end});
        if (left) work.push_back({iv.start, mid - 1});
      }
    }
  }
  out.push_back(phi);
}

std::uint64_t SwapSampler::previous_swap(std::uint64_t i, double r) const {
  if (model_ == SamplingModel::kPlacingBack) {
    // Closed-form inverse: P(X <= x) = (x/(i-1))^K.
    const double scaled = std::pow(r, inv_k_) * static_cast<double>(i - 1);
    std::uint64_t x = static_cast<std::uint64_t>(std::ceil(scaled));
    if (x < 1) x = 1;
    if (x >= i) x = i - 1;
    return x;
  }
  // Without placing back the CDF has no closed-form inverse; binary-search
  // the smallest x with P(X <= x) = no_swap(x+1, i-1) >= r. The CDF is
  // non-decreasing in x and reaches 1 at x = i-1 (empty interval).
  std::uint64_t lo = 1, hi = i - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (no_swap_probability(mid + 1, i - 1) >= r) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void SwapSampler::sample_backward(std::uint64_t phi, Xoshiro256ss& rng,
                                  std::vector<std::uint64_t>& out) const {
  // Algorithm 2: from the bottom boundary i, the next swap position above
  // is the largest swap among [1, i-1], drawn through the inverse CDF of
  // P(X <= x) = no_swap(x+1, i-1) with r in (0, 1].
  out.push_back(phi);
  std::uint64_t i = phi;
  while (i > 1) {
    const double r = rng.next_double_open0();
    const std::uint64_t x = previous_swap(i, r);
    out.push_back(x);
    i = x;
  }
  std::reverse(out.begin(), out.end());
}

}  // namespace krr
