#pragma once

#include <cstdint>
#include <functional>

#include "util/retry.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace krr {

class MrcEstimator;

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Tracer;
}  // namespace obs

/// Knobs for one governed run. All limits are optional; a zero value
/// disarms that limb of the governor.
struct RunGovernorConfig {
  /// Memory budget the estimator's space_overhead_bytes() is held under by
  /// calling degrade() until it fits (or the model bottoms out).
  std::uint64_t max_stack_bytes = 0;
  /// Wall-clock deadline measured from governor construction; once it
  /// expires, on_access() returns false and the caller finishes early with
  /// a partial curve.
  double deadline_secs = 0.0;
  /// Accesses between limit checks. Checks walk the estimator's state
  /// accounting, so they are stride-gated off the per-access hot path.
  std::uint64_t check_stride = 4096;
  /// Records between durable checkpoints (0 disables checkpointing).
  std::uint64_t checkpoint_every = 0;
  /// Writes one durable snapshot; receives the number of accesses governed
  /// so far and returns the snapshot's size in bytes (reported in
  /// GovernanceReport and traced per write). A non-OK return aborts the run
  /// via StatusError (a checkpoint the caller asked for but cannot write is
  /// not a survivable condition — resuming from it would silently lose
  /// work).
  std::function<StatusOr<std::uint64_t>(std::uint64_t records)> checkpoint_fn;
  /// Transient checkpoint-write failures are retried under this policy
  /// before the run aborts. The default (max_attempts = 1) keeps the old
  /// fail-fast behavior; every extra attempt is counted in
  /// GovernanceReport::checkpoint_retries and traced.
  RetryPolicy checkpoint_retry{.max_attempts = 1};
};

/// What the governor did during the run, folded into RunReport/metrics by
/// the caller at end of run.
struct GovernanceReport {
  std::uint64_t checks = 0;
  std::uint64_t degrade_steps = 0;
  std::uint64_t checkpoints_written = 0;
  /// Checkpoint writes that failed and were re-attempted (the attempts
  /// beyond the first, summed over the run).
  std::uint64_t checkpoint_retries = 0;
  std::uint64_t last_checkpoint_records = 0;
  std::uint64_t last_checkpoint_bytes = 0;
  /// Wall-clock seconds spent inside checkpoint_fn across the run.
  double checkpoint_seconds = 0.0;
  std::uint64_t peak_space_bytes = 0;
  /// The estimator could not degrade below the budget (degrade() returned
  /// false while over). The run continues — partial information beats none
  /// — but the report flags that the budget was not honored.
  bool budget_exhausted = false;
  bool deadline_hit = false;
};

/// Periodic run-lifecycle enforcement every registered estimator plugs
/// into: memory budget (via the MrcEstimator governance hooks), wall-clock
/// deadline, and durable checkpoint cadence. Drive it from the ingest loop:
///
///   RunGovernor governor(cfg, estimator.get());
///   for (const Request& req : trace) {
///     estimator->access(req);
///     if (!governor.on_access()) break;  // deadline expired
///   }
///   governor.finalize();
///
/// The governor holds a non-owning estimator pointer and must not outlive
/// it. It is not thread-safe; drive it from the producer thread only (the
/// sharded profiler governs its own shards internally).
class RunGovernor {
 public:
  /// `tracer` (optional, non-owning) receives the governor's limb events:
  /// degrade steps with before/after bytes, checkpoint spans with
  /// duration + size, and the deadline cut.
  RunGovernor(const RunGovernorConfig& config, MrcEstimator* estimator,
              obs::MetricsRegistry* registry = nullptr,
              obs::Tracer* tracer = nullptr);

  /// Call after every access. Returns false once the deadline has expired
  /// (callers should stop feeding and finish with a partial curve). Throws
  /// StatusError if a requested checkpoint cannot be written.
  bool on_access();

  /// One final budget-enforcement pass, so the end-of-run state respects
  /// the budget even when the trace length is not a stride multiple.
  void finalize();

  const GovernanceReport& report() const noexcept { return report_; }

  /// Accesses governed so far (== number of on_access() calls).
  std::uint64_t accesses() const noexcept { return accesses_; }

 private:
  void check_limits();
  void enforce_budget();

  RunGovernorConfig config_;
  MrcEstimator* estimator_;
  Stopwatch watch_;
  GovernanceReport report_;
  std::uint64_t accesses_ = 0;
  std::uint64_t next_check_ = 0;
  std::uint64_t next_checkpoint_ = 0;

  // Optional obs wiring (counters live in the registry, stable addresses).
  obs::Counter* checks_metric_ = nullptr;
  obs::Counter* degrade_metric_ = nullptr;
  obs::Counter* checkpoint_metric_ = nullptr;
  obs::Counter* checkpoint_retry_metric_ = nullptr;
  obs::Gauge* peak_space_metric_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace krr
