#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "sim/klru_cache.h"
#include "trace/request.h"

namespace krr {

/// Configuration for the DLRU-style adaptive K-LRU cache.
struct AdaptiveKLruConfig {
  std::uint64_t capacity = 0;       ///< in Request::size units
  std::uint32_t initial_k = 5;
  std::vector<std::uint32_t> candidate_ks = {1, 2, 4, 8, 16, 32};
  std::uint64_t epoch = 100000;     ///< requests between reconfigurations
  double sampling_rate = 0.01;      ///< spatial rate of the profiler bank
  /// Prefer a smaller K whose predicted miss ratio is within this margin
  /// of the best candidate (smaller K = cheaper evictions).
  double tolerance = 0.005;
  /// Restart the profiler bank after each reconfiguration, so decisions
  /// reflect the last epoch rather than the whole history — what lets the
  /// controller follow phase changes.
  bool reset_each_epoch = true;
  std::uint64_t seed = 1;
};

/// DLRU (Wang, Yang & Wang, MEMSYS '20), the application that motivated the
/// paper: a K-LRU cache that reconfigures its eviction sampling size K
/// online. A bank of KRR profilers — one per candidate K, all sharing one
/// spatially sampled stream — predicts each candidate's miss ratio at the
/// cache's capacity; at every epoch boundary the cache switches to the
/// cheapest candidate within `tolerance` of the best prediction.
class AdaptiveKLruCache {
 public:
  explicit AdaptiveKLruCache(const AdaptiveKLruConfig& config);

  /// Processes one reference through the cache and the profiler bank;
  /// returns true on hit.
  bool access(const Request& req);

  std::uint32_t current_k() const noexcept { return current_k_; }

  /// The K chosen at each epoch boundary, in order.
  const std::vector<std::uint32_t>& k_history() const noexcept { return history_; }

  std::uint64_t hits() const noexcept { return cache_.hits(); }
  std::uint64_t misses() const noexcept { return cache_.misses(); }
  double miss_ratio() const { return cache_.miss_ratio(); }

  /// Predicted miss ratio at the cache capacity for each candidate K,
  /// from the current profiler state (diagnostic).
  std::vector<double> predictions() const;

 private:
  void reconfigure();
  void rebuild_profilers();

  AdaptiveKLruConfig config_;
  KLruCache cache_;
  std::vector<std::unique_ptr<KrrProfiler>> profilers_;  // one per candidate
  std::uint32_t current_k_;
  std::uint64_t since_epoch_ = 0;
  std::uint64_t profiler_generation_ = 0;
  std::vector<std::uint32_t> history_;
};

}  // namespace krr
