#include "core/governor.h"

#include <algorithm>

#include "core/estimator.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace krr {

namespace {
// Safety valve on the per-check degradation loop: every model's degrade()
// chain bottoms out (filters reach threshold 1, stacks reach depth 1), but
// a budget check must never be able to spin unbounded on a misbehaving
// model. Remaining excess is retried at the next stride.
constexpr int kMaxDegradeStepsPerCheck = 64;
}  // namespace

RunGovernor::RunGovernor(const RunGovernorConfig& config,
                         MrcEstimator* estimator,
                         obs::MetricsRegistry* registry, obs::Tracer* tracer)
    : config_(config), estimator_(estimator), tracer_(tracer) {
  if (config_.check_stride == 0) config_.check_stride = 1;
  next_check_ = config_.check_stride;
  next_checkpoint_ = config_.checkpoint_every;
  if (registry != nullptr) {
    checks_metric_ = &registry->counter("governor.budget_checks");
    degrade_metric_ = &registry->counter("governor.degrade_steps");
    checkpoint_metric_ = &registry->counter("governor.checkpoints_written");
    checkpoint_retry_metric_ = &registry->counter("governor.checkpoint_retries");
    peak_space_metric_ = &registry->gauge("governor.peak_space_bytes");
  }
}

bool RunGovernor::on_access() {
  ++accesses_;
  if (accesses_ >= next_check_) {
    next_check_ = accesses_ + config_.check_stride;
    check_limits();
  }
  if (config_.checkpoint_every != 0 && config_.checkpoint_fn &&
      accesses_ >= next_checkpoint_) {
    next_checkpoint_ = accesses_ + config_.checkpoint_every;
    const std::uint64_t start_ns =
        tracer_ != nullptr ? tracer_->now_ns() : 0;
    double write_seconds = 0.0;
    StatusOr<std::uint64_t> bytes = [&] {
      ScopedTimer timer(write_seconds);
      StatusOr<std::uint64_t> result = config_.checkpoint_fn(accesses_);
      // Transient write failures (full disk racing a cleaner, injected
      // checkpoint.write faults) get checkpoint_retry attempts with the
      // policy's jittered backoff before the run aborts.
      for (unsigned attempt = 1;
           !result.is_ok() && attempt < config_.checkpoint_retry.max_attempts;
           ++attempt) {
        ++report_.checkpoint_retries;
        if (checkpoint_retry_metric_ != nullptr) checkpoint_retry_metric_->inc();
        if (tracer_ != nullptr) {
          tracer_->instant("governor.checkpoint_retry", "governor", 0,
                           {{"attempt", static_cast<double>(attempt)},
                            {"records", static_cast<double>(accesses_)}});
        }
        config_.checkpoint_retry.sleep(attempt);
        result = config_.checkpoint_fn(accesses_);
      }
      return result;
    }();
    report_.checkpoint_seconds += write_seconds;
    if (!bytes.is_ok()) throw StatusError(bytes.status());
    ++report_.checkpoints_written;
    report_.last_checkpoint_records = accesses_;
    report_.last_checkpoint_bytes = bytes.value();
    if (checkpoint_metric_ != nullptr) checkpoint_metric_->inc();
    if (tracer_ != nullptr) {
      tracer_->complete(
          "governor.checkpoint", "governor", 0, start_ns,
          tracer_->now_ns() - start_ns,
          {{"records", static_cast<double>(accesses_)},
           {"bytes", static_cast<double>(bytes.value())}});
    }
  }
  return !report_.deadline_hit;
}

void RunGovernor::finalize() { check_limits(); }

void RunGovernor::check_limits() {
  ++report_.checks;
  if (checks_metric_ != nullptr) checks_metric_->inc();
  enforce_budget();
  if (config_.deadline_secs > 0.0 && !report_.deadline_hit &&
      watch_.seconds() >= config_.deadline_secs) {
    report_.deadline_hit = true;
    if (tracer_ != nullptr) {
      tracer_->instant("governor.deadline_cut", "governor", 0,
                       {{"deadline_secs", config_.deadline_secs},
                        {"records", static_cast<double>(accesses_)}});
    }
  }
}

void RunGovernor::enforce_budget() {
  std::uint64_t space = estimator_->space_overhead_bytes();
  report_.peak_space_bytes = std::max(report_.peak_space_bytes, space);
  if (peak_space_metric_ != nullptr) {
    peak_space_metric_->set(static_cast<double>(report_.peak_space_bytes));
  }
  if (config_.max_stack_bytes == 0) return;
  int steps = 0;
  while (space > config_.max_stack_bytes && steps < kMaxDegradeStepsPerCheck) {
    const std::uint64_t before = space;
    if (!estimator_->degrade()) {
      report_.budget_exhausted = true;
      if (tracer_ != nullptr) {
        tracer_->instant("governor.budget_exhausted", "governor", 0,
                         {{"space_bytes", static_cast<double>(space)},
                          {"budget_bytes", static_cast<double>(
                               config_.max_stack_bytes)}});
      }
      return;
    }
    ++steps;
    ++report_.degrade_steps;
    if (degrade_metric_ != nullptr) degrade_metric_->inc();
    space = estimator_->space_overhead_bytes();
    if (tracer_ != nullptr) {
      tracer_->instant("governor.degrade", "governor", 0,
                       {{"before_bytes", static_cast<double>(before)},
                        {"after_bytes", static_cast<double>(space)}});
    }
  }
}

}  // namespace krr
