#include "core/governor.h"

#include <algorithm>

#include "core/estimator.h"
#include "obs/metrics.h"

namespace krr {

namespace {
// Safety valve on the per-check degradation loop: every model's degrade()
// chain bottoms out (filters reach threshold 1, stacks reach depth 1), but
// a budget check must never be able to spin unbounded on a misbehaving
// model. Remaining excess is retried at the next stride.
constexpr int kMaxDegradeStepsPerCheck = 64;
}  // namespace

RunGovernor::RunGovernor(const RunGovernorConfig& config,
                         MrcEstimator* estimator,
                         obs::MetricsRegistry* registry)
    : config_(config), estimator_(estimator) {
  if (config_.check_stride == 0) config_.check_stride = 1;
  next_check_ = config_.check_stride;
  next_checkpoint_ = config_.checkpoint_every;
  if (registry != nullptr) {
    checks_metric_ = &registry->counter("governor.budget_checks");
    degrade_metric_ = &registry->counter("governor.degrade_steps");
    checkpoint_metric_ = &registry->counter("governor.checkpoints_written");
    peak_space_metric_ = &registry->gauge("governor.peak_space_bytes");
  }
}

bool RunGovernor::on_access() {
  ++accesses_;
  if (accesses_ >= next_check_) {
    next_check_ = accesses_ + config_.check_stride;
    check_limits();
  }
  if (config_.checkpoint_every != 0 && config_.checkpoint_fn &&
      accesses_ >= next_checkpoint_) {
    next_checkpoint_ = accesses_ + config_.checkpoint_every;
    Status status = config_.checkpoint_fn(accesses_);
    if (!status.is_ok()) throw StatusError(std::move(status));
    ++report_.checkpoints_written;
    report_.last_checkpoint_records = accesses_;
    if (checkpoint_metric_ != nullptr) checkpoint_metric_->inc();
  }
  return !report_.deadline_hit;
}

void RunGovernor::finalize() { check_limits(); }

void RunGovernor::check_limits() {
  ++report_.checks;
  if (checks_metric_ != nullptr) checks_metric_->inc();
  enforce_budget();
  if (config_.deadline_secs > 0.0 && !report_.deadline_hit &&
      watch_.seconds() >= config_.deadline_secs) {
    report_.deadline_hit = true;
  }
}

void RunGovernor::enforce_budget() {
  std::uint64_t space = estimator_->space_overhead_bytes();
  report_.peak_space_bytes = std::max(report_.peak_space_bytes, space);
  if (peak_space_metric_ != nullptr) {
    peak_space_metric_->set(static_cast<double>(report_.peak_space_bytes));
  }
  if (config_.max_stack_bytes == 0) return;
  int steps = 0;
  while (space > config_.max_stack_bytes && steps < kMaxDegradeStepsPerCheck) {
    if (!estimator_->degrade()) {
      report_.budget_exhausted = true;
      return;
    }
    ++steps;
    ++report_.degrade_steps;
    if (degrade_metric_ != nullptr) degrade_metric_->inc();
    space = estimator_->space_overhead_bytes();
  }
}

}  // namespace krr
