#include "core/profiler.h"

#include <cmath>

namespace krr {

namespace {

KrrStackConfig make_stack_config(const KrrProfilerConfig& config) {
  KrrStackConfig sc;
  sc.k = config.apply_correction ? corrected_k(config.k_sample) : config.k_sample;
  sc.strategy = config.strategy;
  sc.sampling_model = config.sampling_model;
  sc.seed = config.seed;
  sc.track_bytes = config.byte_granularity;
  sc.size_array_base = config.size_array_base;
  return sc;
}

}  // namespace

KrrProfiler::KrrProfiler(const KrrProfilerConfig& config)
    : config_(config),
      filter_(config.sampling_rate),
      stack_(make_stack_config(config)),
      histogram_(config.histogram_quantum) {}

void KrrProfiler::access(const Request& req) {
  ++processed_;
  if (!filter_.sampled(req.key)) return;
  ++sampled_;
  const auto result = stack_.access(req.key, config_.byte_granularity ? req.size : 1);
  if (result.cold) {
    histogram_.record_infinite();
    return;
  }
  const std::uint64_t distance =
      config_.byte_granularity ? result.byte_distance : result.position;
  // A sampled distance d estimates an unsampled distance d/R (§2.4).
  const double scaled = static_cast<double>(distance) * filter_.scale();
  histogram_.record(static_cast<std::uint64_t>(std::llround(scaled)));
}

MissRatioCurve KrrProfiler::mrc() const {
  if (!config_.sampling_adjustment || config_.sampling_rate >= 1.0) {
    return histogram_.to_mrc();
  }
  // SHARDS-adj first-bucket correction: hot objects falling in or out of
  // the sample inflate or deflate the sampled reference count; the
  // difference against the expectation N*R is credited (possibly
  // negatively) to the smallest-distance bucket.
  DistanceHistogram adjusted = histogram_;
  const double expected = static_cast<double>(processed_) * filter_.rate();
  const double diff = expected - static_cast<double>(sampled_);
  if (diff != 0.0) adjusted.record(1, diff);
  return adjusted.to_mrc();
}

std::uint64_t KrrProfiler::space_overhead_bytes() const noexcept {
  // Per tracked object: 8 B stack slot + 4 B size slot (var-KRR only) +
  // ~48 B hash-table entry (key, value, bucket overhead); the sizeArray
  // itself is logarithmic and counted once. This mirrors the paper's §5.6
  // accounting of ~68-72 B per object.
  const std::uint64_t per_object =
      8 + (config_.byte_granularity ? 4 : 0) + 48;
  std::uint64_t bytes = stack_.depth() * per_object;
  if (config_.byte_granularity) {
    bytes += 2 * sizeof(std::uint64_t) * 64;  // boundaries + sums, worst case
  }
  return bytes;
}

}  // namespace krr
