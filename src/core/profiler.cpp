#include "core/profiler.h"

#include <cmath>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "obs/metrics.h"

namespace krr {

namespace {

KrrStackConfig make_stack_config(const KrrProfilerConfig& config) {
  KrrStackConfig sc;
  sc.k = config.apply_correction ? corrected_k(config.k_sample) : config.k_sample;
  sc.strategy = config.strategy;
  sc.sampling_model = config.sampling_model;
  sc.seed = config.seed;
  sc.track_bytes = config.byte_granularity;
  sc.size_array_base = config.size_array_base;
  return sc;
}

}  // namespace

KrrProfiler::KrrProfiler(const KrrProfilerConfig& config)
    : config_(config),
      filter_(config.sampling_rate),
      stack_(make_stack_config(config)),
      histogram_(config.histogram_quantum),
      configured_rate_(filter_.rate()) {}

void KrrProfiler::attach_metrics(obs::PipelineMetrics* metrics) noexcept {
#ifdef KRR_METRICS_ENABLED
  metrics_ = metrics;
  stack_.attach_metrics(metrics != nullptr ? &metrics->stack : nullptr);
#else
  (void)metrics;
#endif
}

void KrrProfiler::refresh_metrics_gauges() const noexcept {
#ifdef KRR_METRICS_ENABLED
  if (metrics_ == nullptr) return;
  metrics_->stack_depth->set(static_cast<double>(stack_.depth()));
  metrics_->resident_bytes->set(static_cast<double>(space_overhead_bytes()));
  metrics_->sampling_rate->set(filter_.rate());
  metrics_->histogram_bins->set(static_cast<double>(histogram_.bin_count()));
#endif
}

void KrrProfiler::access(const Request& req) {
  ++processed_;
  if (!filter_.sampled(req.key)) {
#ifdef KRR_METRICS_ENABLED
    if (metrics_ != nullptr) {
      metrics_->accesses->inc();
      metrics_->filter_dropped->inc();
    }
#endif
    return;
  }
  ++sampled_;
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) {
    metrics_->accesses->inc();
    metrics_->filter_passed->inc();
  }
#endif
  const auto result = stack_.access(req.key, config_.byte_granularity ? req.size : 1);
  if (result.cold) {
    histogram_.record_infinite();
    maybe_degrade();
    return;
  }
  const std::uint64_t distance =
      config_.byte_granularity ? result.byte_distance : result.position;
  // A sampled distance d estimates an unsampled distance d/R (§2.4); a
  // hash shard is a further uniform sample at rate 1/shard_count, so the
  // global estimate is d * shard_count / R (shard_count == 1 multiplies by
  // exactly 1.0 — no effect on the unsharded path).
  const double scaled = static_cast<double>(distance) * filter_.scale() *
                        static_cast<double>(config_.shard_count);
  histogram_.record(static_cast<std::uint64_t>(std::llround(scaled)));
}

void KrrProfiler::maybe_degrade() {
  // Only cold references grow the stack, so checking here bounds memory
  // exactly. Halve until back under the ceiling (one halving evicts about
  // half the residents) or until the filter bottoms out at threshold 1.
  while (config_.max_stack_bytes != 0 &&
         space_overhead_bytes() > config_.max_stack_bytes) {
    if (!degrade_step()) break;
  }
}

bool KrrProfiler::degrade_step() {
  if (filter_.threshold() <= 1) return false;
  expected_sampled_base_ = expected_sampled();
  processed_at_rate_change_ = processed_;
  filter_.halve();
  stack_.retain([this](std::uint64_t key) { return filter_.sampled(key); });
  ++degradation_events_;
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) {
    metrics_->degradations->inc();
    metrics_->filter_halvings->inc();
  }
#endif
  return true;
}

DistanceHistogram KrrProfiler::adjusted_histogram() const {
  // SHARDS-adj first-bucket correction: hot objects falling in or out of
  // the sample inflate or deflate the sampled reference count; the
  // difference against the expectation (sum of the per-reference rate in
  // effect, == N*R without degradation) is credited (possibly negatively)
  // to the smallest-distance bucket.
  DistanceHistogram adjusted = histogram_;
  if (config_.sampling_adjustment && current_sampling_rate() < 1.0) {
    const double diff = expected_sampled() - static_cast<double>(sampled_);
    if (diff != 0.0) adjusted.record(1, diff);
  }
  return adjusted;
}

MissRatioCurve KrrProfiler::mrc() const {
  if (!config_.sampling_adjustment || current_sampling_rate() >= 1.0) {
    return histogram_.to_mrc();
  }
  return adjusted_histogram().to_mrc();
}

std::uint64_t KrrProfiler::space_overhead_bytes() const noexcept {
  // Per tracked object: 8 B stack slot + 4 B size slot (var-KRR only) +
  // ~48 B hash-table entry (key, value, bucket overhead); the sizeArray
  // itself is logarithmic and counted once. This mirrors the paper's §5.6
  // accounting of ~68-72 B per object.
  const std::uint64_t per_object =
      8 + (config_.byte_granularity ? 4 : 0) + 48;
  std::uint64_t bytes = stack_.depth() * per_object;
  if (config_.byte_granularity) {
    bytes += 2 * sizeof(std::uint64_t) * 64;  // boundaries + sums, worst case
  }
  return bytes;
}

Status KrrProfiler::save_state(std::string* out) const {
  if (out == nullptr) return invalid_argument_error("save_state: null output");
  std::string& buf = *out;
  buf.clear();
  ckpt::append_u64(buf, processed_);
  ckpt::append_u64(buf, sampled_);
  ckpt::append_u64(buf, degradation_events_);
  ckpt::append_u64(buf, processed_at_rate_change_);
  ckpt::append_double(buf, configured_rate_);
  ckpt::append_double(buf, expected_sampled_base_);
  ckpt::append_u64(buf, filter_.modulus());
  ckpt::append_u64(buf, filter_.threshold());
  ckpt::append_u64(buf, filter_.halvings());
  const auto bins = histogram_.sorted_bins();
  ckpt::append_u64(buf, bins.size());
  for (const auto& [dist, weight] : bins) {
    ckpt::append_u64(buf, dist);
    ckpt::append_double(buf, weight);
  }
  ckpt::append_double(buf, histogram_.infinite_weight());
  ckpt::append_double(buf, histogram_.total_weight());
  stack_.save_state(buf);
  return Status::ok();
}

Status KrrProfiler::load_state(const std::string& payload) {
  ckpt::ByteReader reader(payload);
  std::uint64_t filter_modulus = 0, filter_threshold = 0, filter_halvings = 0;
  std::uint64_t bin_count = 0;
  if (!reader.read_u64(&processed_) || !reader.read_u64(&sampled_) ||
      !reader.read_u64(&degradation_events_) ||
      !reader.read_u64(&processed_at_rate_change_) ||
      !reader.read_double(&configured_rate_) ||
      !reader.read_double(&expected_sampled_base_) ||
      !reader.read_u64(&filter_modulus) || !reader.read_u64(&filter_threshold) ||
      !reader.read_u64(&filter_halvings) || !reader.read_u64(&bin_count)) {
    return truncated_error("profiler snapshot payload is truncated");
  }
  if (filter_modulus != filter_.modulus()) {
    return bad_record_error(
        "profiler snapshot was taken with a different filter modulus");
  }
  filter_.restore(filter_threshold, filter_halvings);
  if (bin_count > reader.remaining() / 16) {
    return bad_record_error("profiler snapshot histogram length is impossible");
  }
  std::vector<std::pair<std::uint64_t, double>> bins;
  bins.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    std::uint64_t dist = 0;
    double weight = 0.0;
    if (!reader.read_u64(&dist) || !reader.read_double(&weight)) {
      return truncated_error("profiler snapshot histogram is truncated");
    }
    bins.emplace_back(dist, weight);
  }
  double infinite = 0.0, total = 0.0;
  if (!reader.read_double(&infinite) || !reader.read_double(&total)) {
    return truncated_error("profiler snapshot histogram is truncated");
  }
  histogram_.restore(bins, infinite, total);
  if (!stack_.load_state(reader)) {
    return bad_record_error("profiler snapshot stack section is corrupt");
  }
  if (!reader.exhausted()) {
    return bad_record_error("profiler snapshot has trailing bytes");
  }
  return Status::ok();
}

RunReport KrrProfiler::run_report(const TraceReadReport* ingest) const {
  RunReport report;
  if (ingest) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  } else {
    report.records_read = processed_;
  }
  report.degradation_events = degradation_events_;
  report.configured_sampling_rate = configured_rate_;
  report.final_sampling_rate = current_sampling_rate();
  report.stack_depth = stack_.depth();
  report.space_overhead_bytes = space_overhead_bytes();
  return report;
}

obs::Json to_json(const RunReport& report) {
  obs::Json j = obs::Json::object();
  j.set("records_read", obs::Json(report.records_read));
  j.set("records_skipped", obs::Json(report.records_skipped));
  j.set("checksum_failures", obs::Json(report.checksum_failures));
  j.set("truncated_tail", obs::Json(report.truncated_tail));
  j.set("degradation_events", obs::Json(report.degradation_events));
  j.set("configured_sampling_rate", obs::Json(report.configured_sampling_rate));
  j.set("final_sampling_rate", obs::Json(report.final_sampling_rate));
  j.set("stack_depth", obs::Json(report.stack_depth));
  j.set("space_overhead_bytes", obs::Json(report.space_overhead_bytes));
  j.set("producer_stall_seconds", obs::Json(report.producer_stall_seconds));
  j.set("partial", obs::Json(report.partial));
  j.set("shards_failed", obs::Json(report.shards_failed));
  j.set("shards_resurrected", obs::Json(report.shards_resurrected));
  j.set("replayed_records", obs::Json(report.replayed_records));
  j.set("dropped_records", obs::Json(report.dropped_records));
  j.set("recovery", obs::Json(report.recovery));
  return j;
}

}  // namespace krr
