#include "core/profiler.h"

#include <cmath>

namespace krr {

namespace {

KrrStackConfig make_stack_config(const KrrProfilerConfig& config) {
  KrrStackConfig sc;
  sc.k = config.apply_correction ? corrected_k(config.k_sample) : config.k_sample;
  sc.strategy = config.strategy;
  sc.sampling_model = config.sampling_model;
  sc.seed = config.seed;
  sc.track_bytes = config.byte_granularity;
  sc.size_array_base = config.size_array_base;
  return sc;
}

}  // namespace

KrrProfiler::KrrProfiler(const KrrProfilerConfig& config)
    : config_(config),
      filter_(config.sampling_rate),
      stack_(make_stack_config(config)),
      histogram_(config.histogram_quantum) {}

void KrrProfiler::access(const Request& req) {
  ++processed_;
  if (!filter_.sampled(req.key)) return;
  ++sampled_;
  const auto result = stack_.access(req.key, config_.byte_granularity ? req.size : 1);
  if (result.cold) {
    histogram_.record_infinite();
    maybe_degrade();
    return;
  }
  const std::uint64_t distance =
      config_.byte_granularity ? result.byte_distance : result.position;
  // A sampled distance d estimates an unsampled distance d/R (§2.4).
  const double scaled = static_cast<double>(distance) * filter_.scale();
  histogram_.record(static_cast<std::uint64_t>(std::llround(scaled)));
}

void KrrProfiler::maybe_degrade() {
  // Only cold references grow the stack, so checking here bounds memory
  // exactly. Halve until back under the ceiling (one halving evicts about
  // half the residents) or until the filter bottoms out at threshold 1.
  while (config_.max_stack_bytes != 0 &&
         space_overhead_bytes() > config_.max_stack_bytes &&
         filter_.threshold() > 1) {
    expected_sampled_base_ = expected_sampled();
    processed_at_rate_change_ = processed_;
    filter_.halve();
    stack_.retain([this](std::uint64_t key) { return filter_.sampled(key); });
    ++degradation_events_;
  }
}

MissRatioCurve KrrProfiler::mrc() const {
  if (!config_.sampling_adjustment || current_sampling_rate() >= 1.0) {
    return histogram_.to_mrc();
  }
  // SHARDS-adj first-bucket correction: hot objects falling in or out of
  // the sample inflate or deflate the sampled reference count; the
  // difference against the expectation (sum of the per-reference rate in
  // effect, == N*R without degradation) is credited (possibly negatively)
  // to the smallest-distance bucket.
  DistanceHistogram adjusted = histogram_;
  const double diff = expected_sampled() - static_cast<double>(sampled_);
  if (diff != 0.0) adjusted.record(1, diff);
  return adjusted.to_mrc();
}

std::uint64_t KrrProfiler::space_overhead_bytes() const noexcept {
  // Per tracked object: 8 B stack slot + 4 B size slot (var-KRR only) +
  // ~48 B hash-table entry (key, value, bucket overhead); the sizeArray
  // itself is logarithmic and counted once. This mirrors the paper's §5.6
  // accounting of ~68-72 B per object.
  const std::uint64_t per_object =
      8 + (config_.byte_granularity ? 4 : 0) + 48;
  std::uint64_t bytes = stack_.depth() * per_object;
  if (config_.byte_granularity) {
    bytes += 2 * sizeof(std::uint64_t) * 64;  // boundaries + sums, worst case
  }
  return bytes;
}

RunReport KrrProfiler::run_report(const TraceReadReport* ingest) const {
  RunReport report;
  if (ingest) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  } else {
    report.records_read = processed_;
  }
  report.degradation_events = degradation_events_;
  report.final_sampling_rate = current_sampling_rate();
  report.stack_depth = stack_.depth();
  report.space_overhead_bytes = space_overhead_bytes();
  return report;
}

}  // namespace krr
