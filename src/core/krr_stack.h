#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/size_tracker.h"
#include "core/swap_sampler.h"
#include "util/prng.h"

namespace krr {

namespace obs {
struct StackMetrics;
}

namespace ckpt {
class ByteReader;
}

/// Configuration for the KRR probabilistic stack (§4).
struct KrrStackConfig {
  /// KRR exponent. To model a K-LRU cache with sampling size K, pass
  /// corrected_k(K) (the K' = K^1.4 correction, §4.2) or K itself to ablate
  /// the correction. Must be >= 1.
  double k = 1.0;
  UpdateStrategy strategy = UpdateStrategy::kBackward;
  /// Which K-LRU sampling convention is modeled (Prop. 1 vs Prop. 2).
  SamplingModel sampling_model = SamplingModel::kPlacingBack;
  std::uint64_t seed = 1;
  /// Track byte-level distances (var-KRR, §4.4.1).
  bool track_bytes = false;
  /// sizeArray base b (only with track_bytes).
  std::uint32_t size_array_base = 2;
  /// Additionally maintain the exact Fenwick byte tracker (tests/ablation;
  /// only with track_bytes).
  bool track_bytes_exact = false;
};

/// The K' = K^1.4 correction (§4.2): the KRR exponent that best models a
/// K-LRU cache with sampling size K. K == 1 maps to 1 (KRR == RR == ideal
/// random replacement, where the model is statistically exact).
double corrected_k(double k_sample);

/// The KRR probabilistic stack (§4.1): a Mattson stack whose maxPriority
/// function keeps the resident of position i with probability ((i-1)/i)^K.
/// The stack is a flat array plus a key -> position hash (§4.4), updated by
/// rotating the sampled swap chain, so one access costs O(K log M) expected
/// with the backward strategy.
class KrrStack {
 public:
  struct AccessResult {
    bool cold;                    ///< first-ever reference to this key
    std::uint64_t position;       ///< stack distance phi (1-based); for a
                                  ///< cold ref, the stack length it landed at
    std::uint64_t byte_distance;  ///< approximate byte-level distance
                                  ///< (0 unless track_bytes)
  };

  explicit KrrStack(const KrrStackConfig& config);

  /// Processes one reference and reports its stack distance(s). `size` is
  /// ignored unless byte tracking is on; a resident object whose size
  /// changes is resized in place before the distance is measured.
  AccessResult access(std::uint64_t key, std::uint32_t size = 1);

  /// Distinct objects seen so far (the stack length, gamma).
  std::uint64_t depth() const noexcept { return stack_.size(); }

  std::uint64_t total_bytes() const noexcept;

  /// Exact byte distance of the last access (only if track_bytes_exact).
  std::optional<std::uint64_t> last_exact_byte_distance() const noexcept {
    return last_exact_byte_distance_;
  }

  /// Evicts every resident whose key fails the predicate, preserving the
  /// relative stack order of the survivors; all auxiliary structures
  /// (position index, sizeArray, exact byte tracker) are rebuilt
  /// consistently. O(M) — used by rare events such as sampling-rate
  /// degradation, not on the access path. Returns the eviction count.
  std::uint64_t retain(const std::function<bool(std::uint64_t)>& keep);

  /// Number of swap positions processed over the stack's lifetime
  /// (instrumentation for the Fig. 5.4 overhead experiment).
  std::uint64_t swaps_performed() const noexcept { return swaps_performed_; }

  /// Attaches hot-path instrumentation: per-access swap counts, chain-
  /// length distribution, and a sampled update-latency histogram (every
  /// kTimingStride-th access is timed so the clock reads amortize to
  /// ~nothing). The pointed-to metrics must outlive the stack; pass
  /// nullptr to detach. No-op when KRR_METRICS is compiled out.
  void attach_metrics(obs::StackMetrics* metrics) noexcept;

  /// Every kTimingStride-th instrumented access reads the clock twice to
  /// feed stack.update_ns; the rest record only integer counters.
  static constexpr std::uint64_t kTimingStride = 64;

  const KrrStackConfig& config() const noexcept { return config_; }

  /// Key at stack position (1-based); test/diagnostic helper.
  std::uint64_t key_at(std::uint64_t position) const { return stack_.at(position - 1); }

  /// Keys from top to bottom; test/diagnostic helper.
  const std::vector<std::uint64_t>& stack() const noexcept { return stack_; }

  /// Checkpoint support: appends the complete stack state (keys, sizes,
  /// PRNG stream, swap count) to `out` in the ckpt byte format.
  void save_state(std::string& out) const;

  /// Restores state written by save_state() into a stack built from the
  /// same config; auxiliary structures (position index, byte trackers) are
  /// rebuilt by replay, exactly as retain() does. Returns false when the
  /// payload is truncated or inconsistent (the stack is left cleared).
  bool load_state(ckpt::ByteReader& reader);

 private:
  AccessResult access_impl(std::uint64_t key, std::uint32_t size);
#ifdef KRR_METRICS_ENABLED
  AccessResult access_instrumented(std::uint64_t key, std::uint32_t size);
#endif

  KrrStackConfig config_;
  SwapSampler sampler_;
  Xoshiro256ss rng_;
  std::vector<std::uint64_t> stack_;   // keys; index 0 = stack top
  std::vector<std::uint32_t> sizes_;   // aligned with stack_
  std::unordered_map<std::uint64_t, std::uint64_t> position_;  // key -> index
  std::vector<std::uint64_t> chain_;   // reused swap-chain buffer
  std::unique_ptr<SizeArray> size_array_;
  std::unique_ptr<ExactByteTracker> exact_bytes_;
  std::optional<std::uint64_t> last_exact_byte_distance_;
  std::uint64_t swaps_performed_ = 0;
#ifdef KRR_METRICS_ENABLED
  obs::StackMetrics* metrics_ = nullptr;
  std::uint64_t metrics_seq_ = 0;
#endif
};

}  // namespace krr
