#include "core/sharded_estimator.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/hashing.h"

namespace krr {

namespace {

/// Option keys that configure the fan-out itself and must not reach the
/// per-shard base-model factories (they would be rejected as undeclared, or
/// worse, misread — a base "shards" key would recurse).
bool is_fanout_key(const std::string& key) {
  return key == "threads" || key == "shards" || key == "queue_capacity" ||
         key == "failure_mode" || key == "max_stack_bytes";
}

}  // namespace

void ShardedEstimator::ShardPayload::access(const Request& req) {
  estimator->access(req);
  if (budget_bytes != 0 && (++accesses & 4095u) == 0) {
    // Per-shard budget enforcement on the consuming thread — the external
    // RunGovernor loop cannot reach inside a threaded pipeline (it would
    // race the workers), so each shard polices its own split of the global
    // ceiling, the same contract krr_sharded has. The step bound keeps a
    // pathological degrade() from stalling the drain loop.
    int steps = 0;
    while (estimator->space_overhead_bytes() > budget_bytes && steps++ < 64) {
      if (!estimator->degrade()) break;
    }
  }
}

std::vector<std::unique_ptr<ShardedEstimator::ShardPayload>>
ShardedEstimator::make_payloads(const Config& config) {
  const std::uint32_t shard_n = config.shards == 0 ? 1 : config.shards;
  EstimatorOptions base;
  for (const auto& [key, value] : config.base_options.entries()) {
    if (is_fanout_key(key)) continue;
    base.set(key, value);
  }
  std::vector<std::unique_ptr<ShardPayload>> payloads;
  payloads.reserve(shard_n);
  for (std::uint32_t s = 0; s < shard_n; ++s) {
    EstimatorOptions opts = base;
    // Shard-aware injection: the base model rescales its recorded
    // distances/reuse times by S (closure under uniform thinning), and
    // seeded models get independent RNG streams. An unset seed stays
    // unset so S=1 remains option-identical to the serial model.
    opts.set("shard_count", std::to_string(shard_n));
    if (base.has("seed")) {
      opts.set("seed", std::to_string(base.get_int("seed", 0) +
                                      static_cast<std::int64_t>(s)));
    }
    auto created =
        EstimatorRegistry::instance().create(config.base_model, opts);
    if (!created.is_ok()) {
      // The registry factory contract: std::invalid_argument maps back to
      // kInvalidArgument at the outer create() call.
      throw std::invalid_argument(created.status().message());
    }
    auto payload = std::make_unique<ShardPayload>();
    payload->estimator = std::move(created).value();
    if (config.max_stack_bytes != 0) {
      // Split the global ceiling evenly; the floor of 1 keeps degradation
      // armed even for absurd shard counts.
      payload->budget_bytes =
          std::max<std::uint64_t>(config.max_stack_bytes / shard_n, 1);
    }
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

typename ShardFanout<ShardedEstimator::ShardPayload>::Config
ShardedEstimator::fanout_config(const Config& config) {
  typename ShardFanout<ShardPayload>::Config cfg;
  cfg.threads = config.threads;
  cfg.queue_capacity = config.queue_capacity;
  cfg.failure_mode = config.failure_mode;
  cfg.before_access_hook = config.before_access_hook;
  return cfg;
}

ShardedEstimator::ShardedEstimator(const Config& config)
    : config_(config), fanout_(make_payloads(config), fanout_config(config)) {
  configured_rate_ =
      fanout_.payload(0).estimator->snapshot().sampling_rate;
}

std::uint32_t ShardedEstimator::shard_of(std::uint64_t key) const noexcept {
  // Top hash bits: disjoint from the low bits spatial filters threshold on
  // (modulus 2^24), so shard identity and sample membership are
  // independent uniform functions of the key.
  return static_cast<std::uint32_t>(hash64(key) >> 32) % fanout_.shard_count();
}

void ShardedEstimator::access(const Request& req) {
  fanout_.route(shard_of(req.key), req);
}

void ShardedEstimator::finish() {
  fanout_.finish();  // rethrows worker errors; throws when all shards died
  cache_shard_stats();
}

void ShardedEstimator::cache_shard_stats() const {
  if (!shard_stats_.empty()) return;
  shard_stats_.reserve(fanout_.shard_count());
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    ShardStats stats;
    stats.dead = fanout_.dead(s);
    stats.snapshot = fanout_.payload(s).estimator->snapshot();
    shard_stats_.push_back(stats);
  }
}

void ShardedEstimator::ensure_merged() const {
  if (merged_) return;
  cache_shard_stats();
  const std::uint32_t n = fanout_.shard_count();
  std::uint32_t base = 0;
  while (base < n && fanout_.dead(base)) ++base;
  if (base >= n) {
    throw StatusError(
        resource_limit_error("every shard failed; nothing to merge"));
  }
  merge_base_ = base;
  MrcEstimator& target = *fanout_.payload(base).estimator;
  std::uint32_t live = 1;
  for (std::uint32_t s = base + 1; s < n; ++s) {
    if (fanout_.dead(s)) continue;
    const Status status = target.absorb(*fanout_.payload(s).estimator);
    if (!status.is_ok()) throw StatusError(status);
    ++live;
  }
  if (live < n) {
    // Each shard is an unbiased 1/S spatial sample, so scaling the
    // survivors' mass by S/(S-F) extrapolates the dropped shards' share.
    const Status status = target.scale_mass(static_cast<double>(n) /
                                            static_cast<double>(live));
    if (!status.is_ok()) throw StatusError(status);
    if (fanout_.tracer() != nullptr) {
      fanout_.tracer()->instant("sharded.survivor_rescale", "sharded", 0,
                                {{"shards", static_cast<double>(n)},
                                 {"survivors", static_cast<double>(live)}});
    }
  }
  merged_ = true;
}

void ShardedEstimator::require_finished(const char* what) const {
  if (fanout_.needs_finish()) {
    throw std::logic_error(std::string("ShardedEstimator::") + what +
                           " requires finish() when running threaded");
  }
}

MissRatioCurve ShardedEstimator::mrc(const std::vector<double>& sizes) const {
  require_finished("mrc()");
  obs::Tracer* tracer = fanout_.tracer();
  const std::uint64_t merge_start_ns = tracer != nullptr ? tracer->now_ns() : 0;
  double merge_seconds = 0.0;
  MissRatioCurve curve;
  {
    ScopedTimer timer(merge_seconds);
    ensure_merged();
    curve = fanout_.payload(merge_base_).estimator->mrc(sizes);
  }
  if (tracer != nullptr) {
    tracer->complete("sharded.merge", "sharded", 0, merge_start_ns,
                     tracer->now_ns() - merge_start_ns,
                     {{"shards", static_cast<double>(fanout_.shard_count())}});
  }
#ifdef KRR_METRICS_ENABLED
  if (pipeline_metrics() != nullptr) {
    pipeline_metrics()->sharded.merge_seconds->set(merge_seconds);
  }
#endif
  return curve;
}

std::uint64_t ShardedEstimator::processed() const {
  return fanout_.processed();
}

RunReport ShardedEstimator::run_report(const TraceReadReport* ingest) const {
  require_finished("run_report()");
  cache_shard_stats();
  RunReport report;
  if (ingest != nullptr) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  } else {
    report.records_read = fanout_.processed();
  }
  report.configured_sampling_rate = configured_rate_;
  double final_rate = 1.0;
  bool first = true;
  for (const ShardStats& stats : shard_stats_) {
    if (stats.dead) continue;  // a dead shard's partial state is untrusted
    report.degradation_events += stats.snapshot.degradation_events;
    report.stack_depth += stats.snapshot.stack_depth;
    report.space_overhead_bytes += stats.snapshot.resident_bytes;
    final_rate = first ? stats.snapshot.sampling_rate
                       : std::min(final_rate, stats.snapshot.sampling_rate);
    first = false;
  }
  report.final_sampling_rate = final_rate;
  report.producer_stall_seconds = fanout_.producer_stall_seconds();
  report.shards_failed = fanout_.shards_failed();
  return report;
}

obs::HeartbeatSnapshot ShardedEstimator::snapshot() const {
  // Mid-run: the batch-wise gauges the workers publish (at most one drain
  // batch stale). Post-finish: exact sums from the cached pre-merge stats.
  if (shard_stats_.empty()) return fanout_.live_aggregate();
  obs::HeartbeatSnapshot snap;
  snap.records = fanout_.processed();
  double min_rate = 1.0;
  bool first = true;
  for (const ShardStats& stats : shard_stats_) {
    if (stats.dead) continue;
    snap.sampled += stats.snapshot.sampled;
    snap.stack_depth += stats.snapshot.stack_depth;
    snap.resident_bytes += stats.snapshot.resident_bytes;
    snap.degradation_events += stats.snapshot.degradation_events;
    min_rate = first ? stats.snapshot.sampling_rate
                     : std::min(min_rate, stats.snapshot.sampling_rate);
    first = false;
  }
  snap.sampling_rate = min_rate;
  return snap;
}

Status ShardedEstimator::save_state(std::string*) const {
  return invalid_argument_error(
      "sharded execution cannot checkpoint: per-shard queue state has no "
      "consistent mid-drain snapshot; run the serial model (shards=1, "
      "threads=1 on the base name) for checkpoint/resume");
}

Status ShardedEstimator::load_state(const std::string&) {
  return invalid_argument_error(
      "sharded execution cannot checkpoint: per-shard queue state has no "
      "consistent mid-drain snapshot; run the serial model (shards=1, "
      "threads=1 on the base name) for checkpoint/resume");
}

void ShardedEstimator::attach_metrics(obs::PipelineMetrics* metrics) noexcept {
  MrcEstimator::attach_metrics(metrics);
  fanout_.attach_metrics(metrics);
}

void ShardedEstimator::attach_tracer(obs::Tracer* tracer) noexcept {
  fanout_.attach_tracer(tracer);
}

void ShardedEstimator::export_gauges(obs::MetricsRegistry& registry) const {
  if (fanout_.needs_finish()) return;  // nothing trustworthy to export yet
  cache_shard_stats();
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    const ShardStats& stats = shard_stats_[s];
    const std::string prefix = "sharded.shard" + std::to_string(s) + ".";
    registry.gauge(prefix + "stack_depth")
        .set(static_cast<double>(stats.snapshot.stack_depth));
    registry.gauge(prefix + "sampled")
        .set(static_cast<double>(stats.snapshot.sampled));
    registry.gauge(prefix + "degradations")
        .set(static_cast<double>(stats.snapshot.degradation_events));
    registry.gauge(prefix + "final_rate").set(stats.snapshot.sampling_rate);
    registry.gauge(prefix + "failed").set(stats.dead ? 1.0 : 0.0);
  }
}

const MrcEstimator& ShardedEstimator::shard(std::uint32_t s) const {
  require_finished("shard()");
  if (s >= fanout_.shard_count()) {
    throw std::out_of_range("shard index out of range");
  }
  return *fanout_.payload(s).estimator;
}

}  // namespace krr
