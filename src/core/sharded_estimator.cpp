#include "core/sharded_estimator.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "util/hashing.h"

namespace krr {

namespace {

/// Option keys that configure the fan-out itself and must not reach the
/// per-shard base-model factories (they would be rejected as undeclared, or
/// worse, misread — a base "shards" key would recurse).
bool is_fanout_key(const std::string& key) {
  return key == "threads" || key == "shards" || key == "queue_capacity" ||
         key == "failure_mode" || key == "max_stack_bytes" ||
         key == "journal_records" || key == "snapshot_stride";
}

}  // namespace

Status ShardedEstimator::ShardPayload::save_state(std::string* out) const {
  std::string inner;
  const Status status = estimator->save_state(&inner);
  if (!status.is_ok()) return status;
  out->clear();
  ckpt::append_u64(*out, accesses);
  *out += inner;
  return Status::ok();
}

Status ShardedEstimator::ShardPayload::load_state(const std::string& blob) {
  ckpt::ByteReader reader(blob);
  std::uint64_t saved_accesses = 0;
  if (!reader.read_u64(&saved_accesses)) {
    return truncated_error("shard mini-checkpoint truncated");
  }
  const Status status = estimator->load_state(blob.substr(8));
  if (!status.is_ok()) return status;
  accesses = saved_accesses;
  return Status::ok();
}

void ShardedEstimator::ShardPayload::rebuild() {
  estimator = factory();
  // The budget-check stride restarts with the fresh instance; load_state
  // (or the journal replay, for a pre-snapshot resurrection) brings the
  // counter back to the failed instance's position.
  accesses = 0;
}

void ShardedEstimator::ShardPayload::access(const Request& req) {
  estimator->access(req);
  if (budget_bytes != 0 && (++accesses & 4095u) == 0) {
    // Per-shard budget enforcement on the consuming thread — the external
    // RunGovernor loop cannot reach inside a threaded pipeline (it would
    // race the workers), so each shard polices its own split of the global
    // ceiling, the same contract krr_sharded has. The step bound keeps a
    // pathological degrade() from stalling the drain loop.
    int steps = 0;
    while (estimator->space_overhead_bytes() > budget_bytes && steps++ < 64) {
      if (!estimator->degrade()) break;
    }
  }
}

std::vector<std::unique_ptr<ShardedEstimator::ShardPayload>>
ShardedEstimator::make_payloads(const Config& config) {
  const std::uint32_t shard_n = config.shards == 0 ? 1 : config.shards;
  EstimatorOptions base;
  for (const auto& [key, value] : config.base_options.entries()) {
    if (is_fanout_key(key)) continue;
    base.set(key, value);
  }
  std::vector<std::unique_ptr<ShardPayload>> payloads;
  payloads.reserve(shard_n);
  for (std::uint32_t s = 0; s < shard_n; ++s) {
    EstimatorOptions opts = base;
    // Shard-aware injection: the base model rescales its recorded
    // distances/reuse times by S (closure under uniform thinning), and
    // seeded models get independent RNG streams. An unset seed stays
    // unset so S=1 remains option-identical to the serial model.
    opts.set("shard_count", std::to_string(shard_n));
    if (base.has("seed")) {
      opts.set("seed", std::to_string(base.get_int("seed", 0) +
                                      static_cast<std::int64_t>(s)));
    }
    auto payload = std::make_unique<ShardPayload>();
    // The factory is the resurrection path's rebuild() hook: it recreates
    // this shard's estimator with the exact options used here, so a revived
    // shard is option-identical to the one that died.
    payload->factory = [model = config.base_model, opts] {
      auto created = EstimatorRegistry::instance().create(model, opts);
      if (!created.is_ok()) {
        // The registry factory contract: std::invalid_argument maps back to
        // kInvalidArgument at the outer create() call.
        throw std::invalid_argument(created.status().message());
      }
      return std::move(created).value();
    };
    payload->estimator = payload->factory();
    if (config.max_stack_bytes != 0) {
      // Split the global ceiling evenly; the floor of 1 keeps degradation
      // armed even for absurd shard counts. Replay mode charges the
      // journal's footprint against the shard's share so the global bound
      // covers recovery state too.
      const std::uint64_t share =
          std::max<std::uint64_t>(config.max_stack_bytes / shard_n, 1);
      const std::uint64_t journal_bytes =
          config.failure_mode == ShardFailureMode::kReplay
              ? static_cast<std::uint64_t>(config.journal_records) *
                    sizeof(Request)
              : 0;
      payload->budget_bytes = share > journal_bytes ? share - journal_bytes : 1;
    }
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

typename ShardFanout<ShardedEstimator::ShardPayload>::Config
ShardedEstimator::fanout_config(const Config& config) {
  typename ShardFanout<ShardPayload>::Config cfg;
  cfg.threads = config.threads;
  cfg.queue_capacity = config.queue_capacity;
  cfg.failure_mode = config.failure_mode;
  cfg.journal_records = config.journal_records;
  cfg.snapshot_stride = config.snapshot_stride;
  cfg.retry = config.retry;
  cfg.before_access_hook = config.before_access_hook;
  return cfg;
}

ShardedEstimator::ShardedEstimator(const Config& config)
    : config_(config), fanout_(make_payloads(config), fanout_config(config)) {
  configured_rate_ =
      fanout_.payload(0).estimator->snapshot().sampling_rate;
}

std::uint32_t ShardedEstimator::shard_of(std::uint64_t key) const noexcept {
  // Top hash bits: disjoint from the low bits spatial filters threshold on
  // (modulus 2^24), so shard identity and sample membership are
  // independent uniform functions of the key.
  return static_cast<std::uint32_t>(hash64(key) >> 32) % fanout_.shard_count();
}

void ShardedEstimator::access(const Request& req) {
  fanout_.route(shard_of(req.key), req);
}

void ShardedEstimator::finish() {
  fanout_.finish();  // rethrows worker errors; throws when all shards died
  cache_shard_stats();
}

void ShardedEstimator::cache_shard_stats() const {
  if (!shard_stats_.empty()) return;
  shard_stats_.reserve(fanout_.shard_count());
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    ShardStats stats;
    stats.dead = fanout_.dead(s);
    stats.snapshot = fanout_.payload(s).estimator->snapshot();
    shard_stats_.push_back(stats);
  }
}

void ShardedEstimator::ensure_merged() const {
  if (merged_) return;
  cache_shard_stats();
  const std::uint32_t n = fanout_.shard_count();
  std::uint32_t base = 0;
  while (base < n && fanout_.dead(base)) ++base;
  if (base >= n) {
    throw StatusError(
        resource_limit_error("every shard failed; nothing to merge"));
  }
  merge_base_ = base;
  MrcEstimator& target = *fanout_.payload(base).estimator;
  std::uint32_t live = 1;
  for (std::uint32_t s = base + 1; s < n; ++s) {
    if (fanout_.dead(s)) continue;
    const Status status = target.absorb(*fanout_.payload(s).estimator);
    if (!status.is_ok()) throw StatusError(status);
    ++live;
  }
  if (live < n) {
    // Each shard is an unbiased 1/S spatial sample, so scaling the
    // survivors' mass by S/(S-F) extrapolates the dropped shards' share.
    const Status status = target.scale_mass(static_cast<double>(n) /
                                            static_cast<double>(live));
    if (!status.is_ok()) throw StatusError(status);
    if (fanout_.tracer() != nullptr) {
      fanout_.tracer()->instant("sharded.survivor_rescale", "sharded", 0,
                                {{"shards", static_cast<double>(n)},
                                 {"survivors", static_cast<double>(live)}});
    }
  }
  merged_ = true;
}

void ShardedEstimator::require_finished(const char* what) const {
  if (fanout_.needs_finish()) {
    throw std::logic_error(std::string("ShardedEstimator::") + what +
                           " requires finish() when running threaded");
  }
}

MissRatioCurve ShardedEstimator::mrc(const std::vector<double>& sizes) const {
  require_finished("mrc()");
  obs::Tracer* tracer = fanout_.tracer();
  const std::uint64_t merge_start_ns = tracer != nullptr ? tracer->now_ns() : 0;
  double merge_seconds = 0.0;
  MissRatioCurve curve;
  {
    ScopedTimer timer(merge_seconds);
    ensure_merged();
    curve = fanout_.payload(merge_base_).estimator->mrc(sizes);
  }
  if (tracer != nullptr) {
    tracer->complete("sharded.merge", "sharded", 0, merge_start_ns,
                     tracer->now_ns() - merge_start_ns,
                     {{"shards", static_cast<double>(fanout_.shard_count())}});
  }
#ifdef KRR_METRICS_ENABLED
  if (pipeline_metrics() != nullptr) {
    pipeline_metrics()->sharded.merge_seconds->set(merge_seconds);
  }
#endif
  return curve;
}

std::uint64_t ShardedEstimator::processed() const {
  return fanout_.processed();
}

RunReport ShardedEstimator::run_report(const TraceReadReport* ingest) const {
  require_finished("run_report()");
  cache_shard_stats();
  RunReport report;
  if (ingest != nullptr) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  } else {
    report.records_read = fanout_.processed();
  }
  report.configured_sampling_rate = configured_rate_;
  double final_rate = 1.0;
  bool first = true;
  for (const ShardStats& stats : shard_stats_) {
    if (stats.dead) continue;  // a dead shard's partial state is untrusted
    report.degradation_events += stats.snapshot.degradation_events;
    report.stack_depth += stats.snapshot.stack_depth;
    report.space_overhead_bytes += stats.snapshot.resident_bytes;
    final_rate = first ? stats.snapshot.sampling_rate
                       : std::min(final_rate, stats.snapshot.sampling_rate);
    first = false;
  }
  report.final_sampling_rate = final_rate;
  report.producer_stall_seconds = fanout_.producer_stall_seconds();
  report.shards_failed = fanout_.shards_failed();
  report.shards_resurrected = fanout_.shards_resurrected();
  report.replayed_records = fanout_.replayed_records();
  report.dropped_records = fanout_.dropped_records();
  report.recovery =
      recovery_path_name(report.shards_resurrected, report.shards_failed);
  return report;
}

obs::HeartbeatSnapshot ShardedEstimator::snapshot() const {
  // Mid-run: the batch-wise gauges the workers publish (at most one drain
  // batch stale). Post-finish: exact sums from the cached pre-merge stats.
  if (shard_stats_.empty()) return fanout_.live_aggregate();
  obs::HeartbeatSnapshot snap;
  snap.records = fanout_.processed();
  double min_rate = 1.0;
  bool first = true;
  for (const ShardStats& stats : shard_stats_) {
    if (stats.dead) continue;
    snap.sampled += stats.snapshot.sampled;
    snap.stack_depth += stats.snapshot.stack_depth;
    snap.resident_bytes += stats.snapshot.resident_bytes;
    snap.degradation_events += stats.snapshot.degradation_events;
    min_rate = first ? stats.snapshot.sampling_rate
                     : std::min(min_rate, stats.snapshot.sampling_rate);
    first = false;
  }
  snap.sampling_rate = min_rate;
  return snap;
}

Status ShardedEstimator::save_state(std::string* out) const {
  if (out == nullptr) return invalid_argument_error("save_state: null output");
  if (merged_) {
    return invalid_argument_error(
        "sharded snapshot unavailable after merge: absorb() has folded the "
        "shards together in place; checkpoint before reading the curve");
  }
  // Quiesce first: after this returns, every record routed so far is
  // reflected in its shard's payload and the workers are idle on their
  // queues, so reading the payloads from this (producer) thread is a
  // consistent cut at the current stream position.
  const Status quiesced = fanout_.quiesce();
  if (!quiesced.is_ok()) return quiesced;
  out->clear();
  ckpt::StateWriter writer(*out);
  const std::uint32_t n = fanout_.shard_count();
  std::string meta;
  ckpt::append_u32(meta, n);
  ckpt::append_u64(meta, fanout_.processed());
  ckpt::append_u64(meta, fanout_.dropped_records());
  ckpt::append_u64(meta, fanout_.shards_failed());
  for (std::uint32_t s = 0; s < n; ++s) {
    ckpt::append_u32(meta, fanout_.dead(s) ? 1u : 0u);
  }
  writer.add_section(ckpt::kSectionShardMeta, meta);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (fanout_.dead(s)) continue;  // a dead shard's partial state is untrusted
    const ShardPayload& payload = fanout_.payload(s);
    std::string inner;
    const Status status = payload.estimator->save_state(&inner);
    if (!status.is_ok()) return status;
    std::string body;
    ckpt::append_u32(body, s);
    ckpt::append_u64(body, payload.accesses);
    body += inner;
    writer.add_section(ckpt::kSectionShardState, body);
  }
  return Status::ok();
}

Status ShardedEstimator::load_state(const std::string& snapshot) {
  if (merged_ || fanout_.processed() != 0) {
    return invalid_argument_error(
        "sharded resume requires a freshly constructed estimator");
  }
  auto parsed = ckpt::StateReader::parse(snapshot);
  if (!parsed.is_ok()) return parsed.status();
  const ckpt::StateReader& reader = parsed.value();
  const std::string* meta = reader.find(ckpt::kSectionShardMeta);
  if (meta == nullptr) {
    return bad_record_error("sharded snapshot: missing shard-meta section");
  }
  ckpt::ByteReader meta_reader(*meta);
  std::uint32_t shard_n = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shards_failed = 0;
  if (!meta_reader.read_u32(&shard_n) || !meta_reader.read_u64(&processed) ||
      !meta_reader.read_u64(&dropped) ||
      !meta_reader.read_u64(&shards_failed)) {
    return truncated_error("sharded snapshot: shard-meta truncated");
  }
  if (shard_n != fanout_.shard_count()) {
    return invalid_argument_error(
        "sharded snapshot: shard count mismatch (snapshot " +
        std::to_string(shard_n) + ", configured " +
        std::to_string(fanout_.shard_count()) + ")");
  }
  std::vector<bool> dead(shard_n, false);
  std::uint64_t dead_count = 0;
  for (std::uint32_t s = 0; s < shard_n; ++s) {
    std::uint32_t flag = 0;
    if (!meta_reader.read_u32(&flag)) {
      return truncated_error("sharded snapshot: dead-shard mask truncated");
    }
    if (flag > 1) {
      return bad_record_error("sharded snapshot: malformed dead-shard flag");
    }
    dead[s] = flag != 0;
    dead_count += flag;
  }
  if (!meta_reader.exhausted()) {
    return bad_record_error("sharded snapshot: trailing bytes in shard meta");
  }
  if (dead_count != shards_failed) {
    return bad_record_error(
        "sharded snapshot: dead-shard mask disagrees with failure count");
  }
  if (dead_count >= shard_n) {
    return bad_record_error(
        "sharded snapshot: every shard dead; nothing to resume");
  }
  const std::vector<const std::string*> states =
      reader.find_all(ckpt::kSectionShardState);
  if (states.size() != shard_n - dead_count) {
    return bad_record_error(
        "sharded snapshot: expected " +
        std::to_string(shard_n - dead_count) + " shard-state sections, found " +
        std::to_string(states.size()));
  }
  // Validate the shard indices and slice out the inner payloads before
  // touching any estimator, so a malformed snapshot leaves this instance
  // untouched (the per-shard load_state calls below are themselves
  // commit-at-end, so a failure there also leaves prior shards consistent
  // only up to the failing one — the caller discards the estimator on any
  // non-ok status, which the CLI exit-code contract already requires).
  constexpr std::size_t kShardHeaderBytes = 12;  // u32 index + u64 accesses
  std::vector<bool> seen(shard_n, false);
  std::vector<std::string> inner(shard_n);
  std::vector<std::uint64_t> accesses(shard_n, 0);
  for (const std::string* body : states) {
    ckpt::ByteReader header(*body);
    std::uint32_t index = 0;
    std::uint64_t shard_accesses = 0;
    if (!header.read_u32(&index) || !header.read_u64(&shard_accesses)) {
      return truncated_error("sharded snapshot: shard-state header truncated");
    }
    if (index >= shard_n || dead[index]) {
      return bad_record_error(
          "sharded snapshot: shard-state section for invalid shard " +
          std::to_string(index));
    }
    if (seen[index]) {
      return bad_record_error(
          "sharded snapshot: duplicate shard-state section for shard " +
          std::to_string(index));
    }
    seen[index] = true;
    inner[index] = body->substr(kShardHeaderBytes);
    accesses[index] = shard_accesses;
  }
  for (std::uint32_t s = 0; s < shard_n; ++s) {
    if (dead[s]) continue;
    ShardPayload& payload = fanout_.payload(s);
    const Status status = payload.estimator->load_state(inner[s]);
    if (!status.is_ok()) return status;
    payload.accesses = accesses[s];
  }
  fanout_.restore_fanout_state(processed, dropped, dead);
  return Status::ok();
}

void ShardedEstimator::attach_metrics(obs::PipelineMetrics* metrics) noexcept {
  MrcEstimator::attach_metrics(metrics);
  fanout_.attach_metrics(metrics);
}

void ShardedEstimator::attach_tracer(obs::Tracer* tracer) noexcept {
  fanout_.attach_tracer(tracer);
}

void ShardedEstimator::export_gauges(obs::MetricsRegistry& registry) const {
  if (fanout_.needs_finish()) return;  // nothing trustworthy to export yet
  cache_shard_stats();
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    const ShardStats& stats = shard_stats_[s];
    const std::string prefix = "sharded.shard" + std::to_string(s) + ".";
    registry.gauge(prefix + "stack_depth")
        .set(static_cast<double>(stats.snapshot.stack_depth));
    registry.gauge(prefix + "sampled")
        .set(static_cast<double>(stats.snapshot.sampled));
    registry.gauge(prefix + "degradations")
        .set(static_cast<double>(stats.snapshot.degradation_events));
    registry.gauge(prefix + "final_rate").set(stats.snapshot.sampling_rate);
    registry.gauge(prefix + "failed").set(stats.dead ? 1.0 : 0.0);
    registry.gauge(prefix + "resurrections")
        .set(static_cast<double>(fanout_.shard_resurrections(s)));
  }
  registry.gauge("recovery.resurrections")
      .set(static_cast<double>(fanout_.shards_resurrected()));
  registry.gauge("recovery.replayed_records")
      .set(static_cast<double>(fanout_.replayed_records()));
}

const MrcEstimator& ShardedEstimator::shard(std::uint32_t s) const {
  require_finished("shard()");
  if (s >= fanout_.shard_count()) {
    throw std::out_of_range("shard index out of range");
  }
  return *fanout_.payload(s).estimator;
}

}  // namespace krr
