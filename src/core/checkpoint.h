#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace krr {

class EstimatorOptions;

/// Durable mid-run profiler snapshots ("KRRSNAP1" container).
///
/// Layout, all integers little-endian:
///
///   offset  size  field
///   0       8     magic "KRRSNAP1"
///   8       4     format version (currently 1)
///   12      4     config fingerprint (crc32 of model name + options)
///   16      8     record offset: accesses already folded into the payload
///   24      8     payload length in bytes
///   32      n     model-specific payload (MrcEstimator::save_state)
///   32+n    4     crc32 over bytes [0, 32+n)
///
/// The trailing CRC covers the header too, so a torn write, a truncation,
/// or a bit flip anywhere in the file is detected before any state is
/// trusted. Writes go to `path + ".tmp"` and are renamed into place, so a
/// crash mid-write leaves the previous snapshot intact.

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Header fields of a snapshot (the payload travels separately).
struct CheckpointHeader {
  std::uint32_t version = kCheckpointVersion;
  /// CRC32 over the model name and canonical option string; resuming under
  /// a different model/config would not be bit-compatible, so a mismatch is
  /// rejected up front as a usage error.
  std::uint32_t config_crc = 0;
  /// Number of trace records already applied to the snapshotted state; the
  /// resuming run skips exactly this many records.
  std::uint64_t records = 0;
};

/// Fingerprint of (model name, options) for CheckpointHeader::config_crc.
std::uint32_t checkpoint_fingerprint(const std::string& model,
                                     const EstimatorOptions& options);

/// Serializes and writes a snapshot atomically (temp file + rename).
Status write_checkpoint_atomic(const std::string& path,
                               const CheckpointHeader& header,
                               const std::string& payload);

/// Reads and fully validates a snapshot; on success fills `*payload` and
/// returns the header. Damage maps onto the ingest taxonomy: bad magic /
/// impossible lengths -> kCorruptHeader, unknown version ->
/// kUnsupportedVersion, CRC mismatch -> kChecksumMismatch.
StatusOr<CheckpointHeader> read_checkpoint(const std::string& path,
                                           std::string* payload);

namespace ckpt {

/// Byte-buffer serialization helpers shared by the model save_state /
/// load_state implementations. Integers are little-endian; doubles travel
/// as their IEEE-754 bit pattern so restored values are bit-identical.

inline void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void append_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

/// Bounds-checked sequential reader over a payload. Every read reports
/// success; a short payload simply makes reads fail rather than crash, and
/// the caller maps that onto a truncated/corrupt status.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  bool read_u32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool read_u64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool read_double(double* v) {
    std::uint64_t bits = 0;
    if (!read_u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

/// -------------------------------------------------------------------------
/// Tagged-section state streams — the zoo-wide codec that model payloads
/// (the bytes inside a KRRSNAP container) are built from.
///
/// A stream is a version word followed by zero or more sections:
///
///   offset  size  field
///   0       4     stream format version (kStateStreamVersion)
///   ---     per section, repeated to end of stream ---
///   +0      4     section tag (kSection* constants)
///   +4      8     body length in bytes
///   +12     n     body (model-specific, ckpt::append_* encoded)
///   +12+n   4     crc32 over the body
///
/// Readers skip sections with tags they do not recognize, so a newer build
/// can append sections without breaking an older reader (forward compat);
/// the per-section CRC localizes damage to one section instead of
/// poisoning the whole payload. The outer KRRSNAP container still guards
/// the file end-to-end — section CRCs matter when a payload travels
/// without it (absorbed into a composite sharded snapshot, for example).

inline constexpr std::uint32_t kStateStreamVersion = 1;

/// Section tags. Values are append-only: never reuse a retired tag.
inline constexpr std::uint32_t kSectionModelCore = 1;   // flat model counters
inline constexpr std::uint32_t kSectionLruStack = 2;    // Olken treap state
inline constexpr std::uint32_t kSectionCollector = 3;   // reuse-time collector
inline constexpr std::uint32_t kSectionAdapter = 4;     // registry-adapter state
inline constexpr std::uint32_t kSectionShardMeta = 5;   // composite fan-out header
inline constexpr std::uint32_t kSectionShardState = 6;  // one live shard (repeated)

/// Builds a tagged-section stream. Bodies are assembled by the caller with
/// the append_* helpers; add_section frames and checksums them.
class StateWriter {
 public:
  explicit StateWriter(std::string& out) : out_(out) {
    append_u32(out_, kStateStreamVersion);
  }

  void add_section(std::uint32_t tag, const std::string& body);

  StateWriter(const StateWriter&) = delete;
  StateWriter& operator=(const StateWriter&) = delete;

 private:
  std::string& out_;
};

/// Parses and validates a tagged-section stream up front (lengths bounded
/// by the payload, every section CRC checked), then serves sections by tag.
/// Unknown tags are retained but simply never asked for — that is the
/// forward-compatibility skip.
class StateReader {
 public:
  struct Section {
    std::uint32_t tag = 0;
    std::string body;
  };

  /// kTruncated for a stream that ends mid-frame, kUnsupportedVersion for a
  /// future stream version, kChecksumMismatch for a damaged section body.
  static StatusOr<StateReader> parse(const std::string& payload);

  std::size_t section_count() const noexcept { return sections_.size(); }
  const Section& section(std::size_t i) const { return sections_.at(i); }

  /// First section with this tag, or nullptr when absent.
  const std::string* find(std::uint32_t tag) const;

  /// Every section body carrying this tag, in stream order (composite
  /// snapshots repeat kSectionShardState once per live shard).
  std::vector<const std::string*> find_all(std::uint32_t tag) const;

 private:
  StateReader() = default;
  std::vector<Section> sections_;
};

}  // namespace ckpt

}  // namespace krr
