#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/fenwick.h"

namespace krr {

/// The paper's `sizeArray` (§4.4.1, Fig. 4.4): logarithmically many prefix
/// accumulators over the KRR stack. Entry j stores the total size of the
/// objects at stack positions [1, b^j] (clamped to the stack length), so a
/// byte-level stack distance can be estimated in O(1) by interpolating
/// between the two accumulators bracketing the object's position
/// (Algorithm 3), and each stack update maintains the array in O(log M).
class SizeArray {
 public:
  explicit SizeArray(std::uint32_t base = 2);

  /// A cold object of `size` bytes was appended at stack position
  /// `new_length` (== the new stack length), before the rotation.
  void on_append(std::uint32_t size, std::uint64_t new_length);

  /// A stack rotation along `chain` (ascending swap positions, front()==1,
  /// back()==phi) is about to happen; `sizes_before` are the per-position
  /// object sizes prior to the rotation (0-based: sizes_before[i] is the
  /// size at stack position i+1) and ref_size is the referenced object's
  /// size (it lands at position 1).
  void on_rotate(std::span<const std::uint64_t> chain,
                 std::span<const std::uint32_t> sizes_before, std::uint32_t ref_size);

  /// The resident object at stack position `position` changed size;
  /// adjusts every accumulator covering it.
  void on_resize(std::uint64_t position, std::uint32_t old_size,
                 std::uint32_t new_size);

  /// Algorithm 3: estimated cumulative size of stack positions [1, phi].
  /// Near the stack end, where the next power-of-b boundary exceeds the
  /// stack, interpolation is bounded by (stack length, total bytes).
  std::uint64_t byte_distance(std::uint64_t phi) const;

  std::uint32_t base() const noexcept { return base_; }
  std::size_t entry_count() const noexcept { return sums_.size(); }
  std::uint64_t total_bytes() const noexcept { return total_; }
  std::uint64_t covered_length() const noexcept { return covered_length_; }

  /// Accumulator for prefix [1, boundary(j)] (test helper).
  std::uint64_t entry(std::size_t j) const { return sums_[j]; }
  std::uint64_t boundary(std::size_t j) const { return boundaries_[j]; }

 private:
  void ensure_boundaries(std::uint64_t stack_length);

  std::uint32_t base_;
  std::vector<std::uint64_t> boundaries_;  // b^0, b^1, b^2, ...
  std::vector<std::uint64_t> sums_;        // prefix size at each boundary
  std::uint64_t covered_length_ = 0;       // stack length the sums reflect
  std::uint64_t total_ = 0;                // total bytes on the stack
};

/// Exact byte-level prefix sizes via a Fenwick tree over stack positions —
/// O(log M) per moved object instead of O(1) amortized, but exact. Used as
/// ground truth for SizeArray in tests and in the var-KRR accuracy ablation.
class ExactByteTracker {
 public:
  ExactByteTracker() = default;

  void on_append(std::uint32_t size, std::uint64_t new_length);
  void on_rotate(std::span<const std::uint64_t> chain,
                 std::span<const std::uint32_t> sizes_before, std::uint32_t ref_size);
  void on_resize(std::uint64_t position, std::uint32_t old_size,
                 std::uint32_t new_size);

  /// Exact cumulative size of stack positions [1, phi].
  std::uint64_t byte_distance(std::uint64_t phi) const;

 private:
  Fenwick<std::int64_t> sizes_;
};

}  // namespace krr
