#include "core/size_tracker.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace krr {

SizeArray::SizeArray(std::uint32_t base) : base_(base) {
  if (base_ < 2) throw std::invalid_argument("sizeArray base must be >= 2");
}

void SizeArray::ensure_boundaries(std::uint64_t stack_length) {
  // Maintain boundaries up to the first power of b that covers the stack;
  // a freshly added boundary covers the entire current stack, so its
  // accumulator starts at the total.
  if (boundaries_.empty()) {
    boundaries_.push_back(1);
    sums_.push_back(total_);
  }
  while (boundaries_.back() < stack_length) {
    boundaries_.push_back(boundaries_.back() * base_);
    sums_.push_back(total_);
  }
}

void SizeArray::on_append(std::uint32_t size, std::uint64_t new_length) {
  assert(new_length == covered_length_ + 1);
  // Existing accumulators whose boundary reaches the new position gain the
  // new object; shorter prefixes are unaffected.
  for (std::size_t j = boundaries_.size(); j-- > 0;) {
    if (boundaries_[j] < new_length) break;
    sums_[j] += size;
  }
  total_ += size;
  covered_length_ = new_length;
  ensure_boundaries(new_length);
}

void SizeArray::on_rotate(std::span<const std::uint64_t> chain,
                          std::span<const std::uint32_t> sizes_before,
                          std::uint32_t ref_size) {
  if (chain.empty()) throw std::invalid_argument("swap chain must be non-empty");
  const std::uint64_t phi = chain.back();
  // For every boundary p < phi, exactly one object crosses out of the
  // prefix [1, p]: the resident of the largest swap position <= p (its
  // rotation destination is the next swap position, which is > p), while
  // the referenced object enters at position 1.
  std::size_t ci = 0;  // index of the largest chain position <= boundary
  for (std::size_t j = 0; j < boundaries_.size(); ++j) {
    const std::uint64_t p = boundaries_[j];
    if (p >= phi) break;
    while (ci + 1 < chain.size() && chain[ci + 1] <= p) ++ci;
    const std::uint64_t crossing_pos = chain[ci];
    sums_[j] += ref_size;
    sums_[j] -= sizes_before[crossing_pos - 1];
  }
}

void SizeArray::on_resize(std::uint64_t position, std::uint32_t old_size,
                          std::uint32_t new_size) {
  const std::int64_t delta =
      static_cast<std::int64_t>(new_size) - static_cast<std::int64_t>(old_size);
  for (std::size_t j = 0; j < boundaries_.size(); ++j) {
    if (boundaries_[j] >= position) {
      sums_[j] = static_cast<std::uint64_t>(static_cast<std::int64_t>(sums_[j]) + delta);
    }
  }
  total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) + delta);
}

std::uint64_t SizeArray::byte_distance(std::uint64_t phi) const {
  if (phi == 0 || phi > covered_length_) {
    throw std::out_of_range("byte_distance: position beyond the stack");
  }
  // Largest boundary <= phi (boundaries are sorted; log-many entries, so a
  // linear scan is as fast as binary search in practice).
  std::size_t index = 0;
  while (index + 1 < boundaries_.size() && boundaries_[index + 1] <= phi) ++index;
  const std::uint64_t sd_low = boundaries_[index];
  const std::uint64_t sum_low = sums_[index];
  if (sd_low == phi) return sum_low;
  // Interpolate toward the next boundary, clamped at the stack end so the
  // upper anchor never claims more coverage than the stack has.
  std::uint64_t sd_high;
  std::uint64_t sum_high;
  if (index + 1 < boundaries_.size() && boundaries_[index + 1] <= covered_length_) {
    sd_high = boundaries_[index + 1];
    sum_high = sums_[index + 1];
  } else {
    sd_high = covered_length_;
    sum_high = total_;
  }
  if (sd_high <= sd_low) return sum_low;
  const double frac = static_cast<double>(phi - sd_low) /
                      static_cast<double>(sd_high - sd_low);
  return sum_low + static_cast<std::uint64_t>(
                       static_cast<double>(sum_high - sum_low) * frac);
}

void ExactByteTracker::on_append(std::uint32_t size, std::uint64_t new_length) {
  sizes_.ensure_size(new_length);
  sizes_.add(new_length, static_cast<std::int64_t>(size));
}

void ExactByteTracker::on_rotate(std::span<const std::uint64_t> chain,
                                 std::span<const std::uint32_t> sizes_before,
                                 std::uint32_t ref_size) {
  if (chain.empty()) throw std::invalid_argument("swap chain must be non-empty");
  // Rotation: resident of chain[j] moves to chain[j+1]; the referenced
  // object lands at position 1 (== chain[0]).
  for (std::size_t j = chain.size(); j-- > 1;) {
    const std::uint64_t dst = chain[j];
    const std::int64_t delta = static_cast<std::int64_t>(sizes_before[chain[j - 1] - 1]) -
                               static_cast<std::int64_t>(sizes_before[dst - 1]);
    if (delta != 0) sizes_.add(dst, delta);
  }
  const std::int64_t top_delta = static_cast<std::int64_t>(ref_size) -
                                 static_cast<std::int64_t>(sizes_before[0]);
  if (top_delta != 0) sizes_.add(1, top_delta);
}

void ExactByteTracker::on_resize(std::uint64_t position, std::uint32_t old_size,
                                 std::uint32_t new_size) {
  sizes_.add(position, static_cast<std::int64_t>(new_size) -
                           static_cast<std::int64_t>(old_size));
}

std::uint64_t ExactByteTracker::byte_distance(std::uint64_t phi) const {
  return static_cast<std::uint64_t>(sizes_.prefix_sum(phi));
}

}  // namespace krr
