#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/sharded_estimator.h"
#include "obs/heartbeat.h"
#include "trace/request.h"

namespace krr {

namespace obs {
struct PipelineMetrics;
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Configuration for the sharded (multi-threaded) KRR profiling pipeline.
/// The failure policy enum and the fan-out machinery live in
/// core/sharded_estimator.h (ShardFailureMode, ShardFanout) — this profiler
/// is the KRR-specialized wrapper over the same generic pipeline the
/// registry's *_sharded models use.
struct ShardedKrrProfilerConfig {
  /// The model configuration every shard runs with. `shard_count` and
  /// `seed` are overwritten per shard (seed + shard index keeps shard
  /// stacks on independent RNG streams); `max_stack_bytes`, when nonzero,
  /// is divided evenly across shards so the configured ceiling stays a
  /// global bound.
  KrrProfilerConfig base;
  /// Number of hash-disjoint keyspace partitions S (>= 1). Shard identity
  /// is taken from the top 32 bits of the same SplitMix64 key hash the
  /// spatial filter thresholds on its low bits, so shard membership and
  /// sampling are independent and both are pure functions of the key.
  std::uint32_t shards = 1;
  /// Worker threads consuming shard queues. <= 1 runs the pipeline inline
  /// on the calling thread (no pool, no queues) — with shards == 1 that is
  /// bit-identical to a plain KrrProfiler. Shard results never depend on
  /// the thread count, only on (config, trace): each shard consumes its
  /// records in stream order whatever thread owns it.
  unsigned threads = 1;
  /// Per-shard SPSC ring capacity in records (rounded up to a power of
  /// two). Bounds producer run-ahead: ~16 B/record, so the default is
  /// ~1 MiB of buffered records per shard.
  std::size_t queue_capacity = 1u << 16;
  /// Test seam: invoked (on the consuming thread) immediately before each
  /// record enters its shard's KrrProfiler. Lets fault-injection tests
  /// throw from inside a shard worker; leave empty in production.
  std::function<void(std::uint32_t shard, const Request&)> before_access_hook;
  /// Worker-failure policy; see ShardFailureMode.
  ShardFailureMode failure_mode = ShardFailureMode::kStrict;
  /// kReplay only: per-shard replay-journal capacity / mini-checkpoint
  /// cadence and the resurrection retry policy; see ShardFanout::Config.
  /// The journal footprint is charged against each shard's
  /// max_stack_bytes share.
  std::size_t journal_records = 16384;
  std::uint64_t snapshot_stride = 0;
  RetryPolicy retry;
};

/// Multi-threaded sharded KRR profiling pipeline (the SHARDS-composition
/// argument, DESIGN.md §8): the keyspace is hash-partitioned into S
/// disjoint shards, each shard runs its own spatial filter + KRR stack +
/// reuse histogram (a full KrrProfiler with shard-aware distance scaling),
/// and the per-shard adjusted histograms are merged into one MRC. Because
/// a hash shard is itself a uniform spatial sample of the keyspace, each
/// shard's rescaled histogram is an unbiased estimate of 1/S of the global
/// reuse mass, so the merge is a plain weight sum.
///
/// Threading model: see ShardFanout (core/sharded_estimator.h), which owns
/// the producer fan-out, backpressure, failure handling, and live-gauge
/// publication. This wrapper owns the KRR specifics: per-shard config
/// derivation, histogram merge, and the KRR-shaped reports.
///
///   ShardedKrrProfiler profiler({.base = cfg, .shards = 8, .threads = 8});
///   for (const Request& r : trace) profiler.access(r);
///   profiler.finish();                 // join + rethrow worker errors
///   MissRatioCurve mrc = profiler.mrc();
class ShardedKrrProfiler {
 public:
  explicit ShardedKrrProfiler(const ShardedKrrProfilerConfig& config);

  /// Blocks until workers drained (errors are swallowed here — call
  /// finish() first to observe them).
  ~ShardedKrrProfiler();

  ShardedKrrProfiler(const ShardedKrrProfiler&) = delete;
  ShardedKrrProfiler& operator=(const ShardedKrrProfiler&) = delete;

  /// Producer side: routes one reference to its shard. With threads > 1
  /// this enqueues (briefly yielding when the shard's ring is full —
  /// backpressure, counted as producer stall time); inline mode profiles
  /// synchronously. Single-producer: one thread at a time may call this.
  void access(const Request& req);

  /// Declares end of input, drains every queue, and rethrows the first
  /// exception a shard worker hit (the pipeline shuts down cleanly first;
  /// remaining workers stop at their queues' ends). Idempotent; must be
  /// called before mrc()/run_report() results are meaningful.
  void finish();

  /// The merged miss ratio curve: per-shard SHARDS-adjusted histograms
  /// summed, then converted. Requires finish().
  MissRatioCurve mrc() const;

  /// The merged adjusted histogram mrc() converts. Requires finish().
  DistanceHistogram merged_histogram() const;

  /// Aggregated run accounting (sums/extremes across shards): stack depth
  /// and space are summed, degradations summed, the final sampling rate is
  /// the minimum (most degraded shard). Requires finish().
  RunReport run_report(const TraceReadReport* ingest = nullptr) const;

  /// References routed so far (producer-side, exact).
  std::uint64_t processed() const noexcept { return fanout_.processed(); }

  /// Post-finish aggregates over shards (best-effort mode: surviving
  /// shards only — a dead shard's partial state is not trustworthy).
  std::uint64_t sampled() const;
  std::uint64_t stack_depth() const;
  std::uint64_t space_overhead_bytes() const;
  std::uint64_t degradation_events() const;

  /// Shards dropped by best-effort recovery (0 in strict mode: a failure
  /// there aborts the run before this is readable).
  std::uint64_t shards_failed() const noexcept {
    return fanout_.shards_failed();
  }

  /// Records discarded because their shard was already dead (producer
  /// drops plus queued records the worker discarded after failing).
  std::uint64_t dropped_records() const noexcept {
    return fanout_.dropped_records();
  }

  /// Replay-recovery accounting (failure_mode=replay): workers revived and
  /// journal records re-applied across all resurrections.
  std::uint64_t shards_resurrected() const noexcept {
    return fanout_.shards_resurrected();
  }
  std::uint64_t replayed_records() const noexcept {
    return fanout_.replayed_records();
  }

  std::uint32_t shards() const noexcept { return fanout_.shard_count(); }
  unsigned threads() const noexcept { return fanout_.worker_count(); }
  bool finished() const noexcept { return fanout_.finished(); }

  /// Cumulative seconds the producer spent waiting on full shard queues.
  double producer_stall_seconds() const noexcept {
    return fanout_.producer_stall_seconds();
  }

  /// Shard-local profiler, for tests/diagnostics. Post-finish only.
  const KrrProfiler& shard(std::uint32_t s) const;

  /// Which shard a key routes to (pure function of the key; exposed so
  /// tests can assert disjointness).
  std::uint32_t shard_of(std::uint64_t key) const noexcept;

  /// Race-free live progress for heartbeats, readable from the producer
  /// thread mid-run: producer-exact record count plus per-shard gauges the
  /// workers publish batch-wise (so the numbers trail by at most one drain
  /// batch).
  obs::HeartbeatSnapshot snapshot() const { return fanout_.live_aggregate(); }

  /// Attaches fan-out instrumentation (sharded.* metrics) and nothing on
  /// the per-shard hot paths (per-record shard metrics would serialize the
  /// workers on shared cache lines). Same lifetime/no-op contract as
  /// KrrProfiler::attach_metrics.
  void attach_metrics(obs::PipelineMetrics* metrics) noexcept;

  /// Attaches span/event tracing: lane 0 is the producer, lane s+1 is
  /// shard s (named in the export). Workers emit one drain span per traced
  /// stride (gated clock reads, Heartbeat-style); queue stalls, shard
  /// deaths, survivor rescale, and the merge are traced unconditionally.
  /// Call before the first access(); detached cost is one branch per
  /// batch. Non-owning; the tracer must outlive the profiler.
  void attach_tracer(obs::Tracer* tracer) noexcept;

  /// Publishes per-shard end-of-run gauges
  /// (sharded.shard<N>.{stack_depth,sampled,degradations,final_rate}) into
  /// the registry. Post-finish; works whether or not hot-path
  /// instrumentation was compiled in.
  void export_shard_gauges(obs::MetricsRegistry& registry) const;

 private:
  /// ShardFanout payload: one shard-local KrrProfiler, held through a
  /// pointer (plus its config) so the replay-recovery rebuild() hook can
  /// recreate a config-identical fresh instance in place.
  struct KrrShardPayload {
    explicit KrrShardPayload(const KrrProfilerConfig& cfg)
        : config(cfg), profiler(std::make_unique<KrrProfiler>(cfg)) {}

    void access(const Request& req) { profiler->access(req); }
    obs::HeartbeatSnapshot live_state() const {
      obs::HeartbeatSnapshot s;
      s.records = profiler->processed();
      s.sampled = profiler->sampled();
      s.stack_depth = profiler->stack_depth();
      s.resident_bytes = profiler->space_overhead_bytes();
      s.sampling_rate = profiler->current_sampling_rate();
      s.degradation_events = profiler->degradation_events();
      return s;
    }

    /// Replay-recovery hooks (ShardFanout kReplay contract). KrrProfiler's
    /// own save/load is already bit-identical, so the mini-checkpoint is
    /// just its state bytes.
    Status save_state(std::string* out) const {
      return profiler->save_state(out);
    }
    Status load_state(const std::string& blob) {
      return profiler->load_state(blob);
    }
    void rebuild() { profiler = std::make_unique<KrrProfiler>(config); }

    KrrProfilerConfig config;
    std::unique_ptr<KrrProfiler> profiler;
  };

  static std::vector<std::unique_ptr<KrrShardPayload>> make_payloads(
      const ShardedKrrProfilerConfig& config);
  static ShardFanout<KrrShardPayload>::Config fanout_config(
      const ShardedKrrProfilerConfig& config);

  ShardedKrrProfilerConfig config_;
  ShardFanout<KrrShardPayload> fanout_;
#ifdef KRR_METRICS_ENABLED
  obs::PipelineMetrics* metrics_ = nullptr;  // for the merge_seconds gauge
#endif
};

}  // namespace krr
