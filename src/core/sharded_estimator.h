#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/request.h"
#include "util/faultpoint.h"
#include "util/parallel.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace krr {

/// How a sharded pipeline reacts when a shard worker throws mid-run.
enum class ShardFailureMode {
  /// Fail fast (default): the producer stops feeding and finish() rethrows
  /// the first worker exception.
  kStrict,
  /// Drop the failed shard and keep the run alive: the shard's queue is
  /// discarded, records routed to it are dropped, and at merge time the
  /// surviving shards' mass is rescaled by S/(S-F) — each shard is an
  /// unbiased 1/S sample of the keyspace, so the extrapolation stays
  /// unbiased. Failures are counted in RunReport::shards_failed; the run
  /// only fails if every shard dies.
  kBestEffort,
  /// Self-healing: each live shard keeps a bounded replay journal (the last
  /// J records it applied) plus a periodic mini-checkpoint of its payload.
  /// When the payload throws, the owning worker resurrects it in place —
  /// fresh payload, reload the last mini-checkpoint, replay the journal
  /// tail, re-apply the failing record — under the configured RetryPolicy.
  /// The replayed shard is bit-identical to one that never failed (same
  /// records, same order). Only when recovery is impossible (journal window
  /// exceeded because the payload outran its snapshot cadence, or every
  /// retry attempt failed) does the shard fall back to kBestEffort's
  /// drop-and-rescale. RunReport::recovery reports which path ran.
  kReplay,
};

/// The recovery path a finished run took, for RunReport::recovery and the
/// CLI summary: "none" (no shard ever failed), "replayed" (every failure
/// was resurrected from journal+checkpoint), "rescaled" (failures were
/// dropped and survivors rescaled), or "replayed+rescaled" (both happened).
inline const char* recovery_path_name(std::uint64_t resurrected,
                                      std::uint64_t rescaled) noexcept {
  if (resurrected == 0 && rescaled == 0) return "none";
  if (resurrected != 0 && rescaled != 0) return "replayed+rescaled";
  return resurrected != 0 ? "replayed" : "rescaled";
}

/// The model-agnostic sharded fan-out pipeline, lifted out of
/// ShardedKrrProfiler so any model can run behind it: the caller (the
/// trace-reader thread) is the single producer, routing records to
/// per-shard bounded SPSC queues; min(threads, shards) persistent workers
/// each own a fixed subset of shards (shard s belongs to worker s % T) and
/// drain them in stream order. One queue therefore has exactly one
/// producer and one consumer, and no record path takes a global lock.
/// Shard results never depend on the thread count, only on the routing and
/// the payloads: each shard consumes its records in stream order whatever
/// thread owns it.
///
/// `Payload` is the per-shard model state and must provide:
///   void access(const Request& req);            // consume one record
///   obs::HeartbeatSnapshot live_state() const;  // gauges for heartbeats
/// and, for kReplay recovery (exercised only when that mode is configured):
///   Status save_state(std::string* out) const;  // mini-checkpoint
///   Status load_state(const std::string&);      // restore a checkpoint
///   void rebuild();                             // reset to a fresh payload
///
/// The fan-out owns routing, backpressure, failure handling (strict /
/// best-effort with dead-shard bit-bucketing), live-gauge publication, and
/// the sharded.* metrics/trace events; what a "shard" is — a full
/// KrrProfiler, a registry estimator, anything — is the wrapper's business,
/// as is computing the shard index (route() takes it, so the hash stays a
/// pure function of the key in exactly one place per wrapper).
template <typename Payload>
class ShardFanout {
 public:
  struct Config {
    /// Worker threads consuming shard queues. <= 1 runs the pipeline inline
    /// on the calling thread (no pool, no queues).
    unsigned threads = 1;
    /// Per-shard SPSC ring capacity in records (rounded up to a power of
    /// two). Bounds producer run-ahead: ~16 B/record, so the default is
    /// ~1 MiB of buffered records per shard.
    std::size_t queue_capacity = 1u << 16;
    /// Worker-failure policy; see ShardFailureMode.
    ShardFailureMode failure_mode = ShardFailureMode::kStrict;
    /// kReplay only: per-shard replay-journal capacity J in records. A
    /// resurrection can bridge at most J records between the last
    /// mini-checkpoint and the failure; 0 disables journaling (every
    /// failure falls straight back to drop-and-rescale). ~16 B/record, and
    /// the wrappers charge the footprint against the shard's memory budget.
    std::size_t journal_records = 16384;
    /// kReplay only: payload accesses between per-shard mini-checkpoints.
    /// 0 picks max(journal_records / 2, 1), which guarantees the journal
    /// window can never be exceeded while snapshots keep succeeding.
    std::uint64_t snapshot_stride = 0;
    /// Resurrection attempts/backoff (kReplay only). Jitter is
    /// deterministic in the policy seed, so a faulted run recovers
    /// identically every time.
    RetryPolicy retry;
    /// Test seam: invoked (on the consuming thread) immediately before each
    /// record enters its shard's payload. Lets fault-injection tests throw
    /// from inside a shard worker; leave empty in production.
    std::function<void(std::uint32_t shard, const Request&)> before_access_hook;
  };

  ShardFanout(std::vector<std::unique_ptr<Payload>> payloads, Config config)
      : config_(std::move(config)) {
    if (config_.failure_mode != ShardFailureMode::kReplay) {
      config_.journal_records = 0;
    } else if (config_.snapshot_stride == 0) {
      config_.snapshot_stride =
          std::max<std::uint64_t>(config_.journal_records / 2, 1);
    }
    shards_.reserve(payloads.size());
    for (auto& payload : payloads) {
      shards_.push_back(std::make_unique<Shard>(
          std::move(payload), config_.queue_capacity, config_.journal_records));
      shards_.back()->publish_live();
    }
    if (config_.threads > 1) {
      worker_count_ = std::min<unsigned>(
          config_.threads, static_cast<unsigned>(shards_.size()));
      pool_ = std::make_unique<ThreadPool>(worker_count_);
      for (unsigned t = 0; t < worker_count_; ++t) {
        pool_->submit([this, t] { drain_loop(t); });
      }
    }
  }

  /// Blocks until workers drained (errors are swallowed here — call
  /// finish() first to observe them).
  ~ShardFanout() {
    done_.store(true, std::memory_order_release);
    // ThreadPool's destructor joins after the drain tasks exit; worker
    // exceptions that finish() never observed die with the pool.
    pool_.reset();
  }

  ShardFanout(const ShardFanout&) = delete;
  ShardFanout& operator=(const ShardFanout&) = delete;

  /// Producer side: routes one record to shard `index`. With threads > 1
  /// this enqueues (briefly yielding when the shard's ring is full —
  /// backpressure, counted as producer stall time); inline mode consumes
  /// synchronously. Single-producer: one thread at a time may call this.
  void route(std::uint32_t index, const Request& req) {
    ++processed_;
    Shard& shard = *shards_[index];
    if constexpr (obs::kHotPathInstrumentation) {
      if (metrics_ != nullptr) {
        metrics_->sharded.enqueued->inc();
        if ((processed_ & 1023u) == 0) {
          metrics_->sharded.queue_depth->record(shard.queue.size_approx());
        }
      }
    }
    if (shard.dead.load(std::memory_order_acquire)) {
      dropped_records_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (faults::should_fire(faults::kQueuePush, index)) {
      // An injected push fault. Strict mode treats it like any producer
      // failure (the exception aborts the run); recovering modes lose just
      // this record — it never reaches a queue, so there is nothing for
      // replay to bridge — and count it as dropped.
      if (config_.failure_mode == ShardFailureMode::kStrict) {
        throw faults::FaultInjectedError("injected fault at queue push, shard " +
                                         std::to_string(index));
      }
      dropped_records_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr) {
        tracer_->instant("sharded.queue_fault", "sharded", 0,
                         {{"shard", static_cast<double>(index)}});
      }
      return;
    }
    if (worker_count_ == 0) {
      // Inline mode: consume synchronously (strict failures propagate to
      // the caller, recovering modes dispose of the record like a worker
      // would).
      if (!consume_record(shard, index, req)) {
        dropped_records_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (shard.queue.try_push(req)) {
      ++shard.routed;
      return;
    }
    // Backpressure: the shard's worker is behind. Back off (spin, then
    // yield, then bounded sleeps) rather than block on a condvar — stalls
    // are usually transient (a worker mid-batch), but a persistently slow
    // shard must not pin the producer core.
    if constexpr (obs::kHotPathInstrumentation) {
      if (metrics_ != nullptr) metrics_->sharded.producer_stalls->inc();
    }
    const std::uint64_t stall_start_ns =
        tracer_ != nullptr ? tracer_->now_ns() : 0;
    const auto trace_stall = [&] {
      if (tracer_ != nullptr) {
        tracer_->complete("sharded.queue_stall", "sharded", 0, stall_start_ns,
                          tracer_->now_ns() - stall_start_ns,
                          {{"shard", static_cast<double>(index)}});
      }
    };
    Stopwatch stall;
    Backoff backoff;
    for (;;) {
      if (failed_.load(std::memory_order_acquire)) {
        // A worker died; its queues will never drain. Drop the record —
        // the run is poisoned and finish() will rethrow the worker's error.
        stall_seconds_ += stall.seconds();
        trace_stall();
        return;
      }
      if (shard.dead.load(std::memory_order_acquire)) {
        // Best-effort: this shard just died under us; stop waiting on it.
        dropped_records_.fetch_add(1, std::memory_order_relaxed);
        stall_seconds_ += stall.seconds();
        trace_stall();
        return;
      }
      if (backoff.pause()) {
        if constexpr (obs::kHotPathInstrumentation) {
          if (metrics_ != nullptr) {
            metrics_->sharded.backpressure_sleeps->inc();
          }
        }
      }
      if (shard.queue.try_push(req)) break;
    }
    ++shard.routed;
    stall_seconds_ += stall.seconds();
    trace_stall();
  }

  /// Producer side: blocks until every record routed so far has been
  /// consumed by its shard's worker (applied to the payload, or bit-bucketed
  /// for a dead shard), so the per-shard payloads form a consistent cut of
  /// the stream at the producer's current position. The consumed counters
  /// are released after each record is applied, so the acquire loads here
  /// also publish the payload mutations to the caller — reading shard state
  /// after a successful quiesce is race-free until the next route(). No-op
  /// in inline mode; errors out instead of spinning forever when a strict-
  /// mode worker has died (its queues will never drain).
  Status quiesce() {
    if (worker_count_ == 0) return Status::ok();
    Backoff backoff;
    for (;;) {
      if (failed_.load(std::memory_order_acquire)) {
        return internal_error(
            "cannot quiesce shards: a worker failed; finish() will rethrow "
            "its error");
      }
      bool drained = true;
      for (const auto& shard : shards_) {
        if (shard->consumed.load(std::memory_order_acquire) != shard->routed) {
          drained = false;
          break;
        }
      }
      if (drained) return Status::ok();
      backoff.pause();
    }
  }

  /// Checkpoint restore (producer thread, before the first route()):
  /// re-marks dead shards and restores the producer/drop/failure counters a
  /// snapshot recorded. The per-shard routed/consumed ledgers deliberately
  /// restart at zero — they only ever compare against each other, so a
  /// fresh epoch is as consistent as the saved one.
  void restore_fanout_state(std::uint64_t processed, std::uint64_t dropped,
                            const std::vector<bool>& dead_flags) {
    processed_ = processed;
    dropped_records_.store(dropped, std::memory_order_relaxed);
    std::uint64_t failed = 0;
    for (std::size_t s = 0; s < shards_.size() && s < dead_flags.size(); ++s) {
      if (dead_flags[s]) {
        shards_[s]->dead.store(true, std::memory_order_release);
        ++failed;
      }
    }
    shards_failed_.store(failed, std::memory_order_relaxed);
  }

  /// Declares end of input, drains every queue, and rethrows the first
  /// exception a shard worker hit (the pipeline shuts down cleanly first;
  /// remaining workers stop at their queues' ends). Throws StatusError when
  /// best-effort recovery lost every shard. Idempotent.
  void finish() {
    if (finished_) return;
    if (worker_count_ != 0) {
      const std::uint64_t join_start_ns =
          tracer_ != nullptr ? tracer_->now_ns() : 0;
      done_.store(true, std::memory_order_release);
      pool_->wait_idle();  // rethrows the first worker exception (strict)
      if (tracer_ != nullptr) {
        tracer_->complete("sharded.drain_join", "sharded", 0, join_start_ns,
                          tracer_->now_ns() - join_start_ns);
      }
    }
    finished_ = true;
    if constexpr (obs::kHotPathInstrumentation) {
      if (metrics_ != nullptr) {
        metrics_->sharded.stall_seconds->set(stall_seconds_);
        metrics_->sharded.shard_failures->inc(shards_failed());
      }
    }
    // Best-effort recovery extrapolates from the survivors; with none left
    // there is nothing to extrapolate from and the run has truly failed.
    if (shards_failed() >= shards_.size()) {
      throw StatusError(resource_limit_error(
          "all " + std::to_string(shards_.size()) +
          " shards failed; no surviving shard to merge"));
    }
  }

  /// Records routed so far (producer-side, exact).
  std::uint64_t processed() const noexcept { return processed_; }

  /// Cumulative seconds the producer spent waiting on full shard queues.
  double producer_stall_seconds() const noexcept { return stall_seconds_; }

  /// Shards dropped by best-effort recovery (0 in strict mode: a failure
  /// there aborts the run before this is readable).
  std::uint64_t shards_failed() const noexcept {
    return shards_failed_.load(std::memory_order_relaxed);
  }

  /// Records discarded because their shard was already dead (producer
  /// drops plus queued records the worker discarded after failing).
  std::uint64_t dropped_records() const noexcept {
    return dropped_records_.load(std::memory_order_relaxed);
  }

  /// Workers revived by replay recovery (kReplay mode; a shard can be
  /// resurrected more than once).
  std::uint64_t shards_resurrected() const noexcept {
    return resurrections_.load(std::memory_order_relaxed);
  }

  /// Journal records re-applied across all resurrections.
  std::uint64_t replayed_records() const noexcept {
    return replayed_records_.load(std::memory_order_relaxed);
  }

  /// Resurrections of one shard. Post-finish only (consumer-owned counter).
  std::uint64_t shard_resurrections(std::uint32_t s) const {
    return shards_.at(s)->resurrections;
  }

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  unsigned worker_count() const noexcept { return worker_count_; }
  bool finished() const noexcept { return finished_; }

  /// True while post-finish-only state (the payloads) must not be touched:
  /// workers may still be mutating them. Wrappers gate their accessors on
  /// this so "read a shard mid-threaded-run" is a loud logic_error, not a
  /// data race.
  bool needs_finish() const noexcept {
    return worker_count_ != 0 && !finished_;
  }

  /// Shard-local payload, for merges/diagnostics. The caller is responsible
  /// for gating on needs_finish().
  Payload& payload(std::uint32_t s) { return *shards_.at(s)->payload; }
  const Payload& payload(std::uint32_t s) const {
    return *shards_.at(s)->payload;
  }

  /// Whether best-effort recovery dropped shard `s`.
  bool dead(std::uint32_t s) const {
    return shards_.at(s)->dead.load(std::memory_order_acquire);
  }

  /// Race-free live progress for heartbeats, readable from the producer
  /// thread mid-run: producer-exact record count plus per-shard gauges the
  /// workers publish batch-wise (so the numbers trail by at most one drain
  /// batch). Gauges are summed across shards; the rate is the minimum
  /// (most degraded shard).
  obs::HeartbeatSnapshot live_aggregate() const {
    obs::HeartbeatSnapshot snap;
    snap.records = processed_;
    double min_rate = 1.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Shard& shard = *shards_[s];
      if (worker_count_ == 0) {
        // Inline mode: no concurrency, read the payload directly.
        const obs::HeartbeatSnapshot live = shard.payload->live_state();
        snap.sampled += live.sampled;
        snap.stack_depth += live.stack_depth;
        snap.resident_bytes += live.resident_bytes;
        snap.degradation_events += live.degradation_events;
        min_rate = s == 0 ? live.sampling_rate
                          : std::min(min_rate, live.sampling_rate);
      } else {
        snap.sampled += shard.live_sampled.load(std::memory_order_relaxed);
        snap.stack_depth += shard.live_depth.load(std::memory_order_relaxed);
        snap.resident_bytes +=
            shard.live_resident.load(std::memory_order_relaxed);
        snap.degradation_events +=
            shard.live_degradations.load(std::memory_order_relaxed);
        const double rate = shard.live_rate.load(std::memory_order_relaxed);
        min_rate = s == 0 ? rate : std::min(min_rate, rate);
      }
    }
    snap.sampling_rate = min_rate;
    return snap;
  }

  /// Attaches fan-out instrumentation (sharded.* metrics) and nothing on
  /// the per-shard hot paths (per-record shard metrics would serialize the
  /// workers on shared cache lines).
  void attach_metrics(obs::PipelineMetrics* metrics) noexcept {
    if constexpr (obs::kHotPathInstrumentation) {
      metrics_ = metrics;
      if (metrics_ != nullptr) {
        metrics_->sharded.shards->set(static_cast<double>(shards_.size()));
        metrics_->sharded.threads->set(static_cast<double>(worker_count_));
      }
    } else {
      (void)metrics;
    }
  }

  /// Attaches span/event tracing: lane 0 is the producer, lane s+1 is
  /// shard s (named in the export). Workers emit one drain span per
  /// kDrainTraceStride batches (stride-gated clock reads); queue stalls,
  /// shard deaths, and the drain join are traced unconditionally. Call
  /// before the first route(); detached cost is one branch per batch.
  /// Non-owning; the tracer must outlive the fan-out.
  void attach_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    if (tracer_ == nullptr) return;
    tracer_->set_lane_name(0, "producer");
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      tracer_->set_lane_name(static_cast<std::uint32_t>(s) + 1,
                             "shard " + std::to_string(s));
    }
  }

  /// The attached tracer (null while detached), for wrappers that emit
  /// merge/rescale events of their own on lane 0.
  obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  /// Records a worker pulls from one shard queue before moving to its next
  /// owned shard (and before republishing that shard's live gauges). Large
  /// enough to amortize the gauge stores, small enough that a worker owning
  /// several shards does not starve any of them.
  static constexpr int kDrainBatch = 256;

  /// Drain batches between traced drain spans. A span costs two clock
  /// reads, so with 256-record batches a traced worker reads the clock once
  /// per ~4096 records — the same stride Heartbeat::tick gates at.
  static constexpr std::uint64_t kDrainTraceStride = 16;

  struct Shard {
    Shard(std::unique_ptr<Payload> p, std::size_t queue_capacity,
          std::size_t journal_capacity)
        : payload(std::move(p)), queue(queue_capacity) {
      if (journal_capacity != 0) journal.resize(journal_capacity);
    }

    std::unique_ptr<Payload> payload;
    SpscQueue<Request> queue;

    // Replay-recovery state, all consumer-owned (only the worker that owns
    // this shard — or the producer in inline mode — ever touches it, so no
    // atomics). `journal` is a ring of the last journal.size() applied
    // records; `applied` counts records ever applied to the payload;
    // `snapshot` is the payload's last mini-checkpoint, taken at
    // `snapshot_applied` applied records. Resurrection = fresh payload +
    // load(snapshot) + replay journal[snapshot_applied, applied) — possible
    // exactly while applied - snapshot_applied <= journal.size().
    std::vector<Request> journal;
    std::uint64_t applied = 0;
    std::uint64_t snapshot_applied = 0;
    std::string snapshot;
    std::uint64_t resurrections = 0;

    // Best-effort failure mode: set (by the owning worker, or the producer
    // in inline mode) when this shard's pipeline threw. A dead shard's
    // queue is drained to the bit bucket and its state is excluded from
    // merges.
    std::atomic<bool> dead{false};

    // Worker-owned drain-batch counter gating traced spans (no atomics:
    // one consumer per shard).
    std::uint64_t drain_batches = 0;

    // Quiesce ledger. `routed` counts records the producer successfully
    // enqueued to this shard (plain: single producer, and only the producer
    // reads it, in quiesce()); `consumed` counts records the worker has
    // fully disposed of — applied to the payload, bit-bucketed for a dead
    // shard, or swallowed by a best-effort failure — and is incremented
    // with release order *after* the disposal so quiesce()'s acquire load
    // publishes the payload mutations. consumed == routed therefore means
    // "every record handed to this shard is reflected in its state".
    std::uint64_t routed = 0;
    std::atomic<std::uint64_t> consumed{0};

    // Live gauges the owning worker publishes once per drain batch so the
    // producer thread can heartbeat without touching payload internals.
    std::atomic<std::uint64_t> live_sampled{0};
    std::atomic<std::uint64_t> live_depth{0};
    std::atomic<std::uint64_t> live_resident{0};
    std::atomic<std::uint64_t> live_degradations{0};
    std::atomic<double> live_rate{1.0};

    void publish_live() noexcept {
      const obs::HeartbeatSnapshot live = payload->live_state();
      live_sampled.store(live.sampled, std::memory_order_relaxed);
      live_depth.store(live.stack_depth, std::memory_order_relaxed);
      live_resident.store(live.resident_bytes, std::memory_order_relaxed);
      live_degradations.store(live.degradation_events,
                              std::memory_order_relaxed);
      live_rate.store(live.sampling_rate, std::memory_order_relaxed);
    }
  };

  void drain_batch(Shard& shard, std::uint32_t index, bool& did_work) {
    Request req;
    int budget = kDrainBatch;
    if (shard.dead.load(std::memory_order_relaxed)) {
      // Discard what the producer enqueued before it noticed the death;
      // the queue must keep draining or the producer's backpressure spin
      // would wait on a shard that will never consume.
      while (budget-- > 0 && shard.queue.try_pop(req)) {
        dropped_records_.fetch_add(1, std::memory_order_relaxed);
        shard.consumed.fetch_add(1, std::memory_order_release);
        did_work = true;
      }
      return;
    }
    // Stride-gated drain spans: one traced batch (two clock reads) every
    // kDrainTraceStride batches; untraced batches pay one branch.
    const bool traced =
        tracer_ != nullptr && (shard.drain_batches++ % kDrainTraceStride) == 0;
    const std::uint64_t batch_start_ns = traced ? tracer_->now_ns() : 0;
    int drained = 0;
    while (budget-- > 0 && shard.queue.try_pop(req)) {
      // Strict-mode failures throw through to drain_loop/the pool; a
      // recovering mode that could not save the shard returns false — the
      // record that killed it is disposed of (swallowed), so it still
      // counts as consumed.
      const bool ok = consume_record(shard, index, req);
      shard.consumed.fetch_add(1, std::memory_order_release);
      if (!ok) {
        dropped_records_.fetch_add(1, std::memory_order_relaxed);
        did_work = true;
        return;
      }
      ++drained;
    }
    if (drained > 0) {
      shard.publish_live();
      did_work = true;
      if (traced) {
        tracer_->complete(
            "sharded.drain", "sharded", index + 1, batch_start_ns,
            tracer_->now_ns() - batch_start_ns,
            {{"records", static_cast<double>(drained)},
             {"depth", static_cast<double>(
                  shard.live_depth.load(std::memory_order_relaxed))}});
      }
    }
  }

  /// Consumer side: applies one record to a live shard's payload, with the
  /// fault point, journaling, mini-checkpoints, and failure handling.
  /// Returns true when the record is reflected in the payload (possibly
  /// after a resurrection), false when the shard died under it. Strict
  /// mode throws instead of dying.
  bool consume_record(Shard& shard, std::uint32_t index, const Request& req) {
    try {
      if (config_.before_access_hook) config_.before_access_hook(index, req);
      faults::maybe_fire(faults::kShardWorker, index);
      shard.payload->access(req);
    } catch (...) {
      if (config_.failure_mode == ShardFailureMode::kStrict) throw;
      if (config_.failure_mode == ShardFailureMode::kReplay &&
          try_resurrect(shard, index, req)) {
        return true;
      }
      kill_shard(shard, index);
      return false;
    }
    journal_append(shard, req);
    maybe_snapshot(shard, index);
    return true;
  }

  void kill_shard(Shard& shard, std::uint32_t index) {
    shard.dead.store(true, std::memory_order_release);
    shards_failed_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) {
      tracer_->instant("sharded.shard_failed", "sharded", index + 1,
                       {{"shard", static_cast<double>(index)}});
    }
  }

  void journal_append(Shard& shard, const Request& req) {
    if (!shard.journal.empty()) {
      shard.journal[shard.applied % shard.journal.size()] = req;
    }
    ++shard.applied;
  }

  /// Mini-checkpoint cadence: every snapshot_stride applied records the
  /// owning worker saves the payload into shard-local storage. A failed
  /// save keeps the previous snapshot — the shard stays recoverable up to
  /// the old snapshot's journal window and the failure is traced, not
  /// fatal.
  void maybe_snapshot(Shard& shard, std::uint32_t index) {
    if (config_.journal_records == 0 ||
        shard.applied - shard.snapshot_applied < config_.snapshot_stride) {
      return;
    }
    std::string state;
    Status status = Status::ok();
    try {
      status = shard.payload->save_state(&state);
    } catch (...) {
      status = internal_error("shard snapshot threw");
    }
    if (status.is_ok()) {
      shard.snapshot = std::move(state);
      shard.snapshot_applied = shard.applied;
    } else if (tracer_ != nullptr) {
      tracer_->instant("sharded.shard_snapshot_failed", "sharded", index + 1,
                       {{"shard", static_cast<double>(index)}});
    }
  }

  /// Resurrects a shard whose payload just threw on `req`: fresh payload,
  /// reload the last mini-checkpoint, replay the journal tail, re-apply the
  /// failing record — retried under the configured RetryPolicy, every
  /// attempt traced as a sharded.shard_resurrect span. Returns false (and
  /// leaves the caller to fall back to drop-and-rescale) when the journal
  /// cannot bridge back to the snapshot or every attempt failed. The replay
  /// calls the payload directly — no hook, no fault point — so a trigger
  /// armed on this shard does not re-kill the recovery itself; the hit
  /// counter simply resumes with the next fresh record.
  bool try_resurrect(Shard& shard, std::uint32_t index, const Request& req) {
    const std::uint64_t pending = shard.applied - shard.snapshot_applied;
    if (shard.journal.empty() || pending > shard.journal.size()) {
      if (tracer_ != nullptr) {
        tracer_->instant("sharded.replay_window_exceeded", "sharded", index + 1,
                         {{"shard", static_cast<double>(index)},
                          {"pending", static_cast<double>(pending)},
                          {"journal", static_cast<double>(shard.journal.size())}});
      }
      return false;
    }
    for (unsigned attempt = 1; attempt <= config_.retry.max_attempts;
         ++attempt) {
      if (attempt > 1) config_.retry.sleep(attempt - 1);
      const std::uint64_t start_ns = tracer_ != nullptr ? tracer_->now_ns() : 0;
      bool ok = false;
      try {
        shard.payload->rebuild();
        ok = shard.snapshot.empty() ||
             shard.payload->load_state(shard.snapshot).is_ok();
        if (ok) {
          for (std::uint64_t i = shard.snapshot_applied; i < shard.applied;
               ++i) {
            shard.payload->access(shard.journal[i % shard.journal.size()]);
          }
          shard.payload->access(req);  // the record that killed the worker
        }
      } catch (...) {
        ok = false;
      }
      if (tracer_ != nullptr) {
        tracer_->complete("sharded.shard_resurrect", "sharded", index + 1,
                          start_ns, tracer_->now_ns() - start_ns,
                          {{"shard", static_cast<double>(index)},
                           {"attempt", static_cast<double>(attempt)},
                           {"replayed", static_cast<double>(pending)},
                           {"ok", ok ? 1.0 : 0.0}});
      }
      if (ok) {
        journal_append(shard, req);
        ++shard.resurrections;
        resurrections_.fetch_add(1, std::memory_order_relaxed);
        replayed_records_.fetch_add(pending, std::memory_order_relaxed);
        if constexpr (obs::kHotPathInstrumentation) {
          if (metrics_ != nullptr) {
            metrics_->sharded.resurrections->inc();
            metrics_->sharded.replayed_records->inc(pending);
          }
        }
        shard.publish_live();
        return true;
      }
    }
    return false;
  }

  void drain_loop(unsigned worker_index) {
    // Static shard ownership (shard s -> worker s % T) keeps every queue
    // strictly single-consumer.
    std::vector<std::uint32_t> owned;
    for (std::uint32_t s = worker_index; s < shards_.size();
         s += worker_count_) {
      owned.push_back(s);
    }
    try {
      for (;;) {
        bool did_work = false;
        for (std::uint32_t s : owned) drain_batch(*shards_[s], s, did_work);
        if (did_work) continue;
        if (done_.load(std::memory_order_acquire)) {
          // done_ was released after the producer's last push, so an empty
          // check after this acquire is conclusive.
          bool all_empty = true;
          for (std::uint32_t s : owned) {
            if (!shards_[s]->queue.empty_approx()) {
              all_empty = false;
              break;
            }
          }
          if (all_empty) return;
        } else {
          std::this_thread::yield();
        }
      }
    } catch (...) {
      // Flag first so the producer's stall loop cannot wait forever on
      // this worker's queues, then let the pool capture the exception for
      // finish() to rethrow.
      failed_.store(true, std::memory_order_release);
      throw;
    }
  }

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned worker_count_ = 0;             // 0 = inline mode
  std::unique_ptr<ThreadPool> pool_;      // null in inline mode
  std::atomic<bool> done_{false};         // producer closed the stream
  std::atomic<bool> failed_{false};       // some worker threw (strict mode)
  std::atomic<std::uint64_t> shards_failed_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
  std::atomic<std::uint64_t> resurrections_{0};      // replay recoveries
  std::atomic<std::uint64_t> replayed_records_{0};   // journal records re-applied
  bool finished_ = false;
  std::uint64_t processed_ = 0;           // producer-side
  double stall_seconds_ = 0.0;            // producer-side
  obs::Tracer* tracer_ = nullptr;         // unconditional: gauge-grade events
  obs::PipelineMetrics* metrics_ = nullptr;  // touched only when compiled in
};

/// Generic sharded execution for the model zoo: wraps any registry model
/// that declares `spatial_sampling` and implements the absorb()/
/// scale_mass() merge hooks, running S per-shard instances (each fed a
/// hash-disjoint 1/S slice of the keyspace — itself a uniform spatial
/// sample, so sharding composes with the model's own sampling) behind the
/// ShardFanout pipeline, then folding the survivors into one instance whose
/// curve is the answer.
///
/// Per-shard instances are created through the registry factory with
/// shard-aware option injection: `shard_count=S` (models rescale distances
/// or reuse times back to full-stream units), `seed = base_seed + s`
/// (independent RNG streams), and for fixed-size models a split capacity.
/// A global `max_stack_bytes` budget is divided evenly across shards and
/// enforced from the consuming thread (space check + degrade() every 4096
/// per-shard accesses) — the RunGovernor's external loop cannot reach
/// inside a threaded pipeline, the same contract krr_sharded has.
///
/// Checkpointing composes: a snapshot first quiesces the fan-out (the
/// producer waits until every routed record is reflected in its shard's
/// payload — see ShardFanout::quiesce), then writes one composite payload:
/// a shard-meta section (shard count, producer counters, the dead-shard
/// mask) plus one shard-state section per *live* shard carrying that
/// shard's own save_state() bytes. Resume restores the dead mask and
/// counters, reloads each survivor, and continues with the same
/// survivor-rescale merge semantics — a shard that died before the
/// snapshot stays dead after it. The snapshot must be taken before
/// mrc()/run_report() merge the shards (absorb() folds them in place);
/// save_state() refuses afterwards.
class ShardedEstimator final : public MrcEstimator {
 public:
  struct Config {
    /// Registry name of the model every shard runs ("shards", "aet", ...).
    std::string base_model;
    /// Options handed to every per-shard factory call (fan-out keys
    /// threads/shards/queue_capacity/failure_mode are stripped;
    /// shard_count/seed are overwritten per shard).
    EstimatorOptions base_options;
    /// Number of hash-disjoint keyspace partitions S (>= 1).
    std::uint32_t shards = 1;
    /// Worker threads consuming shard queues; <= 1 runs inline. With
    /// shards == 1 the pipeline is bit-identical to the serial model.
    unsigned threads = 1;
    std::size_t queue_capacity = 1u << 16;
    ShardFailureMode failure_mode = ShardFailureMode::kStrict;
    /// kReplay only: per-shard replay-journal capacity / mini-checkpoint
    /// cadence and the resurrection retry policy; see ShardFanout::Config.
    /// The journal footprint (journal_records * sizeof(Request) per shard)
    /// is charged against each shard's max_stack_bytes share so the global
    /// ceiling still bounds the whole pipeline.
    std::size_t journal_records = 16384;
    std::uint64_t snapshot_stride = 0;
    RetryPolicy retry;
    /// Global memory budget (0 = ungoverned), split evenly across shards.
    std::uint64_t max_stack_bytes = 0;
    /// Test seam forwarded to ShardFanout::Config::before_access_hook.
    std::function<void(std::uint32_t shard, const Request&)> before_access_hook;
  };

  /// Builds the per-shard instances through EstimatorRegistry::instance().
  /// Throws std::invalid_argument when the base model rejects the options
  /// (the registry maps that onto kInvalidArgument at create() time).
  explicit ShardedEstimator(const Config& config);

  void access(const Request& req) override;
  void finish() override;
  MissRatioCurve mrc(const std::vector<double>& sizes = {}) const override;
  std::uint64_t processed() const override;
  RunReport run_report(const TraceReadReport* ingest = nullptr) const override;
  obs::HeartbeatSnapshot snapshot() const override;

  /// External governance is a no-op by contract: the budget must be
  /// enforced from the consuming threads (see class comment), so the
  /// governor sees "always within budget" and the lifecycle suite excludes
  /// sharded models from the externally-governed set.
  std::uint64_t space_overhead_bytes() const override { return 0; }
  bool degrade() override { return false; }

  /// Composite checkpoint (see class comment): quiesce, then shard-meta +
  /// one per-live-shard sub-payload. Fails after the merge, when a worker
  /// has died in strict mode, or when any shard's own save fails.
  Status save_state(std::string* out) const override;
  /// Restores a composite snapshot into a freshly constructed estimator
  /// (same shard count; thread count is free to differ — shard states are
  /// thread-invariant). Dead shards stay dead; survivors reload in place.
  Status load_state(const std::string& payload) override;

  void attach_metrics(obs::PipelineMetrics* metrics) noexcept override;
  void attach_tracer(obs::Tracer* tracer) noexcept override;
  void export_gauges(obs::MetricsRegistry& registry) const override;

  /// Which shard a key routes to: the top 32 hash bits, disjoint from the
  /// low bits spatial filters threshold on, so shard identity and sample
  /// membership are independent uniform functions of the key.
  std::uint32_t shard_of(std::uint64_t key) const noexcept;

  std::uint32_t shards() const noexcept { return fanout_.shard_count(); }
  unsigned threads() const noexcept { return fanout_.worker_count(); }
  std::uint64_t shards_failed() const noexcept {
    return fanout_.shards_failed();
  }
  std::uint64_t dropped_records() const noexcept {
    return fanout_.dropped_records();
  }
  std::uint64_t shards_resurrected() const noexcept {
    return fanout_.shards_resurrected();
  }
  std::uint64_t replayed_records() const noexcept {
    return fanout_.replayed_records();
  }

  /// Shard-local estimator, for tests/diagnostics. Post-finish only when
  /// threaded; after mrc()/run_report() shard 0 (or the first survivor)
  /// holds the merged state.
  const MrcEstimator& shard(std::uint32_t s) const;

 private:
  struct ShardPayload {
    std::unique_ptr<MrcEstimator> estimator;
    /// Recreates a fresh instance with this shard's exact options — the
    /// resurrection path's rebuild() hook.
    std::function<std::unique_ptr<MrcEstimator>()> factory;
    std::uint64_t budget_bytes = 0;  // per-shard share; 0 = ungoverned
    std::uint64_t accesses = 0;

    void access(const Request& req);
    obs::HeartbeatSnapshot live_state() const { return estimator->snapshot(); }

    /// Replay-recovery hooks (ShardFanout kReplay contract): the
    /// mini-checkpoint is the access counter (the budget-check stride
    /// position) followed by the inner estimator's own save_state bytes.
    Status save_state(std::string* out) const;
    Status load_state(const std::string& blob);
    void rebuild();
  };

  /// Per-shard end-of-run numbers cached before the merge mutates the
  /// survivor instances (absorb() folds shards together in place).
  struct ShardStats {
    obs::HeartbeatSnapshot snapshot;
    RunReport report;
    bool dead = false;
  };

  static std::vector<std::unique_ptr<ShardPayload>> make_payloads(
      const Config& config);
  static typename ShardFanout<ShardPayload>::Config fanout_config(
      const Config& config);

  /// Snapshots every shard's pre-merge numbers (absorb() mutates the
  /// survivors in place, so run_report/export_gauges read the cache).
  /// Idempotent; const because lazy callers (inline-mode mrc()) hit it too.
  void cache_shard_stats() const;
  /// Folds the survivors into the first live shard (ascending shard order,
  /// so the merge is deterministic and thread-count-invariant), then
  /// applies the S/(S-F) survivor rescale. Idempotent.
  void ensure_merged() const;
  void require_finished(const char* what) const;

  Config config_;
  mutable ShardFanout<ShardPayload> fanout_;
  mutable bool merged_ = false;
  mutable std::uint32_t merge_base_ = 0;          // first surviving shard
  mutable std::vector<ShardStats> shard_stats_;   // filled by finish()
  double configured_rate_ = 1.0;                  // shard 0's initial rate
};

}  // namespace krr
