#include "core/estimator.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace krr {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* kind) {
  throw std::invalid_argument("estimator option '" + key + "': bad " + kind +
                              " '" + value + "'");
}

}  // namespace

StatusOr<EstimatorOptions> EstimatorOptions::parse(const std::string& spec) {
  EstimatorOptions options;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    const std::string key = item.substr(0, eq);
    if (key.empty()) {
      return invalid_argument_error("estimator options: empty key in '" + spec + "'");
    }
    // A bare `flag` is shorthand for `flag=1`.
    options.set(key, eq == std::string::npos ? "1" : item.substr(eq + 1));
  }
  return options;
}

void EstimatorOptions::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

void EstimatorOptions::merge(const EstimatorOptions& other) {
  for (const auto& [key, value] : other.values_) values_[key] = value;
}

bool EstimatorOptions::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string EstimatorOptions::get_string(const std::string& key,
                                         const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t EstimatorOptions::get_int(const std::string& key,
                                       std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0') {
    bad_value(key, it->second, "integer");
  }
  return static_cast<std::int64_t>(v);
}

double EstimatorOptions::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || end == nullptr || *end != '\0') {
    bad_value(key, it->second, "number");
  }
  return v;
}

bool EstimatorOptions::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  bad_value(key, v, "boolean");
}

const std::set<std::string>& common_estimator_option_keys() {
  static const std::set<std::string> keys = {
      "k", "rate", "bytes", "strategy", "correction", "adjustment",
      "seed", "quantum"};
  return keys;
}

RunReport MrcEstimator::run_report(const TraceReadReport* ingest) const {
  RunReport report;
  report.records_read = processed();
  if (ingest != nullptr) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  }
  return report;
}

Status MrcEstimator::absorb(const MrcEstimator&) {
  return invalid_argument_error("estimator '" + info_.name +
                                "' does not support sharded merging");
}

Status MrcEstimator::scale_mass(double) {
  return invalid_argument_error("estimator '" + info_.name +
                                "' does not support sharded merging");
}

Status MrcEstimator::save_state(std::string*) const {
  return invalid_argument_error("estimator '" + info_.name +
                                "' does not support checkpointing");
}

Status MrcEstimator::load_state(const std::string&) {
  return invalid_argument_error("estimator '" + info_.name +
                                "' does not support checkpointing");
}

obs::HeartbeatSnapshot MrcEstimator::snapshot() const {
  obs::HeartbeatSnapshot s;
  s.records = processed();
  return s;
}

void MrcEstimator::attach_metrics(obs::PipelineMetrics* metrics) noexcept {
  metrics_ = metrics;
}

void MrcEstimator::refresh_metrics_gauges() const noexcept {
  if (metrics_ == nullptr) return;
  const ModelGaugeSnapshot g = model_gauges();
  metrics_->model.depth->set(g.depth);
  metrics_->model.resident_bytes->set(g.resident_bytes);
  metrics_->model.sampling_rate->set(g.sampling_rate);
  metrics_->model.samples->set(g.samples);
  metrics_->model.degradations->set(g.degradations);
  metrics_->model.histogram_bins->set(g.histogram_bins);
}

ModelGaugeSnapshot MrcEstimator::model_gauges() const {
  const obs::HeartbeatSnapshot s = snapshot();
  ModelGaugeSnapshot g;
  g.depth = static_cast<double>(s.stack_depth);
  g.resident_bytes = static_cast<double>(
      s.resident_bytes != 0 ? s.resident_bytes : space_overhead_bytes());
  g.sampling_rate = s.sampling_rate;
  g.samples = static_cast<double>(s.sampled);
  g.degradations = static_cast<double>(s.degradation_events);
  return g;
}

void MrcEstimator::attach_tracer(obs::Tracer*) noexcept {}

void MrcEstimator::export_gauges(obs::MetricsRegistry&) const {}

EstimatorRegistry& EstimatorRegistry::instance() {
  // Leaked singleton: registrations from static initializers in other
  // translation units may run before main and must never observe teardown.
  static EstimatorRegistry* registry = [] {
    auto* r = new EstimatorRegistry();
    detail::register_builtin_estimators(*r);
    return r;
  }();
  return *registry;
}

void EstimatorRegistry::add(EstimatorInfo info, Factory factory) {
  const std::string name = info.name;
  if (name.empty()) throw std::logic_error("estimator registered without a name");
  const bool inserted =
      entries_.emplace(name, std::make_pair(std::move(info), std::move(factory)))
          .second;
  if (!inserted) {
    throw std::logic_error("estimator '" + name + "' registered twice");
  }
}

StatusOr<std::unique_ptr<MrcEstimator>> EstimatorRegistry::create(
    const std::string& name, const EstimatorOptions& options) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [n, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return invalid_argument_error("unknown estimator '" + name + "' (known: " + known +
                            ")");
  }
  const auto& [info, factory] = it->second;
  // A memory budget on a model that cannot bound its state is a usage
  // error, not a silently ignored knob: running it would grow unbounded and
  // OOM long traces (the exact trap governance exists to close).
  if (!info.caps.governed_memory && options.has("max_stack_bytes") &&
      options.get_int("max_stack_bytes", 0) != 0) {
    return invalid_argument_error(
        "estimator '" + name +
        "' cannot bound its memory; --max-stack-mb / max_stack_bytes is not "
        "supported for this model");
  }
  for (const auto& [key, value] : options.entries()) {
    if (common_estimator_option_keys().count(key) != 0) continue;
    if (std::find(info.option_keys.begin(), info.option_keys.end(), key) !=
        info.option_keys.end()) {
      continue;
    }
    std::string accepted;
    for (const auto& k : info.option_keys) {
      if (!accepted.empty()) accepted += ", ";
      accepted += k;
    }
    return invalid_argument_error("estimator '" + name + "' does not accept option '" +
                            key + "'" +
                            (accepted.empty() ? "" : " (accepts: " + accepted + ")"));
  }
  try {
    auto estimator = factory(options);
    estimator->set_info(info);
    return estimator;
  } catch (const std::invalid_argument& e) {
    return invalid_argument_error(std::string("estimator '") + name + "': " + e.what());
  }
}

const EstimatorInfo* EstimatorRegistry::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.first;
}

std::vector<EstimatorInfo> EstimatorRegistry::list() const {
  std::vector<EstimatorInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) infos.push_back(entry.first);
  return infos;  // std::map iteration is already name-sorted
}

EstimatorRegistrar::EstimatorRegistrar(EstimatorInfo info,
                                       EstimatorRegistry::Factory factory) {
  EstimatorRegistry::instance().add(std::move(info), std::move(factory));
}

}  // namespace krr
