#pragma once

#include <cstdint>

#include "util/hashing.h"

namespace krr {

/// SHARDS-style uniform spatial sampling (§2.4): a reference to key L is
/// sampled iff hash(L) mod P < T. Because the decision is a pure function
/// of the key, either *all* references to an object are sampled or none
/// are, which preserves reuse behaviour within the sampled subset. The
/// effective sampling rate is R = T/P.
class SpatialFilter {
 public:
  static constexpr std::uint64_t kDefaultModulus = 1ULL << 24;

  /// rate in (0, 1]; the threshold is rounded to at least 1 so some keys
  /// always pass. rate == 1 samples everything.
  explicit SpatialFilter(double rate, std::uint64_t modulus = kDefaultModulus);

  /// Whether references to this key are part of the sample.
  bool sampled(std::uint64_t key) const noexcept {
    return (hash64(key) % modulus_) < threshold_;
  }

  /// Halves the sampling threshold (the paper's §5 rate adaptation, also
  /// the profiler's graceful-degradation step). Because sampled() is a
  /// threshold test on the same hash, the surviving key set is an exact
  /// subset of the previous one — evicting keys that no longer pass keeps
  /// the sample statistically valid. The threshold never drops below 1.
  void halve() noexcept {
    if (threshold_ > 1) {
      threshold_ /= 2;
      ++halvings_;
    }
  }

  /// Rate-halving epochs: how many times halve() actually lowered the
  /// threshold (a bottomed-out filter stops counting). Epoch boundaries
  /// matter to readers of the obs layer because distances recorded in
  /// different epochs were scaled by different factors.
  std::uint64_t halvings() const noexcept { return halvings_; }

  /// The realized rate T/P (may differ slightly from the requested rate
  /// because T is integral).
  double rate() const noexcept {
    return static_cast<double>(threshold_) / static_cast<double>(modulus_);
  }

  /// 1/rate: the factor sampled stack distances are scaled by.
  double scale() const noexcept { return 1.0 / rate(); }

  std::uint64_t modulus() const noexcept { return modulus_; }
  std::uint64_t threshold() const noexcept { return threshold_; }

  /// Checkpoint support: reinstates a previously observed (threshold,
  /// halvings) pair. The threshold is clamped to [1, modulus] so a corrupt
  /// snapshot cannot produce a filter that samples nothing or oversamples.
  void restore(std::uint64_t threshold, std::uint64_t halvings) noexcept {
    if (threshold < 1) threshold = 1;
    if (threshold > modulus_) threshold = modulus_;
    threshold_ = threshold;
    halvings_ = halvings;
  }

 private:
  std::uint64_t modulus_;
  std::uint64_t threshold_;
  std::uint64_t halvings_ = 0;
};

/// The paper keeps sampling error low by ensuring at least `min_objects`
/// (8K) objects are sampled (§5.3): given a workload's expected distinct
/// object count, returns max(base_rate, min_objects / distinct_objects),
/// capped at 1.
double adaptive_sampling_rate(double base_rate, std::uint64_t distinct_objects,
                              std::uint64_t min_objects = 8192);

}  // namespace krr
