#include "core/dlru.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace krr {

namespace {

KLruConfig make_cache_config(const AdaptiveKLruConfig& config) {
  KLruConfig cc;
  cc.capacity = config.capacity;
  cc.sample_size = config.initial_k;
  cc.seed = config.seed;
  return cc;
}

}  // namespace

AdaptiveKLruCache::AdaptiveKLruCache(const AdaptiveKLruConfig& config)
    : config_(config), cache_(make_cache_config(config)), current_k_(config.initial_k) {
  if (config_.candidate_ks.empty()) {
    throw std::invalid_argument("adaptive cache needs candidate K values");
  }
  if (config_.epoch == 0) throw std::invalid_argument("epoch must be > 0");
  // "Smallest adequate K" selection assumes ascending candidates.
  std::sort(config_.candidate_ks.begin(), config_.candidate_ks.end());
  rebuild_profilers();
}

void AdaptiveKLruCache::rebuild_profilers() {
  profilers_.clear();
  std::uint64_t seed = config_.seed + (++profiler_generation_);
  for (std::uint32_t k : config_.candidate_ks) {
    KrrProfilerConfig pc;
    pc.k_sample = k;
    pc.sampling_rate = config_.sampling_rate;
    pc.seed = ++seed;
    profilers_.push_back(std::make_unique<KrrProfiler>(pc));
  }
}

bool AdaptiveKLruCache::access(const Request& req) {
  for (auto& profiler : profilers_) profiler->access(req);
  const bool hit = cache_.access(req);
  if (++since_epoch_ >= config_.epoch) {
    since_epoch_ = 0;
    reconfigure();
  }
  return hit;
}

std::vector<double> AdaptiveKLruCache::predictions() const {
  std::vector<double> out;
  out.reserve(profilers_.size());
  for (const auto& profiler : profilers_) {
    out.push_back(profiler->mrc().eval(static_cast<double>(config_.capacity)));
  }
  return out;
}

void AdaptiveKLruCache::reconfigure() {
  const std::vector<double> predicted = predictions();
  double best = std::numeric_limits<double>::infinity();
  for (double p : predicted) best = std::min(best, p);
  // Smallest candidate K within tolerance of the best prediction: larger K
  // samples more entries per eviction, so cheaper is better when equal.
  std::uint32_t chosen = config_.candidate_ks.back();
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] <= best + config_.tolerance) {
      chosen = config_.candidate_ks[i];
      break;
    }
  }
  current_k_ = chosen;
  cache_.set_sample_size(chosen);
  history_.push_back(chosen);
  if (config_.reset_each_epoch) rebuild_profilers();
}

}  // namespace krr
