#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/krr_stack.h"
#include "core/spatial_filter.h"
#include "obs/json.h"
#include "trace/request.h"
#include "trace/trace_reader.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {

namespace obs {
struct PipelineMetrics;
}

/// End-to-end configuration for one-pass K-LRU MRC construction.
struct KrrProfilerConfig {
  /// The K-LRU eviction sampling size K being modeled (Redis default 5).
  double k_sample = 5.0;
  /// Apply the K' = K^1.4 correction (§4.2). Disable to ablate.
  bool apply_correction = true;
  UpdateStrategy strategy = UpdateStrategy::kBackward;
  /// Model sampling with replacement (Prop. 1, Redis) or without (Prop. 2).
  SamplingModel sampling_model = SamplingModel::kPlacingBack;
  /// Spatial sampling rate R in (0, 1]; 1.0 disables sampling. The paper's
  /// default online rate is 0.001 with a floor of 8K sampled objects
  /// (use adaptive_sampling_rate to realize the floor).
  double sampling_rate = 1.0;
  /// Byte-granularity MRC over variable object sizes (var-KRR). When off,
  /// every object counts as one unit (uni-KRR).
  bool byte_granularity = false;
  std::uint32_t size_array_base = 2;
  std::uint64_t seed = 1;
  /// Histogram bin width (in scaled distance units); 1 = exact bins.
  std::uint64_t histogram_quantum = 1;
  /// Apply the SHARDS-adj first-bucket correction for the difference
  /// between expected (N*R) and actual sampled reference counts. Only
  /// relevant when sampling_rate < 1.
  bool sampling_adjustment = true;
  /// Hash-sharded operation (see ShardedKrrProfiler): this profiler models
  /// one of `shard_count` hash-disjoint keyspace partitions, so its input
  /// stream is itself a uniform spatial sample at rate 1/shard_count and a
  /// shard-local stack distance d estimates a global distance
  /// d * shard_count / R. 1 (the default) means unsharded; the distance
  /// scale is then multiplied by exactly 1.0, so behaviour is bit-identical
  /// to a build without this field.
  std::uint32_t shard_count = 1;
  /// Graceful-degradation ceiling on the profiler's estimated resident
  /// memory (space_overhead_bytes()); 0 = unbounded. When the ceiling is
  /// reached, the spatial sampling rate is halved and residents falling
  /// out of the sample are evicted — the paper's §5 rate adaptation, which
  /// keeps the profile statistically sound — instead of growing without
  /// limit. Each halving is counted as one degradation event.
  std::uint64_t max_stack_bytes = 0;
};

/// End-of-run accounting surfaced through the library API: what was
/// ingested, what the recovery policy dropped, and how often the profiler
/// degraded its sampling rate to stay inside its memory ceiling. A clean,
/// non-degraded run has zeros everywhere and final_sampling_rate equal to
/// the configured rate.
struct RunReport {
  std::uint64_t records_read = 0;
  std::uint64_t records_skipped = 0;
  std::uint64_t checksum_failures = 0;
  bool truncated_tail = false;
  std::uint64_t degradation_events = 0;
  /// The rate the run was configured with (realized against the filter
  /// modulus). Defaults describe the no-sampling case; run_report() always
  /// overwrites both rates, so a zero-access run reports the configured
  /// rate, not the struct default.
  double configured_sampling_rate = 1.0;
  double final_sampling_rate = 1.0;
  std::uint64_t stack_depth = 0;
  std::uint64_t space_overhead_bytes = 0;
  /// Seconds the producer spent blocked on full shard queues (sharded
  /// pipeline only; 0 for serial profilers).
  double producer_stall_seconds = 0.0;
  /// The run finished early (deadline watchdog); the curve covers only the
  /// prefix of the trace that was processed.
  bool partial = false;
  /// Shards dropped by best-effort failure recovery (sharded pipeline
  /// only); the merged histogram was rescaled by the surviving fraction.
  std::uint64_t shards_failed = 0;
  /// Shard workers revived by replay recovery (sharded pipeline,
  /// failure_mode=replay only; a shard may be resurrected more than once).
  std::uint64_t shards_resurrected = 0;
  /// Journal records re-applied across all resurrections.
  std::uint64_t replayed_records = 0;
  /// Records discarded by shard failure handling: routed to already-dead
  /// shards, dropped from a failed worker's queue, or shed by injected
  /// queue-push faults under a recovering failure mode.
  std::uint64_t dropped_records = 0;
  /// Which failure-recovery path the run took: "none", "replayed",
  /// "rescaled", or "replayed+rescaled" (see recovery_path_name).
  std::string recovery = "none";
};

/// The RunReport as a JSON object — the "run_report" section of the
/// metrics snapshot, so the CLI's --metrics-out and library callers
/// serialize identical numbers.
obs::Json to_json(const RunReport& report);

/// One-pass K-LRU miss-ratio-curve profiler: spatial filter -> KRR stack ->
/// rescaled stack-distance histogram -> MRC. This is the library's primary
/// public entry point.
///
///   KrrProfiler profiler({.k_sample = 5});
///   for (const Request& r : trace) profiler.access(r);
///   MissRatioCurve mrc = profiler.mrc();
class KrrProfiler {
 public:
  explicit KrrProfiler(const KrrProfilerConfig& config);

  /// Processes one reference (spatial filtering applied internally).
  void access(const Request& req);

  /// The predicted K-LRU miss ratio curve. Cache sizes are object counts
  /// (uni-KRR) or bytes (var-KRR); with spatial sampling, distances have
  /// been scaled back by 1/R so the curve is in unsampled units, and the
  /// SHARDS-adj correction is applied (see sampling_adjustment).
  MissRatioCurve mrc() const;

  /// The histogram mrc() converts: a copy of the raw histogram with the
  /// SHARDS-adj first-bucket correction applied (when enabled and
  /// sampling). Shard merging sums these across shard profilers before one
  /// global to_mrc(), which distributes: per-shard corrections add up to
  /// the global correction because expectations are per-shard linear.
  DistanceHistogram adjusted_histogram() const;

  const DistanceHistogram& histogram() const noexcept { return histogram_; }

  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t sampled() const noexcept { return sampled_; }

  /// Distinct sampled objects (the KRR stack depth).
  std::uint64_t stack_depth() const noexcept { return stack_.depth(); }

  /// The effective KRR exponent in use (k_sample or corrected_k(k_sample)).
  double model_k() const noexcept { return stack_.config().k; }

  /// Estimated resident-memory overhead in bytes (§5.6 accounting): stack
  /// array + size array + hash table entries.
  std::uint64_t space_overhead_bytes() const noexcept;

  /// Times the sampling rate was halved to stay under max_stack_bytes.
  std::uint64_t degradation_events() const noexcept { return degradation_events_; }

  /// The rate currently in effect (== the configured rate until the first
  /// degradation event halves it).
  double current_sampling_rate() const noexcept { return filter_.rate(); }

  /// One graceful-degradation step (a single rate halving + eviction),
  /// exposed for external governors: maybe_degrade() applies the same step
  /// until the internal ceiling is met. Returns false once the filter has
  /// bottomed out at threshold 1 (no further shrinking is possible).
  bool degrade_step();

  /// Checkpoint support: serializes the complete profiler state (filter
  /// epoch, stack, histogram, counters, PRNG) so an identically configured
  /// profiler resumes bit-identically after load_state().
  Status save_state(std::string* out) const;
  Status load_state(const std::string& payload);

  /// Profiler-side run accounting; pass the ingestion report to fold in
  /// what the TraceReader read, skipped, and failed to checksum.
  RunReport run_report(const TraceReadReport* ingest = nullptr) const;

  const KrrProfilerConfig& config() const noexcept { return config_; }

  /// Attaches hot-path instrumentation (and the stack's, see
  /// KrrStack::attach_metrics): per-access counters for filter pass/drop,
  /// degradations, and the stack update histograms. The metrics must
  /// outlive the profiler; nullptr detaches. No-op (and truly zero-cost on
  /// the access path) when the KRR_METRICS option is compiled out.
  void attach_metrics(obs::PipelineMetrics* metrics) noexcept;

  /// Pushes the instantaneous state into the attached metrics' gauges
  /// (stack.depth, stack.resident_bytes, filter.rate, histogram.bins).
  /// Called by heartbeat/export code, not the access path. No-op when
  /// detached or compiled out.
  void refresh_metrics_gauges() const noexcept;

 private:
  void maybe_degrade();

  KrrProfilerConfig config_;
  SpatialFilter filter_;
  KrrStack stack_;
  DistanceHistogram histogram_;
  std::uint64_t processed_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t degradation_events_ = 0;
  /// The realized configured rate (filter rate before any degradation),
  /// so run_report() reports it even on a zero-access run.
  double configured_rate_ = 1.0;
  /// SHARDS-adj expectation bookkeeping under a dynamically degraded rate:
  /// expected sampled references accumulated over completed rate epochs,
  /// plus the count processed in the current epoch at the current rate.
  /// Equals processed * R exactly when the rate never changes.
  double expected_sampled_base_ = 0.0;
  std::uint64_t processed_at_rate_change_ = 0;
#ifdef KRR_METRICS_ENABLED
  obs::PipelineMetrics* metrics_ = nullptr;
#endif
  double expected_sampled() const noexcept {
    return expected_sampled_base_ +
           static_cast<double>(processed_ - processed_at_rate_change_) *
               filter_.rate();
  }
};

}  // namespace krr
