#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/krr_stack.h"
#include "core/spatial_filter.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {

/// End-to-end configuration for one-pass K-LRU MRC construction.
struct KrrProfilerConfig {
  /// The K-LRU eviction sampling size K being modeled (Redis default 5).
  double k_sample = 5.0;
  /// Apply the K' = K^1.4 correction (§4.2). Disable to ablate.
  bool apply_correction = true;
  UpdateStrategy strategy = UpdateStrategy::kBackward;
  /// Model sampling with replacement (Prop. 1, Redis) or without (Prop. 2).
  SamplingModel sampling_model = SamplingModel::kPlacingBack;
  /// Spatial sampling rate R in (0, 1]; 1.0 disables sampling. The paper's
  /// default online rate is 0.001 with a floor of 8K sampled objects
  /// (use adaptive_sampling_rate to realize the floor).
  double sampling_rate = 1.0;
  /// Byte-granularity MRC over variable object sizes (var-KRR). When off,
  /// every object counts as one unit (uni-KRR).
  bool byte_granularity = false;
  std::uint32_t size_array_base = 2;
  std::uint64_t seed = 1;
  /// Histogram bin width (in scaled distance units); 1 = exact bins.
  std::uint64_t histogram_quantum = 1;
  /// Apply the SHARDS-adj first-bucket correction for the difference
  /// between expected (N*R) and actual sampled reference counts. Only
  /// relevant when sampling_rate < 1.
  bool sampling_adjustment = true;
};

/// One-pass K-LRU miss-ratio-curve profiler: spatial filter -> KRR stack ->
/// rescaled stack-distance histogram -> MRC. This is the library's primary
/// public entry point.
///
///   KrrProfiler profiler({.k_sample = 5});
///   for (const Request& r : trace) profiler.access(r);
///   MissRatioCurve mrc = profiler.mrc();
class KrrProfiler {
 public:
  explicit KrrProfiler(const KrrProfilerConfig& config);

  /// Processes one reference (spatial filtering applied internally).
  void access(const Request& req);

  /// The predicted K-LRU miss ratio curve. Cache sizes are object counts
  /// (uni-KRR) or bytes (var-KRR); with spatial sampling, distances have
  /// been scaled back by 1/R so the curve is in unsampled units, and the
  /// SHARDS-adj correction is applied (see sampling_adjustment).
  MissRatioCurve mrc() const;

  const DistanceHistogram& histogram() const noexcept { return histogram_; }

  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t sampled() const noexcept { return sampled_; }

  /// Distinct sampled objects (the KRR stack depth).
  std::uint64_t stack_depth() const noexcept { return stack_.depth(); }

  /// The effective KRR exponent in use (k_sample or corrected_k(k_sample)).
  double model_k() const noexcept { return stack_.config().k; }

  /// Estimated resident-memory overhead in bytes (§5.6 accounting): stack
  /// array + size array + hash table entries.
  std::uint64_t space_overhead_bytes() const noexcept;

  const KrrProfilerConfig& config() const noexcept { return config_; }

 private:
  KrrProfilerConfig config_;
  SpatialFilter filter_;
  KrrStack stack_;
  DistanceHistogram histogram_;
  std::uint64_t processed_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace krr
