#include "core/spatial_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace krr {

SpatialFilter::SpatialFilter(double rate, std::uint64_t modulus) : modulus_(modulus) {
  if (modulus == 0) throw std::invalid_argument("sampling modulus must be > 0");
  if (!(rate > 0.0) || rate > 1.0) {
    throw std::invalid_argument("sampling rate must be in (0, 1]");
  }
  threshold_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(rate * static_cast<double>(modulus))));
  threshold_ = std::min(threshold_, modulus_);
}

double adaptive_sampling_rate(double base_rate, std::uint64_t distinct_objects,
                              std::uint64_t min_objects) {
  if (distinct_objects == 0) return 1.0;
  const double needed = static_cast<double>(min_objects) /
                        static_cast<double>(distinct_objects);
  return std::min(1.0, std::max(base_rate, needed));
}

}  // namespace krr
