#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/prng.h"

namespace krr {

/// Stack-update strategy: how the per-access set of swap positions is
/// sampled. All three realize the *same* stochastic process — position i in
/// [2, phi-1] is independently a swap with probability 1 - stay(i),
/// positions 1 and phi always swap — and differ only in cost:
///  * kLinear   — Mattson's scan, one Bernoulli draw per position: O(phi)
///                per access ("Basic Stack" in Table 5.3);
///  * kTopDown  — Algorithm 1: recursive interval splitting, expected
///                O(K log^2 M) per access;
///  * kBackward — Algorithm 2: inverse-CDF walk from phi toward the top,
///                expected O(K log M) per access.
enum class UpdateStrategy : std::uint8_t {
  kLinear = 0,
  kTopDown = 1,
  kBackward = 2,
};

std::string to_string(UpdateStrategy strategy);

/// Which K-LRU sampling convention the stack models (Chapter 3):
///  * kPlacingBack — sampling with replacement (Proposition 1, Redis's
///    convention): stay(i) = ((i-1)/i)^K;
///  * kNoPlacingBack — sampling without replacement (Proposition 2, the
///    "few tweaks" the paper mentions): the rank-i resident of a cache of
///    size i is evicted with probability K/i, so stay(i) = 1 - K/i, and
///    every position i <= K always swaps.
/// Both stay functions telescope, so the same three update strategies
/// apply; the derived per-object eviction law reproduces the matching
/// proposition exactly (verified by tests).
enum class SamplingModel : std::uint8_t {
  kPlacingBack = 0,
  kNoPlacingBack = 1,
};

std::string to_string(SamplingModel model);

/// Samples the swap chain for one stack update.
class SwapSampler {
 public:
  /// k is the KRR exponent (may be fractional after the K' correction);
  /// must be >= 1.
  SwapSampler(UpdateStrategy strategy, double k,
              SamplingModel model = SamplingModel::kPlacingBack);

  /// Fills `out` with the ascending swap chain for a reference at stack
  /// distance phi: out.front() == 1 and out.back() == phi for phi >= 2;
  /// for phi == 1 the chain is just {1} (no movement).
  ///
  /// Applying the update means rotating along the chain: the object at
  /// chain[j] moves to chain[j+1], and the referenced object lands at 1.
  void sample(std::uint64_t phi, Xoshiro256ss& rng, std::vector<std::uint64_t>& out) const;

  UpdateStrategy strategy() const noexcept { return strategy_; }
  SamplingModel model() const noexcept { return model_; }
  double k() const noexcept { return k_; }

  /// Probability that position i keeps its resident during one update.
  double stay_probability(std::uint64_t i) const;

  /// Probability that positions a..b (inclusive) all keep their residents
  /// during one update (the telescoped product of stay probabilities).
  /// Exposed for tests and for the top-down recursion.
  double no_swap_probability(std::uint64_t a, std::uint64_t b) const;

  /// Expected number of swap positions for a reference at distance phi
  /// (Corollary 1); used by the overhead model in bench_fig5_4.
  double expected_swaps(std::uint64_t phi) const;

 private:
  void sample_linear(std::uint64_t phi, Xoshiro256ss& rng,
                     std::vector<std::uint64_t>& out) const;
  void sample_top_down(std::uint64_t phi, Xoshiro256ss& rng,
                       std::vector<std::uint64_t>& out) const;
  void sample_backward(std::uint64_t phi, Xoshiro256ss& rng,
                       std::vector<std::uint64_t>& out) const;

  /// Largest swap position below boundary i (both models): the inverse CDF
  /// of P(X <= x) = no_swap_probability(x+1, i-1).
  std::uint64_t previous_swap(std::uint64_t i, double r) const;

  UpdateStrategy strategy_;
  SamplingModel model_;
  double k_;
  double inv_k_;
};

}  // namespace krr
