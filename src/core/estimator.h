#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "obs/heartbeat.h"
#include "trace/request.h"
#include "trace/trace_reader.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {

namespace obs {
struct PipelineMetrics;
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// The model-agnostic gauge values behind the `model.*` metric slice
/// (obs::ModelMetrics). Each estimator family maps its own notions onto
/// these: a stack model's depth is its stack depth, a tree model's its
/// tracked objects, a sketch's its live counters; `samples` is whatever
/// the model actually ingested past its own sampling, and `degradations`
/// counts shed/prune/halving steps.
struct ModelGaugeSnapshot {
  double depth = 0.0;
  double resident_bytes = 0.0;
  double sampling_rate = 1.0;
  double samples = 0.0;
  double degradations = 0.0;
  double histogram_bins = 0.0;
};

/// Typed key=value option bag for estimator construction — the common
/// currency between CLI flags, bench overrides, and the registry factories.
/// Values are stored as strings and converted on access; a malformed
/// numeric/boolean value throws std::invalid_argument (which the CLI maps
/// onto its usage exit code).
class EstimatorOptions {
 public:
  EstimatorOptions() = default;

  /// Parses a comma-separated "key=value,key2=value2,flag" spec (a bare
  /// `flag` is shorthand for `flag=1`). Empty spec parses to an empty bag;
  /// an empty key (",=3") is kInvalidArgument.
  static StatusOr<EstimatorOptions> parse(const std::string& spec);

  void set(const std::string& key, std::string value);
  /// Copies every entry of `other` into this bag (overwriting duplicates).
  void merge(const EstimatorOptions& other);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const noexcept {
    return values_;
  }
  bool empty() const noexcept { return values_.empty(); }

 private:
  std::map<std::string, std::string> values_;
};

/// Option keys every estimator accepts (mapped from the shared CLI flags:
/// --k, --rate, --bytes, --strategy, --no-correction, --seed, --quantum).
/// A model that has no use for a common key silently ignores it — the
/// capability flags say which knobs actually bite. Model-specific keys must
/// be declared in EstimatorInfo::option_keys; anything else is rejected by
/// EstimatorRegistry::create.
const std::set<std::string>& common_estimator_option_keys();

/// What an estimator can do — the registry's capability matrix, surfaced by
/// `krr_cli models` and used by bench/zoo code to pick the right ground
/// truth and skip knobs a model lacks.
struct EstimatorCapabilities {
  /// Targets the K-LRU (random sampling) eviction process; false means the
  /// model predicts exact LRU (or another policy named in `policy`).
  bool models_klru = false;
  /// Byte-granularity curves over variable object sizes (`bytes` option).
  bool byte_granularity = false;
  /// Hash-based spatial sampling (`rate` or threshold-adaptive).
  bool spatial_sampling = false;
  /// Multi-threaded sharded operation (`threads`/`shards` options).
  bool sharded = false;
  /// Telemetry attachment: refresh_metrics_gauges publishes real model.*
  /// gauges (depth, samples, degradations, ... — see ModelGaugeSnapshot)
  /// and passes the registry-wide metrics conformance test. Models of the
  /// KRR family additionally instrument their hot paths when KRR_METRICS
  /// is compiled in.
  bool metrics = false;
  /// O(stack depth) per access: a reference oracle for correctness work,
  /// excluded from the perf zoo/bench sweeps that would take hours on it.
  bool reference_oracle = false;
  /// Honors a `max_stack_bytes` memory budget: space_overhead_bytes() is
  /// meaningful and degrade() can shed state (rate halving, histogram
  /// coarsening, or bounded eviction). A model without this flag rejects
  /// the option at create() time instead of silently growing unbounded.
  bool governed_memory = false;
  /// save_state()/load_state() round-trip a mid-run snapshot exactly, so
  /// the CLI checkpoint/resume flags work with this model.
  bool checkpoint = false;
};

/// Registry metadata for one estimator.
struct EstimatorInfo {
  std::string name;         ///< registry key, e.g. "krr", "shards", "aet"
  std::string policy;       ///< eviction policy modeled, e.g. "K-LRU", "LRU"
  std::string description;  ///< one-liner for `krr_cli models`
  EstimatorCapabilities caps;
  /// Model-specific EstimatorOptions keys beyond the common set.
  std::vector<std::string> option_keys;
};

/// Abstract one-pass miss-ratio-curve estimator: the polymorphic citizen
/// every model in src/core/ and src/baselines/ is adapted to, so the whole
/// pipeline (CLI, bench, zoo, conformance tests) is written once against
/// this interface and a new model is a one-file registration.
///
/// Lifecycle: access() per reference, then finish() exactly once (declares
/// end of input — queue-fed estimators drain and join here), then
/// mrc()/run_report(). An estimator that has processed no references
/// returns the empty curve (which eval()s to 1.0 everywhere).
class MrcEstimator {
 public:
  virtual ~MrcEstimator() = default;

  /// Processes one reference (sampling/filtering applied internally).
  virtual void access(const Request& req) = 0;

  /// Declares end of input. Default is a no-op; pipelined estimators drain
  /// their queues and rethrow worker errors here. Must be called before
  /// mrc()/run_report() results are meaningful.
  virtual void finish() {}

  /// The predicted miss ratio curve. `sizes` is an evaluation-grid hint
  /// (cache sizes in objects, or bytes for byte-granularity models): models
  /// that solve for specific sizes (e.g. AET) evaluate there, stack-based
  /// models ignore it and return their native breakpoints. An empty hint is
  /// always acceptable.
  virtual MissRatioCurve mrc(const std::vector<double>& sizes = {}) const = 0;

  /// References seen by access() so far.
  virtual std::uint64_t processed() const = 0;

  /// End-of-run accounting. The default folds the ingestion report and the
  /// processed count into an otherwise-empty RunReport; estimators with
  /// sampling/degradation machinery override with the real numbers.
  virtual RunReport run_report(const TraceReadReport* ingest = nullptr) const;

  /// Instantaneous progress for heartbeats. The default reports only the
  /// processed count; estimators with stacks/filters fill the other gauges.
  virtual obs::HeartbeatSnapshot snapshot() const;

  /// --- Run-lifecycle governance hooks (capability flag `governed_memory`).

  /// Current data-dependent state footprint in bytes (same accounting the
  /// RunGovernor compares against `max_stack_bytes`). Ungoverned models
  /// report 0, which the governor treats as "always within budget".
  virtual std::uint64_t space_overhead_bytes() const { return 0; }

  /// Sheds one increment of state (one rate halving, one histogram
  /// coarsening step, one bounded eviction batch, ...). Returns false when
  /// the model cannot shrink any further — the governor then reports the
  /// budget as exhausted rather than looping. Default: cannot degrade.
  virtual bool degrade() { return false; }

  /// --- Sharded-merge hooks (used by the generic ShardedEstimator runner,
  /// src/core/sharded_estimator.h). A model that declares the
  /// `spatial_sampling` capability and implements these two can run
  /// sharded: the runner hash-partitions the keyspace across per-shard
  /// instances (each stream a uniform 1/S spatial sample), then folds the
  /// survivors into one instance in ascending shard order.

  /// Folds another instance's accumulated statistics into this one. `other`
  /// is guaranteed to be the same concrete type built from the same
  /// options over a key-disjoint slice of the stream. Default:
  /// kInvalidArgument (model does not support sharded merging).
  virtual Status absorb(const MrcEstimator& other);

  /// Scales accumulated statistical mass by `factor` — the S/(S−F)
  /// survivor extrapolation after F of S shards died in a best-effort run.
  /// MRC ratios must be unchanged. Default: kInvalidArgument.
  virtual Status scale_mass(double factor);

  /// --- Checkpoint hooks (capability flag `checkpoint`).

  /// Serializes the complete mid-run state into `out` such that a fresh
  /// instance built from identical options, after load_state(), continues
  /// the run bit-identically. Default: kInvalidArgument (unsupported).
  virtual Status save_state(std::string* out) const;

  /// Restores state produced by save_state() on an identically configured
  /// instance. Corrupt payloads yield a corrupt/checksum status; calling it
  /// on a model without checkpoint support yields kInvalidArgument.
  virtual Status load_state(const std::string& payload);

  /// Instrumentation hooks (capability flag `metrics`). The base
  /// attach_metrics stores the slice so refresh_metrics_gauges can publish
  /// the model.* gauges; models with hot-path instrumentation (the KRR
  /// family) additionally forward the pointer into their pipelines. Same
  /// lifetime contract as KrrProfiler::attach_metrics.
  virtual void attach_metrics(obs::PipelineMetrics* metrics) noexcept;
  /// Publishes model_gauges() into the attached model.* slice (plus any
  /// family-specific gauges an override adds). No-op while detached.
  virtual void refresh_metrics_gauges() const noexcept;
  /// Publishes end-of-run gauges into the registry (e.g. per-shard state).
  virtual void export_gauges(obs::MetricsRegistry& registry) const;

  /// The model.* gauge values (see ModelGaugeSnapshot). The default derives
  /// them from snapshot() and space_overhead_bytes(); estimators with
  /// richer native accounting (histogram bins, native prune counters)
  /// override with the real numbers.
  virtual ModelGaugeSnapshot model_gauges() const;

  /// Attaches span/event tracing. Default is a no-op; estimators with
  /// internal pipelines (krr_sharded's per-shard lanes) forward the tracer.
  /// Non-owning; the tracer must outlive the estimator.
  virtual void attach_tracer(obs::Tracer* tracer) noexcept;

  /// Registry metadata (set by EstimatorRegistry::create; an estimator
  /// constructed by hand reports a default-constructed info).
  const EstimatorInfo& info() const noexcept { return info_; }
  void set_info(EstimatorInfo info) { info_ = std::move(info); }

 protected:
  /// The slice stored by the base attach_metrics (null while detached).
  obs::PipelineMetrics* pipeline_metrics() const noexcept { return metrics_; }

 private:
  EstimatorInfo info_;
  obs::PipelineMetrics* metrics_ = nullptr;
};

/// String-keyed estimator factory registry. All built-in models register on
/// first use; external code can add more via EstimatorRegistrar (one static
/// object in one translation unit is a complete registration).
class EstimatorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<MrcEstimator>(const EstimatorOptions&)>;

  /// The process-wide registry, with every built-in model registered.
  static EstimatorRegistry& instance();

  /// Registers a model. Throws std::logic_error on a duplicate name —
  /// silent shadowing of an estimator would invalidate comparisons.
  void add(EstimatorInfo info, Factory factory);

  /// Instantiates `name` with `options`. kInvalidArgument when the name is
  /// unknown, an option key is neither common nor declared by the model, or
  /// the factory rejects an option value.
  StatusOr<std::unique_ptr<MrcEstimator>> create(
      const std::string& name, const EstimatorOptions& options = {}) const;

  /// Metadata lookup; nullptr when unknown.
  const EstimatorInfo* find(const std::string& name) const;

  /// Every registered model, sorted by name.
  std::vector<EstimatorInfo> list() const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }

 private:
  EstimatorRegistry() = default;

  std::map<std::string, std::pair<EstimatorInfo, Factory>> entries_;
};

/// Self-registration handle:
///
///   static EstimatorRegistrar my_model_registrar(
///       {.name = "my_model", .policy = "LRU", .description = "..."},
///       [](const EstimatorOptions& o) { return std::make_unique<...>(o); });
struct EstimatorRegistrar {
  EstimatorRegistrar(EstimatorInfo info, EstimatorRegistry::Factory factory);
};

namespace detail {
/// Defined in estimators_builtin.cpp; called once by instance(). Keeping
/// the built-in registrations behind a direct call (rather than static
/// initializers alone) guarantees they survive static-library linking.
void register_builtin_estimators(EstimatorRegistry& registry);
}  // namespace detail

}  // namespace krr
