// Built-in MrcEstimator registrations: every MRC model in src/core/ and
// src/baselines/ adapted to the polymorphic interface. Divergent native
// constructor signatures are normalized here into EstimatorOptions keys;
// the adapters own their wrapped model and add nothing on the access path
// beyond one virtual dispatch.
//
// All registrations run from EstimatorRegistry::instance() via
// detail::register_builtin_estimators, so they survive static-library
// linking (a registrar-only translation unit would be dropped).

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/aet.h"
#include "baselines/counter_stacks.h"
#include "baselines/hotl.h"
#include "baselines/lru_stack.h"
#include "baselines/mimir.h"
#include "baselines/naive_stack.h"
#include "baselines/olken_tree.h"
#include "baselines/priority_stack.h"
#include "baselines/shards.h"
#include "baselines/shards_fixed.h"
#include "baselines/statstack.h"
#include "core/checkpoint.h"
#include "core/estimator.h"
#include "core/profiler.h"
#include "core/sharded_estimator.h"
#include "core/sharded_profiler.h"
#include "core/windowed_profiler.h"

namespace krr {
namespace {

UpdateStrategy parse_strategy(const std::string& name) {
  if (name == "backward") return UpdateStrategy::kBackward;
  if (name == "top_down") return UpdateStrategy::kTopDown;
  if (name == "linear") return UpdateStrategy::kLinear;
  throw std::invalid_argument("unknown strategy: " + name +
                              " (use backward, top_down or linear)");
}

std::uint64_t get_u64(const EstimatorOptions& o, const std::string& key,
                      std::uint64_t def) {
  const std::int64_t v = o.get_int(key, static_cast<std::int64_t>(def));
  if (v < 0) {
    throw std::invalid_argument("estimator option '" + key +
                                "' must be >= 0");
  }
  return static_cast<std::uint64_t>(v);
}

/// The ShardedEstimator runner injects `shard_count` into every per-shard
/// factory call; 1 (the default) must leave the model bit-identical to its
/// unsharded form, so the adapters below simply forward it.
std::uint32_t checked_shard_count(const EstimatorOptions& o) {
  const std::uint64_t n = get_u64(o, "shard_count", 1);
  if (n < 1) throw std::invalid_argument("shard_count must be >= 1");
  return static_cast<std::uint32_t>(n);
}

ShardFailureMode parse_failure_mode(const std::string& mode) {
  if (mode == "strict") return ShardFailureMode::kStrict;
  if (mode == "best_effort") return ShardFailureMode::kBestEffort;
  if (mode == "replay") return ShardFailureMode::kReplay;
  throw std::invalid_argument("unknown failure_mode: " + mode +
                              " (use strict, best_effort, or replay)");
}

/// The shared mapping from option keys onto KrrProfilerConfig — one place,
/// so `krr`, `krr_sharded` and `krr_windowed` agree on every knob.
KrrProfilerConfig krr_config_from(const EstimatorOptions& o) {
  KrrProfilerConfig cfg;
  cfg.k_sample = o.get_double("k", cfg.k_sample);
  cfg.sampling_rate = o.get_double("rate", cfg.sampling_rate);
  cfg.byte_granularity = o.get_bool("bytes", cfg.byte_granularity);
  cfg.apply_correction = o.get_bool("correction", cfg.apply_correction);
  cfg.sampling_adjustment = o.get_bool("adjustment", cfg.sampling_adjustment);
  cfg.strategy = parse_strategy(o.get_string("strategy", "backward"));
  cfg.seed = get_u64(o, "seed", cfg.seed);
  cfg.histogram_quantum = get_u64(o, "quantum", cfg.histogram_quantum);
  cfg.max_stack_bytes = get_u64(o, "max_stack_bytes", cfg.max_stack_bytes);
  return cfg;
}

// ---------------------------------------------------------------------------
// KRR core family
// ---------------------------------------------------------------------------

class KrrEstimator final : public MrcEstimator {
 public:
  explicit KrrEstimator(const EstimatorOptions& o)
      : profiler_(krr_config_from(o)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  RunReport run_report(const TraceReadReport* ingest) const override {
    return profiler_.run_report(ingest);
  }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.sampled();
    s.stack_depth = profiler_.stack_depth();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.sampling_rate = profiler_.current_sampling_rate();
    s.degradation_events = profiler_.degradation_events();
    return s;
  }
  void attach_metrics(obs::PipelineMetrics* metrics) noexcept override {
    MrcEstimator::attach_metrics(metrics);
    profiler_.attach_metrics(metrics);
  }
  void refresh_metrics_gauges() const noexcept override {
    profiler_.refresh_metrics_gauges();
    MrcEstimator::refresh_metrics_gauges();
  }
  ModelGaugeSnapshot model_gauges() const override {
    ModelGaugeSnapshot g = MrcEstimator::model_gauges();
    g.histogram_bins = static_cast<double>(profiler_.histogram().bin_count());
    return g;
  }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override { return profiler_.degrade_step(); }
  Status save_state(std::string* out) const override {
    return profiler_.save_state(out);
  }
  Status load_state(const std::string& payload) override {
    return profiler_.load_state(payload);
  }

 private:
  KrrProfiler profiler_;
};

class ShardedKrrEstimator final : public MrcEstimator {
 public:
  explicit ShardedKrrEstimator(const EstimatorOptions& o)
      : profiler_(sharded_config_from(o)) {}

  void access(const Request& req) override { profiler_.access(req); }
  void finish() override { profiler_.finish(); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  RunReport run_report(const TraceReadReport* ingest) const override {
    return profiler_.run_report(ingest);
  }
  obs::HeartbeatSnapshot snapshot() const override {
    // Mid-run the live gauges are the (possibly slightly stale) values the
    // workers last published; once the pipeline has joined, the aggregate
    // accessors are exact, so the end-of-run summary reports them instead.
    if (!profiler_.finished()) return profiler_.snapshot();
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.sampled();
    s.stack_depth = profiler_.stack_depth();
    const RunReport report = profiler_.run_report();
    s.resident_bytes = report.space_overhead_bytes;
    s.sampling_rate = report.final_sampling_rate;
    s.degradation_events = report.degradation_events;
    return s;
  }
  void attach_metrics(obs::PipelineMetrics* metrics) noexcept override {
    MrcEstimator::attach_metrics(metrics);
    profiler_.attach_metrics(metrics);
  }
  void attach_tracer(obs::Tracer* tracer) noexcept override {
    profiler_.attach_tracer(tracer);
  }
  void export_gauges(obs::MetricsRegistry& registry) const override {
    profiler_.export_shard_gauges(registry);
  }
  // Governance is internal: the budget is split across shards, each of
  // which runs the single-threaded enforcement on its own worker. The
  // external hooks report nothing so the producer-side governor never
  // races the workers.
  std::uint64_t space_overhead_bytes() const override { return 0; }
  bool degrade() override { return false; }

 private:
  static ShardedKrrProfilerConfig sharded_config_from(const EstimatorOptions& o) {
    ShardedKrrProfilerConfig cfg;
    cfg.base = krr_config_from(o);
    const std::uint64_t shards = get_u64(o, "shards", 1);
    const std::uint64_t threads = get_u64(o, "threads", 1);
    if (shards < 1) throw std::invalid_argument("shards must be >= 1");
    if (threads < 1) throw std::invalid_argument("threads must be >= 1");
    cfg.shards = static_cast<std::uint32_t>(shards);
    cfg.threads = static_cast<unsigned>(threads);
    cfg.queue_capacity = static_cast<std::size_t>(
        get_u64(o, "queue_capacity", cfg.queue_capacity));
    if (cfg.base.max_stack_bytes > 0) {
      cfg.base.max_stack_bytes =
          std::max<std::uint64_t>(1, cfg.base.max_stack_bytes / cfg.shards);
    }
    cfg.failure_mode = parse_failure_mode(o.get_string("failure_mode", "strict"));
    cfg.journal_records = static_cast<std::size_t>(
        get_u64(o, "journal_records", cfg.journal_records));
    cfg.snapshot_stride = get_u64(o, "snapshot_stride", cfg.snapshot_stride);
    cfg.retry.seed = cfg.base.seed;
    return cfg;
  }

  ShardedKrrProfiler profiler_;
};

class WindowedKrrEstimator final : public MrcEstimator {
 public:
  explicit WindowedKrrEstimator(const EstimatorOptions& o)
      : profiler_(windowed_config_from(o)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    if (profiler_.processed() == 0) return {};
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override { return profiler_.degrade_step(); }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.processed();
    s.stack_depth = profiler_.active_window_fill();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.degradation_events = profiler_.degradation_events();
    return s;
  }

 private:
  static WindowedKrrConfig windowed_config_from(const EstimatorOptions& o) {
    WindowedKrrConfig cfg;
    cfg.profiler = krr_config_from(o);
    cfg.window = get_u64(o, "window", cfg.window);
    if (cfg.window == 0) throw std::invalid_argument("window must be >= 1");
    // Two staggered windows are live at once; give each half the budget so
    // the pair honours the configured ceiling.
    if (cfg.profiler.max_stack_bytes > 0) {
      cfg.profiler.max_stack_bytes =
          std::max<std::uint64_t>(1, cfg.profiler.max_stack_bytes / 2);
    }
    return cfg;
  }

  WindowedKrrProfiler profiler_;
};

// ---------------------------------------------------------------------------
// Exact stack baselines (reference oracles and O(log M) profilers)
// ---------------------------------------------------------------------------

class LruStackEstimator final : public MrcEstimator {
 public:
  explicit LruStackEstimator(const EstimatorOptions& o)
      : profiler_(o.get_bool("bytes", false), get_u64(o, "quantum", 1)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.processed();
    s.stack_depth = profiler_.distinct_objects();
    return s;
  }

 private:
  LruStackProfiler profiler_;
};

class OlkenTreeEstimator final : public MrcEstimator {
 public:
  explicit OlkenTreeEstimator(const EstimatorOptions& o)
      : profiler_(o.get_bool("bytes", false), get_u64(o, "quantum", 1),
                  get_u64(o, "seed", 1)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override {
    // Mattson bounded eviction: drop the coldest eighth of the tracked
    // set; the curve stays exact below the retained depth.
    const std::size_t tracked = profiler_.tracked_objects();
    if (tracked <= 1) return false;
    if (profiler_.evict_oldest(std::max<std::size_t>(1, tracked / 8)) == 0) {
      return false;
    }
    ++degradations_;
    return true;
  }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.processed();
    s.stack_depth = profiler_.tracked_objects();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.degradation_events = degradations_;
    return s;
  }

 private:
  OlkenTreeProfiler profiler_;
  std::uint64_t degradations_ = 0;
};

class NaiveStackEstimator final : public MrcEstimator {
 public:
  explicit NaiveStackEstimator(const EstimatorOptions& o)
      : stack_(make_stack(o)) {}

  void access(const Request& req) override {
    stack_.access(req);
    ++processed_;
  }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return stack_.mrc();
  }
  std::uint64_t processed() const override { return processed_; }

 private:
  static GenericMattsonStack make_stack(const EstimatorOptions& o) {
    const std::string variant = o.get_string("variant", "krr");
    const std::uint64_t seed = get_u64(o, "seed", 1);
    if (variant == "krr") {
      return GenericMattsonStack::krr(o.get_double("k", 5.0), seed);
    }
    if (variant == "lru") return GenericMattsonStack::lru(seed);
    if (variant == "rr") return GenericMattsonStack::rr(seed);
    throw std::invalid_argument("unknown variant: " + variant +
                                " (use krr, lru or rr)");
  }

 public:
  std::uint64_t space_overhead_bytes() const override {
    return stack_.space_overhead_bytes();
  }
  bool degrade() override {
    const std::size_t depth = stack_.depth();
    if (depth <= 1) return false;
    if (stack_.evict_bottom(std::max<std::size_t>(1, depth / 8)) == 0) {
      return false;
    }
    ++degradations_;
    return true;
  }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = processed_;
    s.sampled = processed_;
    s.stack_depth = stack_.depth();
    s.resident_bytes = stack_.space_overhead_bytes();
    s.degradation_events = degradations_;
    return s;
  }

 private:
  GenericMattsonStack stack_;
  std::uint64_t processed_ = 0;
  std::uint64_t degradations_ = 0;
};

class PriorityStackEstimator final : public MrcEstimator {
 public:
  explicit PriorityStackEstimator(const EstimatorOptions& o)
      : stack_(parse_policy(o.get_string("policy", "lru"))) {}

  void access(const Request& req) override {
    stack_.access(req);
    ++processed_;
  }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return stack_.mrc();
  }
  std::uint64_t processed() const override { return processed_; }

 private:
  static PriorityPolicy parse_policy(const std::string& name) {
    if (name == "lru") return PriorityPolicy::kLru;
    if (name == "mru") return PriorityPolicy::kMru;
    if (name == "lfu") return PriorityPolicy::kLfu;
    if (name == "opt") {
      throw std::invalid_argument(
          "policy 'opt' needs the offline next-use pass and cannot stream; "
          "use the PriorityMattsonStack API directly");
    }
    throw std::invalid_argument("unknown policy: " + name +
                                " (use lru, mru or lfu)");
  }

 public:
  std::uint64_t space_overhead_bytes() const override {
    return stack_.space_overhead_bytes();
  }
  bool degrade() override {
    const std::size_t depth = stack_.depth();
    if (depth <= 1) return false;
    if (stack_.evict_bottom(std::max<std::size_t>(1, depth / 8)) == 0) {
      return false;
    }
    ++degradations_;
    return true;
  }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = processed_;
    s.sampled = processed_;
    s.stack_depth = stack_.depth();
    s.resident_bytes = stack_.space_overhead_bytes();
    s.degradation_events = degradations_;
    return s;
  }

 private:
  PriorityMattsonStack stack_;
  std::uint64_t processed_ = 0;
  std::uint64_t degradations_ = 0;
};

// ---------------------------------------------------------------------------
// Sampling and sketch baselines
// ---------------------------------------------------------------------------

class ShardsEstimator final : public MrcEstimator {
 public:
  explicit ShardsEstimator(const EstimatorOptions& o)
      : profiler_(checked_rate(o.get_double("rate", 0.1)),
                  o.get_bool("adjustment", true), o.get_bool("bytes", false),
                  get_u64(o, "quantum", 1), checked_shard_count(o)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.sampled();
    s.stack_depth = profiler_.tracked_objects();
    s.sampling_rate = profiler_.filter().rate();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.degradation_events = profiler_.degradation_events();
    return s;
  }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override { return profiler_.halve_rate(); }
  Status absorb(const MrcEstimator& other) override {
    const auto* peer = dynamic_cast<const ShardsEstimator*>(&other);
    if (peer == nullptr) {
      return invalid_argument_error(
          "shards: absorb() requires another shards instance");
    }
    profiler_.absorb(peer->profiler_);
    return Status::ok();
  }
  Status scale_mass(double factor) override {
    profiler_.scale_mass(factor);
    return Status::ok();
  }
  Status save_state(std::string* out) const override {
    return profiler_.save_state(out);
  }
  Status load_state(const std::string& payload) override {
    return profiler_.load_state(payload);
  }

 private:
  static double checked_rate(double rate) {
    if (!(rate > 0.0) || rate > 1.0) {
      throw std::invalid_argument("rate must be in (0, 1]");
    }
    return rate;
  }

  ShardsProfiler profiler_;
};

class ShardsFixedEstimator final : public MrcEstimator {
 public:
  explicit ShardsFixedEstimator(const EstimatorOptions& o)
      : profiler_(split_max(checked_max(get_u64(o, "max_objects", 4096)),
                            checked_shard_count(o)),
                  get_u64(o, "modulus", 1ULL << 24), get_u64(o, "quantum", 1),
                  checked_shard_count(o)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.sampled();
    s.stack_depth = profiler_.tracked_objects();
    s.sampling_rate = profiler_.current_rate();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.degradation_events = profiler_.degradation_events();
    return s;
  }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override { return profiler_.shrink_capacity(); }
  Status absorb(const MrcEstimator& other) override {
    const auto* peer = dynamic_cast<const ShardsFixedEstimator*>(&other);
    if (peer == nullptr) {
      return invalid_argument_error(
          "shards_fixed: absorb() requires another shards_fixed instance");
    }
    profiler_.absorb(peer->profiler_);
    return Status::ok();
  }
  Status scale_mass(double factor) override {
    profiler_.scale_mass(factor);
    return Status::ok();
  }
  Status save_state(std::string* out) const override {
    return profiler_.save_state(out);
  }
  Status load_state(const std::string& payload) override {
    return profiler_.load_state(payload);
  }

 private:
  static std::size_t checked_max(std::uint64_t max_objects) {
    if (max_objects == 0) {
      throw std::invalid_argument("max_objects must be >= 1");
    }
    return static_cast<std::size_t>(max_objects);
  }

  /// A sharded run splits the global tracked-object budget evenly: S
  /// per-shard profilers at max_objects/S track the same global total the
  /// serial profiler would, so memory and accuracy stay comparable.
  static std::size_t split_max(std::size_t max_objects, std::uint32_t shards) {
    return std::max<std::size_t>(1, max_objects / shards);
  }

  ShardsFixedSizeProfiler profiler_;
};

class CounterStacksEstimator final : public MrcEstimator {
 public:
  explicit CounterStacksEstimator(const EstimatorOptions& o)
      : profiler_(get_u64(o, "interval", 1000),
                  o.get_double("prune_delta", 0.02),
                  static_cast<std::uint32_t>(get_u64(o, "precision", 12))) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    if (profiler_.processed() == 0) return {};
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override { return profiler_.degrade(); }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.processed();
    s.stack_depth = profiler_.live_counters();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.degradation_events = profiler_.degradation_events();
    return s;
  }

 private:
  CounterStacksProfiler profiler_;
};

// ---------------------------------------------------------------------------
// Reuse-time model baselines
// ---------------------------------------------------------------------------

/// Shared progress/gauge mapping for the reuse-time family (AET, StatStack,
/// HOTL): the collector's tracked set is the "stack" and its spatial
/// threshold the realized sampling rate.
template <typename Profiler>
obs::HeartbeatSnapshot reuse_time_snapshot(const Profiler& profiler,
                                           std::uint64_t degradations) {
  obs::HeartbeatSnapshot s;
  s.records = profiler.processed();
  s.sampled = profiler.distinct_objects();
  s.stack_depth = profiler.distinct_objects();
  s.resident_bytes = profiler.space_overhead_bytes();
  s.sampling_rate = profiler.sampling_rate();
  s.degradation_events = degradations;
  return s;
}

/// Shared checkpoint codec for the reuse-time adapters: the adapter's own
/// degradation counter (kSectionAdapter) plus the profiler's collector
/// bytes (kSectionCollector).
template <typename Profiler>
Status save_reuse_time_state(const Profiler& profiler,
                             std::uint64_t degradations, std::string* out) {
  if (out == nullptr) return invalid_argument_error("save_state: null output");
  out->clear();
  ckpt::StateWriter writer(*out);
  std::string adapter;
  ckpt::append_u64(adapter, degradations);
  writer.add_section(ckpt::kSectionAdapter, adapter);
  std::string collector;
  profiler.save_state(collector);
  writer.add_section(ckpt::kSectionCollector, collector);
  return Status::ok();
}

template <typename Profiler>
Status load_reuse_time_state(Profiler& profiler, std::uint64_t* degradations,
                             const std::string& payload) {
  auto parsed = ckpt::StateReader::parse(payload);
  if (!parsed.is_ok()) return parsed.status();
  const ckpt::StateReader& sections = parsed.value();
  const std::string* adapter = sections.find(ckpt::kSectionAdapter);
  const std::string* collector = sections.find(ckpt::kSectionCollector);
  if (adapter == nullptr || collector == nullptr) {
    return bad_record_error(
        "reuse-time snapshot is missing a required section");
  }
  ckpt::ByteReader adapter_reader(*adapter);
  std::uint64_t restored_degradations = 0;
  if (!adapter_reader.read_u64(&restored_degradations) ||
      !adapter_reader.exhausted()) {
    return bad_record_error("reuse-time snapshot adapter section is corrupt");
  }
  ckpt::ByteReader collector_reader(*collector);
  if (!profiler.load_state(collector_reader) || !collector_reader.exhausted()) {
    return bad_record_error(
        "reuse-time snapshot collector section is corrupt");
  }
  *degradations = restored_degradations;
  return Status::ok();
}

class AetEstimator final : public MrcEstimator {
 public:
  explicit AetEstimator(const EstimatorOptions& o)
      : points_(get_u64(o, "points", 64)),
        profiler_(static_cast<std::uint32_t>(get_u64(o, "sub_buckets", 256)),
                  checked_shard_count(o)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>& sizes) const override {
    if (profiler_.processed() == 0) return {};
    if (sizes.empty()) return profiler_.mrc(static_cast<std::size_t>(points_));
    return profiler_.mrc(sizes);
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override {
    // Down-sample the tracked set first (the dominant cost); once the
    // filter bottoms out, coarsen the reuse-time histogram.
    if (!profiler_.halve_sample() && !profiler_.coarsen_histogram()) {
      return false;
    }
    ++degradations_;
    return true;
  }
  obs::HeartbeatSnapshot snapshot() const override {
    return reuse_time_snapshot(profiler_, degradations_);
  }
  ModelGaugeSnapshot model_gauges() const override {
    ModelGaugeSnapshot g = MrcEstimator::model_gauges();
    g.histogram_bins = static_cast<double>(profiler_.histogram_bins());
    return g;
  }
  Status absorb(const MrcEstimator& other) override {
    const auto* peer = dynamic_cast<const AetEstimator*>(&other);
    if (peer == nullptr) {
      return invalid_argument_error(
          "aet: absorb() requires another aet instance");
    }
    profiler_.absorb(peer->profiler_);
    degradations_ += peer->degradations_;
    return Status::ok();
  }
  Status scale_mass(double factor) override {
    profiler_.scale_mass(factor);
    return Status::ok();
  }
  Status save_state(std::string* out) const override {
    return save_reuse_time_state(profiler_, degradations_, out);
  }
  Status load_state(const std::string& payload) override {
    return load_reuse_time_state(profiler_, &degradations_, payload);
  }

 private:
  std::uint64_t points_;
  AetProfiler profiler_;
  std::uint64_t degradations_ = 0;
};

class StatStackEstimator final : public MrcEstimator {
 public:
  explicit StatStackEstimator(const EstimatorOptions& o)
      : profiler_(static_cast<std::uint32_t>(get_u64(o, "sub_buckets", 256))) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    if (profiler_.processed() == 0) return {};
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override {
    if (!profiler_.halve_sample() && !profiler_.coarsen_histogram()) {
      return false;
    }
    ++degradations_;
    return true;
  }
  obs::HeartbeatSnapshot snapshot() const override {
    return reuse_time_snapshot(profiler_, degradations_);
  }
  ModelGaugeSnapshot model_gauges() const override {
    ModelGaugeSnapshot g = MrcEstimator::model_gauges();
    g.histogram_bins = static_cast<double>(profiler_.histogram_bins());
    return g;
  }
  Status save_state(std::string* out) const override {
    return save_reuse_time_state(profiler_, degradations_, out);
  }
  Status load_state(const std::string& payload) override {
    return load_reuse_time_state(profiler_, &degradations_, payload);
  }

 private:
  StatStackProfiler profiler_;
  std::uint64_t degradations_ = 0;
};

class HotlEstimator final : public MrcEstimator {
 public:
  explicit HotlEstimator(const EstimatorOptions& o)
      : points_(get_u64(o, "points", 128)),
        profiler_(static_cast<std::uint32_t>(get_u64(o, "sub_buckets", 256))) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    if (profiler_.processed() == 0) return {};
    return profiler_.mrc(static_cast<std::size_t>(points_));
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override {
    if (!profiler_.halve_sample() && !profiler_.coarsen_histogram()) {
      return false;
    }
    ++degradations_;
    return true;
  }
  obs::HeartbeatSnapshot snapshot() const override {
    return reuse_time_snapshot(profiler_, degradations_);
  }
  ModelGaugeSnapshot model_gauges() const override {
    ModelGaugeSnapshot g = MrcEstimator::model_gauges();
    g.histogram_bins = static_cast<double>(profiler_.histogram_bins());
    return g;
  }
  Status save_state(std::string* out) const override {
    return save_reuse_time_state(profiler_, degradations_, out);
  }
  Status load_state(const std::string& payload) override {
    return load_reuse_time_state(profiler_, &degradations_, payload);
  }

 private:
  std::uint64_t points_;
  HotlProfiler profiler_;
  std::uint64_t degradations_ = 0;
};

class MimirEstimator final : public MrcEstimator {
 public:
  explicit MimirEstimator(const EstimatorOptions& o)
      : profiler_(static_cast<std::uint32_t>(get_u64(o, "buckets", 128)),
                  get_u64(o, "quantum", 1)) {}

  void access(const Request& req) override { profiler_.access(req); }
  MissRatioCurve mrc(const std::vector<double>&) const override {
    return profiler_.mrc();
  }
  std::uint64_t processed() const override { return profiler_.processed(); }
  std::uint64_t space_overhead_bytes() const override {
    return profiler_.space_overhead_bytes();
  }
  bool degrade() override { return profiler_.evict_oldest_bucket(); }
  obs::HeartbeatSnapshot snapshot() const override {
    obs::HeartbeatSnapshot s;
    s.records = profiler_.processed();
    s.sampled = profiler_.processed();
    s.stack_depth = profiler_.tracked_objects();
    s.resident_bytes = profiler_.space_overhead_bytes();
    s.degradation_events = profiler_.degradation_events();
    return s;
  }
  ModelGaugeSnapshot model_gauges() const override {
    ModelGaugeSnapshot g = MrcEstimator::model_gauges();
    g.histogram_bins = static_cast<double>(profiler_.bucket_count());
    return g;
  }

 private:
  MimirProfiler profiler_;
};

// ---------------------------------------------------------------------------
// Generic sharded wrappers: registry models behind the ShardFanout pipeline
// ---------------------------------------------------------------------------

ShardedEstimator::Config sharded_wrapper_config(const std::string& base_model,
                                                const EstimatorOptions& o) {
  ShardedEstimator::Config cfg;
  cfg.base_model = base_model;
  cfg.base_options = o;  // fan-out keys are stripped by the runner
  const std::uint64_t shards = get_u64(o, "shards", 1);
  const std::uint64_t threads = get_u64(o, "threads", 1);
  if (shards < 1) throw std::invalid_argument("shards must be >= 1");
  if (threads < 1) throw std::invalid_argument("threads must be >= 1");
  cfg.shards = static_cast<std::uint32_t>(shards);
  cfg.threads = static_cast<unsigned>(threads);
  cfg.queue_capacity = static_cast<std::size_t>(
      get_u64(o, "queue_capacity", cfg.queue_capacity));
  cfg.failure_mode = parse_failure_mode(o.get_string("failure_mode", "strict"));
  cfg.max_stack_bytes = get_u64(o, "max_stack_bytes", 0);
  cfg.journal_records = static_cast<std::size_t>(
      get_u64(o, "journal_records", cfg.journal_records));
  cfg.snapshot_stride = get_u64(o, "snapshot_stride", cfg.snapshot_stride);
  cfg.retry.seed = get_u64(o, "seed", 0);
  return cfg;
}

EstimatorRegistry::Factory make_sharded_factory(std::string base_model) {
  return [base_model =
              std::move(base_model)](const EstimatorOptions& o)
             -> std::unique_ptr<MrcEstimator> {
    return std::make_unique<ShardedEstimator>(
        sharded_wrapper_config(base_model, o));
  };
}

template <typename T>
EstimatorRegistry::Factory make_factory() {
  return [](const EstimatorOptions& o) -> std::unique_ptr<MrcEstimator> {
    return std::make_unique<T>(o);
  };
}

}  // namespace

namespace detail {

void register_builtin_estimators(EstimatorRegistry& registry) {
  registry.add(
      {.name = "krr",
       .policy = "K-LRU",
       .description = "one-pass KRR stack model of random sampling-based LRU "
                      "(the paper's contribution)",
       .caps = {.models_klru = true,
                .byte_granularity = true,
                .spatial_sampling = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"max_stack_bytes"}},
      make_factory<KrrEstimator>());
  registry.add(
      {.name = "krr_sharded",
       .policy = "K-LRU",
       .description = "hash-sharded multi-threaded KRR pipeline (merged "
                      "per-shard histograms)",
       .caps = {.models_klru = true,
                .byte_granularity = true,
                .spatial_sampling = true,
                .sharded = true,
                .metrics = true,
                .governed_memory = true},
       .option_keys = {"max_stack_bytes", "threads", "shards",
                       "queue_capacity", "failure_mode", "journal_records",
                       "snapshot_stride"}},
      make_factory<ShardedKrrEstimator>());
  registry.add(
      {.name = "krr_windowed",
       .policy = "K-LRU",
       .description = "sliding-window online KRR with bounded staleness "
                      "(two staggered windows)",
       .caps = {.models_klru = true,
                .byte_granularity = true,
                .spatial_sampling = true,
                .metrics = true,
                .governed_memory = true},
       .option_keys = {"max_stack_bytes", "window"}},
      make_factory<WindowedKrrEstimator>());
  registry.add(
      {.name = "naive_stack",
       .policy = "K-LRU/LRU/RR",
       .description = "Mattson's generic stack with injected stay "
                      "probabilities (variant=krr|lru|rr), the O(M) oracle",
       .caps = {.models_klru = true,
                .metrics = true,
                .reference_oracle = true,
                .governed_memory = true},
       .option_keys = {"variant", "max_stack_bytes"}},
      make_factory<NaiveStackEstimator>());
  registry.add(
      {.name = "lru_stack",
       .policy = "LRU",
       .description = "exact LRU stack distances in O(log M) "
                      "(Fenwick-over-timestamps formulation)",
       .caps = {.byte_granularity = true, .metrics = true},
       .option_keys = {}},
      make_factory<LruStackEstimator>());
  registry.add(
      {.name = "olken_tree",
       .policy = "LRU",
       .description = "exact LRU stack distances via a size-augmented treap "
                      "(Olken 1981)",
       .caps = {.byte_granularity = true, .metrics = true, .governed_memory = true},
       .option_keys = {"max_stack_bytes"}},
      make_factory<OlkenTreeEstimator>());
  registry.add(
      {.name = "priority_stack",
       .policy = "LRU/MRU/LFU",
       .description = "deterministic priority Mattson stack "
                      "(policy=lru|mru|lfu), an O(M) reference oracle",
       .caps = {.metrics = true,
                .reference_oracle = true,
                .governed_memory = true},
       .option_keys = {"policy", "max_stack_bytes"}},
      make_factory<PriorityStackEstimator>());
  registry.add(
      {.name = "shards",
       .policy = "LRU",
       .description = "SHARDS fixed-rate spatial sampling over an exact LRU "
                      "stack (FAST '15)",
       .caps = {.byte_granularity = true,
                .spatial_sampling = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"max_stack_bytes", "shard_count"}},
      make_factory<ShardsEstimator>());
  registry.add(
      {.name = "shards_sharded",
       .policy = "LRU",
       .description = "hash-sharded multi-threaded SHARDS (per-shard "
                      "profilers merged by the generic runner)",
       .caps = {.byte_granularity = true,
                .spatial_sampling = true,
                .sharded = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"max_stack_bytes", "threads", "shards",
                       "queue_capacity", "failure_mode", "journal_records",
                       "snapshot_stride"}},
      make_sharded_factory("shards"));
  registry.add(
      {.name = "shards_fixed",
       .policy = "LRU",
       .description = "fixed-size SHARDS_smax: bounded memory, "
                      "threshold-adaptive sampling rate",
       .caps = {.spatial_sampling = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"max_objects", "modulus", "max_stack_bytes",
                       "shard_count"}},
      make_factory<ShardsFixedEstimator>());
  registry.add(
      {.name = "shards_fixed_sharded",
       .policy = "LRU",
       .description = "hash-sharded multi-threaded SHARDS_smax (tracked-"
                      "object budget split across shards)",
       .caps = {.spatial_sampling = true,
                .sharded = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"max_objects", "modulus", "max_stack_bytes", "threads",
                       "shards", "queue_capacity", "failure_mode", "journal_records",
                       "snapshot_stride"}},
      make_sharded_factory("shards_fixed"));
  registry.add(
      {.name = "aet",
       .policy = "LRU",
       .description = "AET kinetic reuse-time model of exact LRU (ATC '16)",
       .caps = {.spatial_sampling = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"sub_buckets", "points", "max_stack_bytes",
                       "shard_count"}},
      make_factory<AetEstimator>());
  registry.add(
      {.name = "aet_sharded",
       .policy = "LRU",
       .description = "hash-sharded multi-threaded AET (reuse-time "
                      "histograms merged at shard-scaled resolution)",
       .caps = {.spatial_sampling = true,
                .sharded = true,
                .metrics = true,
                .governed_memory = true,
                .checkpoint = true},
       .option_keys = {"sub_buckets", "points", "max_stack_bytes", "threads",
                       "shards", "queue_capacity", "failure_mode", "journal_records",
                       "snapshot_stride"}},
      make_sharded_factory("aet"));
  registry.add(
      {.name = "counter_stacks",
       .policy = "LRU",
       .description = "Counter Stacks: HyperLogLog counter stack with "
                      "pruning (OSDI '14)",
       .caps = {.metrics = true, .governed_memory = true},
       .option_keys = {"interval", "prune_delta", "precision",
                       "max_stack_bytes"}},
      make_factory<CounterStacksEstimator>());
  registry.add(
      {.name = "statstack",
       .policy = "LRU",
       .description = "StatStack expected-stack-distance model from reuse "
                      "times (ISPASS '10)",
       .caps = {.metrics = true, .governed_memory = true, .checkpoint = true},
       .option_keys = {"sub_buckets", "max_stack_bytes"}},
      make_factory<StatStackEstimator>());
  registry.add(
      {.name = "mimir",
       .policy = "LRU",
       .description = "MIMIR bucketed ghost list with ROUNDER aging "
                      "(SoCC '14)",
       .caps = {.metrics = true, .governed_memory = true},
       .option_keys = {"buckets", "max_stack_bytes"}},
      make_factory<MimirEstimator>());
  registry.add(
      {.name = "hotl",
       .policy = "LRU",
       .description = "HOTL footprint theory of locality (ASPLOS '13)",
       .caps = {.metrics = true, .governed_memory = true, .checkpoint = true},
       .option_keys = {"sub_buckets", "points", "max_stack_bytes"}},
      make_factory<HotlEstimator>());
}

}  // namespace detail
}  // namespace krr
