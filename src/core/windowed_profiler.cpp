#include "core/windowed_profiler.h"

#include <stdexcept>
#include <utility>

namespace krr {

WindowedKrrProfiler::WindowedKrrProfiler(const WindowedKrrConfig& config)
    : config_(config) {
  if (config_.window < 2) throw std::invalid_argument("window must be >= 2");
  active_ = make_profiler();
}

std::unique_ptr<KrrProfiler> WindowedKrrProfiler::make_profiler() {
  KrrProfilerConfig pc = config_.profiler;
  pc.seed = config_.profiler.seed + (++seed_counter_);
  return std::make_unique<KrrProfiler>(pc);
}

void WindowedKrrProfiler::access(const Request& req) {
  ++processed_;
  active_->access(req);
  ++active_fill_;
  if (!warming_started_ && active_fill_ >= config_.window / 2) {
    warming_ = make_profiler();
    warming_fill_ = 0;
    warming_started_ = true;
  }
  if (warming_started_) {
    warming_->access(req);
    ++warming_fill_;
  }
  if (active_fill_ >= config_.window) {
    // Retire the old window; the half-filled one takes over.
    retired_degradations_ += active_->degradation_events();
    active_ = std::move(warming_);
    active_fill_ = warming_fill_;
    warming_ = make_profiler();
    warming_fill_ = 0;
    ++retired_;
  }
}

MissRatioCurve WindowedKrrProfiler::mrc() const { return active_->mrc(); }

std::uint64_t WindowedKrrProfiler::space_overhead_bytes() const noexcept {
  std::uint64_t bytes = active_->space_overhead_bytes();
  if (warming_) bytes += warming_->space_overhead_bytes();
  return bytes;
}

bool WindowedKrrProfiler::degrade_step() {
  bool any = active_->degrade_step();
  if (warming_) any = warming_->degrade_step() || any;
  return any;
}

std::uint64_t WindowedKrrProfiler::degradation_events() const noexcept {
  std::uint64_t events = retired_degradations_ + active_->degradation_events();
  if (warming_) events += warming_->degradation_events();
  return events;
}

}  // namespace krr
