#include "core/sharded_profiler.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/hashing.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace krr {

namespace {

/// Records a worker pulls from one shard queue before moving to its next
/// owned shard (and before republishing that shard's live gauges). Large
/// enough to amortize the gauge stores, small enough that a worker owning
/// several shards does not starve any of them.
constexpr int kDrainBatch = 256;

/// Drain batches between traced drain spans. A span costs two clock reads,
/// so with 256-record batches a traced worker reads the clock once per
/// ~4096 records — the same stride Heartbeat::tick gates at.
constexpr std::uint64_t kDrainTraceStride = 16;

}  // namespace

struct ShardedKrrProfiler::Shard {
  Shard(const KrrProfilerConfig& cfg, std::size_t queue_capacity)
      : profiler(cfg), queue(queue_capacity) {}

  KrrProfiler profiler;
  SpscQueue<Request> queue;

  // Best-effort failure mode: set (by the owning worker, or the producer
  // in inline mode) when this shard's pipeline threw. A dead shard's queue
  // is drained to the bit bucket and its state is excluded from merges.
  std::atomic<bool> dead{false};

  // Worker-owned drain-batch counter gating traced spans (no atomics: one
  // consumer per shard).
  std::uint64_t drain_batches = 0;

  // Live gauges the owning worker publishes once per drain batch so the
  // producer thread can heartbeat without touching profiler internals.
  std::atomic<std::uint64_t> live_sampled{0};
  std::atomic<std::uint64_t> live_depth{0};
  std::atomic<std::uint64_t> live_resident{0};
  std::atomic<std::uint64_t> live_degradations{0};
  std::atomic<double> live_rate{1.0};

  void publish_live() noexcept {
    live_sampled.store(profiler.sampled(), std::memory_order_relaxed);
    live_depth.store(profiler.stack_depth(), std::memory_order_relaxed);
    live_resident.store(profiler.space_overhead_bytes(),
                        std::memory_order_relaxed);
    live_degradations.store(profiler.degradation_events(),
                            std::memory_order_relaxed);
    live_rate.store(profiler.current_sampling_rate(),
                    std::memory_order_relaxed);
  }
};

ShardedKrrProfiler::ShardedKrrProfiler(const ShardedKrrProfilerConfig& config)
    : config_(config) {
  const std::uint32_t shard_n = config.shards == 0 ? 1 : config.shards;
  shards_.reserve(shard_n);
  for (std::uint32_t s = 0; s < shard_n; ++s) {
    KrrProfilerConfig cfg = config.base;
    cfg.shard_count = shard_n;
    cfg.seed = config.base.seed + s;
    if (cfg.max_stack_bytes != 0) {
      // Split the global ceiling evenly; the floor of 1 keeps degradation
      // armed even for absurd shard counts.
      cfg.max_stack_bytes =
          std::max<std::uint64_t>(cfg.max_stack_bytes / shard_n, 1);
    }
    shards_.push_back(std::make_unique<Shard>(cfg, config.queue_capacity));
    shards_.back()->publish_live();
  }
  if (config.threads > 1) {
    worker_count_ = std::min<unsigned>(config.threads, shard_n);
    pool_ = std::make_unique<ThreadPool>(worker_count_);
    for (unsigned t = 0; t < worker_count_; ++t) {
      pool_->submit([this, t] { drain_loop(t); });
    }
  }
}

ShardedKrrProfiler::~ShardedKrrProfiler() {
  done_.store(true, std::memory_order_release);
  // ThreadPool's destructor joins after the drain tasks exit; worker
  // exceptions that finish() never observed die with the pool.
  pool_.reset();
}

std::uint32_t ShardedKrrProfiler::shard_of(std::uint64_t key) const noexcept {
  // Top hash bits: disjoint from the low bits the SpatialFilter thresholds
  // (modulus 2^24), so shard identity and sample membership are
  // independent uniform functions of the key.
  return static_cast<std::uint32_t>(hash64(key) >> 32) %
         static_cast<std::uint32_t>(shards_.size());
}

void ShardedKrrProfiler::access(const Request& req) {
  ++processed_;
  const std::uint32_t index = shard_of(req.key);
  Shard& shard = *shards_[index];
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) {
    metrics_->sharded.enqueued->inc();
    if ((processed_ & 1023u) == 0) {
      metrics_->sharded.queue_depth->record(shard.queue.size_approx());
    }
  }
#endif
  if (shard.dead.load(std::memory_order_acquire)) {
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (worker_count_ == 0) {
    if (config_.failure_mode == ShardFailureMode::kBestEffort) {
      try {
        if (config_.before_access_hook) config_.before_access_hook(index, req);
        shard.profiler.access(req);
      } catch (...) {
        shard.dead.store(true, std::memory_order_release);
        shards_failed_.fetch_add(1, std::memory_order_relaxed);
        dropped_records_.fetch_add(1, std::memory_order_relaxed);
        if (tracer_ != nullptr) {
          tracer_->instant("sharded.shard_failed", "sharded", index + 1,
                           {{"shard", static_cast<double>(index)}});
        }
      }
      return;
    }
    if (config_.before_access_hook) config_.before_access_hook(index, req);
    shard.profiler.access(req);
    return;
  }
  if (shard.queue.try_push(req)) return;
  // Backpressure: the shard's worker is behind. Yield-spin rather than
  // block on a condvar — stalls are transient (a worker mid-batch) and the
  // producer is the only thread that can relieve other shards.
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) metrics_->sharded.producer_stalls->inc();
#endif
  const std::uint64_t stall_start_ns =
      tracer_ != nullptr ? tracer_->now_ns() : 0;
  const auto trace_stall = [&] {
    if (tracer_ != nullptr) {
      tracer_->complete("sharded.queue_stall", "sharded", 0, stall_start_ns,
                        tracer_->now_ns() - stall_start_ns,
                        {{"shard", static_cast<double>(index)}});
    }
  };
  Stopwatch stall;
  for (;;) {
    if (failed_.load(std::memory_order_acquire)) {
      // A worker died; its queues will never drain. Drop the record — the
      // run is poisoned and finish() will rethrow the worker's error.
      stall_seconds_ += stall.seconds();
      trace_stall();
      return;
    }
    if (shard.dead.load(std::memory_order_acquire)) {
      // Best-effort: this shard just died under us; stop waiting on it.
      dropped_records_.fetch_add(1, std::memory_order_relaxed);
      stall_seconds_ += stall.seconds();
      trace_stall();
      return;
    }
    std::this_thread::yield();
    if (shard.queue.try_push(req)) break;
  }
  stall_seconds_ += stall.seconds();
  trace_stall();
}

void ShardedKrrProfiler::drain_batch(Shard& shard, std::uint32_t index,
                                     bool& did_work) {
  Request req;
  int budget = kDrainBatch;
  if (shard.dead.load(std::memory_order_relaxed)) {
    // Discard what the producer enqueued before it noticed the death; the
    // queue must keep draining or the producer's backpressure spin would
    // wait on a shard that will never consume.
    while (budget-- > 0 && shard.queue.try_pop(req)) {
      dropped_records_.fetch_add(1, std::memory_order_relaxed);
      did_work = true;
    }
    return;
  }
  // Stride-gated drain spans: one traced batch (two clock reads) every
  // kDrainTraceStride batches; untraced batches pay one branch.
  const bool traced =
      tracer_ != nullptr && (shard.drain_batches++ % kDrainTraceStride) == 0;
  const std::uint64_t batch_start_ns = traced ? tracer_->now_ns() : 0;
  int drained = 0;
  try {
    while (budget-- > 0 && shard.queue.try_pop(req)) {
      ++drained;
      if (config_.before_access_hook) config_.before_access_hook(index, req);
      shard.profiler.access(req);
    }
  } catch (...) {
    if (config_.failure_mode == ShardFailureMode::kStrict) throw;
    // Best-effort: only this shard dies; the worker keeps serving its
    // other shards and the producer keeps the run alive.
    shard.dead.store(true, std::memory_order_release);
    shards_failed_.fetch_add(1, std::memory_order_relaxed);
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    did_work = true;
    if (tracer_ != nullptr) {
      tracer_->instant("sharded.shard_failed", "sharded", index + 1,
                       {{"shard", static_cast<double>(index)}});
    }
    return;
  }
  if (drained > 0) {
    shard.publish_live();
    did_work = true;
    if (traced) {
      tracer_->complete("sharded.drain", "sharded", index + 1, batch_start_ns,
                        tracer_->now_ns() - batch_start_ns,
                        {{"records", static_cast<double>(drained)},
                         {"depth", static_cast<double>(
                              shard.profiler.stack_depth())}});
    }
  }
}

void ShardedKrrProfiler::drain_loop(unsigned worker_index) {
  // Static shard ownership (shard s -> worker s % T) keeps every queue
  // strictly single-consumer.
  std::vector<std::uint32_t> owned;
  for (std::uint32_t s = worker_index; s < shards_.size();
       s += worker_count_) {
    owned.push_back(s);
  }
  try {
    for (;;) {
      bool did_work = false;
      for (std::uint32_t s : owned) drain_batch(*shards_[s], s, did_work);
      if (did_work) continue;
      if (done_.load(std::memory_order_acquire)) {
        // done_ was released after the producer's last push, so an empty
        // check after this acquire is conclusive.
        bool all_empty = true;
        for (std::uint32_t s : owned) {
          if (!shards_[s]->queue.empty_approx()) {
            all_empty = false;
            break;
          }
        }
        if (all_empty) return;
      } else {
        std::this_thread::yield();
      }
    }
  } catch (...) {
    // Flag first so the producer's stall loop cannot wait forever on this
    // worker's queues, then let the pool capture the exception for
    // finish() to rethrow.
    failed_.store(true, std::memory_order_release);
    throw;
  }
}

void ShardedKrrProfiler::finish() {
  if (finished_) return;
  if (worker_count_ != 0) {
    const std::uint64_t join_start_ns =
        tracer_ != nullptr ? tracer_->now_ns() : 0;
    done_.store(true, std::memory_order_release);
    pool_->wait_idle();  // rethrows the first worker exception (strict mode)
    if (tracer_ != nullptr) {
      tracer_->complete("sharded.drain_join", "sharded", 0, join_start_ns,
                        tracer_->now_ns() - join_start_ns);
    }
  }
  finished_ = true;
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) {
    metrics_->sharded.stall_seconds->set(stall_seconds_);
    metrics_->sharded.shard_failures->inc(shards_failed());
  }
#endif
  // Best-effort recovery extrapolates from the survivors; with none left
  // there is nothing to extrapolate from and the run has truly failed.
  if (shards_failed() >= shards_.size()) {
    throw StatusError(resource_limit_error(
        "all " + std::to_string(shards_.size()) +
        " shards failed; no surviving shard to merge"));
  }
}

namespace {

[[noreturn]] void throw_unfinished(const char* what) {
  throw std::logic_error(std::string("ShardedKrrProfiler::") + what +
                         " requires finish() when running threaded");
}

}  // namespace

const KrrProfiler& ShardedKrrProfiler::shard(std::uint32_t s) const {
  if (worker_count_ != 0 && !finished_) throw_unfinished("shard()");
  return shards_.at(s)->profiler;
}

DistanceHistogram ShardedKrrProfiler::merged_histogram() const {
  if (worker_count_ != 0 && !finished_) throw_unfinished("merged_histogram()");
  DistanceHistogram merged(config_.base.histogram_quantum);
  std::size_t live = 0;
  for (const auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire)) continue;
    merged.merge(shard->profiler.adjusted_histogram());
    ++live;
  }
  if (live == 0) {
    throw StatusError(resource_limit_error(
        "every shard failed; no histogram to merge"));
  }
  if (live < shards_.size()) {
    // Each shard is an unbiased 1/S spatial sample, so scaling the
    // survivors' mass by S/(S-F) extrapolates the dropped shards' share.
    merged.scale(static_cast<double>(shards_.size()) /
                 static_cast<double>(live));
    if (tracer_ != nullptr) {
      tracer_->instant("sharded.survivor_rescale", "sharded", 0,
                       {{"shards", static_cast<double>(shards_.size())},
                        {"survivors", static_cast<double>(live)}});
    }
  }
  return merged;
}

MissRatioCurve ShardedKrrProfiler::mrc() const {
  double merge_seconds = 0.0;
  MissRatioCurve curve;
  const std::uint64_t merge_start_ns =
      tracer_ != nullptr ? tracer_->now_ns() : 0;
  {
    ScopedTimer timer(merge_seconds);
    curve = merged_histogram().to_mrc();
  }
  if (tracer_ != nullptr) {
    tracer_->complete("sharded.merge", "sharded", 0, merge_start_ns,
                      tracer_->now_ns() - merge_start_ns,
                      {{"shards", static_cast<double>(shards_.size())}});
  }
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) {
    metrics_->sharded.merge_seconds->set(merge_seconds);
  }
#endif
  return curve;
}

std::uint64_t ShardedKrrProfiler::sampled() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire)) continue;
    total += shard->profiler.sampled();
  }
  return total;
}

std::uint64_t ShardedKrrProfiler::stack_depth() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire)) continue;
    total += shard->profiler.stack_depth();
  }
  return total;
}

std::uint64_t ShardedKrrProfiler::space_overhead_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire)) continue;
    total += shard->profiler.space_overhead_bytes();
  }
  return total;
}

std::uint64_t ShardedKrrProfiler::degradation_events() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire)) continue;
    total += shard->profiler.degradation_events();
  }
  return total;
}

RunReport ShardedKrrProfiler::run_report(const TraceReadReport* ingest) const {
  if (worker_count_ != 0 && !finished_) throw_unfinished("run_report()");
  RunReport report;
  if (ingest != nullptr) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  } else {
    report.records_read = processed_;
  }
  report.configured_sampling_rate =
      shards_.front()->profiler.run_report(nullptr).configured_sampling_rate;
  double final_rate = 1.0;
  bool first = true;
  for (const auto& shard : shards_) {
    if (shard->dead.load(std::memory_order_acquire)) continue;
    const KrrProfiler& profiler = shard->profiler;
    report.degradation_events += profiler.degradation_events();
    report.stack_depth += profiler.stack_depth();
    report.space_overhead_bytes += profiler.space_overhead_bytes();
    final_rate = first ? profiler.current_sampling_rate()
                       : std::min(final_rate, profiler.current_sampling_rate());
    first = false;
  }
  report.final_sampling_rate = final_rate;
  report.producer_stall_seconds = stall_seconds_;
  report.shards_failed = shards_failed();
  return report;
}

obs::HeartbeatSnapshot ShardedKrrProfiler::snapshot() const {
  obs::HeartbeatSnapshot snap;
  snap.records = processed_;
  double min_rate = 1.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    if (worker_count_ == 0) {
      // Inline mode: no concurrency, read the profiler directly.
      snap.sampled += shard.profiler.sampled();
      snap.stack_depth += shard.profiler.stack_depth();
      snap.resident_bytes += shard.profiler.space_overhead_bytes();
      snap.degradation_events += shard.profiler.degradation_events();
      min_rate = s == 0 ? shard.profiler.current_sampling_rate()
                        : std::min(min_rate,
                                   shard.profiler.current_sampling_rate());
    } else {
      snap.sampled += shard.live_sampled.load(std::memory_order_relaxed);
      snap.stack_depth += shard.live_depth.load(std::memory_order_relaxed);
      snap.resident_bytes +=
          shard.live_resident.load(std::memory_order_relaxed);
      snap.degradation_events +=
          shard.live_degradations.load(std::memory_order_relaxed);
      const double rate = shard.live_rate.load(std::memory_order_relaxed);
      min_rate = s == 0 ? rate : std::min(min_rate, rate);
    }
  }
  snap.sampling_rate = min_rate;
  return snap;
}

void ShardedKrrProfiler::attach_metrics(obs::PipelineMetrics* metrics) noexcept {
#ifdef KRR_METRICS_ENABLED
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    metrics_->sharded.shards->set(static_cast<double>(shards_.size()));
    metrics_->sharded.threads->set(static_cast<double>(worker_count_));
  }
#else
  (void)metrics;
#endif
}

void ShardedKrrProfiler::attach_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  tracer_->set_lane_name(0, "producer");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    tracer_->set_lane_name(static_cast<std::uint32_t>(s) + 1,
                           "shard " + std::to_string(s));
  }
}

void ShardedKrrProfiler::export_shard_gauges(
    obs::MetricsRegistry& registry) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const KrrProfiler& profiler = shards_[s]->profiler;
    const std::string prefix = "sharded.shard" + std::to_string(s) + ".";
    registry.gauge(prefix + "stack_depth")
        .set(static_cast<double>(profiler.stack_depth()));
    registry.gauge(prefix + "sampled")
        .set(static_cast<double>(profiler.sampled()));
    registry.gauge(prefix + "degradations")
        .set(static_cast<double>(profiler.degradation_events()));
    registry.gauge(prefix + "final_rate").set(profiler.current_sampling_rate());
    registry.gauge(prefix + "failed")
        .set(shards_[s]->dead.load(std::memory_order_acquire) ? 1.0 : 0.0);
  }
}

}  // namespace krr
