#include "core/sharded_profiler.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/hashing.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace krr {

std::vector<std::unique_ptr<ShardedKrrProfiler::KrrShardPayload>>
ShardedKrrProfiler::make_payloads(const ShardedKrrProfilerConfig& config) {
  const std::uint32_t shard_n = config.shards == 0 ? 1 : config.shards;
  std::vector<std::unique_ptr<KrrShardPayload>> payloads;
  payloads.reserve(shard_n);
  for (std::uint32_t s = 0; s < shard_n; ++s) {
    KrrProfilerConfig cfg = config.base;
    cfg.shard_count = shard_n;
    cfg.seed = config.base.seed + s;
    if (cfg.max_stack_bytes != 0) {
      // Split the global ceiling evenly; the floor of 1 keeps degradation
      // armed even for absurd shard counts. Replay mode charges the
      // journal's footprint against the shard's share so the global bound
      // covers recovery state too.
      const std::uint64_t share =
          std::max<std::uint64_t>(cfg.max_stack_bytes / shard_n, 1);
      const std::uint64_t journal_bytes =
          config.failure_mode == ShardFailureMode::kReplay
              ? static_cast<std::uint64_t>(config.journal_records) *
                    sizeof(Request)
              : 0;
      cfg.max_stack_bytes = share > journal_bytes ? share - journal_bytes : 1;
    }
    payloads.push_back(std::make_unique<KrrShardPayload>(cfg));
  }
  return payloads;
}

ShardFanout<ShardedKrrProfiler::KrrShardPayload>::Config
ShardedKrrProfiler::fanout_config(const ShardedKrrProfilerConfig& config) {
  ShardFanout<KrrShardPayload>::Config cfg;
  cfg.threads = config.threads;
  cfg.queue_capacity = config.queue_capacity;
  cfg.failure_mode = config.failure_mode;
  cfg.journal_records = config.journal_records;
  cfg.snapshot_stride = config.snapshot_stride;
  cfg.retry = config.retry;
  cfg.before_access_hook = config.before_access_hook;
  return cfg;
}

ShardedKrrProfiler::ShardedKrrProfiler(const ShardedKrrProfilerConfig& config)
    : config_(config),
      fanout_(make_payloads(config), fanout_config(config)) {}

ShardedKrrProfiler::~ShardedKrrProfiler() = default;

std::uint32_t ShardedKrrProfiler::shard_of(std::uint64_t key) const noexcept {
  // Top hash bits: disjoint from the low bits the SpatialFilter thresholds
  // (modulus 2^24), so shard identity and sample membership are
  // independent uniform functions of the key.
  return static_cast<std::uint32_t>(hash64(key) >> 32) % fanout_.shard_count();
}

void ShardedKrrProfiler::access(const Request& req) {
  fanout_.route(shard_of(req.key), req);
}

void ShardedKrrProfiler::finish() { fanout_.finish(); }

namespace {

[[noreturn]] void throw_unfinished(const char* what) {
  throw std::logic_error(std::string("ShardedKrrProfiler::") + what +
                         " requires finish() when running threaded");
}

}  // namespace

const KrrProfiler& ShardedKrrProfiler::shard(std::uint32_t s) const {
  if (fanout_.needs_finish()) throw_unfinished("shard()");
  return *fanout_.payload(s).profiler;
}

DistanceHistogram ShardedKrrProfiler::merged_histogram() const {
  if (fanout_.needs_finish()) throw_unfinished("merged_histogram()");
  DistanceHistogram merged(config_.base.histogram_quantum);
  std::size_t live = 0;
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    if (fanout_.dead(s)) continue;
    merged.merge(fanout_.payload(s).profiler->adjusted_histogram());
    ++live;
  }
  if (live == 0) {
    throw StatusError(resource_limit_error(
        "every shard failed; no histogram to merge"));
  }
  if (live < fanout_.shard_count()) {
    // Each shard is an unbiased 1/S spatial sample, so scaling the
    // survivors' mass by S/(S-F) extrapolates the dropped shards' share.
    merged.scale(static_cast<double>(fanout_.shard_count()) /
                 static_cast<double>(live));
    if (fanout_.tracer() != nullptr) {
      fanout_.tracer()->instant(
          "sharded.survivor_rescale", "sharded", 0,
          {{"shards", static_cast<double>(fanout_.shard_count())},
           {"survivors", static_cast<double>(live)}});
    }
  }
  return merged;
}

MissRatioCurve ShardedKrrProfiler::mrc() const {
  double merge_seconds = 0.0;
  MissRatioCurve curve;
  obs::Tracer* tracer = fanout_.tracer();
  const std::uint64_t merge_start_ns =
      tracer != nullptr ? tracer->now_ns() : 0;
  {
    ScopedTimer timer(merge_seconds);
    curve = merged_histogram().to_mrc();
  }
  if (tracer != nullptr) {
    tracer->complete("sharded.merge", "sharded", 0, merge_start_ns,
                     tracer->now_ns() - merge_start_ns,
                     {{"shards", static_cast<double>(fanout_.shard_count())}});
  }
#ifdef KRR_METRICS_ENABLED
  if (metrics_ != nullptr) {
    metrics_->sharded.merge_seconds->set(merge_seconds);
  }
#endif
  return curve;
}

std::uint64_t ShardedKrrProfiler::sampled() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    if (fanout_.dead(s)) continue;
    total += fanout_.payload(s).profiler->sampled();
  }
  return total;
}

std::uint64_t ShardedKrrProfiler::stack_depth() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    if (fanout_.dead(s)) continue;
    total += fanout_.payload(s).profiler->stack_depth();
  }
  return total;
}

std::uint64_t ShardedKrrProfiler::space_overhead_bytes() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    if (fanout_.dead(s)) continue;
    total += fanout_.payload(s).profiler->space_overhead_bytes();
  }
  return total;
}

std::uint64_t ShardedKrrProfiler::degradation_events() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    if (fanout_.dead(s)) continue;
    total += fanout_.payload(s).profiler->degradation_events();
  }
  return total;
}

RunReport ShardedKrrProfiler::run_report(const TraceReadReport* ingest) const {
  if (fanout_.needs_finish()) throw_unfinished("run_report()");
  RunReport report;
  if (ingest != nullptr) {
    report.records_read = ingest->records_read;
    report.records_skipped = ingest->records_skipped;
    report.checksum_failures = ingest->checksum_failures;
    report.truncated_tail = ingest->truncated_tail;
  } else {
    report.records_read = fanout_.processed();
  }
  report.configured_sampling_rate =
      fanout_.payload(0).profiler->run_report(nullptr).configured_sampling_rate;
  double final_rate = 1.0;
  bool first = true;
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    if (fanout_.dead(s)) continue;
    const KrrProfiler& profiler = *fanout_.payload(s).profiler;
    report.degradation_events += profiler.degradation_events();
    report.stack_depth += profiler.stack_depth();
    report.space_overhead_bytes += profiler.space_overhead_bytes();
    final_rate = first ? profiler.current_sampling_rate()
                       : std::min(final_rate, profiler.current_sampling_rate());
    first = false;
  }
  report.final_sampling_rate = final_rate;
  report.producer_stall_seconds = fanout_.producer_stall_seconds();
  report.shards_failed = fanout_.shards_failed();
  report.shards_resurrected = fanout_.shards_resurrected();
  report.replayed_records = fanout_.replayed_records();
  report.dropped_records = fanout_.dropped_records();
  report.recovery =
      recovery_path_name(report.shards_resurrected, report.shards_failed);
  return report;
}

void ShardedKrrProfiler::attach_metrics(obs::PipelineMetrics* metrics) noexcept {
#ifdef KRR_METRICS_ENABLED
  metrics_ = metrics;
#endif
  fanout_.attach_metrics(metrics);
}

void ShardedKrrProfiler::attach_tracer(obs::Tracer* tracer) noexcept {
  fanout_.attach_tracer(tracer);
}

void ShardedKrrProfiler::export_shard_gauges(
    obs::MetricsRegistry& registry) const {
  for (std::uint32_t s = 0; s < fanout_.shard_count(); ++s) {
    const KrrProfiler& profiler = *fanout_.payload(s).profiler;
    const std::string prefix = "sharded.shard" + std::to_string(s) + ".";
    registry.gauge(prefix + "stack_depth")
        .set(static_cast<double>(profiler.stack_depth()));
    registry.gauge(prefix + "sampled")
        .set(static_cast<double>(profiler.sampled()));
    registry.gauge(prefix + "degradations")
        .set(static_cast<double>(profiler.degradation_events()));
    registry.gauge(prefix + "final_rate").set(profiler.current_sampling_rate());
    registry.gauge(prefix + "failed").set(fanout_.dead(s) ? 1.0 : 0.0);
    registry.gauge(prefix + "resurrections")
        .set(static_cast<double>(fanout_.shard_resurrections(s)));
  }
  registry.gauge("recovery.resurrections")
      .set(static_cast<double>(fanout_.shards_resurrected()));
  registry.gauge("recovery.replayed_records")
      .set(static_cast<double>(fanout_.replayed_records()));
}

}  // namespace krr
