#pragma once

#include <cstdint>
#include <memory>

#include "core/profiler.h"
#include "trace/request.h"
#include "util/mrc.h"

namespace krr {

/// Configuration for the sliding-window online profiler.
struct WindowedKrrConfig {
  KrrProfilerConfig profiler;     ///< per-window KRR configuration
  std::uint64_t window = 1000000; ///< requests per window
};

/// Online KRR with bounded staleness for non-stationary workloads: two
/// staggered KRR profilers are fed simultaneously, offset by half a
/// window. When the older one completes a full window it retires and a
/// fresh one starts, so `mrc()` always reflects between half a window and
/// one window of recent history — instead of the whole-trace average a
/// single profiler would report. This is the standard deployment shape for
/// the online use case §2.4/§5.5 argue for.
class WindowedKrrProfiler {
 public:
  explicit WindowedKrrProfiler(const WindowedKrrConfig& config);

  /// Processes one reference through both staggered windows.
  void access(const Request& req);

  /// MRC of the most mature live window (>= half a window of history once
  /// warmed up).
  MissRatioCurve mrc() const;

  /// Requests absorbed by the window backing mrc().
  std::uint64_t active_window_fill() const noexcept { return active_fill_; }

  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t windows_retired() const noexcept { return retired_; }

  /// Combined state footprint of both live windows (governance hook).
  std::uint64_t space_overhead_bytes() const noexcept;

  /// One graceful-degradation step applied to every live window; false
  /// once both windows' filters have bottomed out.
  bool degrade_step();

  /// Rate halvings across the live windows (retired windows' events are
  /// folded in so the count is monotone over the run).
  std::uint64_t degradation_events() const noexcept;

 private:
  std::unique_ptr<KrrProfiler> make_profiler();

  WindowedKrrConfig config_;
  std::unique_ptr<KrrProfiler> active_;   // older window
  std::unique_ptr<KrrProfiler> warming_;  // younger, offset by window/2
  std::uint64_t active_fill_ = 0;
  std::uint64_t warming_fill_ = 0;
  bool warming_started_ = false;
  std::uint64_t processed_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t seed_counter_ = 0;
  std::uint64_t retired_degradations_ = 0;
};

}  // namespace krr
