#include "core/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "core/estimator.h"
#include "util/crc32.h"
#include "util/faultpoint.h"

namespace krr {

namespace {

constexpr char kMagic[8] = {'K', 'R', 'R', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;
// Snapshots hold histograms and stacks, not traces; anything past this is
// a corrupt length field, not a real payload.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 32;

}  // namespace

std::uint32_t checkpoint_fingerprint(const std::string& model,
                                     const EstimatorOptions& options) {
  Crc32 crc;
  crc.update(model.data(), model.size());
  crc.update("\0", 1);
  // std::map iteration is key-sorted, so the fingerprint is canonical
  // regardless of the order options were set in.
  for (const auto& [key, value] : options.entries()) {
    crc.update(key.data(), key.size());
    crc.update("=", 1);
    crc.update(value.data(), value.size());
    crc.update("\n", 1);
  }
  return crc.value();
}

Status write_checkpoint_atomic(const std::string& path,
                               const CheckpointHeader& header,
                               const std::string& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return invalid_argument_error("checkpoint payload too large");
  }
  // Injected write failures surface as the same io_error a full disk
  // would, so callers' retry paths are exercised end to end.
  if (faults::should_fire(faults::kCheckpointWrite)) {
    return io_error("injected checkpoint write fault at '" + path + "'");
  }
  std::string blob;
  blob.reserve(kHeaderBytes + payload.size() + 4);
  blob.append(kMagic, sizeof(kMagic));
  ckpt::append_u32(blob, header.version);
  ckpt::append_u32(blob, header.config_crc);
  ckpt::append_u64(blob, header.records);
  ckpt::append_u64(blob, payload.size());
  blob += payload;
  ckpt::append_u32(blob, crc32(blob.data(), blob.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return io_error("cannot open checkpoint temp file '" + tmp + "'");
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return io_error("short write to checkpoint temp file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_error("cannot rename checkpoint into place at '" + path + "'");
  }
  return Status::ok();
}

namespace ckpt {

namespace {
// A section body is at most a whole model payload; anything larger is a
// corrupt length field (mirrors the container's kMaxPayloadBytes).
constexpr std::uint64_t kMaxSectionBytes = 1ULL << 32;
}  // namespace

void StateWriter::add_section(std::uint32_t tag, const std::string& body) {
  append_u32(out_, tag);
  append_u64(out_, body.size());
  out_ += body;
  append_u32(out_, crc32(body.data(), body.size()));
}

namespace {

std::uint32_t decode_u32_at(const std::string& data, std::size_t offset) {
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8) |
          static_cast<unsigned char>(data[offset + static_cast<std::size_t>(i)]);
  }
  return out;
}

std::uint64_t decode_u64_at(const std::string& data, std::size_t offset) {
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) {
    out = (out << 8) |
          static_cast<unsigned char>(data[offset + static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace

StatusOr<StateReader> StateReader::parse(const std::string& payload) {
  if (payload.size() < 4) {
    return truncated_error("state stream is too short for a version word");
  }
  const std::uint32_t version = decode_u32_at(payload, 0);
  if (version != kStateStreamVersion) {
    return unsupported_version_error(
        "state stream has format version " + std::to_string(version) +
        "; this build reads version " + std::to_string(kStateStreamVersion));
  }
  StateReader result;
  std::size_t offset = 4;
  while (offset < payload.size()) {
    if (payload.size() - offset < 12) {
      return truncated_error("state stream section header is truncated");
    }
    const std::uint32_t tag = decode_u32_at(payload, offset);
    const std::uint64_t length = decode_u64_at(payload, offset + 4);
    offset += 12;
    if (length > kMaxSectionBytes ||
        length + 4 > payload.size() - offset) {
      return truncated_error("state stream section " + std::to_string(tag) +
                             " claims more bytes than the stream holds");
    }
    Section section;
    section.tag = tag;
    section.body = payload.substr(offset, static_cast<std::size_t>(length));
    offset += static_cast<std::size_t>(length);
    const std::uint32_t stored_crc = decode_u32_at(payload, offset);
    offset += 4;
    if (stored_crc != crc32(section.body.data(), section.body.size())) {
      return checksum_mismatch_error("state stream section " +
                                     std::to_string(tag) +
                                     " failed its CRC32 check");
    }
    result.sections_.push_back(std::move(section));
  }
  return result;
}

const std::string* StateReader::find(std::uint32_t tag) const {
  for (const Section& section : sections_) {
    if (section.tag == tag) return &section.body;
  }
  return nullptr;
}

std::vector<const std::string*> StateReader::find_all(std::uint32_t tag) const {
  std::vector<const std::string*> result;
  for (const Section& section : sections_) {
    if (section.tag == tag) result.push_back(&section.body);
  }
  return result;
}

}  // namespace ckpt

StatusOr<CheckpointHeader> read_checkpoint(const std::string& path,
                                           std::string* payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_error("cannot open checkpoint '" + path + "'");
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderBytes + 4) {
    return corrupt_header_error("checkpoint '" + path +
                                "' is too short to be a snapshot");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt_header_error("checkpoint '" + path +
                                "' has a bad magic (not a KRRSNAP file)");
  }

  // Validate the trailing CRC before trusting any field beyond the magic.
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(static_cast<unsigned char>(blob[blob.size() - 4])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(blob[blob.size() - 3]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(blob[blob.size() - 2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(blob[blob.size() - 1]))
       << 24);
  const std::uint32_t computed = crc32(blob.data(), blob.size() - 4);
  if (stored_crc != computed) {
    return checksum_mismatch_error("checkpoint '" + path +
                                   "' failed its CRC32 integrity check");
  }

  std::string body = blob.substr(sizeof(kMagic), blob.size() - sizeof(kMagic) - 4);
  ckpt::ByteReader reader(body);
  CheckpointHeader header;
  std::uint64_t payload_len = 0;
  if (!reader.read_u32(&header.version) || !reader.read_u32(&header.config_crc) ||
      !reader.read_u64(&header.records) || !reader.read_u64(&payload_len)) {
    return corrupt_header_error("checkpoint '" + path + "' header is truncated");
  }
  if (header.version != kCheckpointVersion) {
    return unsupported_version_error(
        "checkpoint '" + path + "' has format version " +
        std::to_string(header.version) + "; this build reads version " +
        std::to_string(kCheckpointVersion));
  }
  if (payload_len > kMaxPayloadBytes || payload_len != reader.remaining()) {
    return corrupt_header_error("checkpoint '" + path +
                                "' payload length disagrees with the file size");
  }
  if (payload != nullptr) {
    *payload = body.substr(body.size() - payload_len);
  }
  return header;
}

}  // namespace krr
