#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/request.h"
#include "util/prng.h"

namespace krr {

/// Eviction metric for the random-sampling cache family the paper's
/// conclusion points to: "other random-sampling policies which use other
/// metrics, such as access frequency and object expiration time, as
/// priority functions".
enum class SampledEvictionPolicy : std::uint8_t {
  kLru = 0,  ///< evict the least recently used of the sample (== KLruCache)
  kLfu = 1,  ///< evict the least frequently used of the sample, with
             ///< Redis-style periodic halving so stale popularity decays
  kTtl = 2,  ///< evict the sample member closest to (or past) expiry
};

std::string to_string(SampledEvictionPolicy policy);

/// Configuration for the generalized sampling cache.
struct SampledPriorityConfig {
  std::uint64_t capacity = 0;     ///< in Request::size units
  std::uint32_t sample_size = 5;  ///< K
  SampledEvictionPolicy policy = SampledEvictionPolicy::kLru;
  std::uint64_t seed = 1;
  /// kLfu: every `decay_interval` accesses all frequency counters halve
  /// (0 disables decay).
  std::uint64_t decay_interval = 100000;
  /// kTtl: objects expire `ttl_base + hash(key) % ttl_spread` ticks after
  /// insertion; expired objects are misses on re-reference.
  std::uint64_t ttl_base = 50000;
  std::uint64_t ttl_spread = 50000;
};

/// Random sampling-based cache with a pluggable eviction metric —
/// the substrate for exploring the paper's future-work policies. With
/// kLru it behaves exactly like KLruCache (verified by tests).
class SampledPriorityCache {
 public:
  explicit SampledPriorityCache(const SampledPriorityConfig& config);

  /// Processes one reference; returns true on hit. Under kTtl, a resident
  /// but expired object counts as a miss and is re-admitted fresh.
  bool access(const Request& req);

  bool contains(std::uint64_t key) const { return index_.count(key) != 0; }

  const SampledPriorityConfig& config() const noexcept { return config_; }
  std::uint64_t used() const noexcept { return used_; }
  std::size_t object_count() const noexcept { return entries_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t expirations() const noexcept { return expirations_; }
  double miss_ratio() const;

  void reset();

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t size;
    std::uint64_t last_access;
    std::uint64_t frequency;
    std::uint64_t expires_at;
  };

  std::uint64_t ttl_for_key(std::uint64_t key) const;
  /// Lower value = evict first, under the configured policy.
  std::uint64_t victim_score(const Entry& e) const;
  std::size_t pick_victim();
  void evict_at(std::size_t pos);
  void admit(const Request& req);
  void decay_frequencies();

  SampledPriorityConfig config_;
  std::uint64_t used_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  Xoshiro256ss rng_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace krr
