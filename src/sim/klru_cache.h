#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/request.h"
#include "util/prng.h"

namespace krr {

/// Configuration for the random sampling-based LRU simulator.
struct KLruConfig {
  std::uint64_t capacity = 0;     ///< in Request::size units (objects or bytes)
  std::uint32_t sample_size = 5;  ///< K: candidates examined per eviction
  bool with_replacement = true;   ///< Prop. 1 (Redis-style) vs Prop. 2 sampling
  std::uint64_t seed = 1;
};

/// K-LRU cache simulator: on each eviction, sample K resident objects
/// uniformly and evict the least recently used of the sample (Chapter 3).
/// With `with_replacement` the same object may be drawn more than once
/// (Proposition 1, Redis's convention); without, the K candidates are
/// distinct (Proposition 2).
///
/// Entries live in a flat vector so uniform sampling is O(1) per draw;
/// eviction uses swap-with-last removal. This is the ground-truth oracle
/// all KRR accuracy experiments compare against.
class KLruCache {
 public:
  explicit KLruCache(const KLruConfig& config);

  /// Processes one reference; returns true on hit.
  bool access(const Request& req);

  /// Reconfigures the eviction sampling size online — the flexibility
  /// random-sampling caches have over ordering-structure caches (Chapter 1)
  /// and the knob DLRU-style controllers turn.
  void set_sample_size(std::uint32_t k);

  bool contains(std::uint64_t key) const { return index_.count(key) != 0; }

  const KLruConfig& config() const noexcept { return config_; }
  std::uint64_t used() const noexcept { return used_; }
  std::size_t object_count() const noexcept { return entries_.size(); }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  double miss_ratio() const;

  void reset();

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t size;
    std::uint64_t last_access;
  };

  /// Index of the eviction victim among entries_ (sampling K candidates).
  std::size_t pick_victim();
  void evict_at(std::size_t pos);

  KLruConfig config_;
  std::uint64_t used_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  Xoshiro256ss rng_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace krr
