#include "sim/miniature.h"

#include <algorithm>

#include "core/spatial_filter.h"

namespace krr {

namespace {

/// Filters the trace once; all miniature sizes replay the same sample.
std::vector<Request> sample_stream(const std::vector<Request>& trace,
                                   const MiniatureConfig& config) {
  SpatialFilter filter(config.rate, config.modulus);
  std::vector<Request> sampled;
  sampled.reserve(static_cast<std::size_t>(
      static_cast<double>(trace.size()) * filter.rate() * 1.3) + 16);
  for (const Request& r : trace) {
    if (filter.sampled(r.key)) sampled.push_back(r);
  }
  return sampled;
}

std::uint64_t scale_capacity(double capacity, const MiniatureConfig& config,
                             double realized_rate) {
  return std::max<std::uint64_t>(
      config.min_capacity,
      static_cast<std::uint64_t>(capacity * realized_rate));
}

}  // namespace

MissRatioCurve miniature_klru_mrc(const std::vector<Request>& trace,
                                  const std::vector<double>& capacities,
                                  std::uint32_t k, const MiniatureConfig& config) {
  const double realized = SpatialFilter(config.rate, config.modulus).rate();
  const std::vector<Request> sampled = sample_stream(trace, config);
  MissRatioCurve curve;
  for (double c : capacities) {
    KLruConfig cfg;
    cfg.capacity = scale_capacity(c, config, realized);
    cfg.sample_size = k;
    cfg.seed = config.seed;
    KLruCache mini(cfg);
    for (const Request& r : sampled) mini.access(r);
    curve.add_point(c, mini.miss_ratio());
  }
  return curve;
}

MissRatioCurve miniature_redis_mrc(const std::vector<Request>& trace,
                                   const std::vector<double>& capacities,
                                   RedisLruConfig base,
                                   const MiniatureConfig& config) {
  const double realized = SpatialFilter(config.rate, config.modulus).rate();
  const std::vector<Request> sampled = sample_stream(trace, config);
  MissRatioCurve curve;
  for (double c : capacities) {
    base.capacity = scale_capacity(c, config, realized);
    RedisLruCache mini(base);
    for (const Request& r : sampled) mini.access(r);
    curve.add_point(c, mini.miss_ratio());
  }
  return curve;
}

}  // namespace krr
