#include "sim/redis_cache.h"

#include <algorithm>
#include <stdexcept>

namespace krr {

RedisLruCache::RedisLruCache(const RedisLruConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.capacity == 0) throw std::invalid_argument("Redis capacity must be > 0");
  if (config.maxmemory_samples == 0) {
    throw std::invalid_argument("maxmemory_samples must be > 0");
  }
  if (config.pool_size == 0) throw std::invalid_argument("pool size must be > 0");
  if (config.clock_resolution == 0) {
    throw std::invalid_argument("clock resolution must be > 0");
  }
  pool_.reserve(config.pool_size);
}

double RedisLruCache::miss_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

bool RedisLruCache::access(const Request& req) {
  ++tick_;
  auto it = index_.find(req.key);
  if (it != index_.end()) {
    ++hits_;
    Entry& e = entries_[it->second];
    e.last_access = clock_now();
    if (e.size != req.size) {
      used_ = used_ - e.size + req.size;
      e.size = req.size;
      while (used_ > config_.capacity && !entries_.empty()) {
        if (!evict_one()) break;
      }
    }
    return true;
  }
  ++misses_;
  if (req.size > config_.capacity) return false;  // bypass: cannot ever fit
  while (used_ + req.size > config_.capacity && !entries_.empty()) {
    if (!evict_one()) break;
  }
  index_.emplace(req.key, entries_.size());
  entries_.push_back(Entry{req.key, req.size, clock_now()});
  used_ += req.size;
  return false;
}

void RedisLruCache::sample_into_pool() {
  const std::size_t n = entries_.size();
  const std::uint32_t k = config_.maxmemory_samples;
  const std::uint64_t now = clock_now();
  std::size_t start = rng_.next_below(n);
  for (std::uint32_t i = 0; i < k; ++i) {
    // Biased mode approximates dictGetSomeKeys: a consecutive run of
    // entries from one random offset. Uniform mode redraws every candidate.
    const std::size_t pos =
        config_.biased_sampling ? (start + i) % n : rng_.next_below(n);
    const Entry& e = entries_[pos];
    const std::uint64_t idle = now - std::min(now, e.last_access);
    // Redis inserts a candidate if the pool has room or the candidate is
    // idler than the pool's least-idle entry; duplicates update in place.
    auto dup = std::find_if(pool_.begin(), pool_.end(),
                            [&](const PoolSlot& s) { return s.key == e.key; });
    if (dup != pool_.end()) {
      dup->idle = std::max(dup->idle, idle);
      continue;
    }
    if (pool_.size() >= config_.pool_size) {
      if (idle <= pool_.front().idle) continue;
      pool_.erase(pool_.begin());
    }
    pool_.push_back(PoolSlot{e.key, idle});
  }
  std::sort(pool_.begin(), pool_.end(),
            [](const PoolSlot& a, const PoolSlot& b) { return a.idle < b.idle; });
}

bool RedisLruCache::evict_one() {
  // Redis retries sampling until the pool yields a key still in the dict.
  for (int attempt = 0; attempt < 16; ++attempt) {
    sample_into_pool();
    while (!pool_.empty()) {
      const PoolSlot victim = pool_.back();
      pool_.pop_back();
      auto it = index_.find(victim.key);
      if (it == index_.end()) continue;  // stale pool entry: key already gone
      evict_at(it->second);
      return true;
    }
  }
  return false;  // pathological (e.g. single resident object repeatedly touched)
}

void RedisLruCache::evict_at(std::size_t pos) {
  used_ -= entries_[pos].size;
  index_.erase(entries_[pos].key);
  if (pos != entries_.size() - 1) {
    entries_[pos] = entries_.back();
    index_[entries_[pos].key] = pos;
  }
  entries_.pop_back();
  ++evictions_;
}

void RedisLruCache::reset() {
  used_ = tick_ = hits_ = misses_ = evictions_ = 0;
  rng_ = Xoshiro256ss(config_.seed);
  entries_.clear();
  index_.clear();
  pool_.clear();
}

}  // namespace krr
