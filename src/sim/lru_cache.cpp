#include "sim/lru_cache.h"

#include <stdexcept>

namespace krr {

LruCache::LruCache(std::uint64_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("LRU capacity must be > 0");
}

double LruCache::miss_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

bool LruCache::access(const Request& req) {
  auto it = index_.find(req.key);
  if (it != index_.end()) {
    ++hits_;
    Node& node = nodes_[it->second];
    if (node.size != req.size) {
      used_ = used_ - node.size + req.size;
      node.size = req.size;
    }
    unlink(it->second);
    push_front(it->second);
    while (used_ > capacity_ && tail_ != kNil) evict_lru();
    return true;
  }
  ++misses_;
  if (req.size > capacity_) return false;  // bypass: cannot ever fit
  while (used_ + req.size > capacity_ && tail_ != kNil) evict_lru();
  const std::uint32_t n = alloc_node();
  nodes_[n].key = req.key;
  nodes_[n].size = req.size;
  push_front(n);
  index_.emplace(req.key, n);
  used_ += req.size;
  return false;
}

void LruCache::unlink(std::uint32_t n) {
  Node& node = nodes_[n];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
  node.prev = node.next = kNil;
}

void LruCache::push_front(std::uint32_t n) {
  Node& node = nodes_[n];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = n;
  head_ = n;
  if (tail_ == kNil) tail_ = n;
}

void LruCache::evict_lru() {
  const std::uint32_t victim = tail_;
  unlink(victim);
  used_ -= nodes_[victim].size;
  index_.erase(nodes_[victim].key);
  free_.push_back(victim);
  ++evictions_;
}

std::uint32_t LruCache::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t n = free_.back();
    free_.pop_back();
    return n;
  }
  nodes_.push_back(Node{0, 0, kNil, kNil});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::vector<std::uint64_t> LruCache::recency_order() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
    keys.push_back(nodes_[n].key);
  }
  return keys;
}

void LruCache::reset() {
  used_ = hits_ = misses_ = evictions_ = 0;
  head_ = tail_ = kNil;
  nodes_.clear();
  free_.clear();
  index_.clear();
}

}  // namespace krr
