#include "sim/klru_cache.h"

#include <stdexcept>

namespace krr {

KLruCache::KLruCache(const KLruConfig& config) : config_(config), rng_(config.seed) {
  if (config.capacity == 0) throw std::invalid_argument("K-LRU capacity must be > 0");
  if (config.sample_size == 0) throw std::invalid_argument("K-LRU sample size must be > 0");
}

void KLruCache::set_sample_size(std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("K-LRU sample size must be > 0");
  config_.sample_size = k;
}

double KLruCache::miss_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

bool KLruCache::access(const Request& req) {
  ++tick_;
  auto it = index_.find(req.key);
  if (it != index_.end()) {
    ++hits_;
    Entry& e = entries_[it->second];
    e.last_access = tick_;
    if (e.size != req.size) {
      used_ = used_ - e.size + req.size;
      e.size = req.size;
      while (used_ > config_.capacity && !entries_.empty()) evict_at(pick_victim());
    }
    return true;
  }
  ++misses_;
  if (req.size > config_.capacity) return false;  // bypass: cannot ever fit
  while (used_ + req.size > config_.capacity && !entries_.empty()) {
    evict_at(pick_victim());
  }
  index_.emplace(req.key, entries_.size());
  entries_.push_back(Entry{req.key, req.size, tick_});
  used_ += req.size;
  return false;
}

std::size_t KLruCache::pick_victim() {
  const std::size_t n = entries_.size();
  const std::uint32_t k = config_.sample_size;
  if (!config_.with_replacement && k >= n) {
    // Sampling all residents without replacement degenerates to exact LRU.
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (entries_[i].last_access < entries_[best].last_access) best = i;
    }
    return best;
  }
  std::size_t best = rng_.next_below(n);
  if (config_.with_replacement) {
    for (std::uint32_t drawn = 1; drawn < k; ++drawn) {
      const std::size_t cand = rng_.next_below(n);
      if (entries_[cand].last_access < entries_[best].last_access) best = cand;
    }
  } else {
    // Distinct candidates via rejection; K << n in every configuration that
    // reaches this branch, so the expected number of retries is tiny.
    std::vector<std::size_t> seen{best};
    seen.reserve(k);
    while (seen.size() < k) {
      const std::size_t cand = rng_.next_below(n);
      bool duplicate = false;
      for (std::size_t s : seen) {
        if (s == cand) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen.push_back(cand);
      if (entries_[cand].last_access < entries_[best].last_access) best = cand;
    }
  }
  return best;
}

void KLruCache::evict_at(std::size_t pos) {
  used_ -= entries_[pos].size;
  index_.erase(entries_[pos].key);
  if (pos != entries_.size() - 1) {
    entries_[pos] = entries_.back();
    index_[entries_[pos].key] = pos;
  }
  entries_.pop_back();
  ++evictions_;
}

void KLruCache::reset() {
  used_ = tick_ = hits_ = misses_ = evictions_ = 0;
  rng_ = Xoshiro256ss(config_.seed);
  entries_.clear();
  index_.clear();
}

}  // namespace krr
