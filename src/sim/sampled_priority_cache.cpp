#include "sim/sampled_priority_cache.h"

#include <stdexcept>

#include "util/hashing.h"

namespace krr {

std::string to_string(SampledEvictionPolicy policy) {
  switch (policy) {
    case SampledEvictionPolicy::kLru:
      return "sampled_lru";
    case SampledEvictionPolicy::kLfu:
      return "sampled_lfu";
    case SampledEvictionPolicy::kTtl:
      return "sampled_ttl";
  }
  return "unknown";
}

SampledPriorityCache::SampledPriorityCache(const SampledPriorityConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.capacity == 0) throw std::invalid_argument("capacity must be > 0");
  if (config.sample_size == 0) throw std::invalid_argument("sample size must be > 0");
  if (config.policy == SampledEvictionPolicy::kTtl &&
      config.ttl_base == 0 && config.ttl_spread == 0) {
    throw std::invalid_argument("TTL policy needs a nonzero TTL");
  }
}

double SampledPriorityCache::miss_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

std::uint64_t SampledPriorityCache::ttl_for_key(std::uint64_t key) const {
  if (config_.ttl_spread == 0) return config_.ttl_base;
  return config_.ttl_base + hash64(key ^ 0x7c0debc15f2a91b3ULL) % config_.ttl_spread;
}

std::uint64_t SampledPriorityCache::victim_score(const Entry& e) const {
  switch (config_.policy) {
    case SampledEvictionPolicy::kLru:
      return e.last_access;
    case SampledEvictionPolicy::kLfu:
      return e.frequency;
    case SampledEvictionPolicy::kTtl:
      return e.expires_at;
  }
  return e.last_access;
}

bool SampledPriorityCache::access(const Request& req) {
  ++tick_;
  if (config_.policy == SampledEvictionPolicy::kLfu && config_.decay_interval != 0 &&
      tick_ % config_.decay_interval == 0) {
    decay_frequencies();
  }
  auto it = index_.find(req.key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (config_.policy == SampledEvictionPolicy::kTtl && tick_ >= e.expires_at) {
      // Lazy expiration: the object is gone; re-admit it fresh.
      ++expirations_;
      ++misses_;
      evict_at(it->second);
      --evictions_;  // expiry is not a capacity eviction
      if (req.size <= config_.capacity) admit(req);
      return false;
    }
    ++hits_;
    e.last_access = tick_;
    ++e.frequency;
    if (e.size != req.size) {
      used_ = used_ - e.size + req.size;
      e.size = req.size;
      while (used_ > config_.capacity && !entries_.empty()) evict_at(pick_victim());
    }
    return true;
  }
  ++misses_;
  if (req.size > config_.capacity) return false;  // bypass
  admit(req);
  return false;
}

void SampledPriorityCache::admit(const Request& req) {
  while (used_ + req.size > config_.capacity && !entries_.empty()) {
    evict_at(pick_victim());
  }
  index_.emplace(req.key, entries_.size());
  entries_.push_back(
      Entry{req.key, req.size, tick_, 1, tick_ + ttl_for_key(req.key)});
  used_ += req.size;
}

std::size_t SampledPriorityCache::pick_victim() {
  const std::size_t n = entries_.size();
  std::size_t best = rng_.next_below(n);
  for (std::uint32_t drawn = 1; drawn < config_.sample_size; ++drawn) {
    const std::size_t cand = rng_.next_below(n);
    if (victim_score(entries_[cand]) < victim_score(entries_[best])) best = cand;
  }
  return best;
}

void SampledPriorityCache::evict_at(std::size_t pos) {
  used_ -= entries_[pos].size;
  index_.erase(entries_[pos].key);
  if (pos != entries_.size() - 1) {
    entries_[pos] = entries_.back();
    index_[entries_[pos].key] = pos;
  }
  entries_.pop_back();
  ++evictions_;
}

void SampledPriorityCache::decay_frequencies() {
  for (Entry& e : entries_) e.frequency = (e.frequency + 1) / 2;
}

void SampledPriorityCache::reset() {
  used_ = tick_ = hits_ = misses_ = evictions_ = expirations_ = 0;
  rng_ = Xoshiro256ss(config_.seed);
  entries_.clear();
  index_.clear();
}

}  // namespace krr
