#pragma once

#include <cstdint>
#include <vector>

#include "sim/klru_cache.h"
#include "sim/redis_cache.h"
#include "trace/request.h"
#include "util/mrc.h"

namespace krr {

/// Ground-truth MRC construction by brute force (§5.1): replay the trace
/// once per cache size and record the measured miss ratio; the resulting
/// curve interpolates between the simulated sizes. This is the oracle the
/// one-pass models are validated against, and the "Simulation" row of
/// Table 5.3.

/// Simulates a K-LRU cache at each capacity (capacities in Request::size
/// units; non-integral values are rounded down, minimum 1).
MissRatioCurve sweep_klru(const std::vector<Request>& trace,
                          const std::vector<double>& capacities, std::uint32_t k,
                          bool with_replacement = true, std::uint64_t seed = 1);

/// Simulates an exact LRU cache at each capacity.
MissRatioCurve sweep_lru(const std::vector<Request>& trace,
                         const std::vector<double>& capacities);

/// Simulates a Redis-style approximated-LRU cache at each capacity;
/// `base.capacity` is overwritten per sweep point.
MissRatioCurve sweep_redis(const std::vector<Request>& trace,
                           const std::vector<double>& capacities,
                           RedisLruConfig base);

/// Multi-threaded variants of the sweeps: each worker simulates a disjoint
/// subset of the capacities (dynamic self-scheduling), producing the exact
/// same curve as the serial functions — per-capacity simulations are
/// seeded independently, so thread count does not affect results.
/// threads == 0 uses the hardware concurrency.
MissRatioCurve sweep_klru_parallel(const std::vector<Request>& trace,
                                   const std::vector<double>& capacities,
                                   std::uint32_t k, bool with_replacement = true,
                                   std::uint64_t seed = 1, unsigned threads = 0);

MissRatioCurve sweep_lru_parallel(const std::vector<Request>& trace,
                                  const std::vector<double>& capacities,
                                  unsigned threads = 0);

MissRatioCurve sweep_redis_parallel(const std::vector<Request>& trace,
                                    const std::vector<double>& capacities,
                                    RedisLruConfig base, unsigned threads = 0);

/// n capacities evenly spaced over the trace's working set size, in objects
/// (uniform mode) or bytes. The paper uses n = 40 for accuracy experiments
/// and n = 50 for the Redis validation.
std::vector<double> capacity_grid_objects(const std::vector<Request>& trace,
                                          std::size_t n);
std::vector<double> capacity_grid_bytes(const std::vector<Request>& trace,
                                        std::size_t n);

}  // namespace krr
