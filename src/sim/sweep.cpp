#include "sim/sweep.h"

#include <algorithm>

#include "sim/lru_cache.h"
#include "trace/generator.h"
#include "util/parallel.h"

namespace krr {

namespace {

std::uint64_t to_capacity(double c) {
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(c));
}

}  // namespace

MissRatioCurve sweep_klru(const std::vector<Request>& trace,
                          const std::vector<double>& capacities, std::uint32_t k,
                          bool with_replacement, std::uint64_t seed) {
  MissRatioCurve curve;
  for (double c : capacities) {
    KLruConfig cfg;
    cfg.capacity = to_capacity(c);
    cfg.sample_size = k;
    cfg.with_replacement = with_replacement;
    cfg.seed = seed;
    KLruCache cache(cfg);
    for (const Request& r : trace) cache.access(r);
    curve.add_point(c, cache.miss_ratio());
  }
  return curve;
}

MissRatioCurve sweep_lru(const std::vector<Request>& trace,
                         const std::vector<double>& capacities) {
  MissRatioCurve curve;
  for (double c : capacities) {
    LruCache cache(to_capacity(c));
    for (const Request& r : trace) cache.access(r);
    curve.add_point(c, cache.miss_ratio());
  }
  return curve;
}

MissRatioCurve sweep_redis(const std::vector<Request>& trace,
                           const std::vector<double>& capacities,
                           RedisLruConfig base) {
  MissRatioCurve curve;
  for (double c : capacities) {
    base.capacity = to_capacity(c);
    RedisLruCache cache(base);
    for (const Request& r : trace) cache.access(r);
    curve.add_point(c, cache.miss_ratio());
  }
  return curve;
}

namespace {

template <typename SimulateOne>
MissRatioCurve parallel_curve(const std::vector<double>& capacities,
                              unsigned threads, SimulateOne&& simulate_one) {
  std::vector<double> ratios(capacities.size());
  parallel_for_index(
      capacities.size(), threads == 0 ? default_thread_count() : threads,
      [&](std::size_t i) { ratios[i] = simulate_one(capacities[i]); });
  MissRatioCurve curve;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    curve.add_point(capacities[i], ratios[i]);
  }
  return curve;
}

}  // namespace

MissRatioCurve sweep_klru_parallel(const std::vector<Request>& trace,
                                   const std::vector<double>& capacities,
                                   std::uint32_t k, bool with_replacement,
                                   std::uint64_t seed, unsigned threads) {
  return parallel_curve(capacities, threads, [&](double c) {
    KLruConfig cfg;
    cfg.capacity = to_capacity(c);
    cfg.sample_size = k;
    cfg.with_replacement = with_replacement;
    cfg.seed = seed;
    KLruCache cache(cfg);
    for (const Request& r : trace) cache.access(r);
    return cache.miss_ratio();
  });
}

MissRatioCurve sweep_lru_parallel(const std::vector<Request>& trace,
                                  const std::vector<double>& capacities,
                                  unsigned threads) {
  return parallel_curve(capacities, threads, [&](double c) {
    LruCache cache(to_capacity(c));
    for (const Request& r : trace) cache.access(r);
    return cache.miss_ratio();
  });
}

MissRatioCurve sweep_redis_parallel(const std::vector<Request>& trace,
                                    const std::vector<double>& capacities,
                                    RedisLruConfig base, unsigned threads) {
  return parallel_curve(capacities, threads, [&](double c) {
    RedisLruConfig cfg = base;
    cfg.capacity = to_capacity(c);
    RedisLruCache cache(cfg);
    for (const Request& r : trace) cache.access(r);
    return cache.miss_ratio();
  });
}

std::vector<double> capacity_grid_objects(const std::vector<Request>& trace,
                                          std::size_t n) {
  const std::size_t wss = count_distinct(trace);
  return evenly_spaced_sizes(static_cast<double>(wss), n);
}

std::vector<double> capacity_grid_bytes(const std::vector<Request>& trace,
                                        std::size_t n) {
  const std::uint64_t wss = working_set_bytes(trace);
  return evenly_spaced_sizes(static_cast<double>(wss), n);
}

}  // namespace krr
