#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/request.h"
#include "util/prng.h"

namespace krr {

/// Configuration for the Redis-style approximated-LRU simulator (§5.7).
struct RedisLruConfig {
  std::uint64_t capacity = 0;       ///< in Request::size units
  std::uint32_t maxmemory_samples = 5;  ///< Redis's per-eviction sample count
  std::uint32_t pool_size = 16;     ///< EVPOOL_SIZE in Redis
  /// Redis's default dictGetSomeKeys walks consecutive hash buckets from a
  /// random start, which does not produce independent uniform samples. With
  /// biased_sampling the simulator mimics that by taking a consecutive run
  /// of entries from a random offset; without, it samples uniformly
  /// (Redis's dictGetRandomKey alternative, footnote 3 of §5.7).
  bool biased_sampling = true;
  /// Redis's LRU clock has coarse resolution; idle times are computed from
  /// the access tick divided by this value (1 = exact ticks).
  std::uint64_t clock_resolution = 1;
  std::uint64_t seed = 1;
};

/// Simulator of Redis's approximated LRU eviction:
/// each eviction samples `maxmemory_samples` keys, merges them into a
/// persistent pool of up to `pool_size` candidates ordered by idle time,
/// and evicts the pool entry with the highest recorded idle time. Pool
/// entries are validated against the dict at eviction time, but their idle
/// times are *not* refreshed — a key touched after being pooled can still
/// be evicted on its stale idle time, one of the behaviours that makes
/// Redis deviate from ideal K-LRU.
class RedisLruCache {
 public:
  explicit RedisLruCache(const RedisLruConfig& config);

  /// Processes one reference; returns true on hit.
  bool access(const Request& req);

  bool contains(std::uint64_t key) const { return index_.count(key) != 0; }

  const RedisLruConfig& config() const noexcept { return config_; }
  std::uint64_t used() const noexcept { return used_; }
  std::size_t object_count() const noexcept { return entries_.size(); }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  double miss_ratio() const;

  void reset();

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t size;
    std::uint64_t last_access;  // coarsened by clock_resolution
  };
  struct PoolSlot {
    std::uint64_t key;
    std::uint64_t idle;  // recorded at sampling time (may go stale)
  };

  std::uint64_t clock_now() const { return tick_ / config_.clock_resolution; }
  void sample_into_pool();
  bool evict_one();
  void evict_at(std::size_t pos);

  RedisLruConfig config_;
  std::uint64_t used_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  Xoshiro256ss rng_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::vector<PoolSlot> pool_;  // sorted by idle ascending (best victim last)
};

}  // namespace krr
