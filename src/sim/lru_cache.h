#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/request.h"

namespace krr {

/// Exact LRU cache simulator.
///
/// Capacity is measured in the same units as Request::size: pass size 1 per
/// request for an object-count capacity, or real byte sizes for a byte
/// capacity. The recency list is an index-based intrusive doubly-linked
/// list over a node pool (no per-access allocation).
///
/// An object larger than the whole cache is bypassed: it counts as a miss
/// but is not admitted and evicts nothing.
class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity);

  /// Processes one reference; returns true on hit. A `set` to a resident
  /// key updates its size (and may trigger evictions if the cache
  /// overflows as a result).
  bool access(const Request& req);

  bool contains(std::uint64_t key) const { return index_.count(key) != 0; }

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept { return used_; }
  std::size_t object_count() const noexcept { return index_.size(); }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  double miss_ratio() const;

  /// Keys ordered most- to least-recently used (test/diagnostic helper).
  std::vector<std::uint64_t> recency_order() const;

  void reset();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::uint64_t key;
    std::uint32_t size;
    std::uint32_t prev;
    std::uint32_t next;
  };

  void unlink(std::uint32_t n);
  void push_front(std::uint32_t n);
  void evict_lru();
  std::uint32_t alloc_node();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
};

}  // namespace krr
