#pragma once

#include <cstdint>
#include <vector>

#include "sim/klru_cache.h"
#include "sim/redis_cache.h"
#include "trace/request.h"
#include "util/mrc.h"

namespace krr {

/// Miniature cache simulation (Waldspurger et al., ATC '17; related work
/// §6.2): the only general MRC technique for *non-stack* policies. A cache
/// of size C is emulated by a miniature cache of size C*R fed with the
/// spatially sampled (rate R) request stream; the miniature's miss ratio
/// estimates the full cache's.
///
/// For K-LRU this gives an independent cross-check of KRR (one miniature
/// pass per size vs KRR's single pass for all sizes) — the ablation bench
/// compares their accuracy and cost.
struct MiniatureConfig {
  double rate = 0.01;               ///< spatial sampling rate R
  std::uint64_t modulus = 1ULL << 24;
  std::uint64_t seed = 1;
  std::uint64_t min_capacity = 8;  ///< floor for scaled-down cache sizes
};

/// Emulates a K-LRU cache at each capacity via miniature simulation.
MissRatioCurve miniature_klru_mrc(const std::vector<Request>& trace,
                                  const std::vector<double>& capacities,
                                  std::uint32_t k, const MiniatureConfig& config);

/// Emulates a Redis-style approximated-LRU cache at each capacity;
/// `base.capacity` is overwritten per sweep point (scaled by R).
MissRatioCurve miniature_redis_mrc(const std::vector<Request>& trace,
                                   const std::vector<double>& capacities,
                                   RedisLruConfig base,
                                   const MiniatureConfig& config);

}  // namespace krr
