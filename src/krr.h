#pragma once

/// Umbrella header for the krr library: efficient modeling of random
/// sampling-based LRU caches (KRR stack algorithm, ICPP '21).
///
/// Typical use:
///
///   #include "krr.h"
///
///   krr::KrrProfilerConfig cfg;
///   cfg.k_sample = 5;          // Redis's default maxmemory-samples
///   cfg.sampling_rate = 0.001; // SHARDS-style spatial sampling
///   krr::KrrProfiler profiler(cfg);
///   for (const krr::Request& r : trace) profiler.access(r);
///   krr::MissRatioCurve mrc = profiler.mrc();

#include "baselines/aet.h"
#include "baselines/counter_stacks.h"
#include "baselines/hotl.h"
#include "baselines/hyperloglog.h"
#include "baselines/lru_stack.h"
#include "baselines/mimir.h"
#include "baselines/naive_stack.h"
#include "baselines/olken_tree.h"
#include "baselines/priority_stack.h"
#include "baselines/shards.h"
#include "baselines/shards_fixed.h"
#include "baselines/statstack.h"
#include "core/checkpoint.h"
#include "core/dlru.h"
#include "core/estimator.h"
#include "core/governor.h"
#include "core/krr_stack.h"
#include "core/profiler.h"
#include "core/sharded_profiler.h"
#include "core/size_tracker.h"
#include "core/spatial_filter.h"
#include "core/swap_sampler.h"
#include "core/windowed_profiler.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/klru_cache.h"
#include "sim/lru_cache.h"
#include "sim/miniature.h"
#include "sim/redis_cache.h"
#include "sim/sampled_priority_cache.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/request.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"
#include "trace/twitter.h"
#include "trace/workload_factory.h"
#include "trace/ycsb.h"
#include "trace/zipf.h"
#include "util/crc32.h"
#include "util/faultpoint.h"
#include "util/histogram.h"
#include "util/mrc.h"
#include "util/options.h"
#include "util/parallel.h"
#include "util/prng.h"
#include "util/retry.h"
#include "util/reuse_histogram.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table.h"
