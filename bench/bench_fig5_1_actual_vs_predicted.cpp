// Figure 5.1: actual vs predicted K-LRU MRCs for two representative traces
// (YCSB workload E with alpha = 1.5, and MSR src1), with K = 1, 4, 16.
// Series per trace: real K-LRU (simulated), KRR, KRR+Spatial, exact LRU.

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(300000);
  const std::vector<Workload> workloads = {make_ycsb_e(1.5, n, 10000),
                                           make_msr("src1", n, 25000, 1)};

  std::cout << "# Figure 5.1 series\nworkload,series,size,miss_ratio\n";
  Table summary({"workload", "K", "mae_krr", "mae_krr_spatial"});
  for (const Workload& w : workloads) {
    const auto sizes = capacity_grid_objects(w.trace, 20);
    LruStackProfiler lru;
    for (const Request& r : w.trace) lru.access(r);
    for (double s : sizes) {
      std::cout << w.name << ",LRU," << s << ',' << lru.mrc().eval(s) << '\n';
    }
    for (std::uint32_t k : {1, 4, 16}) {
      const MissRatioCurve actual = sweep_klru(w.trace, sizes, k, true, 900 + k);
      const MissRatioCurve krr_curve = run_krr(w.trace, k);
      const MissRatioCurve spatial =
          run_krr(w.trace, k, paper_rate(w.trace, 0.001, 4096));
      for (double s : sizes) {
        std::cout << w.name << ",real_KLRU_K" << k << ',' << s << ','
                  << actual.eval(s) << '\n';
        std::cout << w.name << ",KRR_K" << k << ',' << s << ','
                  << krr_curve.eval(s) << '\n';
        std::cout << w.name << ",KRR_spatial_K" << k << ',' << s << ','
                  << spatial.eval(s) << '\n';
      }
      summary.add(w.name, k, krr_curve.mae(actual, sizes),
                  spatial.mae(actual, sizes));
    }
  }
  print_table(summary, "Figure 5.1: prediction error summary");
  std::cout << "(paper shape: predicted curves are nearly indistinguishable\n"
               " from the simulated ones at every K)\n";
  return 0;
}
