// Table 5.4: running time on the merged "master" MSR trace with spatial
// sampling rate R = 0.001 — KRR with the top-down update, KRR with the
// backward update (averaged over K in {1, 2, 4, 8, 16, 32}), and SHARDS
// (exact-LRU baseline) on the same sampled stream.
//
// After the paper's rows, the table appends one `model:<name>` row per
// registered estimator (via EstimatorRegistry::list(), default options
// plus the paper's R where the model does spatial sampling), so a newly
// registered model is timed on the master trace without touching this
// bench. Reference oracles are skipped — O(N*M) on a two-million-record
// trace — and sharded adapters are covered by bench_parallel_scaling.

#include "bench_common.h"

#include "util/stopwatch.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(2000000);
  MsrMasterGenerator gen(7, /*footprint_scale=*/0.2, /*uniform_size=*/1);
  const auto trace = materialize(gen, n);
  const double rate = paper_rate(trace, 0.001, 2048);
  std::cout << "# Table 5.4: " << n << " requests, " << count_distinct(trace)
            << " distinct objects, R = " << rate << "\n";

  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};
  auto avg_time = [&](UpdateStrategy strategy) {
    double total = 0.0;
    for (std::uint32_t k : ks) {
      Stopwatch watch;
      KrrProfilerConfig cfg;
      cfg.k_sample = k;
      cfg.strategy = strategy;
      cfg.sampling_rate = rate;
      KrrProfiler profiler(cfg);
      for (const Request& r : trace) profiler.access(r);
      total += watch.seconds();
    }
    return total / static_cast<double>(ks.size());
  };

  Table table({"method", "time_sec", "note"});
  table.add("top_down+spatial", avg_time(UpdateStrategy::kTopDown),
            "avg over K in {1..32}");
  table.add("backward+spatial", avg_time(UpdateStrategy::kBackward),
            "avg over K in {1..32}");
  {
    Stopwatch watch;
    ShardsProfiler shards(rate);
    for (const Request& r : trace) shards.access(r);
    (void)shards.mrc();
    table.add("SHARDS", watch.seconds(), "exact-LRU baseline");
  }

  // Registry zoo rows: every registered model on the same master trace,
  // sampled models at the paper's R.
  for (const auto& info : krr::EstimatorRegistry::instance().list()) {
    if (info.caps.reference_oracle) continue;  // O(N*M) at this length
    if (info.caps.sharded) continue;           // see bench_parallel_scaling
    krr::EstimatorOptions options;
    if (info.caps.models_klru) options.set("k", "5");
    // "rate" is a common option key every model accepts; only set it where
    // the capability matrix says the model actually samples spatially.
    const bool rated = info.caps.spatial_sampling;
    if (rated) options.set("rate", std::to_string(rate));
    auto created = krr::EstimatorRegistry::instance().create(info.name, options);
    if (!created.is_ok()) throw krr::StatusError(created.status());
    auto est = std::move(*created);
    Stopwatch watch;
    for (const Request& r : trace) est->access(r);
    est->finish();
    (void)est->mrc();
    table.add("model:" + info.name, watch.seconds(),
              rated ? "registry defaults, paper R" : "registry defaults");
  }

  print_table(table, "Table 5.4: master trace running time");
  std::cout << "(paper shape: backward+spatial is close to SHARDS; top-down\n"
               " is about two times slower)\n";
  return 0;
}
