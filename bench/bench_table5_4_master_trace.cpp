// Table 5.4: running time on the merged "master" MSR trace with spatial
// sampling rate R = 0.001 — KRR with the top-down update, KRR with the
// backward update (averaged over K in {1, 2, 4, 8, 16, 32}), and SHARDS
// (exact-LRU baseline) on the same sampled stream.

#include "bench_common.h"

#include "util/stopwatch.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(2000000);
  MsrMasterGenerator gen(7, /*footprint_scale=*/0.2, /*uniform_size=*/1);
  const auto trace = materialize(gen, n);
  const double rate = paper_rate(trace, 0.001, 2048);
  std::cout << "# Table 5.4: " << n << " requests, " << count_distinct(trace)
            << " distinct objects, R = " << rate << "\n";

  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};
  auto avg_time = [&](UpdateStrategy strategy) {
    double total = 0.0;
    for (std::uint32_t k : ks) {
      Stopwatch watch;
      KrrProfilerConfig cfg;
      cfg.k_sample = k;
      cfg.strategy = strategy;
      cfg.sampling_rate = rate;
      KrrProfiler profiler(cfg);
      for (const Request& r : trace) profiler.access(r);
      total += watch.seconds();
    }
    return total / static_cast<double>(ks.size());
  };

  Table table({"method", "time_sec"});
  table.add("top_down+spatial", avg_time(UpdateStrategy::kTopDown));
  table.add("backward+spatial", avg_time(UpdateStrategy::kBackward));
  {
    Stopwatch watch;
    ShardsProfiler shards(rate);
    for (const Request& r : trace) shards.access(r);
    (void)shards.mrc();
    table.add("SHARDS", watch.seconds());
  }
  print_table(table, "Table 5.4: master trace running time");
  std::cout << "(paper shape: backward+spatial is close to SHARDS; top-down\n"
               " is about two times slower)\n";
  return 0;
}
