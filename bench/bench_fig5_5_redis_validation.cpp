// Figure 5.5: validating KRR against a Redis-style cache. For three MSR
// profiles (src2, web, proj), compare MRCs from:
//   * the Redis approximated-LRU simulator (16-slot eviction pool, biased
//     bucket-run sampling, maxmemory-samples = 5),
//   * the in-house ideal K-LRU simulator (K = 5),
//   * KRR + spatial sampling.
// The paper runs real Redis at 50 memory sizes; the substitution (see
// DESIGN.md) simulates Redis's eviction machinery faithfully, including the
// stale-idle eviction pool that makes it deviate slightly from ideal K-LRU.

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(250000);
  const std::size_t n_sizes = 50;
  const std::vector<Workload> workloads = {make_msr("src2", n, 10000, 1),
                                           make_msr("web", n, 12000, 1),
                                           make_msr("proj", n, 15000, 1)};

  std::cout << "# Figure 5.5 series\nworkload,series,size,miss_ratio\n";
  Table summary(
      {"workload", "mae_krr_vs_redis", "mae_sim_vs_redis", "mae_krr_vs_sim"});
  for (const Workload& w : workloads) {
    const auto sizes = capacity_grid_objects(w.trace, n_sizes);

    RedisLruConfig redis_cfg;
    redis_cfg.maxmemory_samples = 5;
    redis_cfg.seed = 21;
    const MissRatioCurve redis = sweep_redis(w.trace, sizes, redis_cfg);
    const MissRatioCurve ideal = sweep_klru(w.trace, sizes, 5, true, 23);
    const MissRatioCurve krr_curve =
        run_krr(w.trace, 5, paper_rate(w.trace, 0.001, 4096));

    for (double s : sizes) {
      std::cout << w.name << ",Redis," << s << ',' << redis.eval(s) << '\n';
      std::cout << w.name << ",in_house_sim," << s << ',' << ideal.eval(s) << '\n';
      std::cout << w.name << ",KRR_spatial," << s << ',' << krr_curve.eval(s)
                << '\n';
    }
    summary.add(w.name, krr_curve.mae(redis, sizes), ideal.mae(redis, sizes),
                krr_curve.mae(ideal, sizes));
  }
  print_table(summary, "Figure 5.5: Redis validation summary");
  std::cout << "(paper shape: KRR tracks the Redis curves closely; the ideal\n"
               " K-LRU simulator deviates slightly from Redis because Redis's\n"
               " pool-based sampler is not uniformly random)\n";
  return 0;
}
