// Section 5.6: space cost accounting. The KRR stack costs a fixed number of
// bytes per tracked (sampled) object; with spatial sampling rate R the
// resident overhead relative to the workload's byte working set is
// roughly (per_object_bytes * R) / mean_object_size. This bench reports the
// measured per-object accounting and the resulting overhead percentages for
// several workloads and sampling rates.

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(300000);
  std::vector<Workload> workloads = {make_msr("src1", n, 30000, 200),
                                     make_twitter("cluster26.0", n, 25000, 0),
                                     make_ycsb_c(0.99, n, 30000, 2, 200)};

  Table table({"workload", "R", "sampled_objects", "model_bytes",
               "workload_bytes", "overhead_percent"});
  for (const Workload& w : workloads) {
    const double wss_bytes = static_cast<double>(working_set_bytes(w.trace));
    for (double rate : {1.0, paper_rate(w.trace, 0.001, 512)}) {
      KrrProfilerConfig cfg;
      cfg.k_sample = 5;
      cfg.sampling_rate = rate;
      cfg.byte_granularity = true;
      KrrProfiler profiler(cfg);
      for (const Request& r : w.trace) profiler.access(r);
      const double model_bytes = static_cast<double>(profiler.space_overhead_bytes());
      table.add(w.name, rate, profiler.stack_depth(), model_bytes, wss_bytes,
                100.0 * model_bytes / wss_bytes);
    }
  }
  print_table(table, "Section 5.6: measured KRR space overhead");

  // The paper's §5.6 headline example, reproduced analytically from the
  // same per-object accounting: 100M distinct 200-byte objects, R = 0.001.
  const double per_object = 72.0;  // 68 B uni-KRR + 4 B size field
  const double example =
      100.0 * (per_object * 0.001) / 200.0;  // percent of working set
  std::cout << "analytic paper example: 100M objects x 200 B, R = 0.001 -> "
            << format_double(example, 3)
            << "% of the working set (paper reports 0.036%)\n";
  std::cout << "(paper shape: ~68-72 B per tracked object; with R = 0.001 the\n"
               " overhead is a small fraction of a percent of the working set\n"
               " for realistic object sizes)\n";
  return 0;
}
