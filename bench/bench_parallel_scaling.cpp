// bench_parallel_scaling — throughput scaling of the sharded profiling
// pipeline against thread count on a synthetic Zipf trace, plus the
// accuracy cost of sharding: the merged MRC's MAE against the serial model
// on the same trace.
//
//   bench_parallel_scaling [--model=krr] [--n=2000000] [--footprint=100000]
//                          [--alpha=0.9] [--repeats=3] [--shards=0]
//                          [--max-threads=8]
//
// --model selects which estimator scales: `krr` (default) runs the
// KrrProfiler/ShardedKrrProfiler pair directly; any other registry model
// with a `<model>_sharded` adapter (shards, shards_fixed, aet) runs its
// serial form as the baseline and the generic ShardedEstimator rows above
// it, so the zoo's fan-out overhead is measured on the same footing as the
// krr pipeline's.
//
// --shards=0 (default) gives every thread count its own shard count
// (S = T, the CLI default); a fixed --shards=S instead holds the model
// constant — then every row's MRC is identical by construction and only
// the wall clock varies. KRR_BENCH_SCALE multiplies --n as usual.
//
// The baseline row (threads=1) is the plain serial model, i.e. the exact
// configuration `krr_cli profile --model=<name>` runs by default, so
// "speedup" is end-user speedup, not sharded-vs-sharded.

#include <thread>

#include "bench_common.h"

using namespace krr;
using namespace krrbench;

namespace {

double sharded_krr_seconds(const std::vector<Request>& trace,
                           const KrrProfilerConfig& base, std::uint32_t shards,
                           unsigned threads, int repeats,
                           MissRatioCurve* out_mrc) {
  const double secs = median_seconds(repeats, [&] {
    ShardedKrrProfilerConfig cfg;
    cfg.base = base;
    cfg.shards = shards;
    cfg.threads = threads;
    ShardedKrrProfiler profiler(cfg);
    for (const Request& r : trace) profiler.access(r);
    profiler.finish();
    if (out_mrc != nullptr) *out_mrc = profiler.mrc();
  });
  return secs;
}

std::unique_ptr<MrcEstimator> make_estimator(const std::string& name,
                                             const EstimatorOptions& eopts) {
  auto created = EstimatorRegistry::instance().create(name, eopts);
  if (!created.is_ok()) throw StatusError(created.status());
  return std::move(*created);
}

double registry_seconds(const std::vector<Request>& trace,
                        const std::string& name, const EstimatorOptions& eopts,
                        int repeats, MissRatioCurve* out_mrc) {
  return median_seconds(repeats, [&] {
    auto est = make_estimator(name, eopts);
    for (const Request& r : trace) est->access(r);
    est->finish();
    if (out_mrc != nullptr) *out_mrc = est->mrc({});
  });
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string model = opts.get_string("model", "krr");
  const auto n = static_cast<std::size_t>(
      scaled(static_cast<std::uint64_t>(opts.get_int("n", 2000000))));
  const auto footprint =
      static_cast<std::uint64_t>(opts.get_int("footprint", 100000));
  const double alpha = opts.get_double("alpha", 0.9);
  const int repeats = static_cast<int>(opts.get_int("repeats", 3));
  const auto fixed_shards =
      static_cast<std::uint32_t>(opts.get_int("shards", 0));
  const auto max_threads =
      static_cast<unsigned>(opts.get_int("max-threads", 8));

  const std::string sharded_model =
      model == "krr" ? "krr_sharded" : model + "_sharded";
  if (model != "krr" && !EstimatorRegistry::instance().contains(sharded_model)) {
    std::cerr << "model '" << model
              << "' has no sharded adapter (see krr_cli models)\n";
    return 2;
  }

  ZipfianGenerator gen(footprint, alpha, 21, /*scrambled=*/true);
  const std::vector<Request> trace = materialize(gen, n);

  KrrProfilerConfig base;
  base.k_sample = 5;
  base.seed = 7;
  EstimatorOptions base_opts;
  base_opts.set("seed", "7");

  // Serial baseline: the default krr_cli profile path for this model.
  MissRatioCurve serial;
  double serial_secs;
  if (model == "krr") {
    serial_secs = median_seconds(repeats, [&] {
      KrrProfiler profiler(base);
      for (const Request& r : trace) profiler.access(r);
      serial = profiler.mrc();
    });
  } else {
    serial_secs = registry_seconds(trace, model, base_opts, repeats, &serial);
  }
  const std::vector<double> sizes = evenly_spaced_sizes(serial.max_size(), 40);

  Table table({"model", "threads", "shards", "seconds", "mrec_per_s",
               "speedup", "mae_vs_serial"});
  table.add(model, 1u, 1u, serial_secs,
            static_cast<double>(n) / serial_secs / 1e6, 1.0, 0.0);
  for (unsigned threads = 2; threads <= max_threads; threads *= 2) {
    const std::uint32_t shards = fixed_shards == 0 ? threads : fixed_shards;
    MissRatioCurve merged;
    double secs;
    if (model == "krr") {
      secs = sharded_krr_seconds(trace, base, shards, threads, repeats,
                                 &merged);
    } else {
      EstimatorOptions eopts = base_opts;
      eopts.set("shards", std::to_string(shards));
      eopts.set("threads", std::to_string(threads));
      secs = registry_seconds(trace, sharded_model, eopts, repeats, &merged);
    }
    table.add(model, threads, shards, secs,
              static_cast<double>(n) / secs / 1e6, serial_secs / secs,
              serial.mae(merged, sizes));
  }
  print_table(table, "sharded scaling, model=" + model + ", zipf:" +
                         format_double(alpha, 2) + " n=" + std::to_string(n));
  std::cout << "hardware_concurrency: "
            << std::thread::hardware_concurrency() << "\n";
  return 0;
}
