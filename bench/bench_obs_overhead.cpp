// bench_obs_overhead — the obs layer's own overhead budget, measured.
//
// Runs the end-to-end KrrProfiler over a synthetic Zipf trace three ways:
//   detached   instrumentation compiled in but no metrics attached
//              (the default library user's configuration)
//   attached   full PipelineMetrics wired in (what --metrics-out pays)
//   heartbeat  attached + a Heartbeat ticked per record (what --progress
//              pays on top)
//   traced     attached + a Tracer recording what --trace-out records: a
//              span around the profile loop and a stride-gated instant
//              event every 4096 records
// and reports throughput plus the relative slowdown. With --check it exits
// non-zero when the attached or traced overhead exceeds --max-overhead
// percent (default 5) — the `make bench_smoke` gate.
//
// When the library is compiled with -DKRR_METRICS=OFF every configuration
// collapses to the uninstrumented access path (attach_metrics is a no-op),
// so the reported overhead is ~0% — that is the compiled-out verification,
// not a measurement artifact; the binary prints which mode it is in.
//
//   bench_obs_overhead [--n=2000000] [--footprint=100000] [--alpha=0.9]
//                      [--k=5] [--rate=1.0] [--repeats=5]
//                      [--check] [--max-overhead=5]

#include <cstdio>
#include <sstream>

#include "bench_common.h"

namespace {

using namespace krr;
using namespace krrbench;

double run_profile(const std::vector<Request>& trace, double k, double rate,
                   obs::PipelineMetrics* metrics, obs::Heartbeat* heartbeat,
                   obs::Tracer* tracer = nullptr) {
  KrrProfilerConfig cfg;
  cfg.k_sample = k;
  cfg.sampling_rate = rate;
  cfg.seed = 7;
  KrrProfiler profiler(cfg);
  if (metrics != nullptr) profiler.attach_metrics(metrics);
  if (heartbeat != nullptr) {
    for (const Request& r : trace) {
      profiler.access(r);
      heartbeat->tick([&] {
        obs::HeartbeatSnapshot s;
        s.records = profiler.processed();
        return s;
      });
    }
  } else if (tracer != nullptr) {
    // What a --trace-out run pays: one span around the loop plus a
    // stride-gated instant (the same cadence the heartbeat uses).
    constexpr std::uint64_t kTraceStride = 4096;
    obs::ScopedTraceSpan span(tracer, "phase.profile", "phase");
    std::uint64_t since_instant = 0;
    for (const Request& r : trace) {
      profiler.access(r);
      if (++since_instant == kTraceStride) {
        since_instant = 0;
        tracer->instant("profile.progress", "bench", 0,
                        {{"records",
                          static_cast<double>(profiler.processed())}});
      }
    }
  } else {
    for (const Request& r : trace) profiler.access(r);
  }
  // Keep the run observable so the loop cannot be optimized away.
  return profiler.mrc().eval(1.0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(
      scaled(static_cast<std::uint64_t>(opts.get_int("n", 2000000))));
  const auto footprint =
      static_cast<std::uint64_t>(opts.get_int("footprint", 100000));
  const double alpha = opts.get_double("alpha", 0.9);
  const double k = opts.get_double("k", 5.0);
  const double rate = opts.get_double("rate", 1.0);
  const int repeats = static_cast<int>(opts.get_int("repeats", 5));
  const bool check = opts.has("check");
  const double max_overhead_pct = opts.get_double("max-overhead", 5.0);

  ZipfianGenerator gen(footprint, alpha, /*seed=*/21, /*scrambled=*/true);
  const std::vector<Request> trace = materialize(gen, n);

  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  // A muted heartbeat (stringstream sink, long interval): measures the
  // per-record tick cost, not terminal IO.
  std::ostringstream sink;

  // One warmup, then round-robin over the configurations so machine-state
  // drift (throttling, noisy neighbors) cancels out of the ratios.
  run_profile(trace, k, rate, nullptr, nullptr);
  const std::vector<double> medians = interleaved_median_seconds(
      repeats,
      {[&] { run_profile(trace, k, rate, nullptr, nullptr); },
       [&] { run_profile(trace, k, rate, &metrics, nullptr); },
       [&] {
         obs::Heartbeat hb(3600.0, sink);
         run_profile(trace, k, rate, &metrics, &hb);
       },
       [&] {
         obs::Tracer tracer;
         run_profile(trace, k, rate, &metrics, nullptr, &tracer);
       }});
  const double detached = medians[0];
  const double attached = medians[1];
  const double with_heartbeat = medians[2];
  const double traced = medians[3];

  const double nrec = static_cast<double>(n);
  const double attach_pct = (attached / detached - 1.0) * 100.0;
  const double hb_pct = (with_heartbeat / detached - 1.0) * 100.0;
  const double traced_pct = (traced / detached - 1.0) * 100.0;

  std::printf("obs overhead on zipf:%g (n=%zu, footprint=%llu, K=%g, R=%g)\n",
              alpha, n, static_cast<unsigned long long>(footprint), k, rate);
  std::printf("hot-path instrumentation compiled %s\n",
              obs::kHotPathInstrumentation ? "IN" : "OUT");
  Table table({"config", "median_s", "Mrec_per_s", "overhead_pct"});
  table.add("detached", detached, nrec / detached / 1e6, 0.0);
  table.add("attached", attached, nrec / attached / 1e6, attach_pct);
  table.add("attached+heartbeat", with_heartbeat, nrec / with_heartbeat / 1e6,
            hb_pct);
  table.add("attached+traced", traced, nrec / traced / 1e6, traced_pct);
  table.print(std::cout);

  if (check) {
    if (attach_pct > max_overhead_pct) {
      std::fprintf(stderr,
                   "FAIL: metrics-attached overhead %.2f%% exceeds budget "
                   "%.2f%%\n",
                   attach_pct, max_overhead_pct);
      return 1;
    }
    if (traced_pct > max_overhead_pct) {
      std::fprintf(stderr,
                   "FAIL: traced overhead %.2f%% exceeds budget %.2f%%\n",
                   traced_pct, max_overhead_pct);
      return 1;
    }
    std::printf(
        "OK: attached overhead %.2f%% and traced overhead %.2f%% within "
        "%.2f%% budget\n",
        attach_pct, traced_pct, max_overhead_pct);
  }
  return 0;
}
