// Micro-benchmarks (google-benchmark): per-access cost of the three stack
// update strategies across K and stack depth M. Complements the wall-clock
// Table 5.3 bench with isolated per-operation numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/lru_stack.h"
#include "baselines/olken_tree.h"
#include "core/krr_stack.h"
#include "sim/klru_cache.h"
#include "sim/redis_cache.h"
#include "trace/zipf.h"
#include "util/options.h"

namespace {

using krr::KrrStack;
using krr::KrrStackConfig;
using krr::UpdateStrategy;

// Pre-generates a Zipfian key stream over `items` keys, then measures the
// steady-state access cost of the KRR stack.
void run_stack_update(benchmark::State& state, UpdateStrategy strategy) {
  const auto items = static_cast<std::uint64_t>(state.range(0));
  const double k = static_cast<double>(state.range(1));

  krr::ZipfianGenerator gen(items, 0.8, /*seed=*/42, /*scrambled=*/true);
  std::vector<std::uint64_t> keys;
  keys.reserve(1 << 16);
  for (int i = 0; i < (1 << 16); ++i) keys.push_back(gen.next().key);

  KrrStackConfig cfg;
  cfg.k = k;
  cfg.strategy = strategy;
  cfg.seed = 7;
  KrrStack stack(cfg);
  // Warm the stack so accesses hit realistic depths.
  for (std::uint64_t key : keys) stack.access(key);

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.access(keys[i]));
    if (++i == keys.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Linear(benchmark::State& state) {
  run_stack_update(state, UpdateStrategy::kLinear);
}
void BM_TopDown(benchmark::State& state) {
  run_stack_update(state, UpdateStrategy::kTopDown);
}
void BM_Backward(benchmark::State& state) {
  run_stack_update(state, UpdateStrategy::kBackward);
}

// Args: {distinct items M, KRR exponent K}.
BENCHMARK(BM_Linear)->Args({1 << 12, 1})->Args({1 << 14, 5});
BENCHMARK(BM_TopDown)
    ->Args({1 << 12, 1})
    ->Args({1 << 14, 5})
    ->Args({1 << 16, 5})
    ->Args({1 << 16, 32});
BENCHMARK(BM_Backward)
    ->Args({1 << 12, 1})
    ->Args({1 << 14, 5})
    ->Args({1 << 16, 5})
    ->Args({1 << 16, 32});

// Simulator per-access cost: the constant the "Simulation" row of
// Table 5.3 pays per request per cache size.
void BM_KLruAccess(benchmark::State& state) {
  const auto items = static_cast<std::uint64_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  krr::ZipfianGenerator gen(items, 0.8, 3, true);
  std::vector<krr::Request> reqs;
  for (int i = 0; i < (1 << 16); ++i) reqs.push_back(gen.next());
  krr::KLruConfig cfg;
  cfg.capacity = items / 2;
  cfg.sample_size = k;
  cfg.seed = 5;
  krr::KLruCache cache(cfg);
  for (const krr::Request& r : reqs) cache.access(r);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(reqs[i]));
    if (++i == reqs.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KLruAccess)->Args({1 << 14, 5})->Args({1 << 14, 32});

// Redis-style eviction path (pool maintenance included).
void BM_RedisAccess(benchmark::State& state) {
  const auto items = static_cast<std::uint64_t>(state.range(0));
  krr::ZipfianGenerator gen(items, 0.8, 7, true);
  std::vector<krr::Request> reqs;
  for (int i = 0; i < (1 << 16); ++i) reqs.push_back(gen.next());
  krr::RedisLruConfig cfg;
  cfg.capacity = items / 2;
  cfg.seed = 5;
  krr::RedisLruCache cache(cfg);
  for (const krr::Request& r : reqs) cache.access(r);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(reqs[i]));
    if (++i == reqs.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RedisAccess)->Args({1 << 14});

// Exact LRU distance structures: Fenwick-over-time vs order-statistic
// treap (same quantity, different structure).
void BM_FenwickDistance(benchmark::State& state) {
  krr::ZipfianGenerator gen(1 << 14, 0.8, 9, true);
  std::vector<krr::Request> reqs;
  for (int i = 0; i < (1 << 16); ++i) reqs.push_back(gen.next());
  krr::LruStackProfiler profiler;
  for (const krr::Request& r : reqs) profiler.access(r);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.access(reqs[i]));
    if (++i == reqs.size()) i = 0;
  }
}
BENCHMARK(BM_FenwickDistance);

void BM_TreapDistance(benchmark::State& state) {
  krr::ZipfianGenerator gen(1 << 14, 0.8, 9, true);
  std::vector<krr::Request> reqs;
  for (int i = 0; i < (1 << 16); ++i) reqs.push_back(gen.next());
  krr::OlkenTreeProfiler profiler;
  for (const krr::Request& r : reqs) profiler.access(r);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.access(reqs[i]));
    if (++i == reqs.size()) i = 0;
  }
}
BENCHMARK(BM_TreapDistance);

}  // namespace
