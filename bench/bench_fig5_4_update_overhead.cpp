// Figure 5.4: average stack-update overhead, normalized against K = 1, for
// K in {1, 2, 4, 8, 16, 32}, per workload family (YCSB, MSR, Twitter).
// Corollary 1 predicts the expected number of swap positions — and thus the
// update cost — grows roughly linearly in K; the paper observes <= ~4x for
// K <= 16. Both wall time and the measured swap count are reported.

#include "bench_common.h"

#include "util/stopwatch.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(200000);

  struct Family {
    std::string name;
    std::vector<Workload> workloads;
  };
  std::vector<Family> families;
  families.push_back({"YCSB", {make_ycsb_c(0.99, n, 20000), make_ycsb_e(1.5, n, 8000)}});
  families.push_back({"MSR", {make_msr("src1", n, 15000, 1), make_msr("usr", n, 20000, 1)}});
  families.push_back({"TW",
                      {make_twitter("cluster26.0", n, 15000, 1),
                       make_twitter("cluster45.0", n, 20000, 1)}});

  Table table({"family", "K", "normalized_time", "normalized_swaps",
               "normalized_time_uncorrected"});
  std::cout << "# Figure 5.4\n";
  for (const Family& family : families) {
    std::vector<double> times, swaps, times_raw;
    for (std::uint32_t k : {1, 2, 4, 8, 16, 32}) {
      double family_time = 0.0, family_swaps = 0.0, family_raw = 0.0;
      for (const Workload& w : family.workloads) {
        {
          KrrStackConfig cfg;
          cfg.k = corrected_k(k);
          cfg.strategy = UpdateStrategy::kBackward;
          cfg.seed = 13;
          KrrStack stack(cfg);
          Stopwatch watch;
          for (const Request& r : w.trace) stack.access(r.key);
          family_time += watch.seconds();
          family_swaps += static_cast<double>(stack.swaps_performed());
        }
        {
          // Uncorrected exponent (k, not k^1.4): isolates how much of the
          // growth is the correction inflating the swap count.
          KrrStackConfig cfg;
          cfg.k = static_cast<double>(k);
          cfg.strategy = UpdateStrategy::kBackward;
          cfg.seed = 13;
          KrrStack stack(cfg);
          Stopwatch watch;
          for (const Request& r : w.trace) stack.access(r.key);
          family_raw += watch.seconds();
        }
      }
      times.push_back(family_time);
      swaps.push_back(family_swaps);
      times_raw.push_back(family_raw);
    }
    const std::uint32_t ks[] = {1, 2, 4, 8, 16, 32};
    for (std::size_t i = 0; i < times.size(); ++i) {
      table.add(family.name, ks[i], times[i] / times[0], swaps[i] / swaps[0],
                times_raw[i] / times_raw[0]);
    }
  }
  print_table(table, "Figure 5.4: stack update overhead normalized to K=1");
  std::cout << "(paper shape: overhead grows with K and stays moderate for\n"
               " K <= 16; beyond K ~ 32 LRU approximations like SHARDS become\n"
               " preferable. Our pure stack-update measurement grows closer to\n"
               " the theoretical K*logM swap count than the paper's <= 4x,\n"
               " whose per-access constant costs dominate; see EXPERIMENTS.md)\n";
  return 0;
}
