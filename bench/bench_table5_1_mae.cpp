// Table 5.1: average MAE of the KRR model (with and without spatial
// sampling) against the simulated K-LRU ground truth, for K in
// {1, 2, 4, 8, 16, 32}, averaged per workload family (MSR, YCSB, Twitter).
//
// Extends the paper's table with an ablation column: KRR without the
// K' = K^1.4 correction, showing where the correction matters.
//
// All workloads use uniform object sizes (the paper's 200 B convention;
// capacities are counted in objects so the constant cancels).

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(250000);

  struct Family {
    std::string name;
    std::vector<Workload> workloads;
  };
  std::vector<Family> families;
  families.push_back(
      {"MSR",
       {make_msr("src1", n, 15000, 1), make_msr("web", n, 12000, 1),
        make_msr("usr", n, 20000, 1), make_msr("rsrch", n, 8000, 1)}});
  families.push_back({"YCSB",
                      {make_ycsb_c(0.5, n, 20000), make_ycsb_c(0.99, n, 20000),
                       make_ycsb_e(1.5, n, 8000)}});
  families.push_back({"Twitter",
                      {make_twitter("cluster26.0", n, 15000, 1),
                       make_twitter("cluster34.1", n, 12000, 1),
                       make_twitter("cluster45.0", n, 20000, 1)}});

  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};
  Table table({"family", "K", "mae_krr", "mae_krr_spatial", "mae_no_correction"});

  for (const Family& family : families) {
    for (std::uint32_t k : ks) {
      double mae_krr = 0.0, mae_spatial = 0.0, mae_raw = 0.0;
      for (const Workload& w : family.workloads) {
        const auto sizes = capacity_grid_objects(w.trace, 20);
        const MissRatioCurve actual = sweep_klru(w.trace, sizes, k, true, 500 + k);
        mae_krr += run_krr(w.trace, k).mae(actual, sizes);
        mae_spatial +=
            run_krr(w.trace, k, paper_rate(w.trace, 0.001, 4096)).mae(actual, sizes);
        mae_raw += run_krr(w.trace, k, 1.0, false, UpdateStrategy::kBackward,
                           /*apply_correction=*/false)
                       .mae(actual, sizes);
      }
      const auto count = static_cast<double>(family.workloads.size());
      table.add(family.name, k, mae_krr / count, mae_spatial / count,
                mae_raw / count);
    }
  }
  print_table(table, "Table 5.1: average MAE per family and sampling size K");
  std::cout << "(paper shape: all MAEs well below 0.01 without sampling and a\n"
               " few thousandths with spatial sampling; the no-correction\n"
               " column degrades most at mid-range K on recency-driven traces)\n";
  return 0;
}
