// Table 5.1 (registry edition): average MAE of every registered model
// against its natural simulated ground truth, per workload family (MSR,
// YCSB, Twitter), driven by EstimatorRegistry::list() so a newly
// registered model shows up in the table without touching this bench.
//
// K-LRU-capable models (caps.models_klru) sweep K in {1, 2, 4, 8, 16, 32}
// against the simulated random-sampling K-LRU; every other model is scored
// once (K column 0) against the exact-LRU sweep. Reference oracles are
// skipped — they are the truth definitionally — and sharded adapters are
// covered by bench_parallel_scaling (their accuracy equals the base
// model's by the thread-invariance tests).
//
// The paper's ablation columns survive as extra krr variant rows:
// `krr@paper_rate` (spatial sampling at the paper's 0.001/8K-floor rate)
// and `krr@no_correction` (K' = K^1.4 correction disabled).
//
// All workloads use uniform object sizes (the paper's 200 B convention;
// capacities are counted in objects so the constant cancels).

#include "bench_common.h"

using namespace krr;
using namespace krrbench;

namespace {

MissRatioCurve run_model(const std::string& name, const EstimatorOptions& base,
                         const std::vector<Request>& trace,
                         const std::vector<double>& sizes) {
  auto created = EstimatorRegistry::instance().create(name, base);
  if (!created.is_ok()) throw StatusError(created.status());
  auto est = std::move(*created);
  for (const Request& r : trace) est->access(r);
  est->finish();
  return est->mrc(sizes);
}

}  // namespace

int main() {
  const std::size_t n = scaled(250000);

  struct Family {
    std::string name;
    std::vector<Workload> workloads;
  };
  std::vector<Family> families;
  families.push_back(
      {"MSR",
       {make_msr("src1", n, 15000, 1), make_msr("web", n, 12000, 1),
        make_msr("usr", n, 20000, 1), make_msr("rsrch", n, 8000, 1)}});
  families.push_back({"YCSB",
                      {make_ycsb_c(0.5, n, 20000), make_ycsb_c(0.99, n, 20000),
                       make_ycsb_e(1.5, n, 8000)}});
  families.push_back({"Twitter",
                      {make_twitter("cluster26.0", n, 15000, 1),
                       make_twitter("cluster34.1", n, 12000, 1),
                       make_twitter("cluster45.0", n, 20000, 1)}});

  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};

  // krr ablation variants (paper columns 2 and 3), expressed as common
  // option keys so they run through the same registry adapter.
  struct Variant {
    std::string label;
    std::string model;
    EstimatorOptions extra;
  };
  std::vector<Variant> krr_variants;
  {
    Variant spatial{"krr@paper_rate", "krr", {}};
    Variant raw{"krr@no_correction", "krr", {}};
    raw.extra.set("correction", "0");
    krr_variants.push_back(std::move(spatial));
    krr_variants.push_back(std::move(raw));
  }

  Table table({"family", "model", "K", "mae"});
  for (const Family& family : families) {
    // Truth curves are the expensive part: simulate once per workload (and
    // once per K for the K-LRU truth), reuse for every model.
    struct Prepared {
      const Workload* workload;
      std::vector<double> sizes;
      MissRatioCurve lru;
      std::vector<MissRatioCurve> klru;  // parallel to `ks`
    };
    std::vector<Prepared> prepared;
    for (const Workload& w : family.workloads) {
      Prepared p;
      p.workload = &w;
      p.sizes = capacity_grid_objects(w.trace, 20);
      p.lru = sweep_lru(w.trace, p.sizes);
      for (std::uint32_t k : ks) {
        p.klru.push_back(sweep_klru(w.trace, p.sizes, k, true, 500 + k));
      }
      prepared.push_back(std::move(p));
    }
    const auto count = static_cast<double>(family.workloads.size());

    for (const auto& info : EstimatorRegistry::instance().list()) {
      if (info.caps.reference_oracle) continue;  // the truth, at O(N*M) cost
      if (info.caps.sharded) continue;           // see bench_parallel_scaling
      if (info.caps.models_klru) {
        for (std::size_t ki = 0; ki < ks.size(); ++ki) {
          double mae = 0.0;
          for (const Prepared& p : prepared) {
            EstimatorOptions o;
            o.set("k", std::to_string(ks[ki]));
            mae += run_model(info.name, o, p.workload->trace, p.sizes)
                       .mae(p.klru[ki], p.sizes);
          }
          table.add(family.name, info.name, ks[ki], mae / count);
        }
      } else {
        double mae = 0.0;
        for (const Prepared& p : prepared) {
          mae += run_model(info.name, {}, p.workload->trace, p.sizes)
                     .mae(p.lru, p.sizes);
        }
        table.add(family.name, info.name, 0u, mae / count);
      }
    }

    for (const Variant& variant : krr_variants) {
      for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        double mae = 0.0;
        for (const Prepared& p : prepared) {
          EstimatorOptions o = variant.extra;
          o.set("k", std::to_string(ks[ki]));
          if (variant.label == "krr@paper_rate") {
            o.set("rate", std::to_string(
                              paper_rate(p.workload->trace, 0.001, 4096)));
          }
          mae += run_model(variant.model, o, p.workload->trace, p.sizes)
                     .mae(p.klru[ki], p.sizes);
        }
        table.add(family.name, variant.label, ks[ki], mae / count);
      }
    }
  }
  print_table(table,
              "Table 5.1: average MAE per family, model (registry zoo) and "
              "sampling size K");
  std::cout << "(paper shape: krr MAEs well below 0.01 without sampling and a\n"
               " few thousandths at the paper's spatial rate; the\n"
               " no-correction variant degrades most at mid-range K on\n"
               " recency-driven traces; LRU models are scored against the\n"
               " exact-LRU sweep, K column 0)\n";
  return 0;
}
