// Table 5.3: wall-clock cost of processing an MSR src1-style trace with
// K = 5 (Redis's default sampling size) under:
//   * simulation/interpolation (25 cache sizes, one simulated pass each),
//   * the naive linear Mattson stack ("Basic Stack"),
//   * the top-down stack update (Algorithm 1),
//   * the backward stack update (Algorithm 2),
//   * both fast updates with spatial sampling (R = 0.01, as in the paper's
//     footnote for this trace length).
//
// The naive stack is O(N*M); at the full trace length it would run for
// hours (the paper reports 53,606 s), so it is measured on a prefix and
// linearly extrapolated in N*M — the printed value is an estimate and is
// marked as such.
//
// Absolute times are hardware-specific; the reproduced *shape* is the
// ordering naive >> top-down > simulation > backward >> +spatial, with
// orders of magnitude between the extremes.
//
// After the paper's ablation rows, the table appends one `model:<name>`
// row per registered estimator (via EstimatorRegistry::list(), default
// options, K = 5 where the model samples), so a newly registered model is
// timed on the same trace without touching this bench. Reference oracles
// are skipped — the basic_stack rows above already pin the O(N*M)
// extreme on a prefix — and sharded adapters are covered by
// bench_parallel_scaling.

#include "bench_common.h"

#include "util/stopwatch.h"

namespace {

using namespace krrbench;

double time_profiler(const std::vector<Request>& trace, UpdateStrategy strategy,
                     double rate) {
  Stopwatch watch;
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.strategy = strategy;
  cfg.sampling_rate = rate;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  return watch.seconds();
}

}  // namespace

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(1000000);
  // src1 at paper scale is dominated by cold misses (large footprint
  // relative to the prefix length).
  const auto w = make_msr("src1", n, 400000, 1);
  const std::size_t distinct = count_distinct(w.trace);
  std::cout << "# Table 5.3: " << n << " requests of " << w.name << ", "
            << distinct << " distinct objects, K = 5\n";

  Table table({"method", "time_sec", "note"});

  {
    Stopwatch watch;
    const auto sizes = capacity_grid_objects(w.trace, 25);
    (void)sweep_klru(w.trace, sizes, 5, true, 3);
    table.add("simulation_25_sizes", watch.seconds(), "interpolation baseline");
  }

  {
    // Naive linear stack on a prefix, extrapolated in N*M.
    const std::size_t prefix = std::min<std::size_t>(w.trace.size(), 20000);
    std::vector<Request> head(w.trace.begin(),
                              w.trace.begin() + static_cast<std::ptrdiff_t>(prefix));
    Stopwatch watch;
    auto naive = GenericMattsonStack::krr(corrected_k(5.0), 5);
    for (const Request& r : head) naive.access(r);
    const double measured = watch.seconds();
    const std::size_t prefix_distinct = naive.depth();
    const double scale = (static_cast<double>(n) / static_cast<double>(prefix)) *
                         (static_cast<double>(distinct) /
                          static_cast<double>(prefix_distinct));
    table.add("basic_stack_prefix", measured,
              "measured on first " + std::to_string(prefix) + " requests");
    table.add("basic_stack_extrapolated", measured * scale,
              "O(N*M) linear extrapolation (estimate)");
  }

  table.add("top_down", time_profiler(w.trace, UpdateStrategy::kTopDown, 1.0),
            "Algorithm 1");
  table.add("backward", time_profiler(w.trace, UpdateStrategy::kBackward, 1.0),
            "Algorithm 2");
  table.add("top_down_spatial",
            time_profiler(w.trace, UpdateStrategy::kTopDown, 0.01), "R = 0.01");
  table.add("backward_spatial",
            time_profiler(w.trace, UpdateStrategy::kBackward, 0.01), "R = 0.01");

  // Registry zoo rows: one full ingest pass per registered model.
  for (const auto& info : krr::EstimatorRegistry::instance().list()) {
    if (info.caps.reference_oracle) continue;  // O(N*M); see basic_stack rows
    if (info.caps.sharded) continue;           // see bench_parallel_scaling
    krr::EstimatorOptions options;
    if (info.caps.models_klru) options.set("k", "5");
    auto created = krr::EstimatorRegistry::instance().create(info.name, options);
    if (!created.is_ok()) throw krr::StatusError(created.status());
    auto est = std::move(*created);
    Stopwatch watch;
    for (const Request& r : w.trace) est->access(r);
    est->finish();
    table.add("model:" + info.name, watch.seconds(),
              info.caps.models_klru ? "registry defaults, K = 5"
                                    : "registry defaults");
  }

  print_table(table, "Table 5.3: stack update efficiency");
  std::cout << "(paper shape: naive >> top-down > simulation > backward >>\n"
               " spatially sampled variants, spanning several orders of\n"
               " magnitude)\n";
  return 0;
}
