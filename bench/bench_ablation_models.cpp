// Ablation: every MRC technique in the repository on one workload —
// accuracy against the appropriate ground truth and one-pass cost.
//
//  * K-LRU target (K = 5): KRR (backward), KRR+spatial, and miniature
//    simulation (the only other technique that can model a non-stack
//    policy); plus the LRU-only baselines evaluated against the K-LRU
//    truth, quantifying §5.3's warning that exact-LRU models mispredict
//    K-LRU on Type A traces.
//  * exact-LRU target: Fenwick stack, Olken treap, SHARDS (fixed-rate and
//    fixed-size), AET, Counter Stacks.

#include "bench_common.h"

#include "sim/miniature.h"
#include "trace/workload_factory.h"
#include "util/stopwatch.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(300000);
  const auto w = make_msr("web", n, 15000, 1);  // Type A trace
  const auto sizes = capacity_grid_objects(w.trace, 20);
  const std::uint32_t k = 5;

  std::cout << "# Ablation on " << w.name << ": " << n << " requests, "
            << count_distinct(w.trace) << " objects, K = " << k << "\n\n";

  // ---- ground truths ----
  const MissRatioCurve klru_truth = sweep_klru(w.trace, sizes, k, true, 33);
  LruStackProfiler lru_exact;
  for (const Request& r : w.trace) lru_exact.access(r);
  const MissRatioCurve lru_truth = lru_exact.mrc();

  Table table({"model", "target", "mae", "pass_sec"});
  auto timed = [&](auto&& fn) {
    Stopwatch watch;
    MissRatioCurve curve = fn();
    return std::pair<MissRatioCurve, double>(std::move(curve), watch.seconds());
  };

  {
    auto [curve, sec] = timed([&] { return run_krr(w.trace, k); });
    table.add("KRR_backward", "K-LRU", curve.mae(klru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed(
        [&] { return run_krr(w.trace, k, paper_rate(w.trace, 0.001, 4096)); });
    table.add("KRR_backward_spatial", "K-LRU", curve.mae(klru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      MiniatureConfig cfg;
      cfg.rate = 0.2;
      return miniature_klru_mrc(w.trace, sizes, k, cfg);
    });
    table.add("miniature_sim_R0.2", "K-LRU", curve.mae(klru_truth, sizes), sec);
  }
  // LRU-only models scored against the K-LRU truth: the mismatch §5.3
  // warns about.
  table.add("exact_LRU_model", "K-LRU", lru_truth.mae(klru_truth, sizes), 0.0);

  {
    auto [curve, sec] = timed([&] {
      ShardsProfiler shards(paper_rate(w.trace, 0.001, 4096));
      for (const Request& r : w.trace) shards.access(r);
      return shards.mrc();
    });
    table.add("SHARDS_fixed_rate", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      ShardsFixedSizeProfiler shards(4096);
      for (const Request& r : w.trace) shards.access(r);
      return shards.mrc();
    });
    table.add("SHARDS_fixed_size_4k", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      AetProfiler aet;
      for (const Request& r : w.trace) aet.access(r);
      return aet.mrc(sizes);
    });
    table.add("AET", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      StatStackProfiler ss;
      for (const Request& r : w.trace) ss.access(r);
      return ss.mrc();
    });
    table.add("StatStack", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      HotlProfiler hotl;
      for (const Request& r : w.trace) hotl.access(r);
      return hotl.mrc(128);
    });
    table.add("HOTL_footprint", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      MimirProfiler mimir(128);
      for (const Request& r : w.trace) mimir.access(r);
      return mimir.mrc();
    });
    table.add("MIMIR_128", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      CounterStacksProfiler cs(std::max<std::uint64_t>(100, n / 400));
      for (const Request& r : w.trace) cs.access(r);
      return cs.mrc();
    });
    table.add("CounterStacks", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      OlkenTreeProfiler tree;
      for (const Request& r : w.trace) tree.access(r);
      return tree.mrc();
    });
    table.add("Olken_treap", "LRU", curve.mae(lru_truth, sizes), sec);
  }
  {
    auto [curve, sec] = timed([&] {
      LruStackProfiler fenwick;
      for (const Request& r : w.trace) fenwick.access(r);
      return fenwick.mrc();
    });
    table.add("Fenwick_stack", "LRU", curve.mae(lru_truth, sizes), sec);
  }

  print_table(table, "Model ablation: accuracy and one-pass cost");
  std::cout << "(expected shape: KRR ~1e-3 on the K-LRU target where the\n"
               " exact-LRU model is off by the Type A gap; LRU baselines all\n"
               " land near the exact curve on their own target)\n";
  return 0;
}
