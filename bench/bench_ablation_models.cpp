// Ablation: every MRC technique in the repository on one workload —
// accuracy against the appropriate ground truth and one-pass cost.
//
// The model sweep is registry-driven: every MrcEstimator registered in
// EstimatorRegistry runs through the identical feed/finish/mrc loop, scored
// against the ground truth its capability flags select:
//
//  * models_klru (KRR family, naive stack): K-LRU simulation at K = 5 —
//    plus a KRR+spatial row and miniature simulation (the only other
//    technique that can model a non-stack policy).
//  * everything else (exact-LRU family): the exact LRU stack curve; these
//    are additionally scored against the K-LRU truth in the
//    exact_LRU_model row, quantifying §5.3's warning that exact-LRU
//    models mispredict K-LRU on Type A traces.
//
// reference_oracle models (O(M) per access) are skipped — they would take
// hours at bench scale and their accuracy is covered by `ctest -L models`.

#include "bench_common.h"

#include <map>

#include "sim/miniature.h"
#include "trace/workload_factory.h"
#include "util/stopwatch.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(300000);
  const auto w = make_msr("web", n, 15000, 1);  // Type A trace
  const auto sizes = capacity_grid_objects(w.trace, 20);
  const std::uint32_t k = 5;

  std::cout << "# Ablation on " << w.name << ": " << n << " requests, "
            << count_distinct(w.trace) << " objects, K = " << k << "\n\n";

  // ---- ground truths ----
  const MissRatioCurve klru_truth = sweep_klru(w.trace, sizes, k, true, 33);
  LruStackProfiler lru_exact;
  for (const Request& r : w.trace) lru_exact.access(r);
  const MissRatioCurve lru_truth = lru_exact.mrc();

  Table table({"model", "target", "mae", "pass_sec"});

  // Historic knob choices for the baselines, expressed as registry options
  // (same numbers the pre-registry ablation hard-coded).
  const double shards_rate = paper_rate(w.trace, 0.001, 4096);
  std::map<std::string, EstimatorOptions> overrides;
  overrides["shards"].set("rate", format_double(shards_rate, 8));
  overrides["shards_fixed"].set("max_objects", "4096");
  overrides["counter_stacks"].set(
      "interval", std::to_string(std::max<std::uint64_t>(100, n / 400)));
  overrides["mimir"].set("buckets", "128");

  auto& registry = EstimatorRegistry::instance();
  std::vector<std::string> skipped;
  for (const EstimatorInfo& info : registry.list()) {
    if (info.caps.reference_oracle) {
      skipped.push_back(info.name);
      continue;
    }
    EstimatorOptions options;
    options.set("k", std::to_string(k));
    if (const auto it = overrides.find(info.name); it != overrides.end()) {
      options.merge(it->second);
    }
    auto est = registry.create(info.name, options);
    if (!est.is_ok()) {
      std::cerr << info.name << ": " << est.status().message() << "\n";
      return 1;
    }
    Stopwatch watch;
    for (const Request& r : w.trace) (*est)->access(r);
    (*est)->finish();
    const MissRatioCurve curve = (*est)->mrc(sizes);
    const double sec = watch.seconds();
    const MissRatioCurve& truth = info.caps.models_klru ? klru_truth : lru_truth;
    table.add(info.name, info.caps.models_klru ? "K-LRU" : "LRU",
              curve.mae(truth, sizes), sec);
  }

  // Non-registry techniques and ablation-specific configurations.
  {
    Stopwatch watch;
    const MissRatioCurve curve = run_krr(w.trace, k, shards_rate);
    table.add("krr+spatial", "K-LRU", curve.mae(klru_truth, sizes),
              watch.seconds());
  }
  {
    Stopwatch watch;
    MiniatureConfig cfg;
    cfg.rate = 0.2;
    const MissRatioCurve curve = miniature_klru_mrc(w.trace, sizes, k, cfg);
    table.add("miniature_sim_R0.2", "K-LRU", curve.mae(klru_truth, sizes),
              watch.seconds());
  }
  // The exact-LRU curve scored against the K-LRU truth: the mismatch §5.3
  // warns about.
  table.add("exact_LRU_model", "K-LRU", lru_truth.mae(klru_truth, sizes), 0.0);

  print_table(table, "Model ablation: accuracy and one-pass cost");
  if (!skipped.empty()) {
    std::cout << "(skipped reference oracles:";
    for (const auto& name : skipped) std::cout << ' ' << name;
    std::cout << " — O(M) per access; covered by ctest -L models)\n";
  }
  std::cout << "(expected shape: krr ~1e-3 on the K-LRU target where the\n"
               " exact_LRU_model is off by the Type A gap; LRU baselines all\n"
               " land near the exact curve on their own target)\n";
  return 0;
}
