// Figure 5.3: accuracy and time of variable-size-aware KRR on eight
// variable-size traces (4 MSR + 4 Twitter). For each trace: the exact
// byte-capacity K-LRU MRC, the uniform-size model (uni-KRR, byte axis via
// the mean object size) and var-KRR, plus the wall-clock cost of each model.
//
// The paper's panel (A) shows traces where uni-KRR's uniform-size
// assumption visibly mispredicts while var-KRR tracks the truth.

#include "bench_common.h"

#include "util/stopwatch.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(200000);

  struct Entry {
    Workload workload;
    std::uint32_t k;
  };
  std::vector<Entry> entries;
  entries.push_back({make_msr("rsrch", n, 6000, 0), 8});
  entries.push_back({make_msr("src1", n, 15000, 0), 8});
  entries.push_back({make_msr("web", n, 10000, 0), 8});
  entries.push_back({make_msr("hm", n, 8000, 0), 8});
  entries.push_back({make_twitter("cluster34.1", n, 10000, 0), 16});
  entries.push_back({make_twitter("cluster26.0", n, 10000, 0), 16});
  entries.push_back({make_twitter("cluster45.0", n, 12000, 0), 16});
  entries.push_back({make_twitter("cluster52.7", n, 8000, 0), 16});

  std::cout << "# Figure 5.3 series\nworkload,series,size_bytes,miss_ratio\n";
  Table table({"workload", "K", "mae_uniKRR", "mae_varKRR", "uniKRR_sec",
               "varKRR_sec"});
  for (const Entry& e : entries) {
    const auto& trace = e.workload.trace;
    const auto sizes = capacity_grid_bytes(trace, 16);
    const MissRatioCurve actual = sweep_klru(trace, sizes, e.k, true, 41);

    Stopwatch uni_watch;
    KrrProfilerConfig uni_cfg;
    uni_cfg.k_sample = e.k;
    KrrProfiler uni(uni_cfg);
    for (const Request& r : trace) uni.access(r);
    const double uni_sec = uni_watch.seconds();
    // uni-KRR is an object-count curve; map to bytes via mean object size.
    const double mean_size = static_cast<double>(working_set_bytes(trace)) /
                             static_cast<double>(count_distinct(trace));
    const MissRatioCurve uni_objects = uni.mrc();
    MissRatioCurve uni_curve;
    for (const auto& p : uni_objects.points()) {
      uni_curve.add_point(p.size * mean_size, p.miss_ratio);
    }

    Stopwatch var_watch;
    const MissRatioCurve var_curve =
        run_krr(trace, e.k, 1.0, /*byte_granularity=*/true);
    const double var_sec = var_watch.seconds();

    for (double s : sizes) {
      std::cout << e.workload.name << ",exact_KLRU," << s << ',' << actual.eval(s)
                << '\n';
      std::cout << e.workload.name << ",uniKRR," << s << ',' << uni_curve.eval(s)
                << '\n';
      std::cout << e.workload.name << ",varKRR," << s << ',' << var_curve.eval(s)
                << '\n';
    }
    table.add(e.workload.name, e.k, uni_curve.mae(actual, sizes),
              var_curve.mae(actual, sizes), uni_sec, var_sec);
  }
  print_table(table, "Figure 5.3: uni-KRR vs var-KRR accuracy and time");
  std::cout << "(paper shape: var-KRR tracks the true byte-level MRC with\n"
               " negligible error at a modest constant-factor time overhead;\n"
               " uni-KRR deviates on strongly variable-size traces)\n";
  return 0;
}
