#pragma once

// Shared helpers for the table/figure reproduction benches. Each bench is a
// standalone binary that prints the same rows/series the paper reports.
// Trace lengths honor KRR_BENCH_SCALE (default 1) so `KRR_BENCH_SCALE=10`
// approaches paper-sized runs while the default stays laptop-friendly.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "krr.h"

namespace krrbench {

using namespace krr;

/// One named workload with a fixed-length materialized trace.
struct Workload {
  std::string name;
  std::vector<Request> trace;
};

/// Evaluation trace families (scaled-down versions of the paper's §5.2
/// setup). `uniform_size` != 0 forces fixed object sizes.
inline Workload make_msr(const std::string& profile, std::size_t n,
                         std::uint64_t footprint, std::uint32_t uniform_size,
                         std::uint64_t seed = 1) {
  MsrGenerator gen(msr_profile(profile), seed, footprint, uniform_size);
  return Workload{gen.name(), materialize(gen, n)};
}

inline Workload make_ycsb_c(double alpha, std::size_t n, std::uint64_t records,
                            std::uint64_t seed = 2, std::uint32_t object_size = 1) {
  YcsbWorkloadC gen(records, alpha, seed, object_size);
  return Workload{gen.name(), materialize(gen, n)};
}

inline Workload make_ycsb_e(double alpha, std::size_t n, std::uint64_t records,
                            std::uint64_t seed = 3) {
  YcsbWorkloadE gen(records, alpha, seed);
  return Workload{gen.name(), materialize(gen, n)};
}

inline Workload make_twitter(const std::string& profile, std::size_t n,
                             std::uint64_t keys, std::uint32_t uniform_size,
                             std::uint64_t seed = 4) {
  TwitterGenerator gen(twitter_profile(profile), seed, keys, uniform_size);
  return Workload{gen.name(), materialize(gen, n)};
}

/// Runs the KRR profiler over a trace and returns the predicted MRC.
inline MissRatioCurve run_krr(const std::vector<Request>& trace, double k_sample,
                              double sampling_rate = 1.0,
                              bool byte_granularity = false,
                              UpdateStrategy strategy = UpdateStrategy::kBackward,
                              bool apply_correction = true, std::uint64_t seed = 11) {
  KrrProfilerConfig cfg;
  cfg.k_sample = k_sample;
  cfg.sampling_rate = sampling_rate;
  cfg.byte_granularity = byte_granularity;
  cfg.strategy = strategy;
  cfg.apply_correction = apply_correction;
  cfg.seed = seed;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  return profiler.mrc();
}

/// Median wall-clock seconds of `fn()` over `repeats` runs (ScopedTimer
/// based). The median resists scheduler noise better than min or mean —
/// use it whenever a bench compares two configurations against a
/// percent-level threshold (e.g. the bench_smoke 5% obs-overhead gate).
template <typename Fn>
double median_seconds(int repeats, Fn&& fn) {
  std::vector<double> runs;
  runs.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    double seconds = 0.0;
    {
      ScopedTimer timer(seconds);
      fn();
    }
    runs.push_back(seconds);
  }
  std::sort(runs.begin(), runs.end());
  const std::size_t mid = runs.size() / 2;
  if (runs.size() % 2 == 1) return runs[mid];
  return 0.5 * (runs[mid - 1] + runs[mid]);
}

/// Interleaved medians: one timed pass of every configuration per round,
/// `repeats` rounds, median taken per configuration. Because each round
/// sees the same machine state, slow drift (thermal throttling, a noisy
/// neighbor ramping up) lands on every configuration equally instead of
/// biasing whichever one happened to run last — essential when the
/// quantity of interest is a percent-level ratio between configurations,
/// as in the bench_smoke obs-overhead gate.
inline std::vector<double> interleaved_median_seconds(
    int repeats, const std::vector<std::function<void()>>& configs) {
  std::vector<std::vector<double>> runs(configs.size());
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      double seconds = 0.0;
      {
        ScopedTimer timer(seconds);
        configs[c]();
      }
      runs[c].push_back(seconds);
    }
  }
  std::vector<double> medians;
  medians.reserve(runs.size());
  for (auto& r : runs) {
    std::sort(r.begin(), r.end());
    const std::size_t mid = r.size() / 2;
    medians.push_back(r.size() % 2 == 1 ? r[mid]
                                        : 0.5 * (r[mid - 1] + r[mid]));
  }
  return medians;
}

/// Spatial sampling rate with the paper's 8K-sampled-objects floor applied
/// to this trace.
inline double paper_rate(const std::vector<Request>& trace, double base = 0.001,
                         std::uint64_t min_objects = 8192) {
  return adaptive_sampling_rate(base, count_distinct(trace), min_objects);
}

/// Prints a table twice: human-readable and CSV (for plotting).
inline void print_table(const Table& table, const std::string& title) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "\n[csv]\n";
  table.print_csv(std::cout);
  std::cout << std::endl;
}

/// Prints one MRC as labeled CSV series rows: series,size,miss_ratio.
inline void print_series(const std::string& series, const MissRatioCurve& curve,
                         const std::vector<double>& sizes) {
  for (double s : sizes) {
    std::cout << series << ',' << s << ',' << curve.eval(s) << '\n';
  }
}

}  // namespace krrbench
