// Figure 1.1: MRCs of the MSR "web" workload under K-LRU with
// K = 1, 2, 4, 8, 16, 32 — the motivating observation that the sampling
// size K moves the whole miss ratio curve, so exact-LRU MRC techniques
// cannot model a K-LRU cache.
//
// Output: one CSV series per K plus an exact-LRU reference, and a summary
// table of the K=1-vs-LRU gap at each evaluated size.

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(400000);
  const auto w = make_msr("web", n, 20000, /*uniform_size=*/1);
  const auto sizes = capacity_grid_objects(w.trace, 20);

  std::cout << "# Figure 1.1: " << w.name << " K-LRU MRCs (" << n
            << " requests, " << count_distinct(w.trace) << " objects)\n";
  std::cout << "series,size,miss_ratio\n";

  std::vector<std::pair<std::string, MissRatioCurve>> curves;
  for (std::uint32_t k : {1, 2, 4, 8, 16, 32}) {
    curves.emplace_back("K=" + std::to_string(k),
                        sweep_klru(w.trace, sizes, k, true, 100 + k));
  }
  {
    LruStackProfiler lru;
    for (const Request& r : w.trace) lru.access(r);
    curves.emplace_back("LRU", lru.mrc());
  }
  for (const auto& [name, curve] : curves) print_series(name, curve, sizes);

  // Summary: the miss-ratio spread across K at each size (the "gap" the
  // paper motivates with).
  Table gap({"size", "K=1", "K=32", "LRU", "spread_K1_vs_LRU"});
  const auto& k1 = curves.front().second;
  const auto& lru = curves.back().second;
  const auto& k32 = curves[5].second;
  double max_spread = 0.0;
  for (double s : sizes) {
    const double spread = k1.eval(s) - lru.eval(s);
    max_spread = std::max(max_spread, std::abs(spread));
    gap.add(s, k1.eval(s), k32.eval(s), lru.eval(s), spread);
  }
  print_table(gap, "K sensitivity of msr_web");
  std::cout << "max |K=1 - LRU| gap: " << max_spread
            << "  (paper: a significant gap motivates modeling K-LRU)\n";
  return 0;
}
