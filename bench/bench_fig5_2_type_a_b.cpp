// Figure 5.2: MRCs of representative traces under K-LRU (K = 1..32) and
// exact LRU, separated into Type A (K moves the curve: a large LRU-vs-RR
// gap) and Type B (curves nearly coincide for every K).
//
// The bench prints per-trace series and a classification table using the
// max |K=1 - LRU| gap, and checks the expected type of each trace.

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(250000);

  struct Entry {
    Workload workload;
    char expected_type;  // 'A' or 'B'
  };
  std::vector<Entry> entries;
  entries.push_back({make_ycsb_e(1.5, n, 8000), 'A'});
  entries.push_back({make_msr("src1", n, 15000, 1), 'A'});
  entries.push_back({make_msr("src2", n, 10000, 1), 'A'});
  entries.push_back({make_msr("web", n, 12000, 1), 'A'});
  entries.push_back({make_msr("proj", n, 18000, 1), 'A'});
  entries.push_back({make_twitter("cluster34.1", n, 12000, 1), 'A'});
  entries.push_back({make_msr("usr", n, 20000, 1), 'B'});
  entries.push_back({make_ycsb_c(0.99, n, 20000), 'B'});
  entries.push_back({make_twitter("cluster45.0", n, 20000, 1), 'B'});

  std::cout << "# Figure 5.2 series\nworkload,series,size,miss_ratio\n";
  Table table({"workload", "max_gap_K1_vs_LRU", "type", "expected"});
  // A trace is Type A when some cache size shows a substantial spread
  // between random replacement (K=1) and exact LRU.
  constexpr double kTypeAThreshold = 0.05;
  for (const Entry& e : entries) {
    const auto sizes = capacity_grid_objects(e.workload.trace, 16);
    LruStackProfiler lru;
    for (const Request& r : e.workload.trace) lru.access(r);
    const MissRatioCurve lru_curve = lru.mrc();
    for (double s : sizes) {
      std::cout << e.workload.name << ",LRU," << s << ',' << lru_curve.eval(s)
                << '\n';
    }
    double max_gap = 0.0;
    for (std::uint32_t k : {1, 2, 4, 8, 16, 32}) {
      const MissRatioCurve curve = sweep_klru(e.workload.trace, sizes, k, true, 70 + k);
      for (double s : sizes) {
        std::cout << e.workload.name << ",K=" << k << ',' << s << ','
                  << curve.eval(s) << '\n';
      }
      if (k == 1) {
        for (double s : sizes) {
          max_gap = std::max(max_gap, std::abs(curve.eval(s) - lru_curve.eval(s)));
        }
      }
    }
    const char type = max_gap > kTypeAThreshold ? 'A' : 'B';
    table.add(e.workload.name, max_gap, std::string(1, type),
              std::string(1, e.expected_type));
  }
  print_table(table, "Figure 5.2: Type A vs Type B classification");
  std::cout << "(paper shape: scan/drift-driven traces are Type A, IRM-like\n"
               " zipf traces are Type B; LRU-only models are unreliable for\n"
               " Type A traces at small K)\n";
  return 0;
}
