// Table 5.2 (registry edition): MAE of every byte-granularity-capable
// registered model against byte-capacity simulation on variable-object-size
// MSR and Twitter workloads, driven by EstimatorRegistry::list() so a new
// model with caps.byte_granularity joins the table automatically.
//
// K-LRU-capable models sweep K in {1, 2, 4, 8, 16, 32} against the
// byte-capacity random-sampling K-LRU sweep; every other byte-capable
// model is scored once (K column 0) against the byte-capacity exact-LRU
// sweep. Reference oracles and sharded adapters are skipped for the same
// reasons as Table 5.1.
//
// The paper's spatial-sampling ablation survives as the extra
// `krr@paper_rate` variant rows (var-KRR at the paper's 0.001/8K-floor
// spatial rate); the plain `krr` rows are the paper's var-KRR column.

#include "bench_common.h"

using namespace krr;
using namespace krrbench;

namespace {

MissRatioCurve run_model(const std::string& name, const EstimatorOptions& base,
                         const std::vector<Request>& trace,
                         const std::vector<double>& sizes) {
  auto created = EstimatorRegistry::instance().create(name, base);
  if (!created.is_ok()) throw StatusError(created.status());
  auto est = std::move(*created);
  for (const Request& r : trace) est->access(r);
  est->finish();
  return est->mrc(sizes);
}

}  // namespace

int main() {
  const std::size_t n = scaled(200000);

  struct Family {
    std::string name;
    std::vector<Workload> workloads;
  };
  std::vector<Family> families;
  families.push_back({"MSR",
                      {make_msr("src2", n, 8000, 0), make_msr("web", n, 10000, 0),
                       make_msr("hm", n, 8000, 0)}});
  families.push_back({"Twitter",
                      {make_twitter("cluster26.0", n, 10000, 0),
                       make_twitter("cluster52.7", n, 8000, 0)}});

  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};

  Table table({"family", "model", "K", "mae"});
  for (const Family& family : families) {
    // Byte-capacity truth curves, simulated once per workload (and once
    // per K for the K-LRU truth) and reused for every model.
    struct Prepared {
      const Workload* workload;
      std::vector<double> sizes;  // byte capacities
      MissRatioCurve lru;
      std::vector<MissRatioCurve> klru;  // parallel to `ks`
    };
    std::vector<Prepared> prepared;
    for (const Workload& w : family.workloads) {
      Prepared p;
      p.workload = &w;
      p.sizes = capacity_grid_bytes(w.trace, 16);
      p.lru = sweep_lru(w.trace, p.sizes);
      for (std::uint32_t k : ks) {
        p.klru.push_back(sweep_klru(w.trace, p.sizes, k, true, 300 + k));
      }
      prepared.push_back(std::move(p));
    }
    const auto count = static_cast<double>(family.workloads.size());

    for (const auto& info : EstimatorRegistry::instance().list()) {
      if (!info.caps.byte_granularity) continue;  // object-count models only
      if (info.caps.reference_oracle) continue;   // the truth, at O(N*M) cost
      if (info.caps.sharded) continue;            // see bench_parallel_scaling
      if (info.caps.models_klru) {
        for (std::size_t ki = 0; ki < ks.size(); ++ki) {
          double mae = 0.0;
          for (const Prepared& p : prepared) {
            EstimatorOptions o;
            o.set("bytes", "1");
            o.set("k", std::to_string(ks[ki]));
            mae += run_model(info.name, o, p.workload->trace, p.sizes)
                       .mae(p.klru[ki], p.sizes);
          }
          table.add(family.name, info.name, ks[ki], mae / count);
        }
      } else {
        double mae = 0.0;
        for (const Prepared& p : prepared) {
          EstimatorOptions o;
          o.set("bytes", "1");
          mae += run_model(info.name, o, p.workload->trace, p.sizes)
                     .mae(p.lru, p.sizes);
        }
        table.add(family.name, info.name, 0u, mae / count);
      }
    }

    // The paper's spatial-sampling ablation column.
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      double mae = 0.0;
      for (const Prepared& p : prepared) {
        EstimatorOptions o;
        o.set("bytes", "1");
        o.set("k", std::to_string(ks[ki]));
        o.set("rate",
              std::to_string(paper_rate(p.workload->trace, 0.001, 4096)));
        mae += run_model("krr", o, p.workload->trace, p.sizes)
                   .mae(p.klru[ki], p.sizes);
      }
      table.add(family.name, "krr@paper_rate", ks[ki], mae / count);
    }
  }
  print_table(table,
              "Table 5.2: var-model MAE on variable-size workloads "
              "(byte-capacity truth, registry zoo)");
  std::cout << "(paper shape: var-KRR MAE around 1e-3 without sampling and a\n"
               " few thousandths at the paper's spatial rate, at every K;\n"
               " exact-LRU byte models sit near zero in the K=0 rows)\n";
  return 0;
}
