// Table 5.2: MAE of the variable-object-size-aware KRR (var-KRR), with and
// without spatial sampling, against byte-capacity K-LRU simulation, for
// K in {1, 2, 4, 8, 16, 32}, averaged over variable-size MSR and Twitter
// workloads.

#include "bench_common.h"

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(200000);

  std::vector<Workload> msr = {make_msr("src2", n, 8000, 0),
                               make_msr("web", n, 10000, 0),
                               make_msr("hm", n, 8000, 0)};
  std::vector<Workload> twitter = {make_twitter("cluster26.0", n, 10000, 0),
                                   make_twitter("cluster52.7", n, 8000, 0)};

  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};
  Table table({"K", "msr_varKRR", "twitter_varKRR", "msr_varKRR_spatial",
               "twitter_varKRR_spatial"});

  auto family_mae = [&](const std::vector<Workload>& family, std::uint32_t k,
                        bool spatial) {
    double total = 0.0;
    for (const Workload& w : family) {
      const auto sizes = capacity_grid_bytes(w.trace, 16);
      const MissRatioCurve actual = sweep_klru(w.trace, sizes, k, true, 300 + k);
      const double rate = spatial ? paper_rate(w.trace, 0.001, 4096) : 1.0;
      total += run_krr(w.trace, k, rate, /*byte_granularity=*/true).mae(actual, sizes);
    }
    return total / static_cast<double>(family.size());
  };

  double sum_msr = 0.0, sum_tw = 0.0, sum_msr_sp = 0.0, sum_tw_sp = 0.0;
  for (std::uint32_t k : ks) {
    const double m = family_mae(msr, k, false);
    const double t = family_mae(twitter, k, false);
    const double ms = family_mae(msr, k, true);
    const double ts = family_mae(twitter, k, true);
    sum_msr += m;
    sum_tw += t;
    sum_msr_sp += ms;
    sum_tw_sp += ts;
    table.add(k, m, t, ms, ts);
  }
  const auto kn = static_cast<double>(ks.size());
  table.add("avg", sum_msr / kn, sum_tw / kn, sum_msr_sp / kn, sum_tw_sp / kn);
  print_table(table, "Table 5.2: var-KRR MAE on variable-size workloads");
  std::cout << "(paper shape: MAE around 1e-3 without sampling and a few\n"
               " thousandths with spatial sampling, at every K)\n";
  return 0;
}
