// Ablation: var-KRR design choices — sizeArray base b in {2, 4, 8, 16}
// versus the exact Fenwick byte tracker. Accuracy is measured as the MRC
// MAE against byte-capacity K-LRU simulation; cost as profiler wall time.
// Larger bases mean fewer accumulators (less maintenance) but wider
// interpolation brackets (more estimation error).

#include "bench_common.h"

#include "util/stopwatch.h"

namespace {

using namespace krrbench;

// var-KRR pass with a given sizeArray base.
std::pair<MissRatioCurve, double> run_var(const std::vector<Request>& trace,
                                          std::uint32_t k, std::uint32_t base) {
  Stopwatch watch;
  KrrProfilerConfig cfg;
  cfg.k_sample = k;
  cfg.byte_granularity = true;
  cfg.size_array_base = base;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  return {profiler.mrc(), watch.seconds()};
}

// Reference: same stack, exact Fenwick byte distances.
std::pair<MissRatioCurve, double> run_exact(const std::vector<Request>& trace,
                                            std::uint32_t k) {
  Stopwatch watch;
  KrrStackConfig sc;
  sc.k = corrected_k(k);
  sc.track_bytes = true;
  sc.track_bytes_exact = true;
  sc.seed = 11;
  KrrStack stack(sc);
  DistanceHistogram hist;
  for (const Request& r : trace) {
    const auto result = stack.access(r.key, r.size);
    if (result.cold) {
      hist.record_infinite();
    } else {
      hist.record(*stack.last_exact_byte_distance());
    }
  }
  return {hist.to_mrc(), watch.seconds()};
}

}  // namespace

int main() {
  using namespace krrbench;
  const std::size_t n = scaled(200000);
  const std::uint32_t k = 8;
  const std::vector<Workload> workloads = {make_msr("src1", n, 12000, 0),
                                           make_twitter("cluster26.0", n, 10000, 0)};

  Table table({"workload", "variant", "mae_vs_sim", "pass_sec"});
  for (const Workload& w : workloads) {
    const auto sizes = capacity_grid_bytes(w.trace, 16);
    const MissRatioCurve truth = sweep_klru(w.trace, sizes, k, true, 17);
    for (std::uint32_t base : {2u, 4u, 8u, 16u}) {
      const auto [curve, sec] = run_var(w.trace, k, base);
      table.add(w.name, "sizeArray_b" + std::to_string(base),
                curve.mae(truth, sizes), sec);
    }
    const auto [curve, sec] = run_exact(w.trace, k);
    table.add(w.name, "exact_fenwick", curve.mae(truth, sizes), sec);
  }
  print_table(table, "var-KRR ablation: sizeArray base vs exact byte tracking");
  std::cout << "(expected shape: error grows mildly with the base while cost\n"
               " falls slightly; the exact tracker bounds the achievable\n"
               " accuracy at a higher per-update cost)\n";
  return 0;
}
