#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "baselines/lru_stack.h"
#include "baselines/naive_stack.h"
#include "core/krr_stack.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"

namespace krr {
namespace {

KrrStackConfig config(double k, UpdateStrategy strategy = UpdateStrategy::kBackward,
                      std::uint64_t seed = 1) {
  KrrStackConfig cfg;
  cfg.k = k;
  cfg.strategy = strategy;
  cfg.seed = seed;
  return cfg;
}

TEST(CorrectedK, FollowsPowerLaw) {
  EXPECT_DOUBLE_EQ(corrected_k(1.0), 1.0);
  EXPECT_NEAR(corrected_k(5.0), std::pow(5.0, 1.4), 1e-12);
  EXPECT_GT(corrected_k(2.0), 2.0);
  EXPECT_THROW(corrected_k(0.5), std::invalid_argument);
}

TEST(KrrStack, ColdAndWarmAccessesAreDistinguished) {
  KrrStack stack(config(2.0));
  auto r1 = stack.access(1);
  EXPECT_TRUE(r1.cold);
  EXPECT_EQ(r1.position, 1u);
  auto r2 = stack.access(1);
  EXPECT_FALSE(r2.cold);
  EXPECT_EQ(r2.position, 1u);
}

TEST(KrrStack, ReferencedObjectAlwaysMovesToTop) {
  KrrStack stack(config(3.0));
  for (std::uint64_t k = 1; k <= 100; ++k) stack.access(k);
  for (std::uint64_t k : {57ULL, 3ULL, 99ULL}) {
    stack.access(k);
    EXPECT_EQ(stack.key_at(1), k);
  }
}

TEST(KrrStack, StackRemainsAPermutationUnderChurn) {
  KrrStack stack(config(4.0, UpdateStrategy::kBackward, 5));
  std::set<std::uint64_t> seen;
  ZipfianGenerator gen(400, 0.7, 9);
  for (int i = 0; i < 20000; ++i) {
    const auto key = gen.next().key;
    seen.insert(key);
    stack.access(key);
  }
  EXPECT_EQ(stack.depth(), seen.size());
  std::set<std::uint64_t> on_stack(stack.stack().begin(), stack.stack().end());
  EXPECT_EQ(on_stack, seen);
  // Position map consistency: every key is where the map says it is.
  for (std::uint64_t pos = 1; pos <= stack.depth(); ++pos) {
    const std::uint64_t key = stack.key_at(pos);
    const auto result_pos = pos;  // re-access would report this
    EXPECT_EQ(stack.stack()[result_pos - 1], key);
  }
}

TEST(KrrStack, LinearStrategyMatchesGenericMattsonDrawForDraw) {
  // The Linear sampler consumes the PRNG identically to the generic
  // Mattson implementation, so with equal seeds the two stacks evolve
  // identically — a strong end-to-end check of the swap semantics.
  const double k = 2.7;
  KrrStack fast(config(k, UpdateStrategy::kLinear, 42));
  auto naive = GenericMattsonStack::krr(k, 42);
  ZipfianGenerator gen(300, 0.9, 3);
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    const auto result = fast.access(r.key);
    const auto naive_dist = naive.access(r);
    if (result.cold) {
      ASSERT_EQ(naive_dist, 0u) << "at access " << i;
    } else {
      ASSERT_EQ(result.position, naive_dist) << "at access " << i;
    }
  }
  EXPECT_EQ(fast.stack(), naive.stack());
}

class KrrStackStrategies : public ::testing::TestWithParam<UpdateStrategy> {};

TEST_P(KrrStackStrategies, DistanceDistributionsAgreeAcrossStrategies) {
  // All strategies sample the same swap process, so long-run distance
  // histograms must agree within statistical noise. Compare each strategy
  // against the backward reference on a fixed workload.
  const double k = 4.0;
  auto run = [&](UpdateStrategy s, std::uint64_t seed) {
    KrrStack stack(config(k, s, seed));
    ZipfianGenerator gen(200, 0.9, 21);
    double sum = 0.0;
    std::uint64_t count = 0;
    for (int i = 0; i < 40000; ++i) {
      const auto r = stack.access(gen.next().key);
      if (!r.cold) {
        sum += static_cast<double>(r.position);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double mean_ref = run(UpdateStrategy::kBackward, 101);
  const double mean_this = run(GetParam(), 202);
  EXPECT_NEAR(mean_this, mean_ref, mean_ref * 0.03);
}

TEST_P(KrrStackStrategies, HugeKDegeneratesToLruDistances) {
  KrrStack stack(config(1e9, GetParam(), 3));
  LruStackProfiler lru;
  ZipfianGenerator gen(150, 0.8, 31);
  for (int i = 0; i < 10000; ++i) {
    const Request r = gen.next();
    const auto result = stack.access(r.key);
    const auto expected = lru.access(r);
    if (result.cold) {
      ASSERT_EQ(expected, 0u);
    } else {
      ASSERT_EQ(result.position, expected) << "at access " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, KrrStackStrategies,
                         ::testing::Values(UpdateStrategy::kLinear,
                                           UpdateStrategy::kTopDown,
                                           UpdateStrategy::kBackward),
                         [](const auto& info) { return to_string(info.param); });

TEST(KrrStack, SwapsPerformedAccumulates) {
  KrrStack stack(config(1.0));
  for (std::uint64_t k = 1; k <= 10; ++k) stack.access(k);
  EXPECT_GT(stack.swaps_performed(), 0u);
}

TEST(KrrStack, ByteTrackingRequiresFlag) {
  KrrStackConfig cfg = config(2.0);
  cfg.track_bytes_exact = true;
  EXPECT_THROW(KrrStack{cfg}, std::invalid_argument);
}

TEST(KrrStack, ByteDistanceOfTopObjectIsItsOwnSize) {
  KrrStackConfig cfg = config(2.0);
  cfg.track_bytes = true;
  KrrStack stack(cfg);
  stack.access(1, 100);
  const auto r = stack.access(1, 100);
  EXPECT_EQ(r.byte_distance, 100u);
}

TEST(KrrStack, TotalBytesTracksDistinctObjectSizes) {
  KrrStackConfig cfg = config(3.0);
  cfg.track_bytes = true;
  KrrStack stack(cfg);
  stack.access(1, 10);
  stack.access(2, 20);
  stack.access(3, 30);
  EXPECT_EQ(stack.total_bytes(), 60u);
  stack.access(2, 20);  // re-reference: no size change
  EXPECT_EQ(stack.total_bytes(), 60u);
  stack.access(1, 50);  // resize
  EXPECT_EQ(stack.total_bytes(), 100u);
}

TEST(KrrStack, ExactByteDistanceMatchesBruteForceStackWalk) {
  // Drive the stack with a variable-size workload, then probe objects at
  // known positions: the exact tracker's reported byte distance must equal
  // a brute-force prefix-size sum over the public stack view taken just
  // before the probe. Sizes are deterministic per key, so the view plus
  // size_for_key reconstructs the byte layout.
  KrrStackConfig cfg = config(2.5, UpdateStrategy::kBackward, 77);
  cfg.track_bytes = true;
  cfg.track_bytes_exact = true;
  KrrStack stack(cfg);
  MsrGenerator gen(msr_profile("hm"), 5, 200);
  for (int i = 0; i < 4000; ++i) {
    const Request r = gen.next();
    stack.access(r.key, r.size);
  }
  ASSERT_GT(stack.depth(), 20u);
  Xoshiro256ss probe_rng(9);
  for (int probe = 0; probe < 25; ++probe) {
    const std::uint64_t pos = 1 + probe_rng.next_below(stack.depth());
    std::uint64_t expected = 0;
    for (std::uint64_t j = 1; j <= pos; ++j) {
      expected += gen.size_for_key(stack.key_at(j));
    }
    const std::uint64_t key = stack.key_at(pos);
    stack.access(key, gen.size_for_key(key));
    ASSERT_TRUE(stack.last_exact_byte_distance().has_value());
    EXPECT_EQ(*stack.last_exact_byte_distance(), expected) << "position " << pos;
  }
}

}  // namespace
}  // namespace krr
