// Self-healing machinery in isolation: the deterministic fault-injection
// subsystem (trigger grammar, firing semantics, accounting), the shared
// RetryPolicy/Backoff, the checkpoint-write and trace-read fault points
// with their retry loops, and a corruption battery over the ckpt state
// codec — every single-bit flip, every truncation boundary, and a
// randomized multi-byte stomp must yield a *classified* error (or a clean
// smaller parse), never a crash, hang, or kInternal.
//
// Runs under ASan/UBSan via the `sanitize` ctest label alongside the trace
// fault-injection harness. Fault plans are process-global: every test that
// arms one disarms in TearDown so batteries stay independent.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/estimator.h"
#include "core/governor.h"
#include "core/profiler.h"
#include "trace/generator.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"
#include "trace/zipf.h"
#include "util/faultpoint.h"
#include "util/prng.h"
#include "util/retry.h"

namespace krr {
namespace {

class FaultPlan : public ::testing::Test {
 protected:
  void TearDown() override { faults::disarm(); }
};

TEST_F(FaultPlan, RejectsMalformedSpecs) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  for (const char* bad :
       {"bogus", "point@", "@hit=1", "p@hit=", "p@hit=0", "p@every=0",
        "p@never", "p#@hit=1", "p#x@hit=1", "p@hit=18446744073709551616"}) {
    const Status s = faults::arm(bad);
    EXPECT_FALSE(s.is_ok()) << bad;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
  }
  // A failed arm leaves the subsystem disarmed.
  EXPECT_FALSE(faults::armed());
}

TEST_F(FaultPlan, HitNFiresExactlyOnceAtTheNthHit) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("p@hit=3").is_ok());
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(faults::should_fire("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false,
                                      false, false, false, false}));
  EXPECT_EQ(faults::hits("p"), 10u);
  EXPECT_EQ(faults::fires("p"), 1u);
  EXPECT_EQ(faults::total_fires(), 1u);
}

TEST_F(FaultPlan, EveryKFiresPeriodically) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("p@every=4").is_ok());
  int fires = 0;
  for (int i = 1; i <= 12; ++i) {
    if (faults::should_fire("p")) {
      ++fires;
      EXPECT_EQ(i % 4, 0) << "fired off-period at hit " << i;
    }
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(FaultPlan, OnceIsHitOne) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("p@once").is_ok());
  EXPECT_TRUE(faults::should_fire("p"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(faults::should_fire("p"));
}

TEST_F(FaultPlan, DetailFiltersAndCountsIndependently) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("p#2@hit=2").is_ok());
  // Detail 1 hits never match the trigger; detail 2's second hit fires.
  EXPECT_FALSE(faults::should_fire("p", 1));
  EXPECT_FALSE(faults::should_fire("p", 2));
  EXPECT_FALSE(faults::should_fire("p", 1));
  EXPECT_TRUE(faults::should_fire("p", 2));
  EXPECT_EQ(faults::hits("p"), 2u);  // only matching hits are counted
}

TEST_F(FaultPlan, MultiTriggerPlansAndBothSeparators) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("a@hit=1;b@hit=2,c@every=1").is_ok());
  EXPECT_TRUE(faults::should_fire("a"));
  EXPECT_FALSE(faults::should_fire("b"));
  EXPECT_TRUE(faults::should_fire("b"));
  EXPECT_TRUE(faults::should_fire("c"));
  EXPECT_TRUE(faults::should_fire("c"));
  EXPECT_EQ(faults::total_fires(), 4u);
}

TEST_F(FaultPlan, DisarmStopsFiringAndZeroesAccounting) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("p@every=1").is_ok());
  EXPECT_TRUE(faults::should_fire("p"));
  faults::disarm();
  EXPECT_FALSE(faults::armed());
  EXPECT_FALSE(faults::should_fire("p"));
  EXPECT_EQ(faults::hits("p"), 0u);
  EXPECT_EQ(faults::total_fires(), 0u);
}

TEST_F(FaultPlan, MaybeFireThrowsWithPointAndDetail) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ASSERT_TRUE(faults::arm("p#7@once").is_ok());
  EXPECT_NO_THROW(faults::maybe_fire("p", 3));
  try {
    faults::maybe_fire("p", 7);
    FAIL() << "expected FaultInjectedError";
  } catch (const faults::FaultInjectedError& e) {
    EXPECT_EQ(std::string(e.what()), "injected fault at p#7");
  }
}

TEST(RetryPolicy, DelaysAreDeterministicExponentialAndJittered) {
  RetryPolicy policy;
  policy.base_delay_ms = 2.0;
  policy.max_delay_ms = 16.0;
  policy.seed = 42;
  RetryPolicy twin = policy;
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    const double delay = policy.delay_ms(attempt);
    // Same (seed, attempt) → same delay; different seeds decorrelate.
    EXPECT_DOUBLE_EQ(delay, twin.delay_ms(attempt)) << attempt;
    // Jitter keeps the delay in [0.5, 1.0] of the exponential step, and the
    // step itself is capped at max_delay_ms.
    const double step =
        std::min(2.0 * static_cast<double>(1u << (attempt - 1)), 16.0);
    EXPECT_GE(delay, 0.5 * step) << attempt;
    EXPECT_LE(delay, step) << attempt;
  }
  RetryPolicy other = policy;
  other.seed = 43;
  EXPECT_NE(other.delay_ms(1), policy.delay_ms(1));
}

TEST(RetryPolicy, RetryStatusStopsOnSuccessAndExhaustsOnFailure) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.0;  // no real sleeping in tests
  int calls = 0;
  Status ok = retry_status(policy, [&] {
    ++calls;
    return calls < 3 ? io_error("transient") : Status::ok();
  });
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  int retries = 0;
  Status failed = retry_status(
      policy,
      [&] {
        ++calls;
        return io_error("permanent");
      },
      [&](unsigned, const Status& s) {
        ++retries;
        EXPECT_EQ(s.code(), StatusCode::kIoError);
      });
  EXPECT_FALSE(failed.is_ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST(RetryPolicy, BackoffEscalatesSpinYieldSleep) {
  Backoff backoff(/*spin_limit=*/2, /*yield_limit=*/2,
                  std::chrono::nanoseconds(1), std::chrono::nanoseconds(4));
  // First spin_limit + yield_limit pauses are cheap (return false), then
  // every pause sleeps (returns true) — that is the producer's metric.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(backoff.pause()) << i;
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(backoff.pause()) << i;
  backoff.reset();
  EXPECT_FALSE(backoff.pause());
}

// ---------------------------------------------------------------------------
// ckpt::StateReader corruption battery.
// ---------------------------------------------------------------------------

/// A state stream exercising every section tag the codec defines,
/// including a repeated tag (shard state) and an empty body.
std::string codec_corpus() {
  std::string out;
  ckpt::StateWriter writer(out);
  writer.add_section(ckpt::kSectionModelCore, "core-counters");
  writer.add_section(ckpt::kSectionLruStack, std::string(64, '\x5a'));
  writer.add_section(ckpt::kSectionCollector, "");
  writer.add_section(ckpt::kSectionAdapter, "adapter{k=5,rate=0.1}");
  writer.add_section(ckpt::kSectionShardMeta, std::string("\x02\x00\x00\x00", 4));
  writer.add_section(ckpt::kSectionShardState, "shard-0-state");
  writer.add_section(ckpt::kSectionShardState, "shard-1-state");
  return out;
}

/// The only outcomes a damaged stream may have: a clean (possibly smaller)
/// parse, or one of the corruption codes the callers classify on. Anything
/// else — kInternal, kOk with torn sections, a crash — is a codec bug.
void expect_classified(const StatusOr<ckpt::StateReader>& result,
                       const std::string& context) {
  if (result.is_ok()) return;
  const StatusCode code = result.status().code();
  EXPECT_TRUE(code == StatusCode::kTruncated ||
              code == StatusCode::kChecksumMismatch ||
              code == StatusCode::kUnsupportedVersion)
      << context << ": unclassified " << result.status().to_string();
}

TEST(StateCodecBattery, EverySingleBitFlipIsClassified) {
  const std::string clean = codec_corpus();
  ASSERT_TRUE(ckpt::StateReader::parse(clean).is_ok());
  std::string bytes = clean;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      const auto result = ckpt::StateReader::parse(bytes);
      const std::string context =
          "byte " + std::to_string(i) + " bit " + std::to_string(bit);
      expect_classified(result, context);
      // The version word and every section body/CRC byte are covered by a
      // checksum or an exact match, so flips there can never parse clean.
      // (Flips in tag/length fields may re-frame into a stream that is
      // still internally consistent; find() simply misses the section.)
      if (i < 4) {
        ASSERT_FALSE(result.is_ok()) << context;
        EXPECT_EQ(result.status().code(), StatusCode::kUnsupportedVersion)
            << context;
      }
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
    }
  }
  ASSERT_EQ(bytes, clean);
}

TEST(StateCodecBattery, SectionBodyAndCrcFlipsAlwaysFailTheChecksum) {
  // Frame offsets: 4-byte version, then per section 4 (tag) + 8 (length) +
  // body + 4 (CRC). Walk the frames and flip one bit in every body byte
  // and every CRC byte — each must be a checksum mismatch, the exact code
  // load_state callers map to "snapshot is damaged".
  const std::string clean = codec_corpus();
  std::size_t offset = 4;
  while (offset < clean.size()) {
    const std::uint64_t length =
        static_cast<std::uint64_t>(
            static_cast<unsigned char>(clean[offset + 4])) |
        (static_cast<std::uint64_t>(
             static_cast<unsigned char>(clean[offset + 5]))
         << 8);
    const std::size_t body = offset + 12;
    for (std::size_t i = body; i < body + length + 4; ++i) {
      std::string bytes = clean;
      bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
      const auto result = ckpt::StateReader::parse(bytes);
      ASSERT_FALSE(result.is_ok()) << "byte " << i;
      EXPECT_EQ(result.status().code(), StatusCode::kChecksumMismatch)
          << "byte " << i;
    }
    offset = body + length + 4;
  }
}

TEST(StateCodecBattery, TruncationAtEveryBoundaryIsTruncatedOrSmaller) {
  const std::string clean = codec_corpus();
  const std::size_t full_sections =
      ckpt::StateReader::parse(clean)->section_count();
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const auto result = ckpt::StateReader::parse(clean.substr(0, len));
    if (result.is_ok()) {
      // A cut exactly on a section boundary parses as a shorter stream;
      // it must never claim more sections than the bytes hold.
      EXPECT_LT(result->section_count(), full_sections) << "length " << len;
    } else {
      const StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kTruncated ||
                  code == StatusCode::kUnsupportedVersion)
          << "length " << len << ": " << result.status().to_string();
    }
  }
}

TEST(StateCodecBattery, RandomizedMultiByteStompsNeverCrashOrMisclassify) {
  const std::string clean = codec_corpus();
  Xoshiro256ss rng(20260809);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes = clean;
    const std::uint64_t stomps = 1 + rng.next_below(8);
    for (std::uint64_t s = 0; s < stomps; ++s) {
      bytes[rng.next_below(bytes.size())] =
          static_cast<char>(rng.next_below(256));
    }
    expect_classified(ckpt::StateReader::parse(bytes),
                      "round " + std::to_string(round));
  }
}

TEST(StateCodecBattery, CheckpointFileBitFlipsAreAlwaysDetected) {
  // End to end through the KRRSNAP container with a real model payload:
  // the trailing CRC covers the whole file and is validated before any
  // field past the magic is trusted, so EVERY single-bit flip must be
  // rejected — magic flips as kCorruptHeader, everything else as
  // kChecksumMismatch. There is no flip position that loads clean.
  ZipfianGenerator gen(300, 0.9, 5, true);
  const auto trace = materialize(gen, 5000);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  std::string payload;
  ASSERT_TRUE(profiler.save_state(&payload).is_ok());
  CheckpointHeader header;
  header.config_crc = 0xfeedface;
  header.records = trace.size();
  const std::string path = ::testing::TempDir() + "bitflip.snap";
  ASSERT_TRUE(write_checkpoint_atomic(path, header, payload).is_ok());
  std::string clean;
  {
    std::ifstream in(path, std::ios::binary);
    clean.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_TRUE(read_checkpoint(path, nullptr).is_ok());
  std::set<StatusCode> seen;
  for (std::size_t i = 0; i < clean.size(); i += 13) {  // stride: keep it fast
    for (int bit : {0, 7}) {
      std::string damaged = clean;
      damaged[i] = static_cast<char>(damaged[i] ^ (1 << bit));
      {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
      }
      const auto result = read_checkpoint(path, nullptr);
      ASSERT_FALSE(result.is_ok()) << "byte " << i << " bit " << bit;
      const StatusCode code = result.status().code();
      if (i < 8) {
        EXPECT_EQ(code, StatusCode::kCorruptHeader)
            << "magic byte " << i << " bit " << bit;
      } else {
        EXPECT_EQ(code, StatusCode::kChecksumMismatch)
            << "byte " << i << " bit " << bit;
      }
      seen.insert(code);
    }
  }
  EXPECT_TRUE(seen.count(StatusCode::kCorruptHeader));
  EXPECT_TRUE(seen.count(StatusCode::kChecksumMismatch));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint-write and trace-read fault points + retry loops.
// ---------------------------------------------------------------------------

class FaultedIo : public ::testing::Test {
 protected:
  void TearDown() override { faults::disarm(); }
  std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
  }
};

TEST_F(FaultedIo, CheckpointWriteFaultSurfacesAsIoError) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  const std::string path = temp_path("ckpt_fault.snap");
  CheckpointHeader header;
  header.config_crc = 1;
  header.records = 10;
  ASSERT_TRUE(faults::arm("checkpoint.write@hit=1").is_ok());
  const Status first = write_checkpoint_atomic(path, header, "payload");
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  // The trigger was one-shot: the very next write lands.
  ASSERT_TRUE(write_checkpoint_atomic(path, header, "payload").is_ok());
  std::string payload;
  const auto read = read_checkpoint(path, &payload);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(payload, "payload");
  std::remove(path.c_str());
}

TEST_F(FaultedIo, GovernorRetriesTransientCheckpointFailures) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  auto est = EstimatorRegistry::instance().create("krr", {});
  ASSERT_TRUE(est.is_ok());
  RunGovernorConfig cfg;
  cfg.checkpoint_every = 100;
  cfg.checkpoint_retry.max_attempts = 3;
  cfg.checkpoint_retry.base_delay_ms = 0.0;
  int attempts = 0;
  cfg.checkpoint_fn = [&](std::uint64_t) -> StatusOr<std::uint64_t> {
    ++attempts;
    if (faults::should_fire(faults::kCheckpointWrite)) {
      return io_error("injected");
    }
    return std::uint64_t{128};
  };
  ASSERT_TRUE(faults::arm("checkpoint.write@hit=1").is_ok());
  RunGovernor governor(cfg, est->get());
  for (int i = 0; i < 100; ++i) {
    (*est)->access({static_cast<std::uint64_t>(i), 1, Op::kGet});
    ASSERT_TRUE(governor.on_access());
  }
  EXPECT_EQ(attempts, 2);  // failed once, retried once, succeeded
  EXPECT_EQ(governor.report().checkpoint_retries, 1u);
  EXPECT_EQ(governor.report().checkpoints_written, 1u);
}

TEST_F(FaultedIo, GovernorStillAbortsWhenRetriesExhaust) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  auto est = EstimatorRegistry::instance().create("krr", {});
  ASSERT_TRUE(est.is_ok());
  RunGovernorConfig cfg;
  cfg.checkpoint_every = 10;
  cfg.checkpoint_retry.max_attempts = 2;
  cfg.checkpoint_retry.base_delay_ms = 0.0;
  cfg.checkpoint_fn = [&](std::uint64_t) -> StatusOr<std::uint64_t> {
    if (faults::should_fire(faults::kCheckpointWrite)) {
      return io_error("injected");
    }
    return std::uint64_t{128};
  };
  ASSERT_TRUE(faults::arm("checkpoint.write@every=1").is_ok());
  RunGovernor governor(cfg, est->get());
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) {
          (*est)->access({static_cast<std::uint64_t>(i), 1, Op::kGet});
          governor.on_access();
        }
      },
      StatusError);
  EXPECT_EQ(governor.report().checkpoint_retries, 1u);
  EXPECT_EQ(governor.report().checkpoints_written, 0u);
}

TEST_F(FaultedIo, LoadTraceFileRetriesInjectedReadFaults) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ZipfianGenerator gen(100, 0.9, 7, true);
  const auto trace = materialize(gen, 500);
  const std::string path = temp_path("read_fault.bin");
  {
    std::ofstream os(path, std::ios::binary);
    write_trace_binary_v2(os, trace, 64);
  }
  TraceReaderOptions options;
  options.read_retry.max_attempts = 3;
  options.read_retry.base_delay_ms = 0.0;
  TraceReadReport report;
  ASSERT_TRUE(faults::arm("trace.read@hit=1").is_ok());
  const auto result = load_trace_file(path, options, &report);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(*result, trace);
  EXPECT_EQ(report.read_retries, 1u);
  std::remove(path.c_str());
}

TEST_F(FaultedIo, LoadTraceFileFailsWhenReadRetriesExhaust) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  ZipfianGenerator gen(100, 0.9, 7, true);
  const auto trace = materialize(gen, 200);
  const std::string path = temp_path("read_fault_exhaust.bin");
  {
    std::ofstream os(path, std::ios::binary);
    write_trace_binary_v2(os, trace, 64);
  }
  TraceReaderOptions options;
  options.read_retry.max_attempts = 2;
  options.read_retry.base_delay_ms = 0.0;
  ASSERT_TRUE(faults::arm("trace.read@every=1").is_ok());
  const auto result = load_trace_file(path, options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(FaultedIo, CorruptInputIsNeverRetried) {
  if (!faults::kFaultInjectionCompiledIn) GTEST_SKIP();
  // Retrying can only help transient I/O; a checksum mismatch is a
  // property of the bytes and must fail on the first attempt even with a
  // generous retry budget.
  ZipfianGenerator gen(100, 0.9, 7, true);
  const auto trace = materialize(gen, 200);
  const std::string path = temp_path("corrupt_no_retry.bin");
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary_v2(ss, trace, 64);
  std::string bytes = ss.str();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  TraceReaderOptions options;
  options.policy = RecoveryPolicy::kStrict;
  options.read_retry.max_attempts = 5;
  TraceReadReport report;
  const auto result = load_trace_file(path, options, &report);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(report.read_retries, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace krr
