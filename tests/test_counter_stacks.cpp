#include <gtest/gtest.h>

#include "baselines/counter_stacks.h"
#include "baselines/lru_stack.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"

namespace krr {
namespace {

TEST(CounterStacks, ValidatesArguments) {
  EXPECT_THROW(CounterStacksProfiler(0), std::invalid_argument);
  EXPECT_THROW(CounterStacksProfiler(100, -0.1), std::invalid_argument);
}

TEST(CounterStacks, ColdOnlyTraceIsAllMisses) {
  // HLL delta noise misplaces a small amount of mass into finite bins;
  // a higher-precision sketch keeps it under a few percent.
  CounterStacksProfiler cs(250, 0.02, /*hll_precision=*/14);
  for (std::uint64_t k = 0; k < 5000; ++k) cs.access(Request{k, 1, Op::kGet});
  const MissRatioCurve mrc = cs.mrc();
  EXPECT_GT(mrc.eval(2500.0), 0.95);
  EXPECT_GT(mrc.eval(5000.0), 0.95);
}

TEST(CounterStacks, ApproximatesExactLruOnZipfTrace) {
  ZipfianGenerator gen(5000, 0.9, 7, true);
  const auto trace = materialize(gen, 150000);
  CounterStacksProfiler cs(500);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    cs.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(cs.mrc().mae(exact.mrc(), sizes), 0.05);
}

TEST(CounterStacks, ApproximatesExactLruOnDriftTrace) {
  MsrGenerator gen(msr_profile("web"), 9, 8000, 1);
  const auto trace = materialize(gen, 150000);
  CounterStacksProfiler cs(500);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    cs.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(cs.mrc().mae(exact.mrc(), sizes), 0.05);
}

TEST(CounterStacks, PruningBoundsLiveCounters) {
  // A stationary workload converges its counters, so pruning must keep the
  // live set far below the naive one-per-interval count.
  ZipfianGenerator gen(2000, 0.99, 11, true);
  CounterStacksProfiler cs(200, /*prune_delta=*/0.02);
  constexpr std::size_t kN = 100000;
  for (std::size_t i = 0; i < kN; ++i) cs.access(gen.next());
  EXPECT_LT(cs.live_counters(), kN / 200 / 4);
}

TEST(CounterStacks, MrcIsRepeatableMidStream) {
  ZipfianGenerator gen(1000, 0.9, 13);
  CounterStacksProfiler cs(100);
  for (int i = 0; i < 5050; ++i) cs.access(gen.next());
  const MissRatioCurve a = cs.mrc();
  const MissRatioCurve b = cs.mrc();  // const: must not consume state
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio);
  }
}

TEST(CounterStacks, FinerIntervalsAreMoreAccurate) {
  ZipfianGenerator gen(3000, 0.8, 17, true);
  const auto trace = materialize(gen, 100000);
  LruStackProfiler exact;
  for (const Request& r : trace) exact.access(r);
  const auto sizes = capacity_grid_objects(trace, 20);
  auto mae_for = [&](std::uint64_t interval) {
    CounterStacksProfiler cs(interval);
    for (const Request& r : trace) cs.access(r);
    return cs.mrc().mae(exact.mrc(), sizes);
  };
  EXPECT_LT(mae_for(200), mae_for(20000) + 0.01);
}

}  // namespace
}  // namespace krr
