// Conformance suite for the polymorphic estimator registry: every
// registered model is driven through the same MrcEstimator contract and
// must produce a sane curve. These are interface tests — model accuracy is
// covered per-model elsewhere; here we pin the invariants the pipeline
// layers (CLI, bench, zoo) rely on for *any* model.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "trace/request.h"
#include "trace/workload_factory.h"
#include "util/mrc.h"

namespace krr {
namespace {

std::vector<Request> small_zipf_trace() {
  WorkloadFactoryOptions wf;
  wf.seed = 7;
  wf.footprint = 500;
  auto gen = try_make_workload("zipf:0.9", wf);
  EXPECT_TRUE(gen.is_ok());
  return materialize(**gen, 4000);
}

std::unique_ptr<MrcEstimator> make(const std::string& name,
                                   const EstimatorOptions& options = {}) {
  auto est = EstimatorRegistry::instance().create(name, options);
  EXPECT_TRUE(est.is_ok()) << name << ": " << est.status().message();
  return std::move(*est);
}

MissRatioCurve run(MrcEstimator& est, const std::vector<Request>& trace,
                   const std::vector<double>& sizes = {}) {
  for (const Request& r : trace) est.access(r);
  est.finish();
  return est.mrc(sizes);
}

class RegistryConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryConformance, CurveIsAValidMrc) {
  const auto trace = small_zipf_trace();
  auto est = make(GetParam());
  const MissRatioCurve curve = run(*est, trace, {100, 200, 300, 400, 500});
  ASSERT_FALSE(curve.points().empty()) << GetParam();
  double prev_size = -1.0;
  double prev_ratio = 2.0;
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0) << GetParam() << " at size " << size;
    EXPECT_LE(ratio, 1.0) << GetParam() << " at size " << size;
    EXPECT_GT(size, prev_size) << GetParam() << ": sizes must increase";
    // Miss ratios never increase with cache size (monotone non-increasing).
    EXPECT_LE(ratio, prev_ratio + 1e-9) << GetParam() << " at size " << size;
    prev_size = size;
    prev_ratio = ratio;
  }
}

TEST_P(RegistryConformance, DeterministicUnderFixedSeed) {
  const auto trace = small_zipf_trace();
  EstimatorOptions options;
  options.set("seed", "42");
  auto a = make(GetParam(), options);
  auto b = make(GetParam(), options);
  const MissRatioCurve ca = run(*a, trace);
  const MissRatioCurve cb = run(*b, trace);
  ASSERT_EQ(ca.points().size(), cb.points().size()) << GetParam();
  for (std::size_t i = 0; i < ca.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(ca.points()[i].size, cb.points()[i].size) << GetParam();
    EXPECT_DOUBLE_EQ(ca.points()[i].miss_ratio, cb.points()[i].miss_ratio)
        << GetParam();
  }
}

TEST_P(RegistryConformance, SafeOnEmptyTrace) {
  auto est = make(GetParam());
  est->finish();
  const MissRatioCurve curve = est->mrc();
  EXPECT_EQ(est->processed(), 0u) << GetParam();
  // An empty curve eval()s to 1.0 (everything misses): the contract for
  // zero input. A non-empty curve would be fine too, as long as it is
  // still within [0, 1] — but no model should crash here.
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0) << GetParam();
    EXPECT_LE(ratio, 1.0) << GetParam();
  }
  const RunReport report = est->run_report();
  EXPECT_EQ(report.records_skipped, 0u) << GetParam();
}

TEST_P(RegistryConformance, CountsEveryProcessedReference) {
  const auto trace = small_zipf_trace();
  auto est = make(GetParam());
  for (const Request& r : trace) est->access(r);
  est->finish();
  EXPECT_EQ(est->processed(), trace.size()) << GetParam();
  // The defaulted observability hooks must be callable on any model.
  const obs::HeartbeatSnapshot snap = est->snapshot();
  EXPECT_EQ(snap.records, trace.size()) << GetParam();
  est->refresh_metrics_gauges();
  EXPECT_EQ(est->info().name, GetParam());
}

std::vector<std::string> registered_names() {
  std::vector<std::string> names;
  for (const auto& info : EstimatorRegistry::instance().list()) {
    names.push_back(info.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllModels, RegistryConformance,
                         ::testing::ValuesIn(registered_names()),
                         [](const auto& info) { return info.param; });

// --- Byte-granularity battery: every model that advertises the `bytes`
// capability must hold the same contract over variable object sizes. Sizes
// are a per-key pure function so the trace stays deterministic and an
// object never changes size mid-trace.

std::vector<Request> sized_zipf_trace() {
  auto trace = small_zipf_trace();
  for (Request& r : trace) {
    r.size = 1 + static_cast<std::uint32_t>((r.key * 2654435761ULL) % 256);
  }
  return trace;
}

std::vector<std::string> byte_capable_names() {
  std::vector<std::string> names;
  for (const auto& info : EstimatorRegistry::instance().list()) {
    if (info.caps.byte_granularity) names.push_back(info.name);
  }
  return names;
}

class ByteGranularityConformance
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ByteGranularityConformance, ByteCurveIsAValidMrc) {
  const auto trace = sized_zipf_trace();
  EstimatorOptions options;
  options.set("bytes", "1");
  auto est = make(GetParam(), options);
  const MissRatioCurve curve =
      run(*est, trace, {4096, 16384, 65536});
  ASSERT_FALSE(curve.points().empty()) << GetParam();
  double prev_size = -1.0;
  double prev_ratio = 2.0;
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0) << GetParam() << " at " << size << " bytes";
    EXPECT_LE(ratio, 1.0) << GetParam() << " at " << size << " bytes";
    EXPECT_GT(size, prev_size) << GetParam() << ": sizes must increase";
    EXPECT_LE(ratio, prev_ratio + 1e-9) << GetParam() << " at " << size;
    prev_size = size;
    prev_ratio = ratio;
  }
  // Byte curves must extend to byte scale: the largest breakpoint covers
  // more than the object count (sizes average far above 1 byte).
  EXPECT_GT(curve.max_size(), 600.0) << GetParam();
}

TEST_P(ByteGranularityConformance, ByteModeIsDeterministic) {
  const auto trace = sized_zipf_trace();
  EstimatorOptions options;
  options.set("bytes", "1");
  options.set("seed", "42");
  auto a = make(GetParam(), options);
  auto b = make(GetParam(), options);
  const MissRatioCurve ca = run(*a, trace);
  const MissRatioCurve cb = run(*b, trace);
  ASSERT_EQ(ca.points().size(), cb.points().size()) << GetParam();
  for (std::size_t i = 0; i < ca.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(ca.points()[i].size, cb.points()[i].size) << GetParam();
    EXPECT_DOUBLE_EQ(ca.points()[i].miss_ratio, cb.points()[i].miss_ratio)
        << GetParam();
  }
}

TEST_P(ByteGranularityConformance, ByteModeSafeOnEmptyTrace) {
  EstimatorOptions options;
  options.set("bytes", "1");
  auto est = make(GetParam(), options);
  est->finish();
  const MissRatioCurve curve = est->mrc();
  EXPECT_EQ(est->processed(), 0u) << GetParam();
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0) << GetParam();
    EXPECT_LE(ratio, 1.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(ByteCapableModels, ByteGranularityConformance,
                         ::testing::ValuesIn(byte_capable_names()),
                         [](const auto& info) { return info.param; });

TEST(EstimatorRegistry, HasEveryExpectedBuiltin) {
  auto& registry = EstimatorRegistry::instance();
  EXPECT_GE(registry.size(), 17u);
  for (const char* name :
       {"krr", "krr_sharded", "krr_windowed", "naive_stack", "lru_stack",
        "olken_tree", "priority_stack", "shards", "shards_fixed", "aet",
        "counter_stacks", "statstack", "mimir", "hotl", "shards_sharded",
        "shards_fixed_sharded", "aet_sharded"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const EstimatorInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->description.empty()) << name;
    EXPECT_FALSE(info->policy.empty()) << name;
  }
}

TEST(EstimatorRegistry, UnknownNameIsInvalidArgument) {
  auto est = EstimatorRegistry::instance().create("no_such_model");
  ASSERT_FALSE(est.is_ok());
  EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument);
  // The error lists the registered names so CLI users can self-correct.
  EXPECT_NE(est.status().message().find("krr"), std::string::npos);
}

TEST(EstimatorRegistry, UndeclaredOptionKeyIsRejected) {
  EstimatorOptions options;
  options.set("window", "1000");  // krr_windowed's key, not krr's
  auto est = EstimatorRegistry::instance().create("krr", options);
  ASSERT_FALSE(est.is_ok());
  EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument);
}

TEST(EstimatorRegistry, CommonKeysAcceptedByEveryModel) {
  EstimatorOptions options;
  options.set("k", "5");
  options.set("seed", "3");
  options.set("quantum", "1");
  for (const auto& info : EstimatorRegistry::instance().list()) {
    auto est = EstimatorRegistry::instance().create(info.name, options);
    EXPECT_TRUE(est.is_ok()) << info.name << ": " << est.status().message();
  }
}

TEST(EstimatorRegistry, BadOptionValueIsInvalidArgument) {
  EstimatorOptions options;
  options.set("rate", "2.0");  // outside (0, 1]
  auto est = EstimatorRegistry::instance().create("shards", options);
  ASSERT_FALSE(est.is_ok());
  EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument);
}

TEST(EstimatorRegistry, DuplicateRegistrationThrows) {
  auto& registry = EstimatorRegistry::instance();
  EXPECT_THROW(registry.add({.name = "krr",
                             .policy = "K-LRU",
                             .description = "dup",
                             .caps = {},
                             .option_keys = {}},
                            [](const EstimatorOptions&) {
                              return std::unique_ptr<MrcEstimator>();
                            }),
               std::logic_error);
}

TEST(EstimatorRegistry, CapabilityFlagsMatchTheModelFamilies) {
  auto& registry = EstimatorRegistry::instance();
  EXPECT_TRUE(registry.find("krr")->caps.models_klru);
  EXPECT_TRUE(registry.find("krr")->caps.spatial_sampling);
  EXPECT_TRUE(registry.find("krr_sharded")->caps.sharded);
  EXPECT_TRUE(registry.find("naive_stack")->caps.reference_oracle);
  EXPECT_TRUE(registry.find("priority_stack")->caps.reference_oracle);
  EXPECT_FALSE(registry.find("shards")->caps.models_klru);
  EXPECT_TRUE(registry.find("shards")->caps.spatial_sampling);
  // AET's reuse-time histogram is built from a spatially thinned stream, so
  // it composes with hash sharding just like SHARDS does.
  EXPECT_TRUE(registry.find("aet")->caps.spatial_sampling);
  for (const char* name :
       {"shards_sharded", "shards_fixed_sharded", "aet_sharded"}) {
    const EstimatorInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_TRUE(info->caps.sharded) << name;
    EXPECT_TRUE(info->caps.spatial_sampling) << name;
    EXPECT_TRUE(info->caps.governed_memory) << name;
    // Composite quiesce-then-snapshot checkpointing (DESIGN.md §13).
    EXPECT_TRUE(info->caps.checkpoint) << name;
  }
  // Every serial sampling baseline serializes through the tagged-section
  // codec; the exact-stack oracles and the KRR-specific sharded/windowed
  // wrappers stay checkpoint-free.
  for (const char* name :
       {"krr", "shards", "shards_fixed", "aet", "statstack", "hotl"}) {
    const EstimatorInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_TRUE(info->caps.checkpoint) << name;
  }
  for (const char* name :
       {"lru_stack", "naive_stack", "priority_stack", "krr_sharded",
        "krr_windowed"}) {
    const EstimatorInfo* info = registry.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->caps.checkpoint) << name;
  }
}

TEST(EstimatorOptions, ParsesSpecsAndConvertsTypes) {
  auto parsed = EstimatorOptions::parse("k=5,rate=0.01,bytes,strategy=linear");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->get_int("k", 0), 5);
  EXPECT_DOUBLE_EQ(parsed->get_double("rate", 1.0), 0.01);
  EXPECT_TRUE(parsed->get_bool("bytes", false));  // bare flag == 1
  EXPECT_EQ(parsed->get_string("strategy", ""), "linear");
  EXPECT_EQ(parsed->get_int("absent", 9), 9);
  EXPECT_TRUE(EstimatorOptions::parse("")->empty());
  EXPECT_FALSE(EstimatorOptions::parse("=3").is_ok());
}

TEST(EstimatorOptions, MalformedValuesThrow) {
  EstimatorOptions options;
  options.set("k", "five");
  EXPECT_THROW(options.get_int("k", 0), std::invalid_argument);
  EXPECT_THROW(options.get_double("k", 0.0), std::invalid_argument);
  options.set("flag", "maybe");
  EXPECT_THROW(options.get_bool("flag", false), std::invalid_argument);
}

TEST(EstimatorOptions, MergeOverwrites) {
  EstimatorOptions base;
  base.set("k", "5");
  base.set("rate", "0.1");
  EstimatorOptions wins;
  wins.set("rate", "0.5");
  base.merge(wins);
  EXPECT_DOUBLE_EQ(base.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(base.get_int("k", 0), 5);
}

// The KRR adapter must be configured exactly like a hand-built profiler:
// the CLI's byte-identity guarantee rests on this.
TEST(EstimatorRegistry, KrrAdapterMatchesDirectProfiler) {
  const auto trace = small_zipf_trace();
  KrrProfiler direct{KrrProfilerConfig{}};
  for (const Request& r : trace) direct.access(r);
  auto est = make("krr");
  const MissRatioCurve via_registry = run(*est, trace);
  const MissRatioCurve expected = direct.mrc();
  ASSERT_EQ(via_registry.points().size(), expected.points().size());
  for (std::size_t i = 0; i < expected.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(via_registry.points()[i].size,
                     expected.points()[i].size);
    EXPECT_DOUBLE_EQ(via_registry.points()[i].miss_ratio,
                     expected.points()[i].miss_ratio);
  }
  const RunReport report = est->run_report();
  EXPECT_EQ(report.records_read, trace.size());
  EXPECT_EQ(report.stack_depth, direct.stack_depth());
}

// Sharding through the interface: shard count shapes the model, thread
// count must not, and the post-finish snapshot reports exact aggregates.
TEST(EstimatorRegistry, ShardedAdapterIsThreadCountInvariant) {
  const auto trace = small_zipf_trace();
  EstimatorOptions two_shards;
  two_shards.set("shards", "2");
  EstimatorOptions two_shards_threaded;
  two_shards_threaded.set("shards", "2");
  two_shards_threaded.set("threads", "2");
  auto inline_est = make("krr_sharded", two_shards);
  auto threaded_est = make("krr_sharded", two_shards_threaded);
  const MissRatioCurve ci = run(*inline_est, trace);
  const MissRatioCurve ct = run(*threaded_est, trace);
  ASSERT_EQ(ci.points().size(), ct.points().size());
  for (std::size_t i = 0; i < ci.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(ci.points()[i].miss_ratio, ct.points()[i].miss_ratio);
  }
  const obs::HeartbeatSnapshot si = inline_est->snapshot();
  const obs::HeartbeatSnapshot st = threaded_est->snapshot();
  EXPECT_EQ(si.records, trace.size());
  EXPECT_EQ(st.records, trace.size());
  EXPECT_EQ(si.sampled, st.sampled);
  EXPECT_EQ(si.stack_depth, st.stack_depth);
}

// AET is the one builtin that solves at caller-provided sizes: the grid
// hint must be honored, and an empty hint must still produce a curve.
TEST(EstimatorRegistry, SizeGridHintIsHonored) {
  const auto trace = small_zipf_trace();
  auto est = make("aet");
  const std::vector<double> grid = {50, 150, 250};
  const MissRatioCurve curve = run(*est, trace, grid);
  // AET anchors the curve at (0, 1) and then evaluates exactly at the
  // requested sizes — every grid size must be a breakpoint.
  ASSERT_EQ(curve.points().size(), grid.size() + 1);
  EXPECT_DOUBLE_EQ(curve.points()[0].size, 0.0);
  EXPECT_DOUBLE_EQ(curve.points()[0].miss_ratio, 1.0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve.points()[i + 1].size, grid[i]);
  }
}

}  // namespace
}  // namespace krr
