// The sharded profiling pipeline's contract: shard routing is a pure
// disjoint partition of the keyspace, results depend only on (config,
// trace) — never on the thread count — the merged MRC statistically
// matches the serial profiler, and a worker failure propagates without
// hanging the producer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/profiler.h"
#include "core/sharded_profiler.h"
#include "obs/metrics.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {
namespace {

std::vector<Request> zipf_trace(std::size_t n, std::uint64_t footprint,
                                double alpha = 0.9, std::uint64_t seed = 3) {
  ZipfianGenerator gen(footprint, alpha, seed, /*scrambled=*/true);
  return materialize(gen, n);
}

MissRatioCurve serial_mrc(const std::vector<Request>& trace,
                          const KrrProfilerConfig& cfg) {
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  return profiler.mrc();
}

MissRatioCurve sharded_mrc(const std::vector<Request>& trace,
                           const KrrProfilerConfig& base, std::uint32_t shards,
                           unsigned threads) {
  ShardedKrrProfilerConfig cfg;
  cfg.base = base;
  cfg.shards = shards;
  cfg.threads = threads;
  ShardedKrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  profiler.finish();
  return profiler.mrc();
}

double mae_on_grid(const MissRatioCurve& a, const MissRatioCurve& b,
                   std::size_t n_sizes = 40) {
  const std::vector<double> sizes = evenly_spaced_sizes(a.max_size(), n_sizes);
  return a.mae(b, sizes);
}

TEST(ShardedKrrProfiler, ShardRoutingIsAPureDisjointPartition) {
  ShardedKrrProfilerConfig cfg;
  cfg.shards = 7;
  ShardedKrrProfiler profiler(cfg);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const std::uint32_t s = profiler.shard_of(key);
    ASSERT_LT(s, 7u);
    ASSERT_EQ(s, profiler.shard_of(key));  // pure function of the key
  }
}

TEST(ShardedKrrProfiler, SingleShardInlineIsBitIdenticalToSerial) {
  const auto trace = zipf_trace(50000, 4000);
  KrrProfilerConfig base;
  base.k_sample = 5;
  base.sampling_rate = 0.5;
  base.seed = 11;
  const MissRatioCurve serial = serial_mrc(trace, base);
  const MissRatioCurve sharded = sharded_mrc(trace, base, 1, 1);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.points()[i].size, sharded.points()[i].size);
    EXPECT_DOUBLE_EQ(serial.points()[i].miss_ratio,
                     sharded.points()[i].miss_ratio);
  }
}

TEST(ShardedKrrProfiler, DeterministicUnderFixedSeedAndShardCount) {
  const auto trace = zipf_trace(60000, 5000);
  KrrProfilerConfig base;
  base.k_sample = 5;
  base.seed = 7;
  const MissRatioCurve reference = sharded_mrc(trace, base, 4, 1);
  // Same shard count, any thread count (including re-runs): identical MRC.
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const MissRatioCurve run = sharded_mrc(trace, base, 4, threads);
    ASSERT_EQ(run.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_DOUBLE_EQ(run.points()[i].size, reference.points()[i].size)
          << "threads=" << threads;
      ASSERT_DOUBLE_EQ(run.points()[i].miss_ratio,
                       reference.points()[i].miss_ratio)
          << "threads=" << threads;
    }
  }
}

TEST(ShardedKrrProfiler, MergedMrcMatchesSerialOnZipf) {
  const auto trace = zipf_trace(200000, 10000);
  KrrProfilerConfig base;
  base.k_sample = 5;
  const MissRatioCurve serial = serial_mrc(trace, base);
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    const MissRatioCurve merged = sharded_mrc(trace, base, shards, 2);
    EXPECT_LE(mae_on_grid(serial, merged), 0.01) << "shards=" << shards;
  }
}

TEST(ShardedKrrProfiler, MergedMrcMatchesSerialOnMsrTrace) {
  MsrGenerator gen(msr_profile("web"), 5, 12000, 1);
  const auto trace = materialize(gen, 150000);
  KrrProfilerConfig base;
  base.k_sample = 5;
  const MissRatioCurve serial = serial_mrc(trace, base);
  const MissRatioCurve merged = sharded_mrc(trace, base, 4, 3);
  EXPECT_LE(mae_on_grid(serial, merged), 0.01);
}

TEST(ShardedKrrProfiler, MergedMrcMatchesSerialUnderSpatialSampling) {
  // Sampling + sharding compose: each shard applies the SHARDS-adj against
  // its own expectation, and the merged curve still tracks the serial
  // sampled profiler.
  const auto trace = zipf_trace(200000, 20000);
  KrrProfilerConfig base;
  base.k_sample = 5;
  base.sampling_rate = 0.1;
  const MissRatioCurve serial = serial_mrc(trace, base);
  const MissRatioCurve merged = sharded_mrc(trace, base, 4, 2);
  EXPECT_LE(mae_on_grid(serial, merged), 0.02);
}

TEST(ShardedKrrProfiler, StackDepthSumsToDistinctKeysAtFullRate) {
  const auto trace = zipf_trace(40000, 3000);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.shards = 8;
  cfg.threads = 2;
  ShardedKrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  profiler.finish();
  // Disjoint shards at rate 1.0 together track every distinct key once.
  EXPECT_EQ(profiler.stack_depth(), count_distinct(trace));
  EXPECT_EQ(profiler.sampled(), trace.size());
  EXPECT_EQ(profiler.processed(), trace.size());
}

TEST(ShardedKrrProfiler, WorkerExceptionPropagatesFromFinish) {
  const auto trace = zipf_trace(80000, 5000);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.queue_capacity = 256;  // small ring so the producer hits backpressure
  std::atomic<std::uint64_t> seen{0};
  cfg.before_access_hook = [&seen](std::uint32_t shard, const Request&) {
    if (shard == 1 && seen.fetch_add(1) == 100) {
      throw std::runtime_error("shard worker fault injection");
    }
  };
  ShardedKrrProfiler profiler(cfg);
  // The producer must not hang even though shard 1's consumer dies with
  // its queue full; poisoned-run records are dropped.
  for (const Request& r : trace) profiler.access(r);
  EXPECT_THROW(profiler.finish(), std::runtime_error);
  // Clean shutdown: the pipeline is drained/joined; a second finish() no
  // longer throws and the object destructs without deadlock.
  profiler.finish();
}

TEST(ShardedKrrProfiler, WorkerExceptionInInlineModePropagatesImmediately) {
  ShardedKrrProfilerConfig cfg;
  cfg.shards = 2;
  cfg.threads = 1;
  cfg.before_access_hook = [](std::uint32_t, const Request&) {
    throw std::runtime_error("inline fault");
  };
  ShardedKrrProfiler profiler(cfg);
  EXPECT_THROW(profiler.access(Request{1, 1, Op::kGet}), std::runtime_error);
}

TEST(ShardedKrrProfiler, BestEffortDropsFailedShardAndKeepsRunAlive) {
  const auto trace = zipf_trace(80000, 5000);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.queue_capacity = 256;  // small ring so the producer hits backpressure
  cfg.failure_mode = ShardFailureMode::kBestEffort;
  std::atomic<std::uint64_t> seen{0};
  cfg.before_access_hook = [&seen](std::uint32_t shard, const Request&) {
    if (shard == 1 && seen.fetch_add(1) == 100) {
      throw std::runtime_error("shard worker fault injection");
    }
  };
  ShardedKrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  // The run survives: finish() joins cleanly instead of rethrowing.
  EXPECT_NO_THROW(profiler.finish());
  EXPECT_EQ(profiler.shards_failed(), 1u);
  EXPECT_GT(profiler.dropped_records(), 0u);
  EXPECT_EQ(profiler.processed(), trace.size());
  EXPECT_FALSE(profiler.mrc().points().empty());
  const RunReport report = profiler.run_report();
  EXPECT_EQ(report.shards_failed, 1u);
  obs::MetricsRegistry registry;
  profiler.export_shard_gauges(registry);
  EXPECT_EQ(registry.gauge("sharded.shard1.failed").value(), 1.0);
  EXPECT_EQ(registry.gauge("sharded.shard0.failed").value(), 0.0);
}

TEST(ShardedKrrProfiler, BestEffortRescaledCurveTracksTheFullRun) {
  // Each shard is an unbiased 1/S spatial sample, so dropping one and
  // rescaling the survivors by S/(S-1) must land near the no-failure curve.
  const auto trace = zipf_trace(120000, 8000);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.shards = 6;
  cfg.threads = 1;  // inline: deterministic failure point
  MissRatioCurve healthy;
  {
    ShardedKrrProfiler profiler(cfg);
    for (const Request& r : trace) profiler.access(r);
    profiler.finish();
    healthy = profiler.mrc();
  }
  cfg.failure_mode = ShardFailureMode::kBestEffort;
  cfg.before_access_hook = [](std::uint32_t shard, const Request&) {
    if (shard == 2) throw std::runtime_error("injected");
  };
  ShardedKrrProfiler degraded(cfg);
  for (const Request& r : trace) degraded.access(r);
  degraded.finish();
  EXPECT_EQ(degraded.shards_failed(), 1u);
  // Extrapolated total mass stays close: the histogram was rescaled by 6/5.
  const double total_healthy = healthy.max_size();
  const double total_degraded = degraded.mrc().max_size();
  EXPECT_NEAR(total_degraded / total_healthy, 1.0, 0.15);
  EXPECT_LT(mae_on_grid(healthy, degraded.mrc()), 0.05);
}

TEST(ShardedKrrProfiler, BestEffortWithEveryShardDeadIsARealFailure) {
  ShardedKrrProfilerConfig cfg;
  cfg.shards = 2;
  cfg.threads = 1;
  cfg.failure_mode = ShardFailureMode::kBestEffort;
  cfg.before_access_hook = [](std::uint32_t, const Request&) {
    throw std::runtime_error("injected");
  };
  ShardedKrrProfiler profiler(cfg);
  const auto trace = zipf_trace(1000, 100);
  for (const Request& r : trace) profiler.access(r);
  EXPECT_EQ(profiler.shards_failed(), 2u);
  // No survivor to extrapolate from: this is not a recoverable run.
  EXPECT_THROW(profiler.finish(), StatusError);
}

TEST(ShardedKrrProfiler, StrictModeIsTheDefault) {
  ShardedKrrProfilerConfig cfg;
  EXPECT_EQ(cfg.failure_mode, ShardFailureMode::kStrict);
}

TEST(ShardedKrrProfiler, MemoryCeilingDegradesPerShard) {
  const auto trace = zipf_trace(60000, 20000, 0.7);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.base.max_stack_bytes = 64 << 10;  // global ceiling, split across shards
  cfg.shards = 4;
  cfg.threads = 2;
  ShardedKrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  profiler.finish();
  EXPECT_GT(profiler.degradation_events(), 0u);
  // Every shard honors its slice of the ceiling.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_LE(profiler.shard(s).space_overhead_bytes(), (64u << 10) / 4);
  }
  const RunReport report = profiler.run_report();
  EXPECT_LT(report.final_sampling_rate, report.configured_sampling_rate);
  EXPECT_EQ(report.degradation_events, profiler.degradation_events());
}

TEST(ShardedKrrProfiler, RunReportAndSnapshotAggregate) {
  const auto trace = zipf_trace(30000, 2000);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.shards = 3;
  cfg.threads = 2;
  ShardedKrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  profiler.finish();
  const RunReport report = profiler.run_report();
  EXPECT_EQ(report.records_read, trace.size());
  EXPECT_EQ(report.stack_depth, profiler.stack_depth());
  EXPECT_EQ(report.space_overhead_bytes, profiler.space_overhead_bytes());
  const obs::HeartbeatSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.records, trace.size());
  EXPECT_EQ(snap.sampled, profiler.sampled());
  EXPECT_EQ(snap.stack_depth, profiler.stack_depth());
}

TEST(ShardedKrrProfiler, ThreadedAccessorsRequireFinish) {
  ShardedKrrProfilerConfig cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  ShardedKrrProfiler profiler(cfg);
  EXPECT_THROW(profiler.mrc(), std::logic_error);
  EXPECT_THROW(profiler.run_report(), std::logic_error);
  profiler.finish();
  EXPECT_NO_THROW(profiler.mrc());
}

TEST(ShardedKrrProfiler, ExportsPerShardGauges) {
  const auto trace = zipf_trace(20000, 1000);
  ShardedKrrProfilerConfig cfg;
  cfg.base.k_sample = 5;
  cfg.shards = 2;
  cfg.threads = 1;
  ShardedKrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  profiler.finish();
  obs::MetricsRegistry registry;
  profiler.export_shard_gauges(registry);
  const double d0 = registry.gauge("sharded.shard0.stack_depth").value();
  const double d1 = registry.gauge("sharded.shard1.stack_depth").value();
  EXPECT_EQ(static_cast<std::uint64_t>(d0 + d1), profiler.stack_depth());
}

}  // namespace
}  // namespace krr
