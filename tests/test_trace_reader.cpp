#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"
#include "trace/workload_factory.h"
#include "trace/zipf.h"
#include "util/crc32.h"

namespace krr {
namespace {

std::vector<Request> make_trace(std::size_t n, std::uint64_t seed = 7) {
  ZipfianGenerator gen(400, 0.9, seed, true, 64);
  auto trace = materialize(gen, n);
  for (std::size_t i = 0; i < trace.size(); i += 5) trace[i].op = Op::kSet;
  return trace;
}

std::string to_v2_bytes(const std::vector<Request>& trace,
                        std::uint32_t records_per_block = 64) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary_v2(ss, trace, records_per_block);
  return ss.str();
}

std::string to_v1_bytes(const std::vector<Request>& trace) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary(ss, trace);
  return ss.str();
}

TEST(TraceReaderV2, RoundTrips) {
  const auto trace = make_trace(1000);
  std::stringstream ss(to_v2_bytes(trace));
  TraceReadReport report;
  auto result = read_trace(ss, {}, &report);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(*result, trace);
  EXPECT_EQ(report.format_version, 2u);
  EXPECT_EQ(report.records_read, trace.size());
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_EQ(report.checksum_failures, 0u);
  EXPECT_FALSE(report.truncated_tail);
}

TEST(TraceReaderV2, RoundTripsEmptyAndOddBlockSizes) {
  for (std::uint32_t rpb : {1u, 3u, 64u, 1000u, 5000u}) {
    const auto trace = make_trace(777);
    std::stringstream ss(to_v2_bytes(trace, rpb));
    auto result = read_trace(ss);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(*result, trace) << "records_per_block=" << rpb;
  }
  std::stringstream empty(to_v2_bytes({}));
  auto result = read_trace(empty);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result->empty());
}

TEST(TraceReaderV2, LegacyReaderAcceptsV2) {
  const auto trace = make_trace(500);
  std::stringstream ss(to_v2_bytes(trace));
  EXPECT_EQ(read_trace_binary(ss), trace);
}

TEST(TraceReaderV1, ReadsV1ByteIdentically) {
  const auto trace = make_trace(500);
  std::stringstream ss(to_v1_bytes(trace));
  TraceReadReport report;
  auto result = read_trace(ss, {}, &report);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result, trace);
  EXPECT_EQ(report.format_version, 1u);
}

TEST(TraceReaderV1, StreamingInterfaceDeliversInOrder) {
  const auto trace = make_trace(100);
  std::stringstream ss(to_v1_bytes(trace));
  TraceReader reader(ss);
  Request r;
  std::size_t i = 0;
  while (reader.next(r)) {
    ASSERT_LT(i, trace.size());
    EXPECT_EQ(r, trace[i++]);
  }
  EXPECT_TRUE(reader.status().is_ok());
  EXPECT_EQ(i, trace.size());
}

TEST(TraceReaderV1, HostileCountRejectedWhenSeekable) {
  // A header claiming 2^60 records over a 3-record payload must fail as a
  // corrupt header in strict mode — before any large allocation.
  auto bytes = to_v1_bytes(make_trace(3));
  const std::uint64_t hostile = 1ULL << 60;
  for (int i = 0; i < 8; ++i) {
    bytes[12 + i] = static_cast<char>(hostile >> (8 * i));
  }
  std::stringstream ss(bytes);
  auto result = read_trace(ss, {.policy = RecoveryPolicy::kStrict});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptHeader);
}

TEST(TraceReaderV1, HostileCountClampedInRecoveryModes) {
  const auto trace = make_trace(3);
  auto bytes = to_v1_bytes(trace);
  const std::uint64_t hostile = 1ULL << 60;
  for (int i = 0; i < 8; ++i) {
    bytes[12 + i] = static_cast<char>(hostile >> (8 * i));
  }
  std::stringstream ss(bytes);
  TraceReadReport report;
  auto result = read_trace(ss, {.policy = RecoveryPolicy::kSkipAndCount}, &report);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(*result, trace);  // everything that exists is delivered
  EXPECT_TRUE(report.truncated_tail);
}

// A streambuf that hides the stream size (tellg fails), forcing the reader
// down the "not seekable: cap preallocation" path.
class NonSeekableBuf : public std::stringbuf {
 public:
  explicit NonSeekableBuf(const std::string& s)
      : std::stringbuf(s, std::ios::in) {}

 protected:
  pos_type seekoff(off_type, std::ios_base::seekdir,
                   std::ios_base::openmode) override {
    return pos_type(off_type(-1));
  }
  pos_type seekpos(pos_type, std::ios_base::openmode) override {
    return pos_type(off_type(-1));
  }
};

TEST(TraceReaderV1, HostileCountCappedWhenNotSeekable) {
  const auto trace = make_trace(3);
  auto bytes = to_v1_bytes(trace);
  const std::uint64_t hostile = 1ULL << 60;
  for (int i = 0; i < 8; ++i) {
    bytes[12 + i] = static_cast<char>(hostile >> (8 * i));
  }
  NonSeekableBuf buf(bytes);
  std::istream is(&buf);
  TraceReaderOptions options;
  options.policy = RecoveryPolicy::kSkipAndCount;
  options.max_preallocate_records = 64;  // the OOM guard under test
  TraceReader reader(is, options);
  Request r;
  std::vector<Request> got;
  while (reader.next(r)) got.push_back(r);
  EXPECT_TRUE(reader.status().is_ok());
  EXPECT_EQ(got, trace);
  EXPECT_LE(reader.reserve_hint(), 64u);
}

TEST(TraceReaderV2, BadOpByteSkippedAndCounted) {
  // Corrupt an op byte *and* refresh the block CRC, modeling a buggy
  // writer: the block checksums clean but holds an invalid record.
  auto trace = make_trace(10);
  std::string bytes = to_v2_bytes(trace, 100);
  // One block: header 28, block header 12, records of 13 bytes; op is the
  // record's last byte.
  const std::size_t op_offset = 28 + 12 + 3 * 13 + 12;
  bytes[op_offset] = 7;
  // Recompute the payload CRC so only the op byte is "wrong".
  const std::size_t payload_offset = 28 + 12;
  const std::uint32_t crc =
      crc32(bytes.data() + payload_offset, trace.size() * 13);
  for (int i = 0; i < 4; ++i) {
    bytes[28 + 8 + i] = static_cast<char>(crc >> (8 * i));
  }

  std::stringstream strict_ss(bytes);
  auto strict = read_trace(strict_ss, {.policy = RecoveryPolicy::kStrict});
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kBadRecord);

  std::stringstream skip_ss(bytes);
  TraceReadReport report;
  auto skipped = read_trace(skip_ss, {.policy = RecoveryPolicy::kSkipAndCount},
                            &report);
  ASSERT_TRUE(skipped.is_ok());
  EXPECT_EQ(skipped->size(), trace.size() - 1);
  EXPECT_EQ(report.records_skipped, 1u);

  std::stringstream best_ss(bytes);
  auto best = read_trace(best_ss, {.policy = RecoveryPolicy::kBestEffort});
  ASSERT_TRUE(best.is_ok());
  EXPECT_EQ(best->size(), 3u);  // everything before the damaged record
}

TEST(TraceReaderV2, MaxBadRecordsBudgetEnforced) {
  const auto trace = make_trace(300);
  std::string bytes = to_v2_bytes(trace, 50);
  // Flip a payload byte in every block: all 6 blocks fail their CRC.
  for (std::size_t block = 0; block < 6; ++block) {
    const std::size_t payload = 28 + (block + 1) * 12 + block * 50 * 13;
    bytes[payload + 5] = static_cast<char>(bytes[payload + 5] ^ 0x40);
  }
  std::stringstream generous(bytes);
  TraceReadReport report;
  auto ok = read_trace(generous,
                       {.policy = RecoveryPolicy::kSkipAndCount,
                        .max_bad_records = 1000},
                       &report);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_TRUE(ok->empty());
  EXPECT_EQ(report.records_skipped, 300u);
  EXPECT_EQ(report.checksum_failures, 6u);

  std::stringstream stingy(bytes);
  auto limited = read_trace(
      stingy, {.policy = RecoveryPolicy::kSkipAndCount, .max_bad_records = 100});
  ASSERT_FALSE(limited.is_ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceLimit);
}

TEST(TraceReaderV2, ResyncsAfterCorruptBlockHeader) {
  const auto trace = make_trace(200);
  std::string bytes = to_v2_bytes(trace, 50);
  // Destroy the second block's magic: the reader must lose that block and
  // resynchronize on the third block's magic.
  const std::size_t second_block = 28 + 12 + 50 * 13;
  bytes[second_block] = 'X';
  std::stringstream ss(bytes);
  TraceReadReport report;
  auto result = read_trace(ss, {.policy = RecoveryPolicy::kSkipAndCount}, &report);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GE(report.resyncs, 1u);
  // Blocks 1, 3, 4 survive (150 records); block 2 is lost to the resync.
  EXPECT_EQ(result->size(), 150u);
  std::vector<Request> expected(trace.begin(), trace.begin() + 50);
  expected.insert(expected.end(), trace.begin() + 100, trace.end());
  EXPECT_EQ(*result, expected);
}

TEST(TraceReaderV2, UnsupportedVersionIsTyped) {
  auto bytes = to_v2_bytes(make_trace(5));
  bytes[8] = 9;  // version field
  std::stringstream ss(bytes);
  auto result = read_trace(ss, {.policy = RecoveryPolicy::kSkipAndCount});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupportedVersion);
}

TEST(TraceReaderV2, HeaderCrcGuardsHostileFields) {
  auto bytes = to_v2_bytes(make_trace(5));
  bytes[20] = static_cast<char>(0xFF);  // records_per_block low byte
  std::stringstream ss(bytes);
  auto strict = read_trace(ss, {.policy = RecoveryPolicy::kStrict});
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruptHeader);
  // Recovery mode still reads everything: blocks self-describe and
  // checksum clean.
  std::stringstream ss2(bytes);
  TraceReadReport report;
  auto skip = read_trace(ss2, {.policy = RecoveryPolicy::kSkipAndCount}, &report);
  ASSERT_TRUE(skip.is_ok());
  EXPECT_EQ(skip->size(), 5u);
  EXPECT_EQ(report.checksum_failures, 1u);
}

TEST(TraceCsv, AcceptsCrlfAndTrailingWhitespace) {
  std::stringstream ss("key,size,op\r\n1,100,get\r\n2, 200 ,set \r\n");
  const auto trace = read_trace_csv(ss);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], (Request{1, 100, Op::kGet}));
  EXPECT_EQ(trace[1], (Request{2, 200, Op::kSet}));
}

TEST(TraceCsv, RejectsNegativeAndOverflowingSizes) {
  std::stringstream negative("key,size,op\n1,-5,get\n");
  EXPECT_THROW(read_trace_csv(negative), std::runtime_error);
  std::stringstream overflow("key,size,op\n1,4294967296,get\n");
  EXPECT_THROW(read_trace_csv(overflow), std::runtime_error);
}

TEST(TraceCsv, RecoveryPoliciesApply) {
  const std::string text =
      "key,size,op\n1,10,get\nBADLINE\n2,20,set\n3,-1,get\n4,40,get\n";
  std::stringstream skip_ss(text);
  TraceReadReport report;
  auto skipped =
      read_trace_csv(skip_ss, {.policy = RecoveryPolicy::kSkipAndCount}, &report);
  ASSERT_TRUE(skipped.is_ok());
  EXPECT_EQ(skipped->size(), 3u);
  EXPECT_EQ(report.records_skipped, 2u);

  std::stringstream best_ss(text);
  auto best = read_trace_csv(best_ss, {.policy = RecoveryPolicy::kBestEffort});
  ASSERT_TRUE(best.is_ok());
  EXPECT_EQ(best->size(), 1u);

  std::stringstream strict_ss(text);
  auto strict = read_trace_csv(strict_ss, {.policy = RecoveryPolicy::kStrict});
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kBadRecord);
}

TEST(TraceFiles, SaveV2LoadsBackAndV1StillWritable) {
  const auto trace = make_trace(50);
  const std::string path = testing::TempDir() + "/krr_trace_reader_fmt.bin";
  save_trace(path, trace);  // defaults to v2
  EXPECT_EQ(load_trace(path), trace);
  save_trace(path, trace, TraceFormat::kV1);
  EXPECT_EQ(load_trace(path), trace);
  std::remove(path.c_str());
}

TEST(WorkloadFactory, TryMakeWorkloadReportsTypedErrors) {
  auto unknown = try_make_workload("frobnicate");
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  auto bad_param = try_make_workload("zipf:not-a-number");
  ASSERT_FALSE(bad_param.is_ok());
  EXPECT_EQ(bad_param.status().code(), StatusCode::kInvalidArgument);
  auto ok = try_make_workload("zipf:0.9");
  ASSERT_TRUE(ok.is_ok());
  EXPECT_NE(*ok, nullptr);
}

}  // namespace
}  // namespace krr
