// Span/instant-event tracer: recording semantics, ring overflow
// accounting, Chrome trace-event export structure, and multi-threaded
// recording (this file is also built into the TSan suite — the per-thread
// rings must hold up under real concurrency, not just by argument).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/tracer.h"

namespace krr {
namespace {

using obs::Json;
using obs::ScopedTraceSpan;
using obs::Tracer;

const Json* events_of(const Json& root) {
  const Json* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  return events;
}

TEST(TracerTest, StartsEmpty) {
  Tracer tracer;
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const Json root = tracer.to_json();
  // Only metadata (process name, lane 0 name) — no payload events.
  const Json* events = events_of(root);
  for (std::size_t i = 0; i < events->size(); ++i) {
    EXPECT_EQ(events->at(i).find("ph")->as_string(), "M");
  }
}

TEST(TracerTest, InstantAndCompleteExportChromeFormat) {
  Tracer tracer;
  tracer.instant("governor.degrade", "governor", 0,
                 {{"before_bytes", 4096.0}, {"after_bytes", 2048.0}});
  const std::uint64_t t0 = tracer.now_ns();
  tracer.complete("phase.profile", "phase", 0, t0, 1500,
                  {{"records", 100.0}});
  EXPECT_EQ(tracer.recorded(), 2u);

  const Json root = tracer.to_json();
  EXPECT_EQ(root.find("displayTimeUnit")->as_string(), "ms");
  EXPECT_EQ(root.find("otherData")->find("recorded")->as_uint(), 2u);
  EXPECT_EQ(root.find("otherData")->find("dropped")->as_uint(), 0u);

  const Json* events = events_of(root);
  const Json* instant = nullptr;
  const Json* complete = nullptr;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    const std::string name = ev.find("name")->as_string();
    if (name == "governor.degrade") instant = &ev;
    if (name == "phase.profile") complete = &ev;
  }
  ASSERT_NE(instant, nullptr);
  ASSERT_NE(complete, nullptr);

  // Instant events need the scope field or Perfetto rejects them.
  EXPECT_EQ(instant->find("ph")->as_string(), "i");
  EXPECT_EQ(instant->find("s")->as_string(), "t");
  EXPECT_EQ(instant->find("cat")->as_string(), "governor");
  EXPECT_DOUBLE_EQ(instant->find("args")->find("before_bytes")->as_double(),
                   4096.0);
  EXPECT_DOUBLE_EQ(instant->find("args")->find("after_bytes")->as_double(),
                   2048.0);

  // Complete spans carry dur; timestamps are exported in microseconds.
  EXPECT_EQ(complete->find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(complete->find("dur")->as_double(), 1.5);
  EXPECT_DOUBLE_EQ(complete->find("ts")->as_double(),
                   static_cast<double>(t0) / 1e3);
  EXPECT_DOUBLE_EQ(complete->find("args")->find("records")->as_double(),
                   100.0);
  EXPECT_EQ(complete->find("pid")->as_uint(), 0u);
}

TEST(TracerTest, EventsAreSortedByTimestamp) {
  Tracer tracer;
  // Record spans with deliberately decreasing start timestamps.
  tracer.complete("late", "t", 0, 3000, 10);
  tracer.complete("early", "t", 0, 1000, 10);
  tracer.complete("mid", "t", 0, 2000, 10);
  const Json root = tracer.to_json();
  const Json* events = events_of(root);
  double last_ts = -1.0;
  std::size_t payload = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    if (ev.find("ph")->as_string() == "M") continue;
    const double ts = ev.find("ts")->as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    ++payload;
  }
  EXPECT_EQ(payload, 3u);
}

TEST(TracerTest, LaneNamesBecomeThreadMetadata) {
  Tracer tracer;
  tracer.set_lane_name(1, "shard 0");
  tracer.instant("x", "t", 1);
  const Json root = tracer.to_json();
  const Json* events = events_of(root);
  bool lane0_named = false, lane1_named = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    if (ev.find("name")->as_string() != "thread_name") continue;
    const std::uint64_t tid = ev.find("tid")->as_uint();
    const std::string name = ev.find("args")->find("name")->as_string();
    if (tid == 0 && name == "main") lane0_named = true;
    if (tid == 1 && name == "shard 0") lane1_named = true;
  }
  EXPECT_TRUE(lane0_named);
  EXPECT_TRUE(lane1_named);
}

TEST(TracerTest, OverflowDropsNewestAndCounts) {
  Tracer tracer(/*ring_capacity=*/16);  // the ctor's floor
  for (int i = 0; i < 100; ++i) tracer.instant("e", "t", 0);
  EXPECT_EQ(tracer.recorded(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  const Json root = tracer.to_json();
  EXPECT_EQ(root.find("otherData")->find("dropped")->as_uint(), 84u);
  std::size_t payload = 0;
  const Json* events = events_of(root);
  for (std::size_t i = 0; i < events->size(); ++i) {
    if (events->at(i).find("ph")->as_string() != "M") ++payload;
  }
  EXPECT_EQ(payload, 16u);
}

TEST(TracerTest, ArgsBeyondMaxAreTruncated) {
  Tracer tracer;
  tracer.instant("e", "t", 0,
                 {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}, {"e", 5.0}});
  const Json root = tracer.to_json();
  const Json* events = events_of(root);
  const Json* args = nullptr;
  for (std::size_t i = 0; i < events->size(); ++i) {
    if (events->at(i).find("name")->as_string() == "e") {
      args = events->at(i).find("args");
    }
  }
  ASSERT_NE(args, nullptr);
  EXPECT_NE(args->find("d"), nullptr);
  EXPECT_EQ(args->find("e"), nullptr);  // fifth arg dropped, first four kept
}

TEST(TracerTest, MultiThreadedRecordingLosesNothing) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.instant("worker.event", "test",
                       static_cast<std::uint32_t>(t + 1),
                       {{"i", static_cast<double>(i)}});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);

  std::size_t payload = 0;
  const Json root = tracer.to_json();
  const Json* events = events_of(root);
  for (std::size_t i = 0; i < events->size(); ++i) {
    if (events->at(i).find("ph")->as_string() != "M") ++payload;
  }
  EXPECT_EQ(payload, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TracerTest, TwoTracersDoNotAliasThreadLocalCache) {
  // The thread-local ring cache is keyed by tracer id: interleaving events
  // on two tracers from one thread must route each event to its owner.
  Tracer a;
  Tracer b;
  for (int i = 0; i < 10; ++i) {
    a.instant("ea", "t", 0);
    b.instant("eb", "t", 0);
    b.instant("eb", "t", 0);
  }
  EXPECT_EQ(a.recorded(), 10u);
  EXPECT_EQ(b.recorded(), 20u);
}

TEST(TracerTest, WriteFileRoundTripsThroughParser) {
  Tracer tracer;
  tracer.instant("e", "t", 0);
  const std::string path = ::testing::TempDir() + "krr_tracer_test.json";
  ASSERT_TRUE(tracer.write_file(path).is_ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  std::string error;
  auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_NE(parsed->find("traceEvents"), nullptr);
}

TEST(TracerTest, WriteFileReportsIoError) {
  Tracer tracer;
  const Status s = tracer.write_file("/nonexistent-dir/trace.json");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(ScopedTraceSpanTest, NullTracerIsAFreeNoOp) {
  ScopedTraceSpan span(nullptr, "phase.ingest", "phase");
  // Destruction must not crash either; nothing to assert beyond survival.
}

TEST(ScopedTraceSpanTest, RecordsOneCompleteSpan) {
  Tracer tracer;
  {
    ScopedTraceSpan span(&tracer, "phase.ingest", "phase", 0);
  }
  EXPECT_EQ(tracer.recorded(), 1u);
  const Json root = tracer.to_json();
  const Json* events = events_of(root);
  bool found = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    if (ev.find("name")->as_string() != "phase.ingest") continue;
    found = true;
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    EXPECT_GE(ev.find("dur")->as_double(), 0.0);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace krr
