#include <gtest/gtest.h>

#include "sim/lru_cache.h"
#include "trace/generator.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key, std::uint32_t size = 1) {
  return Request{key, size, Op::kGet};
}

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW(LruCache(0), std::invalid_argument);
}

TEST(LruCache, HitsAndMissesAreCounted) {
  LruCache cache(2);
  EXPECT_FALSE(cache.access(get(1)));
  EXPECT_FALSE(cache.access(get(2)));
  EXPECT_TRUE(cache.access(get(1)));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_ratio(), 2.0 / 3.0);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.access(get(1));
  cache.access(get(2));
  cache.access(get(1));  // order now: 1, 2
  cache.access(get(3));  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, RecencyOrderIsMaintained) {
  LruCache cache(10);
  for (std::uint64_t k = 1; k <= 4; ++k) cache.access(get(k));
  cache.access(get(2));
  const auto order = cache.recency_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 4u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 1u);
}

TEST(LruCache, ByteCapacityEvictsUntilFit) {
  LruCache cache(100);
  cache.access(get(1, 40));
  cache.access(get(2, 40));
  cache.access(get(3, 40));  // 120 > 100: evicts key 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used(), 80u);
}

TEST(LruCache, OversizedObjectIsBypassed) {
  LruCache cache(100);
  cache.access(get(1, 50));
  EXPECT_FALSE(cache.access(get(2, 150)));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));  // nothing was evicted for it
}

TEST(LruCache, SetWithNewSizeResizesInPlace) {
  LruCache cache(100);
  cache.access(get(1, 30));
  cache.access(get(2, 30));
  cache.access(Request{1, 80, Op::kSet});  // 1 resized: 110 > 100, evict 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.used(), 80u);
}

TEST(LruCache, FullWorkloadConservesAccounting) {
  ZipfianGenerator gen(2000, 0.9, 1);
  LruCache cache(500);
  const auto trace = materialize(gen, 20000);
  for (const Request& r : trace) cache.access(r);
  EXPECT_EQ(cache.hits() + cache.misses(), trace.size());
  EXPECT_LE(cache.used(), 500u);
  EXPECT_EQ(cache.object_count(), cache.used());  // unit sizes
  EXPECT_EQ(cache.misses(), cache.evictions() + cache.object_count());
}

TEST(LruCache, LargerCacheNeverMissesMore) {
  // LRU satisfies the inclusion property, so miss counts are monotone.
  ZipfianGenerator gen(1000, 0.8, 2);
  const auto trace = materialize(gen, 20000);
  std::uint64_t prev_misses = trace.size() + 1;
  for (std::uint64_t c : {50, 100, 200, 400, 800}) {
    LruCache cache(c);
    for (const Request& r : trace) cache.access(r);
    EXPECT_LE(cache.misses(), prev_misses) << "capacity " << c;
    prev_misses = cache.misses();
  }
}

TEST(LruCache, ResetClearsEverything) {
  LruCache cache(4);
  cache.access(get(1));
  cache.access(get(2));
  cache.reset();
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

}  // namespace
}  // namespace krr
