#include <gtest/gtest.h>

#include "baselines/aet.h"
#include "baselines/lru_stack.h"
#include "baselines/shards.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/ycsb.h"
#include "trace/zipf.h"

namespace krr {
namespace {

TEST(Shards, RateOneReproducesExactLruMrc) {
  ZipfianGenerator gen(800, 0.9, 1);
  const auto trace = materialize(gen, 30000);
  ShardsProfiler shards(1.0);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    shards.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(shards.mrc().mae(exact.mrc(), sizes), 1e-9);
}

TEST(Shards, SampledMrcApproximatesExactLru) {
  // Working set ~20K objects, rate chosen to sample >= 2K of them.
  YcsbWorkloadC gen(20000, 0.99, 3);
  const auto trace = materialize(gen, 200000);
  const double rate = adaptive_sampling_rate(0.001, count_distinct(trace), 2000);
  ShardsProfiler shards(rate);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    shards.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 40);
  EXPECT_LT(shards.mrc().mae(exact.mrc(), sizes), 0.02);
  EXPECT_LT(shards.sampled(), trace.size() / 4);
}

TEST(Shards, AdjustmentImprovesSkewedSamples) {
  // On a heavily skewed workload, whether the hottest keys land in the
  // sample dominates the error; the first-bucket correction must bring the
  // curve closer to the exact one on average across key-space shifts.
  ZipfianGenerator base(5000, 1.2, 9);
  const auto trace = materialize(base, 100000);
  const auto sizes = capacity_grid_objects(trace, 10);
  double mae_adj = 0.0, mae_raw = 0.0;
  constexpr int kReps = 5;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t shift = static_cast<std::uint64_t>(rep) * 1000003ULL;
    ShardsProfiler with_adj(0.05, /*adjustment=*/true);
    ShardsProfiler without_adj(0.05, /*adjustment=*/false);
    LruStackProfiler exact;
    for (Request r : trace) {
      r.key += shift;
      with_adj.access(r);
      without_adj.access(r);
      exact.access(r);
    }
    mae_adj += with_adj.mrc().mae(exact.mrc(), sizes);
    mae_raw += without_adj.mrc().mae(exact.mrc(), sizes);
  }
  EXPECT_LT(mae_adj, mae_raw);
  EXPECT_LT(mae_adj / kReps, 0.02);
}

TEST(Shards, ByteGranularitySupported) {
  MsrGenerator gen(msr_profile("src2"), 2, 2000);
  const auto trace = materialize(gen, 50000);
  ShardsProfiler shards(0.25, true, /*byte_granularity=*/true);
  LruStackProfiler exact(/*byte_granularity=*/true);
  for (const Request& r : trace) {
    shards.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_bytes(trace, 20);
  EXPECT_LT(shards.mrc().mae(exact.mrc(), sizes), 0.03);
}

TEST(Aet, RejectsNonPowerOfTwoSubBuckets) {
  EXPECT_THROW(AetProfiler(0), std::invalid_argument);
  EXPECT_THROW(AetProfiler(100), std::invalid_argument);
}

TEST(Aet, EmptyProfilerYieldsEmptyCurve) {
  AetProfiler aet;
  EXPECT_TRUE(aet.mrc(16).empty());
}

TEST(Aet, ApproximatesExactLruOnIrmWorkload) {
  // AET's independence assumptions hold exactly for IRM traces, so the
  // prediction should land within ~2% of the exact LRU curve.
  ZipfianGenerator gen(4000, 0.9, 5);
  const auto trace = materialize(gen, 150000);
  AetProfiler aet;
  LruStackProfiler exact;
  for (const Request& r : trace) {
    aet.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 40);
  EXPECT_LT(aet.mrc(sizes).mae(exact.mrc(), sizes), 0.02);
}

TEST(Aet, ColdOnlyTraceYieldsAllMisses) {
  AetProfiler aet;
  for (std::uint64_t k = 0; k < 1000; ++k) aet.access(Request{k, 1, Op::kGet});
  const auto mrc = aet.mrc({100.0, 500.0});
  EXPECT_DOUBLE_EQ(mrc.eval(100.0), 1.0);
  EXPECT_DOUBLE_EQ(mrc.eval(500.0), 1.0);
}

TEST(Aet, TracksCounts) {
  AetProfiler aet;
  aet.access(Request{1, 1, Op::kGet});
  aet.access(Request{1, 1, Op::kGet});
  aet.access(Request{2, 1, Op::kGet});
  EXPECT_EQ(aet.processed(), 3u);
  EXPECT_EQ(aet.distinct_objects(), 2u);
}

}  // namespace
}  // namespace krr
