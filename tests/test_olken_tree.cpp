#include <gtest/gtest.h>

#include "baselines/lru_stack.h"
#include "baselines/olken_tree.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key, std::uint32_t size = 1) {
  return Request{key, size, Op::kGet};
}

TEST(OlkenTree, DistancesMatchFenwickProfilerExactly) {
  // Two independent implementations of the same quantity must agree on
  // every access.
  OlkenTreeProfiler tree;
  LruStackProfiler fenwick;
  ZipfianGenerator gen(800, 0.9, 3);
  for (int i = 0; i < 40000; ++i) {
    const Request r = gen.next();
    ASSERT_EQ(tree.access(r), fenwick.access(r)) << "at access " << i;
  }
}

TEST(OlkenTree, ByteDistancesMatchFenwickProfiler) {
  OlkenTreeProfiler tree(/*byte_granularity=*/true);
  LruStackProfiler fenwick(/*byte_granularity=*/true);
  MsrGenerator gen(msr_profile("src2"), 5, 500);
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    ASSERT_EQ(tree.access(r), fenwick.access(r)) << "at access " << i;
  }
}

TEST(OlkenTree, HandComputedDistances) {
  OlkenTreeProfiler tree;
  EXPECT_EQ(tree.access(get(1)), 0u);
  EXPECT_EQ(tree.access(get(2)), 0u);
  EXPECT_EQ(tree.access(get(3)), 0u);
  EXPECT_EQ(tree.access(get(1)), 3u);
  EXPECT_EQ(tree.access(get(1)), 1u);
  EXPECT_EQ(tree.access(get(2)), 3u);
}

TEST(OlkenTree, RemoveForgetsObject) {
  OlkenTreeProfiler tree;
  tree.access(get(1));
  tree.access(get(2));
  tree.access(get(3));
  tree.remove(2);
  EXPECT_EQ(tree.tracked_objects(), 2u);
  // Key 1 now has only key 3 above it.
  EXPECT_EQ(tree.access(get(1)), 2u);
  // A removed key comes back as cold.
  EXPECT_EQ(tree.access(get(2)), 0u);
}

TEST(OlkenTree, RemoveOfUnknownKeyIsNoOp) {
  OlkenTreeProfiler tree;
  tree.access(get(1));
  tree.remove(99);
  EXPECT_EQ(tree.tracked_objects(), 1u);
}

TEST(OlkenTree, RandomRemovalsKeepDistancesConsistent) {
  // Interleave removals with accesses and cross-check against a brute-force
  // list-based LRU stack.
  OlkenTreeProfiler tree;
  std::vector<std::uint64_t> stack;  // most recent first
  Xoshiro256ss rng(7);
  for (int i = 0; i < 20000; ++i) {
    if (!stack.empty() && rng.next_double() < 0.1) {
      const std::size_t pos = rng.next_below(stack.size());
      tree.remove(stack[pos]);
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(pos));
      continue;
    }
    const std::uint64_t key = rng.next_below(500);
    std::uint64_t expected = 0;
    for (std::size_t d = 0; d < stack.size(); ++d) {
      if (stack[d] == key) {
        expected = d + 1;
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(d));
        break;
      }
    }
    stack.insert(stack.begin(), key);
    ASSERT_EQ(tree.access(get(key)), expected) << "at step " << i;
  }
}

TEST(OlkenTree, TreeReusesFreedNodes) {
  OlkenTreeProfiler tree;
  for (int round = 0; round < 100; ++round) {
    for (std::uint64_t k = 0; k < 50; ++k) tree.access(get(k));
    for (std::uint64_t k = 0; k < 50; ++k) tree.remove(k);
  }
  EXPECT_EQ(tree.tracked_objects(), 0u);
}

}  // namespace
}  // namespace krr
