#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/generator.h"
#include "trace/trace_io.h"
#include "trace/zipf.h"

namespace krr {
namespace {

std::vector<Request> sample_trace() {
  return {{1, 100, Op::kGet},
          {0xffffffffffffffffULL, 1, Op::kSet},
          {42, 4096, Op::kGet}};
}

TEST(TraceCsv, RoundTrips) {
  const auto trace = sample_trace();
  std::stringstream ss;
  write_trace_csv(ss, trace);
  EXPECT_EQ(read_trace_csv(ss), trace);
}

TEST(TraceCsv, RejectsMissingHeader) {
  std::stringstream ss("1,2,get\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceCsv, RejectsMalformedRow) {
  std::stringstream ss("key,size,op\n1,2\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
  std::stringstream bad_op("key,size,op\n1,2,frob\n");
  EXPECT_THROW(read_trace_csv(bad_op), std::runtime_error);
  std::stringstream bad_num("key,size,op\nxyz,2,get\n");
  EXPECT_THROW(read_trace_csv(bad_num), std::runtime_error);
}

TEST(TraceBinary, RoundTrips) {
  const auto trace = sample_trace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary(ss, trace);
  EXPECT_EQ(read_trace_binary(ss), trace);
}

TEST(TraceBinary, RoundTripsEmptyTrace) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary(ss, {});
  EXPECT_TRUE(read_trace_binary(ss).empty());
}

TEST(TraceBinary, RejectsBadMagic) {
  std::stringstream ss("NOTATRACE-AT-ALL");
  EXPECT_THROW(read_trace_binary(ss), std::runtime_error);
}

TEST(TraceBinary, RejectsTruncatedPayload) {
  const auto trace = sample_trace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary(ss, trace);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() - 5));
  EXPECT_THROW(read_trace_binary(cut), std::runtime_error);
}

TEST(TraceBinary, RoundTripsGeneratedWorkload) {
  ZipfianGenerator gen(500, 1.0, 7, true, 128);
  auto trace = materialize(gen, 2000);
  trace[5].op = Op::kSet;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary(ss, trace);
  EXPECT_EQ(read_trace_binary(ss), trace);
}

TEST(TraceFiles, SaveAndLoad) {
  const auto trace = sample_trace();
  const std::string path = testing::TempDir() + "/krr_trace_io_test.bin";
  save_trace(path, trace);
  EXPECT_EQ(load_trace(path), trace);
  std::remove(path.c_str());
  EXPECT_THROW(load_trace(path), std::runtime_error);
  EXPECT_THROW(save_trace("/nonexistent-dir/xyz/trace.bin", trace), std::runtime_error);
}

}  // namespace
}  // namespace krr
