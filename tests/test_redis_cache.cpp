#include <gtest/gtest.h>

#include "sim/klru_cache.h"
#include "sim/lru_cache.h"
#include "sim/redis_cache.h"
#include "trace/generator.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key, std::uint32_t size = 1) {
  return Request{key, size, Op::kGet};
}

RedisLruConfig config(std::uint64_t capacity, std::uint32_t samples = 5,
                      bool biased = true, std::uint64_t seed = 1) {
  RedisLruConfig cfg;
  cfg.capacity = capacity;
  cfg.maxmemory_samples = samples;
  cfg.biased_sampling = biased;
  cfg.seed = seed;
  return cfg;
}

TEST(RedisLruCache, ValidatesConfig) {
  EXPECT_THROW(RedisLruCache(config(0)), std::invalid_argument);
  auto bad = config(10);
  bad.maxmemory_samples = 0;
  EXPECT_THROW(RedisLruCache{bad}, std::invalid_argument);
  bad = config(10);
  bad.pool_size = 0;
  EXPECT_THROW(RedisLruCache{bad}, std::invalid_argument);
  bad = config(10);
  bad.clock_resolution = 0;
  EXPECT_THROW(RedisLruCache{bad}, std::invalid_argument);
}

TEST(RedisLruCache, BasicHitMissAccounting) {
  RedisLruCache cache(config(2));
  EXPECT_FALSE(cache.access(get(1)));
  EXPECT_TRUE(cache.access(get(1)));
  EXPECT_FALSE(cache.access(get(2)));
  EXPECT_EQ(cache.object_count(), 2u);
}

TEST(RedisLruCache, NeverExceedsCapacity) {
  RedisLruCache cache(config(40));
  UniformGenerator gen(400, 3);
  for (int i = 0; i < 20000; ++i) {
    cache.access(gen.next());
    ASSERT_LE(cache.used(), 40u);
  }
}

TEST(RedisLruCache, OversizedObjectIsBypassed) {
  RedisLruCache cache(config(100));
  cache.access(get(1, 50));
  EXPECT_FALSE(cache.access(get(2, 200)));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
}

TEST(RedisLruCache, EvictionsPreferIdleObjects) {
  // Fill a cache, keep one key hot, stream new keys: the hot key must
  // survive far longer than chance (pool + sampling strongly prefers idle
  // victims).
  RedisLruCache cache(config(50, 5));
  for (std::uint64_t k = 0; k < 50; ++k) cache.access(get(k));
  int hot_survived = 0;
  constexpr int kRounds = 400;
  for (int i = 0; i < kRounds; ++i) {
    cache.access(get(0));  // keep key 0 hot
    cache.access(get(1000 + static_cast<std::uint64_t>(i)));
    if (cache.contains(0)) ++hot_survived;
  }
  EXPECT_GT(hot_survived, kRounds * 9 / 10);
}

TEST(RedisLruCache, ApproximatesIdealKLruMissRatio) {
  // The paper's §5.7 observation: Redis's sampler deviates slightly from
  // ideal K-LRU but tracks the same curve. Expect agreement within a few
  // percent of miss ratio.
  ZipfianGenerator gen(2000, 0.9, 8);
  const auto trace = materialize(gen, 40000);
  KLruConfig ideal_cfg;
  ideal_cfg.capacity = 400;
  ideal_cfg.sample_size = 5;
  ideal_cfg.seed = 2;
  KLruCache ideal(ideal_cfg);
  RedisLruCache redis(config(400, 5, true, 2));
  for (const Request& r : trace) {
    ideal.access(r);
    redis.access(r);
  }
  EXPECT_NEAR(redis.miss_ratio(), ideal.miss_ratio(), 0.03);
}

TEST(RedisLruCache, UniformSamplingTracksIdealMoreCloselyThanBiased) {
  // Footnote 3: dictGetRandomKey-style (uniform) sampling yields nearly
  // identical curves to the ideal simulator; the biased default may drift.
  ZipfianGenerator gen(3000, 1.0, 13);
  const auto trace = materialize(gen, 60000);
  KLruConfig ideal_cfg;
  ideal_cfg.capacity = 600;
  ideal_cfg.sample_size = 5;
  ideal_cfg.seed = 5;
  KLruCache ideal(ideal_cfg);
  RedisLruCache uniform(config(600, 5, /*biased=*/false, 5));
  for (const Request& r : trace) {
    ideal.access(r);
    uniform.access(r);
  }
  EXPECT_NEAR(uniform.miss_ratio(), ideal.miss_ratio(), 0.02);
}

TEST(RedisLruCache, CoarseClockStillEvictsReasonably) {
  auto cfg = config(50, 5);
  cfg.clock_resolution = 64;  // very coarse idle clock
  RedisLruCache cache(cfg);
  UniformGenerator gen(500, 17);
  for (int i = 0; i < 20000; ++i) {
    cache.access(gen.next());
    ASSERT_LE(cache.used(), 50u);
  }
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(RedisLruCache, ResetRestoresInitialState) {
  RedisLruCache cache(config(4));
  cache.access(get(1));
  cache.reset();
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace krr
