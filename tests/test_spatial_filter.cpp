#include <gtest/gtest.h>

#include <cmath>

#include "core/spatial_filter.h"

namespace krr {
namespace {

TEST(SpatialFilter, ValidatesRate) {
  EXPECT_THROW(SpatialFilter(0.0), std::invalid_argument);
  EXPECT_THROW(SpatialFilter(-0.1), std::invalid_argument);
  EXPECT_THROW(SpatialFilter(1.1), std::invalid_argument);
  EXPECT_THROW(SpatialFilter(0.5, 0), std::invalid_argument);
}

TEST(SpatialFilter, RateOneSamplesEverything) {
  SpatialFilter f(1.0);
  for (std::uint64_t k = 0; k < 10000; ++k) EXPECT_TRUE(f.sampled(k));
  EXPECT_DOUBLE_EQ(f.rate(), 1.0);
  EXPECT_DOUBLE_EQ(f.scale(), 1.0);
}

TEST(SpatialFilter, TinyRateIsClampedToAtLeastOneSlot) {
  SpatialFilter f(1e-12, 1024);
  EXPECT_DOUBLE_EQ(f.rate(), 1.0 / 1024.0);
}

TEST(SpatialFilter, EmpiricalRateMatchesRequested) {
  for (double rate : {0.001, 0.01, 0.1, 0.5}) {
    SpatialFilter f(rate);
    constexpr std::uint64_t kKeys = 2000000;
    std::uint64_t sampled = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (f.sampled(k)) ++sampled;
    }
    const double observed = static_cast<double>(sampled) / kKeys;
    const double sigma = std::sqrt(f.rate() * (1 - f.rate()) / kKeys);
    EXPECT_NEAR(observed, f.rate(), 6.0 * sigma) << "rate " << rate;
  }
}

TEST(SpatialFilter, DecisionIsPerKeyStable) {
  SpatialFilter f(0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(f.sampled(k), f.sampled(k));  // pure function of the key
  }
}

TEST(SpatialFilter, ScaleIsInverseRate) {
  SpatialFilter f(0.001);
  EXPECT_NEAR(f.scale() * f.rate(), 1.0, 1e-12);
}

TEST(AdaptiveSamplingRate, EnforcesMinimumObjects) {
  // Big working set: base rate already samples enough.
  EXPECT_DOUBLE_EQ(adaptive_sampling_rate(0.001, 100000000), 0.001);
  // Small working set: rate raised so that >= 8K objects are expected.
  EXPECT_DOUBLE_EQ(adaptive_sampling_rate(0.001, 16384), 0.5);
  // Tiny working set: capped at 1.
  EXPECT_DOUBLE_EQ(adaptive_sampling_rate(0.001, 100), 1.0);
  EXPECT_DOUBLE_EQ(adaptive_sampling_rate(0.001, 0), 1.0);
  // Custom floor.
  EXPECT_DOUBLE_EQ(adaptive_sampling_rate(0.001, 1000, 100), 0.1);
}

}  // namespace
}  // namespace krr
