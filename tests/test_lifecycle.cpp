// Run-lifecycle governance suite: the MrcEstimator governance hooks
// (space accounting + degrade), the RunGovernor (budget / deadline /
// checkpoint cadence), and the KRRSNAP checkpoint container. These are
// contract tests over the whole registry — every model that advertises
// `governed_memory` must actually shed state on demand, every model that
// does not must reject the budget option instead of silently ignoring it,
// and a checkpointed run must resume bit-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/estimator.h"
#include "core/governor.h"
#include "obs/metrics.h"
#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {
namespace {

std::vector<Request> zipf_trace(std::size_t n, std::uint64_t footprint = 4000,
                                double alpha = 0.8, std::uint64_t seed = 11) {
  ZipfianGenerator gen(footprint, alpha, seed, /*scrambled=*/true);
  return materialize(gen, n);
}

std::unique_ptr<MrcEstimator> make(const std::string& name,
                                   const EstimatorOptions& options = {}) {
  auto est = EstimatorRegistry::instance().create(name, options);
  EXPECT_TRUE(est.is_ok()) << name << ": " << est.status().message();
  return std::move(*est);
}

std::vector<std::string> names_with(bool EstimatorCapabilities::*flag,
                                    bool value) {
  std::vector<std::string> names;
  for (const auto& info : EstimatorRegistry::instance().list()) {
    if (info.caps.*flag == value) names.push_back(info.name);
  }
  return names;
}

void expect_curves_equal(const MissRatioCurve& a, const MissRatioCurve& b,
                         const std::string& label) {
  ASSERT_EQ(a.points().size(), b.points().size()) << label;
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].size, b.points()[i].size) << label;
    EXPECT_DOUBLE_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio)
        << label;
  }
}

// --- Satellite (a): budget-option conformance across the registry. A model
// accepts `max_stack_bytes` exactly when it advertises governed_memory;
// everything else must fail construction (the CLI maps that onto exit 2)
// rather than run with a budget it will never honor.

TEST(LifecycleConformance, BudgetOptionAcceptedIffGoverned) {
  EstimatorOptions budget;
  budget.set("max_stack_bytes", "1048576");
  for (const auto& info : EstimatorRegistry::instance().list()) {
    auto est = EstimatorRegistry::instance().create(info.name, budget);
    if (info.caps.governed_memory) {
      EXPECT_TRUE(est.is_ok()) << info.name << ": " << est.status().message();
    } else {
      ASSERT_FALSE(est.is_ok()) << info.name
                                << " accepted a budget it cannot honor";
      EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument)
          << info.name;
    }
  }
}

TEST(LifecycleConformance, UngovernedModelsExistAndIncludeLruStack) {
  const auto ungoverned = names_with(&EstimatorCapabilities::governed_memory,
                                     false);
  ASSERT_FALSE(ungoverned.empty());
  EXPECT_NE(std::find(ungoverned.begin(), ungoverned.end(), "lru_stack"),
            ungoverned.end());
  // The default hooks: no space accounting, no degradation.
  auto est = make("lru_stack");
  EXPECT_EQ(est->space_overhead_bytes(), 0u);
  EXPECT_FALSE(est->degrade());
}

// --- Degrade contract: after real input, every governed model reports a
// nonzero footprint and can shed at least one increment of state without
// growing. Sharded pipelines (caps.sharded) are the documented exception —
// their producer-side hooks are inert (a worker races the caller) and
// governance runs inside the shards instead, which the dedicated tests
// below pin for both krr_sharded and the generic runner.

class GovernedDegrade : public ::testing::TestWithParam<std::string> {};

TEST_P(GovernedDegrade, SpaceIsAccountedAndDegradeShrinks) {
  const auto trace = zipf_trace(20000);
  auto est = make(GetParam());
  for (const Request& r : trace) est->access(r);
  const std::uint64_t before = est->space_overhead_bytes();
  ASSERT_GT(before, 0u) << GetParam();
  EXPECT_TRUE(est->degrade()) << GetParam()
                              << " refused to degrade with live state";
  EXPECT_LE(est->space_overhead_bytes(), before) << GetParam();
  // Degradation must not corrupt the model: the curve stays a valid MRC.
  est->finish();
  const MissRatioCurve curve = est->mrc();
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0) << GetParam() << " at size " << size;
    EXPECT_LE(ratio, 1.0) << GetParam() << " at size " << size;
  }
}

std::vector<std::string> externally_governed_names() {
  auto names = names_with(&EstimatorCapabilities::governed_memory, true);
  names.erase(
      std::remove_if(names.begin(), names.end(),
                     [](const std::string& name) {
                       return EstimatorRegistry::instance().find(name)->caps
                           .sharded;
                     }),
      names.end());
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllGovernedModels, GovernedDegrade,
                         ::testing::ValuesIn(externally_governed_names()),
                         [](const auto& info) { return info.param; });

TEST(LifecycleConformance, ShardedGovernsInternally) {
  // External hooks are deliberately inert (the producer thread would race
  // the shard workers); the budget option still bites inside the shards.
  EstimatorOptions options;
  options.set("max_stack_bytes", "32768");
  options.set("shards", "2");
  auto est = make("krr_sharded", options);
  EXPECT_EQ(est->space_overhead_bytes(), 0u);
  EXPECT_FALSE(est->degrade());
  const auto trace = zipf_trace(60000, 20000, 0.7);
  for (const Request& r : trace) est->access(r);
  est->finish();
  const RunReport report = est->run_report();
  EXPECT_GT(report.degradation_events, 0u);
  EXPECT_LT(report.final_sampling_rate, report.configured_sampling_rate);
}

TEST(LifecycleConformance, GenericShardedGovernsInternally) {
  // The generic runner inherits the same contract as krr_sharded: inert
  // external hooks, with the global budget split evenly and enforced from
  // the consuming threads (space check + degrade every 4096 accesses).
  EstimatorOptions options;
  options.set("max_stack_bytes", "32768");
  options.set("shards", "2");
  options.set("rate", "1.0");  // start unsampled so the budget has to bite
  auto est = make("shards_sharded", options);
  EXPECT_EQ(est->space_overhead_bytes(), 0u);
  EXPECT_FALSE(est->degrade());
  const auto trace = zipf_trace(60000, 20000, 0.7);
  for (const Request& r : trace) est->access(r);
  est->finish();
  const RunReport report = est->run_report();
  EXPECT_GT(report.degradation_events, 0u);
  EXPECT_LT(report.final_sampling_rate, report.configured_sampling_rate);
}

// --- RunGovernor: the budget limb degrades until the estimator fits (or
// flags exhaustion), the deadline limb stops the run, the checkpoint limb
// fires on its cadence, and everything lands in the GovernanceReport and
// the metrics registry.

TEST(RunGovernor, EnforcesMemoryBudget) {
  const auto trace = zipf_trace(60000, 30000, 0.7);
  EstimatorOptions options;
  options.set("rate", "1.0");  // start unsampled so the budget has to bite
  auto est = make("shards", options);
  RunGovernorConfig cfg;
  cfg.max_stack_bytes = 64 << 10;
  cfg.check_stride = 1024;
  obs::MetricsRegistry registry;
  RunGovernor governor(cfg, est.get(), &registry);
  for (const Request& r : trace) {
    est->access(r);
    ASSERT_TRUE(governor.on_access());
  }
  governor.finalize();
  const GovernanceReport& report = governor.report();
  EXPECT_GT(report.checks, 0u);
  EXPECT_GT(report.degrade_steps, 0u);
  EXPECT_GT(report.peak_space_bytes, cfg.max_stack_bytes);
  EXPECT_FALSE(report.deadline_hit);
  if (!report.budget_exhausted) {
    EXPECT_LE(est->space_overhead_bytes(), cfg.max_stack_bytes);
  }
  EXPECT_EQ(registry.counter("governor.budget_checks").value(),
            report.checks);
  EXPECT_EQ(registry.counter("governor.degrade_steps").value(),
            report.degrade_steps);
}

TEST(RunGovernor, BudgetExhaustionIsReportedNotFatal) {
  // lru_stack cannot degrade; a governor around it must flag exhaustion
  // and keep the run alive rather than spin or throw.
  const auto trace = zipf_trace(8000);
  auto est = make("lru_stack");
  RunGovernorConfig cfg;
  cfg.max_stack_bytes = 1;  // unsatisfiable
  cfg.check_stride = 512;
  RunGovernor governor(cfg, est.get());
  for (const Request& r : trace) {
    est->access(r);
    ASSERT_TRUE(governor.on_access());
  }
  governor.finalize();
  // space_overhead_bytes() == 0 for ungoverned models, so the budget is
  // trivially met — the governor must not count that as exhaustion.
  EXPECT_FALSE(governor.report().budget_exhausted);
  EXPECT_EQ(governor.report().degrade_steps, 0u);
}

TEST(RunGovernor, DeadlineStopsTheRun) {
  const auto trace = zipf_trace(50000);
  auto est = make("krr");
  RunGovernorConfig cfg;
  cfg.deadline_secs = 1e-9;
  cfg.check_stride = 64;
  RunGovernor governor(cfg, est.get());
  std::uint64_t fed = 0;
  bool stopped = false;
  for (const Request& r : trace) {
    est->access(r);
    ++fed;
    if (!governor.on_access()) {
      stopped = true;
      break;
    }
  }
  ASSERT_TRUE(stopped);
  EXPECT_LT(fed, trace.size());
  EXPECT_TRUE(governor.report().deadline_hit);
  // Once expired, the governor keeps saying stop.
  EXPECT_FALSE(governor.on_access());
  // The partial state still yields a valid curve.
  est->finish();
  EXPECT_FALSE(est->mrc().points().empty());
}

TEST(RunGovernor, CheckpointCadenceAndFailurePropagation) {
  const auto trace = zipf_trace(10000);
  auto est = make("krr");
  RunGovernorConfig cfg;
  cfg.checkpoint_every = 2000;
  std::vector<std::uint64_t> at_records;
  cfg.checkpoint_fn =
      [&at_records](std::uint64_t records) -> StatusOr<std::uint64_t> {
    at_records.push_back(records);
    return std::uint64_t{64};  // pretend snapshot size, echoed in the report
  };
  RunGovernor governor(cfg, est.get());
  for (const Request& r : trace) {
    est->access(r);
    ASSERT_TRUE(governor.on_access());
  }
  governor.finalize();
  ASSERT_GE(at_records.size(), 4u);
  for (std::size_t i = 1; i < at_records.size(); ++i) {
    EXPECT_GE(at_records[i] - at_records[i - 1], cfg.checkpoint_every);
  }
  EXPECT_EQ(governor.report().checkpoints_written, at_records.size());
  EXPECT_EQ(governor.report().last_checkpoint_records, at_records.back());
  EXPECT_EQ(governor.report().last_checkpoint_bytes, 64u);
  EXPECT_GE(governor.report().checkpoint_seconds, 0.0);

  // A checkpoint the caller asked for but cannot write aborts the run:
  // resuming from it would silently lose work.
  auto est2 = make("krr");
  RunGovernorConfig bad = cfg;
  bad.checkpoint_fn = [](std::uint64_t) -> StatusOr<std::uint64_t> {
    return io_error("disk full (injected)");
  };
  RunGovernor doomed(bad, est2.get());
  bool threw = false;
  for (const Request& r : trace) {
    est2->access(r);
    try {
      doomed.on_access();
    } catch (const StatusError&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
}

// --- Checkpoint container + estimator save/load round trip.

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Checkpoint, ContainerRoundTripsHeaderAndPayload) {
  const std::string path = temp_path("krr_ckpt_roundtrip.bin");
  CheckpointHeader header;
  header.config_crc = 0xDEADBEEF;
  header.records = 12345;
  const std::string payload = "profiler state bytes \x01\x02\x03";
  ASSERT_TRUE(write_checkpoint_atomic(path, header, payload).is_ok());
  std::string restored;
  auto read = read_checkpoint(path, &restored);
  ASSERT_TRUE(read.is_ok()) << read.status().message();
  EXPECT_EQ(read->version, kCheckpointVersion);
  EXPECT_EQ(read->config_crc, header.config_crc);
  EXPECT_EQ(read->records, header.records);
  EXPECT_EQ(restored, payload);
  // Atomicity: no temp file is left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptionIsDetected) {
  const std::string path = temp_path("krr_ckpt_corrupt.bin");
  CheckpointHeader header;
  header.records = 7;
  ASSERT_TRUE(write_checkpoint_atomic(path, header, "payload").is_ok());

  // Flip one payload byte: the trailing CRC must catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(36);  // inside the payload (after the 32-byte header + magic)
    char c;
    f.seekg(36);
    f.get(c);
    f.seekp(36);
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto flipped = read_checkpoint(path, nullptr);
  ASSERT_FALSE(flipped.is_ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kChecksumMismatch);

  // Truncation.
  ASSERT_TRUE(write_checkpoint_atomic(path, header, "payload").is_ok());
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "KRRSNAP1shortened";
  }
  auto truncated = read_checkpoint(path, nullptr);
  ASSERT_FALSE(truncated.is_ok());

  // Not a snapshot at all.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "definitely not a checkpoint file, padded to minimum length....";
  }
  auto bad_magic = read_checkpoint(path, nullptr);
  ASSERT_FALSE(bad_magic.is_ok());
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kCorruptHeader);

  // Missing file.
  std::remove(path.c_str());
  EXPECT_FALSE(read_checkpoint(path, nullptr).is_ok());
}

TEST(Checkpoint, FingerprintIsCanonicalAndConfigSensitive) {
  EstimatorOptions a;
  a.set("k", "5");
  a.set("rate", "0.01");
  EstimatorOptions b;  // same entries, set in the other order
  b.set("rate", "0.01");
  b.set("k", "5");
  EXPECT_EQ(checkpoint_fingerprint("krr", a), checkpoint_fingerprint("krr", b));
  EstimatorOptions c = a;
  c.set("k", "6");
  EXPECT_NE(checkpoint_fingerprint("krr", a), checkpoint_fingerprint("krr", c));
  EXPECT_NE(checkpoint_fingerprint("krr", a),
            checkpoint_fingerprint("shards", a));
}

TEST(Checkpoint, KrrSaveLoadResumesBitIdentically) {
  const auto trace = zipf_trace(24000);
  const std::size_t cut = trace.size() / 2;

  // Uninterrupted reference run.
  auto reference = make("krr");
  for (const Request& r : trace) reference->access(r);
  reference->finish();

  // Interrupted run: snapshot at the cut...
  auto first = make("krr");
  for (std::size_t i = 0; i < cut; ++i) first->access(trace[i]);
  std::string payload;
  ASSERT_TRUE(first->save_state(&payload).is_ok());

  // ...restored into a fresh instance that finishes the trace.
  auto resumed = make("krr");
  ASSERT_TRUE(resumed->load_state(payload).is_ok());
  for (std::size_t i = cut; i < trace.size(); ++i) resumed->access(trace[i]);
  resumed->finish();

  expect_curves_equal(reference->mrc(), resumed->mrc(), "resumed mrc");
  const RunReport ref_report = reference->run_report();
  const RunReport res_report = resumed->run_report();
  EXPECT_EQ(ref_report.stack_depth, res_report.stack_depth);
  EXPECT_EQ(ref_report.space_overhead_bytes, res_report.space_overhead_bytes);
  EXPECT_EQ(ref_report.final_sampling_rate, res_report.final_sampling_rate);
}

TEST(Checkpoint, SaveLoadRoundTripsUnderSamplingAndDegradation) {
  // The snapshot must carry the spatial filter's threshold and the
  // degradation history, not just the stack: resume mid-degradation and
  // the continuation must still match the uninterrupted run exactly.
  EstimatorOptions options;
  options.set("rate", "0.5");
  options.set("max_stack_bytes", "16384");
  const auto trace = zipf_trace(40960, 20000, 0.7);
  // The cut sits on a check-stride boundary so the resumed run's governor
  // (which restarts its access counter) checks at the same absolute trace
  // positions as the uninterrupted run — a requirement for bit-identity
  // when degradation is active, and exactly how the CLI's --checkpoint-every
  // (a stride multiple) lines up in practice.
  const std::size_t cut = 30720;

  auto run_with_budget = [&](MrcEstimator& est, std::size_t from,
                             std::size_t to) {
    RunGovernorConfig cfg;
    cfg.max_stack_bytes = 16384;
    cfg.check_stride = 1024;
    RunGovernor governor(cfg, &est);
    for (std::size_t i = from; i < to; ++i) {
      est.access(trace[i]);
      governor.on_access();
    }
    governor.finalize();
  };

  auto reference = make("krr", options);
  run_with_budget(*reference, 0, trace.size());
  reference->finish();
  ASSERT_GT(reference->run_report().degradation_events, 0u)
      << "budget too large to exercise degradation";

  auto first = make("krr", options);
  run_with_budget(*first, 0, cut);
  std::string payload;
  ASSERT_TRUE(first->save_state(&payload).is_ok());

  auto resumed = make("krr", options);
  ASSERT_TRUE(resumed->load_state(payload).is_ok());
  run_with_budget(*resumed, cut, trace.size());
  resumed->finish();

  expect_curves_equal(reference->mrc(), resumed->mrc(), "degraded resume");
  EXPECT_EQ(reference->run_report().final_sampling_rate,
            resumed->run_report().final_sampling_rate);
}

TEST(Checkpoint, GarbagePayloadIsRejectedNotCrashed) {
  auto est = make("krr");
  EXPECT_FALSE(est->load_state("not a profiler snapshot").is_ok());
  EXPECT_FALSE(est->load_state("").is_ok());
  // A valid snapshot truncated mid-structure must fail cleanly too.
  auto donor = make("krr");
  const auto trace = zipf_trace(2000);
  for (const Request& r : trace) donor->access(r);
  std::string payload;
  ASSERT_TRUE(donor->save_state(&payload).is_ok());
  EXPECT_FALSE(est->load_state(payload.substr(0, payload.size() / 2)).is_ok());
}

TEST(Checkpoint, OnlyCheckpointCapableModelsSaveState) {
  for (const auto& info : EstimatorRegistry::instance().list()) {
    auto est = make(info.name);
    std::string payload;
    const Status s = est->save_state(&payload);
    if (info.caps.checkpoint) {
      EXPECT_TRUE(s.is_ok()) << info.name << ": " << s.message();
    } else {
      ASSERT_FALSE(s.is_ok()) << info.name;
      EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << info.name;
    }
  }
}

// --- Tagged-section state codec (DESIGN.md §13): the framing every model
// payload now rides in. Per-section length + CRC, version gate, unknown
// sections skippable for forward compatibility.

TEST(StateStream, RoundTripsTaggedSections) {
  std::string stream;
  ckpt::StateWriter writer(stream);
  writer.add_section(ckpt::kSectionModelCore, "core bytes");
  writer.add_section(ckpt::kSectionLruStack, std::string("\x00\x01\x02", 3));
  writer.add_section(ckpt::kSectionShardState, "shard 0");
  writer.add_section(ckpt::kSectionShardState, "shard 1");
  auto parsed = ckpt::StateReader::parse(stream);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const ckpt::StateReader& reader = *parsed;
  ASSERT_EQ(reader.section_count(), 4u);
  ASSERT_NE(reader.find(ckpt::kSectionModelCore), nullptr);
  EXPECT_EQ(*reader.find(ckpt::kSectionModelCore), "core bytes");
  ASSERT_NE(reader.find(ckpt::kSectionLruStack), nullptr);
  EXPECT_EQ(reader.find(ckpt::kSectionLruStack)->size(), 3u);
  // find() returns the first match; find_all preserves write order.
  const auto shards = reader.find_all(ckpt::kSectionShardState);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(*shards[0], "shard 0");
  EXPECT_EQ(*shards[1], "shard 1");
  // Unknown tags simply aren't found — a reader ignores sections it does
  // not understand instead of failing the whole parse.
  EXPECT_EQ(reader.find(ckpt::kSectionCollector), nullptr);
  EXPECT_TRUE(reader.find_all(ckpt::kSectionCollector).empty());
}

TEST(StateStream, EmptyStreamHasNoSections) {
  std::string stream;
  ckpt::StateWriter writer(stream);
  auto parsed = ckpt::StateReader::parse(stream);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->section_count(), 0u);
}

TEST(StateStream, DamageIsClassified) {
  std::string stream;
  ckpt::StateWriter writer(stream);
  writer.add_section(ckpt::kSectionModelCore, "some model state body");

  // Version word from the future.
  std::string future = stream;
  future[0] = static_cast<char>(ckpt::kStateStreamVersion + 1);
  auto v = ckpt::StateReader::parse(future);
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupportedVersion);

  // Truncations: inside the version word, the section header, and the body.
  for (const std::size_t keep : {2ul, 9ul, stream.size() - 3}) {
    auto t = ckpt::StateReader::parse(stream.substr(0, keep));
    ASSERT_FALSE(t.is_ok()) << "kept " << keep;
    EXPECT_EQ(t.status().code(), StatusCode::kTruncated) << "kept " << keep;
  }

  // A flipped body byte fails the per-section CRC.
  std::string corrupt = stream;
  corrupt[20] = static_cast<char>(corrupt[20] ^ 0x40);
  auto c = ckpt::StateReader::parse(corrupt);
  ASSERT_FALSE(c.is_ok());
  EXPECT_EQ(c.status().code(), StatusCode::kChecksumMismatch);
}

// --- Tentpole acceptance: the registry-wide resume conformance battery.
// Every model whose caps advertise `checkpoint` — serial baselines and the
// composite sharded adapters alike — must round-trip through save/load with
// bit-identical curves and reject damaged payloads.

EstimatorOptions battery_options(const std::string& name) {
  EstimatorOptions opts;
  if (EstimatorRegistry::instance().find(name)->caps.sharded) {
    // Exercise the composite path for real: multiple shards, threaded, so
    // the snapshot has to quiesce the fan-out first.
    opts.set("shards", "2");
    opts.set("threads", "2");
  }
  return opts;
}

class CheckpointBattery : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckpointBattery, RoundTripResumesBitIdentically) {
  const auto trace = zipf_trace(24000);
  const std::size_t cut = trace.size() / 2;
  const EstimatorOptions options = battery_options(GetParam());

  auto reference = make(GetParam(), options);
  for (const Request& r : trace) reference->access(r);
  reference->finish();

  auto first = make(GetParam(), options);
  for (std::size_t i = 0; i < cut; ++i) first->access(trace[i]);
  std::string payload;
  ASSERT_TRUE(first->save_state(&payload).is_ok()) << GetParam();

  auto resumed = make(GetParam(), options);
  ASSERT_TRUE(resumed->load_state(payload).is_ok()) << GetParam();
  for (std::size_t i = cut; i < trace.size(); ++i) resumed->access(trace[i]);
  resumed->finish();

  expect_curves_equal(reference->mrc(), resumed->mrc(), GetParam());
  EXPECT_EQ(reference->run_report().final_sampling_rate,
            resumed->run_report().final_sampling_rate)
      << GetParam();
}

TEST_P(CheckpointBattery, TruncatedPayloadIsRejected) {
  const auto trace = zipf_trace(4000);
  const EstimatorOptions options = battery_options(GetParam());
  auto donor = make(GetParam(), options);
  for (const Request& r : trace) donor->access(r);
  std::string payload;
  ASSERT_TRUE(donor->save_state(&payload).is_ok()) << GetParam();
  auto est = make(GetParam(), options);
  EXPECT_FALSE(est->load_state(payload.substr(0, payload.size() / 2)).is_ok())
      << GetParam();
  EXPECT_FALSE(est->load_state("").is_ok()) << GetParam();
}

TEST_P(CheckpointBattery, CorruptSectionIsRejected) {
  if (GetParam() == "krr") {
    GTEST_SKIP() << "krr keeps its legacy flat payload (no per-section CRC); "
                    "corruption there is caught by the container checksum "
                    "(Checkpoint.CorruptionIsDetected)";
  }
  const auto trace = zipf_trace(4000);
  const EstimatorOptions options = battery_options(GetParam());
  auto donor = make(GetParam(), options);
  for (const Request& r : trace) donor->access(r);
  std::string payload;
  ASSERT_TRUE(donor->save_state(&payload).is_ok()) << GetParam();
  // Flip one byte mid-payload: inside some section's body (or, rarely, its
  // header) — either way the tagged-section framing must refuse the load.
  std::string corrupt = payload;
  const std::size_t at = corrupt.size() / 2;
  corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
  auto est = make(GetParam(), options);
  EXPECT_FALSE(est->load_state(corrupt).is_ok()) << GetParam();
}

TEST_P(CheckpointBattery, FingerprintKeysOnModelAndOptions) {
  const EstimatorOptions options = battery_options(GetParam());
  EstimatorOptions changed = options;
  changed.set("sub_buckets", "512");
  EXPECT_NE(checkpoint_fingerprint(GetParam(), options),
            checkpoint_fingerprint(GetParam(), changed))
      << GetParam();
  EXPECT_NE(checkpoint_fingerprint(GetParam(), options),
            checkpoint_fingerprint(GetParam() + "x", options))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllCheckpointCapableModels, CheckpointBattery,
    ::testing::ValuesIn(names_with(&EstimatorCapabilities::checkpoint, true)),
    [](const auto& info) { return info.param; });

// --- Mid-degradation resume across the serial checkpoint-capable governed
// models: the snapshot must carry the sampling/degradation state, not just
// the structure, so a stride-aligned interrupt continues bit-identically.
// (The sharded adapters govern internally and are pinned by the fan-out
// suite instead.)

std::vector<std::string> serial_governed_checkpoint_names() {
  auto names = names_with(&EstimatorCapabilities::checkpoint, true);
  names.erase(std::remove_if(names.begin(), names.end(),
                             [](const std::string& name) {
                               const auto* info =
                                   EstimatorRegistry::instance().find(name);
                               return info->caps.sharded ||
                                      !info->caps.governed_memory;
                             }),
              names.end());
  return names;
}

class DegradedResumeBattery : public ::testing::TestWithParam<std::string> {};

TEST_P(DegradedResumeBattery, StrideAlignedCutResumesBitIdentically) {
  EstimatorOptions options;
  // Rate-configurable models start unsampled so the budget has to bite;
  // models without an initial rate ignore the (common) key and track
  // everything by default anyway.
  options.set("rate", "1.0");
  const auto trace = zipf_trace(40960, 20000, 0.7);
  const std::size_t cut = 30720;  // check-stride aligned (see krr test above)

  auto run_with_budget = [&](MrcEstimator& est, std::size_t from,
                             std::size_t to) {
    RunGovernorConfig cfg;
    cfg.max_stack_bytes = 16384;
    cfg.check_stride = 1024;
    RunGovernor governor(cfg, &est);
    for (std::size_t i = from; i < to; ++i) {
      est.access(trace[i]);
      governor.on_access();
    }
    governor.finalize();
  };

  auto reference = make(GetParam(), options);
  run_with_budget(*reference, 0, trace.size());
  reference->finish();
  // snapshot() (not the ingest-oriented run_report()) carries the
  // per-model degradation counter for the whole zoo.
  ASSERT_GT(reference->snapshot().degradation_events, 0u)
      << GetParam() << ": budget too large to exercise degradation";

  auto first = make(GetParam(), options);
  run_with_budget(*first, 0, cut);
  std::string payload;
  ASSERT_TRUE(first->save_state(&payload).is_ok()) << GetParam();

  auto resumed = make(GetParam(), options);
  ASSERT_TRUE(resumed->load_state(payload).is_ok()) << GetParam();
  run_with_budget(*resumed, cut, trace.size());
  resumed->finish();

  expect_curves_equal(reference->mrc(), resumed->mrc(), GetParam());
  EXPECT_EQ(reference->snapshot().degradation_events,
            resumed->snapshot().degradation_events)
      << GetParam();
  EXPECT_EQ(reference->snapshot().sampling_rate,
            resumed->snapshot().sampling_rate)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SerialGovernedModels, DegradedResumeBattery,
                         ::testing::ValuesIn(serial_governed_checkpoint_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace krr
