#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "baselines/lru_stack.h"
#include "sim/lru_cache.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key, std::uint32_t size = 1) {
  return Request{key, size, Op::kGet};
}

TEST(LruStackProfiler, ColdReferencesReturnZeroAndRecordInfinite) {
  LruStackProfiler p;
  EXPECT_EQ(p.access(get(1)), 0u);
  EXPECT_EQ(p.access(get(2)), 0u);
  EXPECT_DOUBLE_EQ(p.histogram().infinite_weight(), 2.0);
}

TEST(LruStackProfiler, DistancesMatchHandComputedStack) {
  LruStackProfiler p;
  p.access(get(1));               // stack: 1
  p.access(get(2));               // stack: 2 1
  p.access(get(3));               // stack: 3 2 1
  EXPECT_EQ(p.access(get(1)), 3u);  // 1 at depth 3
  EXPECT_EQ(p.access(get(1)), 1u);  // now on top
  EXPECT_EQ(p.access(get(2)), 3u);  // stack was 1 3 2
  EXPECT_EQ(p.access(get(3)), 3u);  // stack was 2 1 3
}

TEST(LruStackProfiler, MrcMatchesLruSimulatorExactly) {
  // The stack model's MRC must equal simulated miss ratios at every
  // integer cache size: that is Mattson's one-pass guarantee.
  ZipfianGenerator gen(500, 0.9, 3);
  const auto trace = materialize(gen, 20000);
  LruStackProfiler profiler;
  for (const Request& r : trace) profiler.access(r);
  const MissRatioCurve mrc = profiler.mrc();
  for (std::uint64_t c : {10, 50, 100, 250, 499}) {
    LruCache cache(c);
    for (const Request& r : trace) cache.access(r);
    EXPECT_DOUBLE_EQ(mrc.eval(static_cast<double>(c)), cache.miss_ratio())
        << "capacity " << c;
  }
}

TEST(LruStackProfiler, ByteDistancesMatchBruteForce) {
  // Brute-force LRU stack with explicit sizes as the oracle.
  MsrGenerator gen(msr_profile("src2"), 4, 300);
  const auto trace = materialize(gen, 3000);
  LruStackProfiler profiler(/*byte_granularity=*/true);
  std::vector<Request> stack;  // most recent first
  for (const Request& r : trace) {
    const std::uint64_t got = profiler.access(r);
    std::uint64_t expected = 0;
    bool found = false;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      cum += stack[i].size;
      if (stack[i].key == r.key) {
        expected = cum;
        found = true;
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    stack.insert(stack.begin(), r);
    if (found) {
      ASSERT_EQ(got, expected) << "key " << r.key;
    } else {
      ASSERT_EQ(got, 0u);
    }
  }
}

TEST(LruStackProfiler, ByteMrcMatchesByteCapacitySimulator) {
  MsrGenerator gen(msr_profile("web"), 6, 400);
  const auto trace = materialize(gen, 30000);
  LruStackProfiler profiler(/*byte_granularity=*/true);
  for (const Request& r : trace) profiler.access(r);
  const MissRatioCurve mrc = profiler.mrc();
  const auto sizes = capacity_grid_bytes(trace, 8);
  const MissRatioCurve simulated = sweep_lru(trace, sizes);
  // Byte-level distances are exact, but simulator semantics differ very
  // slightly (bypass of oversized objects, eviction until fit), so allow a
  // small tolerance rather than exact equality.
  EXPECT_LT(mrc.mae(simulated, sizes), 0.01);
}

TEST(LruStackProfiler, SizeChangeIsReflectedInDistance) {
  LruStackProfiler p(/*byte_granularity=*/true);
  p.access(get(1, 10));
  p.access(get(2, 10));
  // Re-reference 1: distance = size(2) + size(1 as now referenced) using
  // its updated size.
  EXPECT_EQ(p.access(get(1, 30)), 40u);
}

TEST(LruStackProfiler, TracksDistinctObjects) {
  LruStackProfiler p;
  p.access(get(1));
  p.access(get(2));
  p.access(get(1));
  EXPECT_EQ(p.distinct_objects(), 2u);
  EXPECT_EQ(p.processed(), 3u);
}

}  // namespace
}  // namespace krr
