// Tests for the without-replacement KRR variant (§3's "few tweaks"):
// stay(i) = 1 - K/i, derived from Proposition 2. All three update
// strategies must realize the same process, and the induced per-object
// eviction law must reproduce Proposition 2 exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/profiler.h"
#include "core/swap_sampler.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/prng.h"

namespace krr {
namespace {

double binom(std::uint64_t n, std::uint64_t k) {
  double v = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    v *= static_cast<double>(n - i) / static_cast<double>(k - i);
  }
  return v;
}

TEST(WorSampler, StayProbabilityIsOneMinusKOverI) {
  SwapSampler sampler(UpdateStrategy::kBackward, 3.0, SamplingModel::kNoPlacingBack);
  EXPECT_DOUBLE_EQ(sampler.stay_probability(2), 0.0);   // i <= K always swaps
  EXPECT_DOUBLE_EQ(sampler.stay_probability(3), 0.0);
  EXPECT_DOUBLE_EQ(sampler.stay_probability(4), 0.25);
  EXPECT_DOUBLE_EQ(sampler.stay_probability(12), 0.75);
}

TEST(WorSampler, NoSwapProbabilityTelescopes) {
  SwapSampler sampler(UpdateStrategy::kBackward, 2.0, SamplingModel::kNoPlacingBack);
  double product = 1.0;
  for (std::uint64_t i = 5; i <= 30; ++i) product *= sampler.stay_probability(i);
  EXPECT_NEAR(sampler.no_swap_probability(5, 30), product, 1e-12);
  // Intervals touching positions <= K can never be swap-free.
  EXPECT_DOUBLE_EQ(sampler.no_swap_probability(2, 10), 0.0);
}

class WorSamplerStrategies : public ::testing::TestWithParam<UpdateStrategy> {};

TEST_P(WorSamplerStrategies, LowPositionsAlwaysSwap) {
  SwapSampler sampler(GetParam(), 4.0, SamplingModel::kNoPlacingBack);
  Xoshiro256ss rng(3);
  std::vector<std::uint64_t> chain;
  for (int rep = 0; rep < 500; ++rep) {
    sampler.sample(64, rng, chain);
    // Positions 1..4 must all be in every chain (stay prob 0).
    for (std::uint64_t p : {1ULL, 2ULL, 3ULL, 4ULL}) {
      ASSERT_NE(std::find(chain.begin(), chain.end(), p), chain.end())
          << "missing always-swap position " << p;
    }
  }
}

TEST_P(WorSamplerStrategies, MarginalSwapProbabilityMatchesTheLaw) {
  constexpr std::uint64_t kPhi = 32;
  constexpr double kK = 3.0;
  constexpr int kTrials = 60000;
  SwapSampler sampler(GetParam(), kK, SamplingModel::kNoPlacingBack);
  Xoshiro256ss rng(7);
  std::vector<std::uint64_t> chain;
  std::vector<int> swap_count(kPhi + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    sampler.sample(kPhi, rng, chain);
    for (std::uint64_t v : chain) ++swap_count[v];
  }
  for (std::uint64_t i = 2; i < kPhi; ++i) {
    const double p = 1.0 - sampler.stay_probability(i);
    const double observed = static_cast<double>(swap_count[i]) / kTrials;
    const double sigma = std::sqrt(p * (1.0 - p) / kTrials);
    EXPECT_NEAR(observed, p, 5.0 * sigma + 1e-9) << "position " << i;
  }
}

// The crossing law at a boundary C must reproduce Proposition 2: the
// resident leaving prefix [1, C] is the rank-d object with probability
// C(d-1, K-1)/C(C, K), and ranks below K never cross.
TEST_P(WorSamplerStrategies, CrossingLawMatchesPropositionTwo) {
  constexpr std::uint64_t kPhi = 64;
  constexpr std::uint64_t kBoundary = 20;
  constexpr std::uint64_t kK = 3;
  constexpr int kTrials = 60000;
  SwapSampler sampler(GetParam(), static_cast<double>(kK),
                      SamplingModel::kNoPlacingBack);
  Xoshiro256ss rng(11);
  std::vector<std::uint64_t> chain;
  std::vector<int> crossing(kBoundary + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    sampler.sample(kPhi, rng, chain);
    std::uint64_t largest = 1;
    for (std::uint64_t v : chain) {
      if (v <= kBoundary) largest = v;
    }
    ++crossing[largest];
  }
  for (std::uint64_t d = 1; d < kK; ++d) {
    EXPECT_EQ(crossing[d], 0) << "rank " << d << " must never cross";
  }
  for (std::uint64_t d = kK; d <= kBoundary; ++d) {
    const double p = binom(d - 1, kK - 1) / binom(kBoundary, kK);
    const double observed = static_cast<double>(crossing[d]) / kTrials;
    const double sigma = std::sqrt(p * (1.0 - p) / kTrials);
    EXPECT_NEAR(observed, p, 5.0 * sigma + 1e-9) << "rank " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, WorSamplerStrategies,
                         ::testing::Values(UpdateStrategy::kLinear,
                                           UpdateStrategy::kTopDown,
                                           UpdateStrategy::kBackward),
                         [](const auto& info) { return to_string(info.param); });

TEST(WorSampler, ModelNamesAreStable) {
  EXPECT_EQ(to_string(SamplingModel::kPlacingBack), "placing_back");
  EXPECT_EQ(to_string(SamplingModel::kNoPlacingBack), "no_placing_back");
}

TEST(WorProfiler, PredictsWithoutReplacementKLru) {
  // End to end: KRR in no-placing-back mode against the matching
  // simulator.
  ZipfianGenerator gen(4000, 0.9, 13, true);
  const auto trace = materialize(gen, 80000);
  const auto sizes = capacity_grid_objects(trace, 16);
  const MissRatioCurve actual =
      sweep_klru(trace, sizes, 6, /*with_replacement=*/false, 17);
  KrrProfilerConfig cfg;
  cfg.k_sample = 6;
  cfg.sampling_model = SamplingModel::kNoPlacingBack;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  EXPECT_LT(profiler.mrc().mae(actual, sizes), 0.02);
}

TEST(WorProfiler, ModelsAgreeForSmallKLargeCaches) {
  // Prop. 1 vs Prop. 2 converge when K << C (§3): the two model variants
  // must produce nearly identical curves at moderate K.
  ZipfianGenerator gen(4000, 0.9, 19, true);
  const auto trace = materialize(gen, 80000);
  const auto sizes = capacity_grid_objects(trace, 16);
  KrrProfilerConfig wr;
  wr.k_sample = 4;
  KrrProfilerConfig wor = wr;
  wor.sampling_model = SamplingModel::kNoPlacingBack;
  KrrProfiler a(wr), b(wor);
  for (const Request& r : trace) {
    a.access(r);
    b.access(r);
  }
  EXPECT_LT(a.mrc().mae(b.mrc(), sizes), 0.01);
}

}  // namespace
}  // namespace krr
