#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/parallel.h"

namespace krr {
namespace {

TEST(ParallelForIndex, VisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {0u, 1u, 2u, 4u, 16u}) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    parallel_for_index(kN, threads, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForIndex, HandlesEmptyAndSingleRanges) {
  int calls = 0;
  parallel_for_index(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_index(1, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForIndex, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for_index(100, 4,
                         [](std::size_t i) {
                           if (i == 42) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ParallelForIndex, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for_index(3, 64, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelSweep, KLruMatchesSerialExactly) {
  ZipfianGenerator gen(2000, 0.9, 3, true);
  const auto trace = materialize(gen, 40000);
  const auto sizes = capacity_grid_objects(trace, 12);
  const MissRatioCurve serial = sweep_klru(trace, sizes, 5, true, 7);
  for (unsigned threads : {1u, 2u, 4u}) {
    const MissRatioCurve parallel =
        sweep_klru_parallel(trace, sizes, 5, true, 7, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel.points()[i].miss_ratio,
                       serial.points()[i].miss_ratio)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelSweep, LruMatchesSerialExactly) {
  ZipfianGenerator gen(1500, 0.8, 5);
  const auto trace = materialize(gen, 30000);
  const auto sizes = capacity_grid_objects(trace, 10);
  const MissRatioCurve serial = sweep_lru(trace, sizes);
  const MissRatioCurve parallel = sweep_lru_parallel(trace, sizes, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.points()[i].miss_ratio, serial.points()[i].miss_ratio);
  }
}

TEST(ParallelSweep, RedisMatchesSerialExactly) {
  ZipfianGenerator gen(1500, 0.9, 9, true);
  const auto trace = materialize(gen, 30000);
  const auto sizes = capacity_grid_objects(trace, 8);
  RedisLruConfig cfg;
  cfg.seed = 11;
  const MissRatioCurve serial = sweep_redis(trace, sizes, cfg);
  const MissRatioCurve parallel = sweep_redis_parallel(trace, sizes, cfg, 3);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.points()[i].miss_ratio, serial.points()[i].miss_ratio);
  }
}

}  // namespace
}  // namespace krr
