#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/zipf.h"
#include "util/parallel.h"

namespace krr {
namespace {

TEST(ParallelForIndex, VisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {0u, 1u, 2u, 4u, 16u}) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    parallel_for_index(kN, threads, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForIndex, HandlesEmptyAndSingleRanges) {
  int calls = 0;
  parallel_for_index(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_index(1, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForIndex, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for_index(100, 4,
                         [](std::size_t i) {
                           if (i == 42) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ParallelForIndex, MoreThreadsThanWorkIsFine) {
  std::atomic<int> sum{0};
  parallel_for_index(3, 64, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForIndex, StopsSchedulingAfterAThrow) {
  // Regression: a poisoned sweep must not run to completion. After the
  // throw, each surviving worker may finish at most the call it is already
  // in, so the executed count stays far below n.
  constexpr std::size_t kN = 1u << 20;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(parallel_for_index(kN, 4,
                                  [&](std::size_t i) {
                                    if (i == 0) throw std::runtime_error("boom");
                                    executed.fetch_add(1,
                                                       std::memory_order_relaxed);
                                  }),
               std::runtime_error);
  EXPECT_LT(executed.load(), kN / 2);
}

TEST(SpscQueue, FifoOrderSingleThread) {
  SpscQueue<int> queue(8);
  EXPECT_GE(queue.capacity(), 8u);
  int out = 0;
  EXPECT_FALSE(queue.try_pop(out));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99)) << "ring of capacity 8 must reject a 9th";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> queue(5);
  EXPECT_EQ(queue.capacity(), 8u);
  SpscQueue<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscQueue, TransfersEverythingIntactAcrossThreads) {
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> queue(1024);
  std::uint64_t sum = 0, count = 0;
  std::thread consumer([&] {
    std::uint64_t v;
    std::uint64_t expected = 0;
    while (count < kItems) {
      if (queue.try_pop(v)) {
        ASSERT_EQ(v, expected++);  // FIFO, nothing lost or duplicated
        sum += v;
        ++count;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!queue.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsTheFirstTaskError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable afterwards and the error is not re-reported.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorRunsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelSweep, KLruMatchesSerialExactly) {
  ZipfianGenerator gen(2000, 0.9, 3, true);
  const auto trace = materialize(gen, 40000);
  const auto sizes = capacity_grid_objects(trace, 12);
  const MissRatioCurve serial = sweep_klru(trace, sizes, 5, true, 7);
  for (unsigned threads : {1u, 2u, 4u}) {
    const MissRatioCurve parallel =
        sweep_klru_parallel(trace, sizes, 5, true, 7, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel.points()[i].miss_ratio,
                       serial.points()[i].miss_ratio)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelSweep, LruMatchesSerialExactly) {
  ZipfianGenerator gen(1500, 0.8, 5);
  const auto trace = materialize(gen, 30000);
  const auto sizes = capacity_grid_objects(trace, 10);
  const MissRatioCurve serial = sweep_lru(trace, sizes);
  const MissRatioCurve parallel = sweep_lru_parallel(trace, sizes, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.points()[i].miss_ratio, serial.points()[i].miss_ratio);
  }
}

TEST(ParallelSweep, RedisMatchesSerialExactly) {
  ZipfianGenerator gen(1500, 0.9, 9, true);
  const auto trace = materialize(gen, 30000);
  const auto sizes = capacity_grid_objects(trace, 8);
  RedisLruConfig cfg;
  cfg.seed = 11;
  const MissRatioCurve serial = sweep_redis(trace, sizes, cfg);
  const MissRatioCurve parallel = sweep_redis_parallel(trace, sizes, cfg, 3);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.points()[i].miss_ratio, serial.points()[i].miss_ratio);
  }
}

}  // namespace
}  // namespace krr
