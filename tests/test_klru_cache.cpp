#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/klru_cache.h"
#include "sim/lru_cache.h"
#include "trace/generator.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key, std::uint32_t size = 1) {
  return Request{key, size, Op::kGet};
}

KLruConfig config(std::uint64_t capacity, std::uint32_t k, bool with_replacement = true,
                  std::uint64_t seed = 1) {
  KLruConfig cfg;
  cfg.capacity = capacity;
  cfg.sample_size = k;
  cfg.with_replacement = with_replacement;
  cfg.seed = seed;
  return cfg;
}

TEST(KLruCache, ValidatesConfig) {
  EXPECT_THROW(KLruCache(config(0, 5)), std::invalid_argument);
  EXPECT_THROW(KLruCache(config(10, 0)), std::invalid_argument);
}

TEST(KLruCache, BasicHitMissAccounting) {
  KLruCache cache(config(2, 5));
  EXPECT_FALSE(cache.access(get(1)));
  EXPECT_TRUE(cache.access(get(1)));
  EXPECT_FALSE(cache.access(get(2)));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.object_count(), 2u);
}

TEST(KLruCache, NeverExceedsCapacity) {
  KLruCache cache(config(50, 3));
  UniformGenerator gen(500, 7);
  for (int i = 0; i < 20000; ++i) {
    cache.access(gen.next());
    ASSERT_LE(cache.used(), 50u);
  }
}

TEST(KLruCache, ByteCapacityEvictsUntilFit) {
  KLruCache cache(config(100, 4));
  cache.access(get(1, 60));
  cache.access(get(2, 60));  // must evict 1
  EXPECT_EQ(cache.object_count(), 1u);
  EXPECT_TRUE(cache.contains(2));
}

TEST(KLruCache, OversizedObjectIsBypassed) {
  KLruCache cache(config(100, 4));
  cache.access(get(1, 50));
  EXPECT_FALSE(cache.access(get(2, 200)));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
}

// Empirically validates Proposition 1: with placing-back sampling, the
// object with recency rank d (1 = most recent) is evicted with probability
// (d^K - (d-1)^K) / C^K.
TEST(KLruCache, EvictionLawMatchesPropositionOne) {
  constexpr std::uint64_t kCapacity = 16;
  constexpr std::uint32_t kK = 3;
  constexpr int kTrials = 40000;
  std::vector<int> evicted_rank(kCapacity + 1, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    KLruCache cache(config(kCapacity, kK, true, 1000 + trial));
    // Fill with keys 1..C; key i has recency rank C - i + 1 afterwards
    // (key C most recent).
    for (std::uint64_t key = 1; key <= kCapacity; ++key) cache.access(get(key));
    cache.access(get(999));  // forces exactly one eviction
    for (std::uint64_t key = 1; key <= kCapacity; ++key) {
      if (!cache.contains(key)) {
        const std::uint64_t rank = kCapacity - key + 1;
        ++evicted_rank[rank];
        break;
      }
    }
  }
  const double ck = std::pow(static_cast<double>(kCapacity), kK);
  for (std::uint64_t d = 1; d <= kCapacity; ++d) {
    const double expected =
        (std::pow(static_cast<double>(d), kK) - std::pow(static_cast<double>(d - 1), kK)) /
        ck;
    const double observed = static_cast<double>(evicted_rank[d]) / kTrials;
    // 5-sigma binomial tolerance.
    const double sigma = std::sqrt(expected * (1.0 - expected) / kTrials);
    EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-12) << "rank " << d;
  }
}

// Empirically validates Proposition 2: without placing back, ranks below K
// are never evicted and rank d >= K is evicted with probability
// C(d-1, K-1) / C(C, K).
TEST(KLruCache, EvictionLawMatchesPropositionTwo) {
  constexpr std::uint64_t kCapacity = 12;
  constexpr std::uint32_t kK = 3;
  constexpr int kTrials = 40000;
  std::vector<int> evicted_rank(kCapacity + 1, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    KLruCache cache(config(kCapacity, kK, false, 5000 + trial));
    for (std::uint64_t key = 1; key <= kCapacity; ++key) cache.access(get(key));
    cache.access(get(999));
    for (std::uint64_t key = 1; key <= kCapacity; ++key) {
      if (!cache.contains(key)) {
        ++evicted_rank[kCapacity - key + 1];
        break;
      }
    }
  }
  auto binom = [](std::uint64_t n, std::uint64_t k) {
    double v = 1.0;
    for (std::uint64_t i = 0; i < k; ++i) {
      v *= static_cast<double>(n - i) / static_cast<double>(k - i);
    }
    return v;
  };
  for (std::uint64_t d = 1; d < kK; ++d) {
    EXPECT_EQ(evicted_rank[d], 0) << "rank " << d << " must never be evicted";
  }
  for (std::uint64_t d = kK; d <= kCapacity; ++d) {
    const double expected = binom(d - 1, kK - 1) / binom(kCapacity, kK);
    const double observed = static_cast<double>(evicted_rank[d]) / kTrials;
    const double sigma = std::sqrt(expected * (1.0 - expected) / kTrials);
    EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-12) << "rank " << d;
  }
}

TEST(KLruCache, LargeKApproachesExactLru) {
  // With K comparable to the cache size, the sampled victim is almost
  // always the global LRU, so miss counts approach the exact LRU cache's.
  ZipfianGenerator gen(2000, 0.9, 3);
  const auto trace = materialize(gen, 40000);
  LruCache lru(300);
  KLruCache klru(config(300, 64, true, 9));
  for (const Request& r : trace) {
    lru.access(r);
    klru.access(r);
  }
  EXPECT_NEAR(klru.miss_ratio(), lru.miss_ratio(), 0.01);
}

TEST(KLruCache, KOneIsRandomReplacement) {
  // K = 1 evicts uniformly at random; for a uniform IRM workload the miss
  // ratio equals LRU's, but for a loop trace random replacement beats LRU
  // badly below the loop size (LRU thrashes to ~100% misses).
  std::vector<Request> loop;
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t key = 0; key < 200; ++key) loop.push_back(get(key));
  }
  LruCache lru(100);
  KLruCache rr(config(100, 1, true, 4));
  for (const Request& r : loop) {
    lru.access(r);
    rr.access(r);
  }
  EXPECT_GT(lru.miss_ratio(), 0.99);
  EXPECT_LT(rr.miss_ratio(), 0.80);
}

TEST(KLruCache, WithAndWithoutReplacementAgreeForSmallKLargeC) {
  ZipfianGenerator gen(3000, 0.8, 5);
  const auto trace = materialize(gen, 40000);
  KLruCache with(config(500, 5, true, 11));
  KLruCache without(config(500, 5, false, 11));
  for (const Request& r : trace) {
    with.access(r);
    without.access(r);
  }
  EXPECT_NEAR(with.miss_ratio(), without.miss_ratio(), 0.01);
}

TEST(KLruCache, ResetRestoresInitialState) {
  KLruCache cache(config(4, 2));
  cache.access(get(1));
  cache.access(get(2));
  cache.reset();
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace krr
