#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "core/profiler.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/synthetic.h"
#include "trace/twitter.h"
#include "trace/ycsb.h"
#include "trace/zipf.h"

namespace krr {
namespace {

MissRatioCurve krr_predict(const std::vector<Request>& trace, KrrProfilerConfig cfg) {
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  return profiler.mrc();
}

// ---- The paper's headline claim (§5.3): KRR predicts the K-LRU MRC. ----

struct AccuracyCase {
  std::string name;
  std::function<std::unique_ptr<TraceGenerator>()> make;
  std::uint32_t k;
  double tolerance;  // MAE bound
};

class KrrAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(KrrAccuracy, MaeAgainstSimulatedKLruIsSmall) {
  const AccuracyCase& c = GetParam();
  auto gen = c.make();
  const auto trace = materialize(*gen, 60000);
  KrrProfilerConfig cfg;
  cfg.k_sample = c.k;
  cfg.seed = 3;
  const MissRatioCurve predicted = krr_predict(trace, cfg);
  const auto sizes = capacity_grid_objects(trace, 20);
  const MissRatioCurve actual = sweep_klru(trace, sizes, c.k, true, 7);
  EXPECT_LT(predicted.mae(actual, sizes), c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, KrrAccuracy,
    ::testing::Values(
        AccuracyCase{"zipf_k1",
                     [] { return std::make_unique<ZipfianGenerator>(5000, 0.9, 11, true); },
                     1, 0.01},
        AccuracyCase{"zipf_k4",
                     [] { return std::make_unique<ZipfianGenerator>(5000, 0.9, 11, true); },
                     4, 0.015},
        AccuracyCase{"zipf_k16",
                     [] { return std::make_unique<ZipfianGenerator>(5000, 0.9, 11, true); },
                     16, 0.02},
        AccuracyCase{"ycsb_c_k5",
                     [] { return std::make_unique<YcsbWorkloadC>(8000, 0.99, 13); }, 5,
                     0.015},
        AccuracyCase{"ycsb_e_k8",
                     [] {
                       return std::make_unique<YcsbWorkloadE>(3000, 1.5, 17,
                                                              /*max_scan=*/3000);
                     },
                     8, 0.03},
        AccuracyCase{"msr_web_k2",
                     [] {
                       return std::make_unique<MsrGenerator>(msr_profile("web"), 19,
                                                             4000, 1);
                     },
                     2, 0.02},
        AccuracyCase{"msr_usr_k8",
                     [] {
                       return std::make_unique<MsrGenerator>(msr_profile("usr"), 23,
                                                             6000, 1);
                     },
                     8, 0.02},
        AccuracyCase{"twitter_k5",
                     [] {
                       return std::make_unique<TwitterGenerator>(
                           twitter_profile("cluster34.1"), 29, 5000, 1);
                     },
                     5, 0.02},
        AccuracyCase{"uniform_k3",
                     [] { return std::make_unique<UniformGenerator>(3000, 31); }, 3,
                     0.015}),
    [](const auto& info) { return info.param.name; });

// ---- Correction ablation (§4.2): on the adversarial loop pattern the
// K' = K^1.4 correction must make the model strictly better. ----
TEST(KrrProfiler, CorrectionHelpsOnLoopPattern) {
  LoopGenerator gen(2000);
  const auto trace = materialize(gen, 60000);
  const auto sizes = capacity_grid_objects(trace, 20);
  const std::uint32_t k = 8;
  const MissRatioCurve actual = sweep_klru(trace, sizes, k, true, 5);

  KrrProfilerConfig corrected;
  corrected.k_sample = k;
  corrected.apply_correction = true;
  KrrProfilerConfig raw = corrected;
  raw.apply_correction = false;

  const double mae_corrected = krr_predict(trace, corrected).mae(actual, sizes);
  const double mae_raw = krr_predict(trace, raw).mae(actual, sizes);
  EXPECT_LT(mae_corrected, mae_raw);
  EXPECT_LT(mae_corrected, 0.05);
}

// ---- Spatial sampling (§5.3): accuracy survives R << 1. ----
TEST(KrrProfiler, SpatialSamplingKeepsMrcAccurate) {
  YcsbWorkloadC gen(30000, 0.99, 37);
  const auto trace = materialize(gen, 200000);
  const std::uint32_t k = 5;
  const auto sizes = capacity_grid_objects(trace, 20);
  const MissRatioCurve actual = sweep_klru(trace, sizes, k, true, 9);

  KrrProfilerConfig cfg;
  cfg.k_sample = k;
  cfg.sampling_rate = adaptive_sampling_rate(0.001, count_distinct(trace), 4000);
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  // Hot keys falling in the sample can over-represent references relative
  // to the rate, so bound loosely.
  EXPECT_LT(profiler.sampled(), trace.size() / 2);
  EXPECT_LT(profiler.mrc().mae(actual, sizes), 0.03);
}

TEST(KrrProfiler, SamplingReducesStackDepthByTheRate) {
  ZipfianGenerator gen(50000, 0.5, 41);
  const auto trace = materialize(gen, 100000);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.sampling_rate = 0.01;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  const double distinct = static_cast<double>(count_distinct(trace));
  EXPECT_NEAR(static_cast<double>(profiler.stack_depth()), distinct * 0.01,
              distinct * 0.01 * 0.5);
}

// ---- var-KRR (§5.4): byte-granularity MRC vs byte-capacity simulator. ----
TEST(KrrProfiler, VarKrrPredictsByteCapacityKLru) {
  MsrGenerator gen(msr_profile("src2"), 43, 3000);
  const auto trace = materialize(gen, 60000);
  const std::uint32_t k = 8;
  const auto sizes = capacity_grid_bytes(trace, 16);
  const MissRatioCurve actual = sweep_klru(trace, sizes, k, true, 11);

  KrrProfilerConfig cfg;
  cfg.k_sample = k;
  cfg.byte_granularity = true;
  EXPECT_LT(krr_predict(trace, cfg).mae(actual, sizes), 0.03);
}

TEST(KrrProfiler, UniKrrMispredictsVariableSizeWorkloadsWorse) {
  // Fig. 5.3(A): the uniform-size assumption degrades accuracy on strongly
  // variable sizes. Compare var-KRR and uni-KRR against the byte-capacity
  // ground truth (uni-KRR distances converted via mean object size).
  TwitterGenerator gen(twitter_profile("cluster26.0"), 47, 4000);
  const auto trace = materialize(gen, 60000);
  const std::uint32_t k = 8;
  const auto sizes = capacity_grid_bytes(trace, 16);
  const MissRatioCurve actual = sweep_klru(trace, sizes, k, true, 13);

  KrrProfilerConfig var_cfg;
  var_cfg.k_sample = k;
  var_cfg.byte_granularity = true;
  const double mae_var = krr_predict(trace, var_cfg).mae(actual, sizes);

  // uni-KRR: object-count curve stretched by the mean object size.
  KrrProfilerConfig uni_cfg;
  uni_cfg.k_sample = k;
  KrrProfiler uni(uni_cfg);
  for (const Request& r : trace) uni.access(r);
  const double mean_size = static_cast<double>(working_set_bytes(trace)) /
                           static_cast<double>(count_distinct(trace));
  const MissRatioCurve uni_objects = uni.mrc();
  MissRatioCurve uni_curve;
  for (const auto& p : uni_objects.points()) {
    uni_curve.add_point(p.size * mean_size, p.miss_ratio);
  }
  const double mae_uni = uni_curve.mae(actual, sizes);
  EXPECT_LT(mae_var, mae_uni);
  EXPECT_LT(mae_var, 0.04);
}

// ---- Strategy invariance: the profiler's output distribution does not
// depend on the update strategy. ----
TEST(KrrProfiler, StrategiesYieldMatchingMrcs) {
  ZipfianGenerator gen(3000, 1.0, 53);
  const auto trace = materialize(gen, 60000);
  const auto sizes = capacity_grid_objects(trace, 20);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.strategy = UpdateStrategy::kBackward;
  const auto backward = krr_predict(trace, cfg);
  cfg.strategy = UpdateStrategy::kTopDown;
  cfg.seed = 99;
  const auto top_down = krr_predict(trace, cfg);
  EXPECT_LT(backward.mae(top_down, sizes), 0.01);
}

TEST(KrrProfiler, ModelKReflectsCorrectionFlag) {
  KrrProfilerConfig cfg;
  cfg.k_sample = 4.0;
  EXPECT_NEAR(KrrProfiler(cfg).model_k(), std::pow(4.0, 1.4), 1e-12);
  cfg.apply_correction = false;
  EXPECT_DOUBLE_EQ(KrrProfiler(cfg).model_k(), 4.0);
}

TEST(KrrProfiler, SpaceOverheadScalesWithStackDepth) {
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  KrrProfiler profiler(cfg);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    profiler.access(Request{key, 1, Op::kGet});
  }
  const auto bytes = profiler.space_overhead_bytes();
  EXPECT_GE(bytes, 1000u * 50u);
  EXPECT_LE(bytes, 1000u * 100u);
}

}  // namespace
}  // namespace krr
