#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/size_tracker.h"
#include "core/swap_sampler.h"
#include "util/prng.h"

namespace krr {
namespace {

// Reference model: an explicit stack of sizes, rotated the same way the
// KRR stack rotates objects.
class MirrorStack {
 public:
  void append(std::uint32_t size) { sizes_.push_back(size); }

  void rotate(const std::vector<std::uint64_t>& chain, std::uint32_t ref_size) {
    if (chain.size() < 2) {
      if (!sizes_.empty()) sizes_[0] = ref_size;
      return;
    }
    for (std::size_t j = chain.size(); j-- > 1;) {
      sizes_[chain[j] - 1] = sizes_[chain[j - 1] - 1];
    }
    sizes_[0] = ref_size;
  }

  std::uint64_t prefix(std::uint64_t phi) const {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < phi; ++i) sum += sizes_[i];
    return sum;
  }

  const std::vector<std::uint32_t>& sizes() const { return sizes_; }

 private:
  std::vector<std::uint32_t> sizes_;
};

// Drives SizeArray + ExactByteTracker + MirrorStack through the same random
// sequence of appends and rotations.
struct Harness {
  explicit Harness(std::uint32_t base) : size_array(base) {}

  void append(std::uint32_t size) {
    mirror.append(size);
    const std::uint64_t len = mirror.sizes().size();
    size_array.on_append(size, len);
    exact.on_append(size, len);
  }

  void rotate(const std::vector<std::uint64_t>& chain, std::uint32_t ref_size) {
    size_array.on_rotate(chain, mirror.sizes(), ref_size);
    exact.on_rotate(chain, mirror.sizes(), ref_size);
    mirror.rotate(chain, ref_size);
  }

  SizeArray size_array;
  ExactByteTracker exact;
  MirrorStack mirror;
};

TEST(SizeArray, RejectsBadBase) {
  EXPECT_THROW(SizeArray(0), std::invalid_argument);
  EXPECT_THROW(SizeArray(1), std::invalid_argument);
}

TEST(SizeArray, AppendAccumulatesTotals) {
  SizeArray arr(2);
  arr.on_append(10, 1);
  arr.on_append(20, 2);
  arr.on_append(30, 3);
  EXPECT_EQ(arr.total_bytes(), 60u);
  EXPECT_EQ(arr.covered_length(), 3u);
  // boundary 1 covers only the first position (still the first object).
  EXPECT_EQ(arr.entry(0), 10u);
  // boundary 2 covers positions 1..2.
  EXPECT_EQ(arr.entry(1), 30u);
  // boundary 4 covers the whole 3-deep stack.
  EXPECT_EQ(arr.entry(2), 60u);
}

TEST(SizeArray, ByteDistanceThrowsOutOfRange) {
  SizeArray arr(2);
  arr.on_append(10, 1);
  EXPECT_THROW(arr.byte_distance(0), std::out_of_range);
  EXPECT_THROW(arr.byte_distance(2), std::out_of_range);
}

TEST(SizeArray, ExactAtBoundaries) {
  // At every power-of-b position the estimate must be exact, on any
  // update history: that is the sizeArray invariant (Fig. 4.4).
  for (std::uint32_t base : {2u, 4u, 8u}) {
    Harness h(base);
    SwapSampler sampler(UpdateStrategy::kBackward, 3.0);
    Xoshiro256ss rng(base);
    std::vector<std::uint64_t> chain;
    for (int step = 0; step < 3000; ++step) {
      const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.next_below(100));
      std::uint64_t phi;
      if (h.mirror.sizes().empty() || rng.next_double() < 0.3) {
        h.append(size);
        phi = h.mirror.sizes().size();
      } else {
        phi = 1 + rng.next_below(h.mirror.sizes().size());
      }
      sampler.sample(phi, rng, chain);
      const std::uint32_t ref_size = h.mirror.sizes()[phi - 1];
      h.rotate(chain, ref_size);
      // Check every boundary currently inside the stack.
      for (std::size_t j = 0; j < h.size_array.entry_count(); ++j) {
        const std::uint64_t b = h.size_array.boundary(j);
        if (b > h.mirror.sizes().size()) break;
        ASSERT_EQ(h.size_array.entry(j), h.mirror.prefix(b))
            << "base " << base << " boundary " << b << " step " << step;
      }
    }
  }
}

TEST(SizeArray, InterpolationIsBracketedByExactAnchors) {
  Harness h(2);
  SwapSampler sampler(UpdateStrategy::kBackward, 2.0);
  Xoshiro256ss rng(5);
  std::vector<std::uint64_t> chain;
  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.next_below(64));
    std::uint64_t phi;
    if (h.mirror.sizes().empty() || rng.next_double() < 0.4) {
      h.append(size);
      phi = h.mirror.sizes().size();
    } else {
      phi = 1 + rng.next_below(h.mirror.sizes().size());
    }
    sampler.sample(phi, rng, chain);
    h.rotate(chain, h.mirror.sizes()[phi - 1]);
  }
  // Estimates are monotone in phi and bracketed by the true prefix sums of
  // the bracketing boundaries.
  const std::uint64_t len = h.mirror.sizes().size();
  std::uint64_t prev_estimate = 0;
  for (std::uint64_t phi = 1; phi <= len; ++phi) {
    const std::uint64_t est = h.size_array.byte_distance(phi);
    EXPECT_GE(est, prev_estimate) << "phi " << phi;
    prev_estimate = est;
    const std::uint64_t exact = h.exact.byte_distance(phi);
    // The estimate lies within the span of the bracketing anchors, so its
    // error is bounded by the anchor gap; sanity-bound it loosely here.
    const double rel = std::abs(static_cast<double>(est) - static_cast<double>(exact)) /
                       std::max<double>(1.0, static_cast<double>(exact));
    EXPECT_LT(rel, 0.60) << "phi " << phi;
  }
}

TEST(SizeArray, EstimateErrorIsSmallOnAverage) {
  Harness h(2);
  SwapSampler sampler(UpdateStrategy::kBackward, 4.0);
  Xoshiro256ss rng(6);
  std::vector<std::uint64_t> chain;
  for (int step = 0; step < 5000; ++step) {
    const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.next_below(256));
    std::uint64_t phi;
    if (h.mirror.sizes().empty() || rng.next_double() < 0.25) {
      h.append(size);
      phi = h.mirror.sizes().size();
    } else {
      phi = 1 + rng.next_below(h.mirror.sizes().size());
    }
    sampler.sample(phi, rng, chain);
    h.rotate(chain, h.mirror.sizes()[phi - 1]);
  }
  double rel_sum = 0.0;
  const std::uint64_t len = h.mirror.sizes().size();
  for (std::uint64_t phi = 1; phi <= len; ++phi) {
    const double est = static_cast<double>(h.size_array.byte_distance(phi));
    const double exact = static_cast<double>(h.exact.byte_distance(phi));
    rel_sum += std::abs(est - exact) / std::max(1.0, exact);
  }
  // With i.i.d. sizes the interpolation error averages out well below 10%.
  EXPECT_LT(rel_sum / static_cast<double>(len), 0.10);
}

TEST(SizeArray, ResizeAdjustsCoveringPrefixes) {
  SizeArray arr(2);
  arr.on_append(10, 1);
  arr.on_append(10, 2);
  arr.on_append(10, 3);
  arr.on_resize(2, 10, 50);
  EXPECT_EQ(arr.entry(0), 10u);   // boundary 1 unaffected
  EXPECT_EQ(arr.entry(1), 60u);   // boundary 2 covers position 2
  EXPECT_EQ(arr.total_bytes(), 70u);
}

TEST(ExactByteTracker, MatchesMirrorEverywhere) {
  Harness h(2);
  SwapSampler sampler(UpdateStrategy::kTopDown, 2.0);
  Xoshiro256ss rng(7);
  std::vector<std::uint64_t> chain;
  for (int step = 0; step < 1500; ++step) {
    const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.next_below(1000));
    std::uint64_t phi;
    if (h.mirror.sizes().empty() || rng.next_double() < 0.3) {
      h.append(size);
      phi = h.mirror.sizes().size();
    } else {
      phi = 1 + rng.next_below(h.mirror.sizes().size());
    }
    sampler.sample(phi, rng, chain);
    h.rotate(chain, h.mirror.sizes()[phi - 1]);
    if (step % 50 == 0) {
      for (std::uint64_t p = 1; p <= h.mirror.sizes().size(); p += 13) {
        ASSERT_EQ(h.exact.byte_distance(p), h.mirror.prefix(p)) << "step " << step;
      }
    }
  }
}

TEST(ExactByteTracker, ResizeAdjustsPosition) {
  ExactByteTracker t;
  t.on_append(10, 1);
  t.on_append(20, 2);
  t.on_resize(2, 20, 80);
  EXPECT_EQ(t.byte_distance(1), 10u);
  EXPECT_EQ(t.byte_distance(2), 90u);
}

}  // namespace
}  // namespace krr
