#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hashing.h"
#include "util/prng.h"

namespace krr {
namespace {

TEST(SplitMix64, IsDeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256ss, IsDeterministicForSeed) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, DoubleIsInHalfOpenUnitInterval) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256ss, OpenZeroDoubleNeverReturnsZero) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double_open0();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Xoshiro256ss, NextBelowStaysInRange) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Xoshiro256ss, NextBelowIsRoughlyUniform) {
  Xoshiro256ss rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Xoshiro256ss, MeanOfUniformDoublesIsHalf) {
  Xoshiro256ss rng(9);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Hash64, IsBijectiveViaInverse) {
  for (std::uint64_t x : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                          0xffffffffffffffffULL, 0x123456789abcdef0ULL}) {
    EXPECT_EQ(hash64_inverse(hash64(x)), x);
    EXPECT_EQ(hash64(hash64_inverse(x)), x);
  }
}

TEST(Hash64, AvalanchesLowBits) {
  // Consecutive keys must not map to consecutive hashes (spatial sampling
  // relies on this).
  std::set<std::uint64_t> low_bits;
  for (std::uint64_t x = 0; x < 256; ++x) low_bits.insert(hash64(x) & 0xff);
  EXPECT_GT(low_bits.size(), 150u);
}

}  // namespace
}  // namespace krr
