// Fault-injection harness for the ingestion and profiling pipeline: a
// generated corpus of mutated traces (single-bit flips at every position,
// truncation at every byte boundary, duplicated blocks, hostile headers)
// driven through every recovery policy. The invariants under test are the
// robustness contract of ISSUE 1:
//
//   * kStrict never crashes and never OOMs: every mutation yields either a
//     typed error or (v1, where records are unchecksummed) a clean parse.
//   * In format v2, *every* single-bit corruption is detected in strict
//     mode (header CRC, block CRC, or framing).
//   * kSkipAndCount always completes with an accurate report, and the MRC
//     profiled from its output stays within tolerance of the clean trace.
//   * kBestEffort returns a prefix of the clean trace.
//   * The profiler under a memory ceiling degrades its sampling rate
//     instead of exceeding the limit.
//
// This file runs under ASan/UBSan via the `sanitize` ctest label
// (-DKRR_SANITIZE=address;undefined).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "trace/generator.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"
#include "trace/zipf.h"
#include "util/mrc.h"

namespace krr {
namespace {

std::vector<Request> corpus_trace(std::size_t n, std::uint64_t seed = 11) {
  ZipfianGenerator gen(500, 0.95, seed, true, 100);
  auto trace = materialize(gen, n);
  for (std::size_t i = 0; i < trace.size(); i += 7) trace[i].op = Op::kSet;
  return trace;
}

std::string serialize_v2(const std::vector<Request>& trace,
                         std::uint32_t records_per_block) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary_v2(ss, trace, records_per_block);
  return ss.str();
}

std::string serialize_v1(const std::vector<Request>& trace) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_trace_binary(ss, trace);
  return ss.str();
}

StatusOr<std::vector<Request>> parse(const std::string& bytes,
                                     RecoveryPolicy policy,
                                     TraceReadReport* report = nullptr) {
  std::stringstream ss(bytes);
  TraceReaderOptions options;
  options.policy = policy;
  options.max_bad_records = 1u << 20;
  return read_trace(ss, options, report);
}

/// True if `prefix` is a prefix of `full`.
bool is_prefix_of(const std::vector<Request>& prefix,
                  const std::vector<Request>& full) {
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

TEST(FaultInjection, V2StrictDetectsEverySingleBitFlip) {
  const auto trace = corpus_trace(150);
  const std::string clean = serialize_v2(trace, 32);
  std::string bytes = clean;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
      auto result = parse(bytes, RecoveryPolicy::kStrict);
      EXPECT_FALSE(result.is_ok())
          << "bit flip at byte " << i << " bit " << bit << " went undetected";
      if (!result.is_ok()) {
        EXPECT_NE(result.status().code(), StatusCode::kOk);
        EXPECT_NE(result.status().code(), StatusCode::kInternal);
      }
      bytes[i] = static_cast<char>(bytes[i] ^ (1 << bit));
    }
  }
  ASSERT_EQ(bytes, clean);  // the corpus loop restored every byte
}

TEST(FaultInjection, V2SkipAndCountSurvivesEverySingleBitFlip) {
  const auto trace = corpus_trace(150);
  const std::string clean = serialize_v2(trace, 32);
  std::string bytes = clean;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    TraceReadReport report;
    auto result = parse(bytes, RecoveryPolicy::kSkipAndCount, &report);
    // Flips in the file header can make the stream unreadable (bad magic /
    // unknown version) — those fail with a typed error. Everything past
    // the version field must be recoverable.
    if (i < 12) {
      EXPECT_FALSE(result.is_ok()) << "byte " << i;
    } else {
      ASSERT_TRUE(result.is_ok())
          << "byte " << i << ": " << result.status().to_string();
      // Whatever was delivered, plus what the report says was dropped,
      // accounts for every record that went missing.
      EXPECT_EQ(report.records_read, result->size()) << "byte " << i;
      EXPECT_GE(result->size() + report.records_skipped +
                    (report.truncated_tail ? trace.size() : 0) +
                    report.bytes_discarded / 13 + 2,
                trace.size())
          << "byte " << i;
    }
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
  }
}

TEST(FaultInjection, V2TruncationAtEveryBoundary) {
  const auto trace = corpus_trace(120);
  const std::string clean = serialize_v2(trace, 25);
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const std::string cut = clean.substr(0, len);
    // Strict: always a typed error (the stream is incomplete).
    auto strict = parse(cut, RecoveryPolicy::kStrict);
    EXPECT_FALSE(strict.is_ok()) << "length " << len;
    // Best effort: a clean prefix of the original records, never garbage.
    // (Only an unrecognizable magic — under 8 bytes — is a hard error.)
    auto best = parse(cut, RecoveryPolicy::kBestEffort);
    if (len < 8) {
      EXPECT_FALSE(best.is_ok()) << "length " << len;
      continue;
    }
    ASSERT_TRUE(best.is_ok()) << "length " << len << ": "
                              << best.status().to_string();
    EXPECT_TRUE(is_prefix_of(*best, trace)) << "length " << len;
    // Skip: same records (truncation loses the tail; nothing to resync).
    TraceReadReport report;
    auto skip = parse(cut, RecoveryPolicy::kSkipAndCount, &report);
    ASSERT_TRUE(skip.is_ok()) << "length " << len;
    EXPECT_EQ(*skip, *best) << "length " << len;
    EXPECT_TRUE(report.truncated_tail) << "length " << len;
  }
}

TEST(FaultInjection, V1TruncationAtEveryBoundary) {
  const auto trace = corpus_trace(60);
  const std::string clean = serialize_v1(trace);
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const std::string cut = clean.substr(0, len);
    auto strict = parse(cut, RecoveryPolicy::kStrict);
    EXPECT_FALSE(strict.is_ok()) << "length " << len;
    auto best = parse(cut, RecoveryPolicy::kBestEffort);
    if (len < 8) {
      EXPECT_FALSE(best.is_ok()) << "length " << len;
      continue;
    }
    ASSERT_TRUE(best.is_ok()) << "length " << len;
    // v1 records are fixed-width, so exactly (len - 20) / 13 survive.
    const std::size_t expected = len < 20 ? 0 : (len - 20) / 13;
    EXPECT_EQ(best->size(), expected) << "length " << len;
    EXPECT_TRUE(is_prefix_of(*best, trace)) << "length " << len;
  }
}

TEST(FaultInjection, V1BadOpBytesNeverCrash) {
  const auto trace = corpus_trace(60);
  const std::string clean = serialize_v1(trace);
  // Stomp every op byte in turn (offset 20 + i*13 + 12) with garbage.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::string bytes = clean;
    bytes[20 + i * 13 + 12] = static_cast<char>(0xEE);
    auto strict = parse(bytes, RecoveryPolicy::kStrict);
    ASSERT_FALSE(strict.is_ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kBadRecord);
    TraceReadReport report;
    auto skip = parse(bytes, RecoveryPolicy::kSkipAndCount, &report);
    ASSERT_TRUE(skip.is_ok());
    EXPECT_EQ(skip->size(), trace.size() - 1);
    EXPECT_EQ(report.records_skipped, 1u);
    auto best = parse(bytes, RecoveryPolicy::kBestEffort);
    ASSERT_TRUE(best.is_ok());
    EXPECT_EQ(best->size(), i);
  }
}

TEST(FaultInjection, DuplicatedBlocks) {
  const auto trace = corpus_trace(100);
  const std::string clean = serialize_v2(trace, 25);
  // Duplicate the second block (offset 28 + 337 .. + 2*337).
  const std::size_t block_bytes = 12 + 25 * 13;
  const std::size_t second = 28 + block_bytes;
  std::string bytes = clean;
  bytes.insert(second + block_bytes, clean.substr(second, block_bytes));

  auto strict = parse(bytes, RecoveryPolicy::kStrict);
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kBadRecord);

  TraceReadReport report;
  auto skip = parse(bytes, RecoveryPolicy::kSkipAndCount, &report);
  ASSERT_TRUE(skip.is_ok());
  // Recovery trusts the stream: the duplicate's records are delivered and
  // the count mismatch is visible in the report.
  EXPECT_EQ(skip->size(), trace.size() + 25);
  EXPECT_EQ(report.declared_records, trace.size());
  EXPECT_GT(report.records_read, report.declared_records);
}

TEST(FaultInjection, HostileHeaderNeverAllocatesUnbounded) {
  // Claim 2^61 records in both formats; the reader must reject (strict,
  // seekable) or deliver only what exists — without reserving 2^61 slots.
  for (const bool v2 : {false, true}) {
    const auto trace = corpus_trace(10);
    std::string bytes = v2 ? serialize_v2(trace, 4) : serialize_v1(trace);
    const std::uint64_t hostile = 1ULL << 61;
    for (int i = 0; i < 8; ++i) {
      bytes[12 + i] = static_cast<char>(hostile >> (8 * i));
    }
    auto strict = parse(bytes, RecoveryPolicy::kStrict);
    ASSERT_FALSE(strict.is_ok()) << (v2 ? "v2" : "v1");
    EXPECT_EQ(strict.status().code(), StatusCode::kCorruptHeader);

    TraceReadReport report;
    auto skip = parse(bytes, RecoveryPolicy::kSkipAndCount, &report);
    ASSERT_TRUE(skip.is_ok()) << (v2 ? "v2" : "v1");
    EXPECT_EQ(*skip, trace);
    EXPECT_TRUE(report.truncated_tail);
  }
}

TEST(FaultInjection, SkipAndCountProfilesWithinTolerance) {
  // Corrupt ~6% of a 20K-request trace (3 blocks of 256), recover with
  // kSkipAndCount, and check the profiled MRC against the clean trace's.
  // KRR's statistical nature makes dropped records benign — this is the
  // justification for the default recovery policy.
  const auto trace = corpus_trace(20000, 23);
  std::string bytes = serialize_v2(trace, 256);
  const std::size_t block_bytes = 12 + 256 * 13;
  for (const std::size_t block : {10u, 30u, 55u}) {
    const std::size_t payload = 28 + block * block_bytes + 12;
    bytes[payload + 100] = static_cast<char>(bytes[payload + 100] ^ 0x08);
  }
  TraceReadReport report;
  auto recovered = parse(bytes, RecoveryPolicy::kSkipAndCount, &report);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(report.checksum_failures, 3u);
  EXPECT_EQ(report.records_skipped, 3u * 256u);
  EXPECT_EQ(recovered->size(), trace.size() - 3u * 256u);

  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.seed = 3;
  KrrProfiler clean_profiler(cfg);
  for (const Request& r : trace) clean_profiler.access(r);
  KrrProfiler dirty_profiler(cfg);
  for (const Request& r : *recovered) dirty_profiler.access(r);

  const auto sizes = evenly_spaced_sizes(500.0, 20);
  const double mae = dirty_profiler.mrc().mae(clean_profiler.mrc(), sizes);
  EXPECT_LT(mae, 0.02) << "recovered profile drifted from the clean one";
}

TEST(GracefulDegradation, CeilingHalvesRateInsteadOfGrowing) {
  // A stream of all-cold keys is the worst case for profiler memory. With
  // a ~1 MB ceiling (≈ 18.7K tracked objects at 56 B each) the profiler
  // must degrade its sampling rate rather than keep growing.
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.max_stack_bytes = 1u << 20;
  KrrProfiler profiler(cfg);
  for (std::uint64_t key = 0; key < 100000; ++key) {
    profiler.access({key, 1, Op::kGet});
    if (key % 4096 == 0) {
      EXPECT_LE(profiler.space_overhead_bytes(), cfg.max_stack_bytes);
    }
  }
  EXPECT_LE(profiler.space_overhead_bytes(), cfg.max_stack_bytes);
  EXPECT_GE(profiler.degradation_events(), 1u);
  EXPECT_LT(profiler.current_sampling_rate(), 1.0);
  const RunReport report = profiler.run_report();
  EXPECT_EQ(report.degradation_events, profiler.degradation_events());
  EXPECT_EQ(report.final_sampling_rate, profiler.current_sampling_rate());
  EXPECT_EQ(report.records_read, 100000u);
  // The MRC is still usable: monotone non-increasing with cache size.
  const MissRatioCurve mrc = profiler.mrc();
  EXPECT_GT(mrc.points().size(), 0u);
}

TEST(GracefulDegradation, SixtyFourMbCeilingHolds) {
  // The acceptance-criteria configuration: a 64 MB stack ceiling (≈ 1.2M
  // tracked objects). Sequential cold keys blow straight through that
  // unless degradation kicks in.
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.max_stack_bytes = 64ull << 20;
  KrrProfiler profiler(cfg);
  for (std::uint64_t key = 0; key < 1500000; ++key) {
    profiler.access({key, 1, Op::kGet});
  }
  EXPECT_LE(profiler.space_overhead_bytes(), cfg.max_stack_bytes);
  EXPECT_GE(profiler.degradation_events(), 1u);
  EXPECT_LE(profiler.current_sampling_rate(), 0.5);
}

TEST(GracefulDegradation, DegradedProfileStaysAccurate) {
  // Halving the rate mid-run must not wreck the curve: compare a degraded
  // profiler against an unconstrained one on the same skewed workload.
  const auto trace = corpus_trace(60000, 41);
  KrrProfilerConfig unconstrained;
  unconstrained.k_sample = 5;
  unconstrained.seed = 9;
  KrrProfiler reference(unconstrained);
  for (const Request& r : trace) reference.access(r);

  KrrProfilerConfig limited = unconstrained;
  // 500 objects * 56 B: forces at least one halving on a 500-object
  // footprint... but the zipf footprint is 500, so pick a ceiling that
  // bites partway through the cold ramp.
  limited.max_stack_bytes = 300 * 56;
  KrrProfiler degraded(limited);
  for (const Request& r : trace) degraded.access(r);
  ASSERT_GE(degraded.degradation_events(), 1u);
  EXPECT_LE(degraded.space_overhead_bytes(), limited.max_stack_bytes);

  const auto sizes = evenly_spaced_sizes(500.0, 20);
  const double mae = degraded.mrc().mae(reference.mrc(), sizes);
  EXPECT_LT(mae, 0.08) << "degraded profile drifted too far";
}

TEST(GracefulDegradation, RetainPreservesStackOrder) {
  KrrStackConfig cfg;
  cfg.k = 8;
  cfg.track_bytes = true;
  KrrStack stack(cfg);
  for (std::uint64_t key = 0; key < 200; ++key) stack.access(key, 10);
  const auto before = stack.stack();
  const std::uint64_t evicted = stack.retain(
      [](std::uint64_t key) { return key % 2 == 0; });
  EXPECT_EQ(evicted + stack.depth(), before.size());
  // Survivors keep their relative order.
  std::vector<std::uint64_t> expected;
  for (const std::uint64_t key : before) {
    if (key % 2 == 0) expected.push_back(key);
  }
  EXPECT_EQ(stack.stack(), expected);
  EXPECT_EQ(stack.total_bytes(), 10u * expected.size());
  // The stack keeps working after compaction.
  for (std::uint64_t key = 0; key < 200; ++key) stack.access(key, 10);
  EXPECT_EQ(stack.depth(), 200u);
}

}  // namespace
}  // namespace krr
