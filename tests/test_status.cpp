#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/crc32.h"
#include "util/status.h"

namespace krr {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_EQ(s, Status::ok());
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = truncated_error("stream ended early");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTruncated);
  EXPECT_EQ(s.message(), "stream ended early");
  EXPECT_EQ(s.to_string(), "truncated: stream ended early");
}

TEST(Status, EveryCodeHasAStableName) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(status_code_name(StatusCode::kCorruptHeader), "corrupt_header");
  EXPECT_STREQ(status_code_name(StatusCode::kUnsupportedVersion),
               "unsupported_version");
  EXPECT_STREQ(status_code_name(StatusCode::kTruncated), "truncated");
  EXPECT_STREQ(status_code_name(StatusCode::kBadRecord), "bad_record");
  EXPECT_STREQ(status_code_name(StatusCode::kChecksumMismatch),
               "checksum_mismatch");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceLimit), "resource_limit");
  EXPECT_STREQ(status_code_name(StatusCode::kIoError), "io_error");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> r = bad_record_error("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBadRecord);
  EXPECT_THROW(r.value(), StatusError);
}

TEST(StatusOr, ValueOrThrowPropagatesCode) {
  try {
    value_or_throw(StatusOr<int>(checksum_mismatch_error("block 3")));
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kChecksumMismatch);
    EXPECT_NE(std::string(e.what()).find("block 3"), std::string::npos);
  }
}

TEST(StatusError, IsARuntimeError) {
  // Legacy call sites catch std::runtime_error; the typed exception must
  // keep satisfying them.
  EXPECT_THROW(throw StatusError(io_error("disk on fire")), std::runtime_error);
}

TEST(Crc32, KnownVectors) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  const char* abc = "abc";
  EXPECT_EQ(crc32(abc, 3), 0x352441C2u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 inc;
  inc.update(data.data(), 10);
  inc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc.value(), crc32(data.data(), data.size()));
  inc.reset();
  EXPECT_EQ(inc.value(), 0u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "fault tolerant ingestion";
  const std::uint32_t clean = crc32(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(crc32(data.data(), data.size()), clean)
          << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

}  // namespace
}  // namespace krr
