#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/synthetic.h"
#include "trace/twitter.h"
#include "trace/ycsb.h"
#include "trace/zipf.h"

namespace krr {
namespace {

TEST(Materialize, ProducesRequestedLength) {
  UniformGenerator gen(100, 1);
  const auto trace = materialize(gen, 5000);
  EXPECT_EQ(trace.size(), 5000u);
}

TEST(CountDistinct, MatchesSetSemantics) {
  std::vector<Request> trace{{1, 1, Op::kGet}, {2, 1, Op::kGet}, {1, 1, Op::kSet}};
  EXPECT_EQ(count_distinct(trace), 2u);
  EXPECT_EQ(count_distinct({}), 0u);
}

TEST(WorkingSetBytes, UsesFirstSeenSize) {
  std::vector<Request> trace{{1, 100, Op::kGet}, {2, 50, Op::kGet}, {1, 999, Op::kGet}};
  EXPECT_EQ(working_set_bytes(trace), 150u);
}

TEST(YcsbWorkloadC, IsReadOnlyAndSkewed) {
  YcsbWorkloadC gen(10000, 0.99, 3);
  std::size_t distinct_hits = 0;
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    EXPECT_EQ(r.op, Op::kGet);
    EXPECT_LT(r.key, 10000u);
    keys.insert(r.key);
  }
  distinct_hits = keys.size();
  // Zipf 0.99 concentrates mass: far fewer distinct keys than requests.
  EXPECT_LT(distinct_hits, 9000u);
  EXPECT_GT(distinct_hits, 1000u);
}

TEST(YcsbWorkloadE, ScansAreContiguous) {
  YcsbWorkloadE gen(1000, 0.99, 4, /*max_scan_length=*/50);
  // Within a scan, keys increase by 1 (mod record count). Track how often
  // consecutive requests are contiguous; with mean scan length ~25 the
  // majority must be.
  std::uint64_t prev = gen.next().key;
  int contiguous = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t cur = gen.next().key;
    if (cur == (prev + 1) % 1000) ++contiguous;
    prev = cur;
  }
  EXPECT_GT(contiguous, kN * 8 / 10);
}

TEST(YcsbWorkloadE, DefaultsMaxScanToRecordCount) {
  YcsbWorkloadE gen(100, 1.5, 5);
  // Scan lengths in [1, 100]: a long stream must include runs crossing the
  // whole key space (wrap-around).
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.insert(gen.next().key);
  EXPECT_EQ(keys.size(), 100u);
}

TEST(YcsbWorkloadE, ResetReplaysScanState) {
  YcsbWorkloadE gen(500, 0.99, 6);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 200; ++i) first.push_back(gen.next().key);
  gen.reset();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(gen.next().key, first[i]);
}

TEST(MsrProfiles, ThirteenNamedProfilesExist) {
  EXPECT_EQ(msr_profiles().size(), 13u);
  EXPECT_NO_THROW(msr_profile("src1"));
  EXPECT_NO_THROW(msr_profile("prxy"));
  EXPECT_THROW(msr_profile("nope"), std::out_of_range);
}

TEST(MsrGenerator, KeysStayInFootprint) {
  MsrGenerator gen(msr_profile("web"), 1);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(gen.next().key, msr_profile("web").footprint);
  }
}

TEST(MsrGenerator, SizesAreStablePerKeyAndAligned) {
  MsrGenerator gen(msr_profile("src1"), 2);
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    EXPECT_EQ(r.size % 512, 0u);
    EXPECT_GE(r.size, 512u);
    EXPECT_LE(r.size, 256u * 1024u);
    auto [it, inserted] = seen.emplace(r.key, r.size);
    if (!inserted) {
      EXPECT_EQ(it->second, r.size) << "size changed for key " << r.key;
    }
  }
}

TEST(MsrGenerator, UniformSizeOverrideApplies) {
  MsrGenerator gen(msr_profile("src1"), 2, 0, 200);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next().size, 200u);
}

TEST(MsrGenerator, FootprintOverrideRescales) {
  MsrGenerator gen(msr_profile("proj"), 3, 5000);
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 50000; ++i) {
    const auto k = gen.next().key;
    EXPECT_LT(k, 5000u);
    keys.insert(k);
  }
  EXPECT_GT(keys.size(), 2500u);  // footprint actually used
}

TEST(MsrGenerator, ResetReplays) {
  MsrGenerator a(msr_profile("hm"), 11);
  std::vector<Request> first;
  for (int i = 0; i < 500; ++i) first.push_back(a.next());
  a.reset();
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(MsrMasterGenerator, MergesDisjointKeySpaces) {
  MsrMasterGenerator gen(1, /*footprint_scale=*/0.05);
  std::set<std::uint64_t> streams;
  for (int i = 0; i < 10000; ++i) {
    streams.insert(gen.next().key >> 40);  // stream id from the stride
  }
  EXPECT_EQ(streams.size(), 13u);
}

TEST(TwitterProfiles, FourClustersExist) {
  EXPECT_EQ(twitter_profiles().size(), 4u);
  EXPECT_NO_THROW(twitter_profile("cluster34.1"));
  EXPECT_THROW(twitter_profile("cluster0"), std::out_of_range);
}

TEST(TwitterGenerator, MixesGetsAndSets) {
  TwitterGenerator gen(twitter_profile("cluster52.7"), 1);  // 30% writes
  int sets = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (gen.next().op == Op::kSet) ++sets;
  }
  EXPECT_NEAR(static_cast<double>(sets) / kN, 0.30, 0.02);
}

TEST(TwitterGenerator, SizesAreStableAndBounded) {
  TwitterGenerator gen(twitter_profile("cluster26.0"), 2);
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    EXPECT_GE(r.size, 16u);
    EXPECT_LE(r.size, 64u * 1024u);
    auto [it, inserted] = seen.emplace(r.key, r.size);
    if (!inserted) {
      EXPECT_EQ(it->second, r.size);
    }
  }
}

TEST(LoopGenerator, CyclesDeterministically) {
  LoopGenerator gen(3);
  EXPECT_EQ(gen.next().key, 0u);
  EXPECT_EQ(gen.next().key, 1u);
  EXPECT_EQ(gen.next().key, 2u);
  EXPECT_EQ(gen.next().key, 0u);
  gen.reset();
  EXPECT_EQ(gen.next().key, 0u);
}

TEST(StackDepthGenerator, ReusesWithinDepthRange) {
  StackDepthGenerator gen(0.9, 8, 3);
  const auto trace = materialize(gen, 5000);
  // With 90% reuse over the 8 most recent keys, the distinct count stays
  // far below the trace length.
  EXPECT_LT(count_distinct(trace), 1500u);
  EXPECT_GT(count_distinct(trace), 100u);
}

TEST(InterleaveGenerator, RespectsWeightsAndStrides) {
  std::vector<std::unique_ptr<TraceGenerator>> streams;
  streams.push_back(std::make_unique<LoopGenerator>(10));
  streams.push_back(std::make_unique<UniformGenerator>(10, 1));
  InterleaveGenerator gen(std::move(streams), {3.0, 1.0}, 2, /*key_stride=*/1000);
  int from_first = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto key = gen.next().key;
    if (key >= 1000 && key < 2000) {
      ++from_first;
    } else {
      EXPECT_GE(key, 2000u);
      EXPECT_LT(key, 3000u);
    }
  }
  EXPECT_NEAR(static_cast<double>(from_first) / kN, 0.75, 0.02);
}

TEST(InterleaveGenerator, ValidatesArguments) {
  std::vector<std::unique_ptr<TraceGenerator>> empty;
  EXPECT_THROW(InterleaveGenerator(std::move(empty), {}, 1), std::invalid_argument);
  std::vector<std::unique_ptr<TraceGenerator>> one;
  one.push_back(std::make_unique<LoopGenerator>(5));
  EXPECT_THROW(InterleaveGenerator(std::move(one), {1.0, 2.0}, 1), std::invalid_argument);
}

TEST(ReplayGenerator, WrapsAndReports) {
  ReplayGenerator gen({{1, 1, Op::kGet}, {2, 1, Op::kGet}}, "two");
  EXPECT_EQ(gen.next().key, 1u);
  EXPECT_EQ(gen.next().key, 2u);
  EXPECT_FALSE(gen.wrapped());
  EXPECT_EQ(gen.next().key, 1u);
  EXPECT_TRUE(gen.wrapped());
  EXPECT_EQ(gen.name(), "two");
  gen.reset();
  EXPECT_FALSE(gen.wrapped());
}

}  // namespace
}  // namespace krr
