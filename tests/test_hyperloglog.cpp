#include <gtest/gtest.h>

#include <cmath>

#include "baselines/hyperloglog.h"
#include "util/hashing.h"

namespace krr {
namespace {

TEST(HyperLogLog, ValidatesPrecision) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(19), std::invalid_argument);
  EXPECT_EQ(HyperLogLog(10).register_count(), 1024u);
}

TEST(HyperLogLog, EmptySketchEstimatesZeroish) {
  HyperLogLog hll(12);
  EXPECT_TRUE(hll.empty());
  EXPECT_LT(hll.estimate(), 1.0);
}

TEST(HyperLogLog, SmallCardinalitiesAreAccurate) {
  // Linear-counting regime: estimates should be within ~2%.
  for (std::uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    HyperLogLog hll(12);
    for (std::uint64_t i = 0; i < n; ++i) hll.add(hash64(i));
    EXPECT_NEAR(hll.estimate(), static_cast<double>(n),
                std::max(2.0, 0.02 * static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(HyperLogLog, LargeCardinalitiesWithinStandardError) {
  // Standard error ~ 1.04/sqrt(m); allow 4 sigma.
  constexpr std::uint64_t kN = 200000;
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < kN; ++i) hll.add(hash64(i ^ 0xabcdef12345ULL));
  const double rel_tol = 4.0 * 1.04 / std::sqrt(4096.0);
  EXPECT_NEAR(hll.estimate(), static_cast<double>(kN),
              rel_tol * static_cast<double>(kN));
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint64_t i = 0; i < 500; ++i) hll.add(hash64(i));
  }
  EXPECT_NEAR(hll.estimate(), 500.0, 25.0);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), u(12);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    a.add(hash64(i));
    u.add(hash64(i));
  }
  for (std::uint64_t i = 2000; i < 6000; ++i) {
    b.add(hash64(i));
    u.add(hash64(i));
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate());
}

TEST(HyperLogLog, MergeRejectsPrecisionMismatch) {
  HyperLogLog a(12), b(10);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HyperLogLog, HigherPrecisionIsMoreAccurateOnAverage) {
  // Not guaranteed per-instance, but across several disjoint key sets the
  // mean relative error must drop with precision.
  auto mean_error = [](std::uint32_t p) {
    double total = 0.0;
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      HyperLogLog hll(p);
      constexpr std::uint64_t kN = 50000;
      for (std::uint64_t i = 0; i < kN; ++i) {
        hll.add(hash64(i + salt * 1000000));
      }
      total += std::abs(hll.estimate() - static_cast<double>(kN)) / kN;
    }
    return total / 8.0;
  };
  EXPECT_LT(mean_error(14), mean_error(6));
}

}  // namespace
}  // namespace krr
