#include <gtest/gtest.h>

#include "baselines/lru_stack.h"
#include "baselines/shards_fixed.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/ycsb.h"
#include "trace/zipf.h"

namespace krr {
namespace {

TEST(ShardsFixed, ValidatesArguments) {
  EXPECT_THROW(ShardsFixedSizeProfiler(0), std::invalid_argument);
  EXPECT_THROW(ShardsFixedSizeProfiler(100, 0), std::invalid_argument);
}

TEST(ShardsFixed, StartsAtRateOne) {
  ShardsFixedSizeProfiler shards(1000);
  EXPECT_DOUBLE_EQ(shards.current_rate(), 1.0);
}

TEST(ShardsFixed, NeverTracksMoreThanMaxObjects) {
  ShardsFixedSizeProfiler shards(512);
  UniformGenerator gen(100000, 3);
  for (int i = 0; i < 200000; ++i) {
    shards.access(gen.next());
    ASSERT_LE(shards.tracked_objects(), 512u);
  }
  // The footprint (100k) far exceeds the budget, so the threshold must
  // have dropped well below 1.
  EXPECT_LT(shards.current_rate(), 0.05);
}

TEST(ShardsFixed, ExactWhileUnderBudget) {
  // With fewer distinct objects than the budget no eviction happens and the
  // curve equals the exact LRU curve.
  ZipfianGenerator gen(500, 0.9, 5);
  const auto trace = materialize(gen, 30000);
  ShardsFixedSizeProfiler shards(10000);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    shards.access(r);
    exact.access(r);
  }
  EXPECT_DOUBLE_EQ(shards.current_rate(), 1.0);
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(shards.mrc().mae(exact.mrc(), sizes), 1e-9);
}

TEST(ShardsFixed, ApproximatesExactLruUnderBudgetPressure) {
  YcsbWorkloadC gen(30000, 0.9, 7);
  const auto trace = materialize(gen, 200000);
  ShardsFixedSizeProfiler shards(4096);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    shards.access(r);
    exact.access(r);
  }
  EXPECT_LT(shards.current_rate(), 0.6);  // budget actually binding
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(shards.mrc().mae(exact.mrc(), sizes), 0.03);
}

TEST(ShardsFixed, RateOnlyEverDecreases) {
  ShardsFixedSizeProfiler shards(256);
  UniformGenerator gen(50000, 9);
  double prev = shards.current_rate();
  for (int i = 0; i < 100000; ++i) {
    shards.access(gen.next());
    const double rate = shards.current_rate();
    ASSERT_LE(rate, prev);
    prev = rate;
  }
}

TEST(ShardsFixed, EvictedKeysStayFilteredOut) {
  ShardsFixedSizeProfiler shards(64);
  UniformGenerator gen(10000, 11);
  for (int i = 0; i < 50000; ++i) shards.access(gen.next());
  const std::uint64_t sampled_before = shards.sampled();
  const double rate = shards.current_rate();
  // Replays of the same keys must sample at (about) the current rate, not
  // re-admit previously evicted keys.
  UniformGenerator replay(10000, 11);
  std::uint64_t new_sampled = 0;
  for (int i = 0; i < 50000; ++i) {
    shards.access(replay.next());
    ASSERT_LE(shards.tracked_objects(), 64u);
  }
  new_sampled = shards.sampled() - sampled_before;
  EXPECT_NEAR(static_cast<double>(new_sampled) / 50000.0, rate, rate * 0.5);
}

}  // namespace
}  // namespace krr
