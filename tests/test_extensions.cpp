// Tests for the extension modules: miniature simulation, the generalized
// sampled-priority cache (LFU/TTL future work), the DLRU adaptive cache,
// and the windowed online profiler.

#include <gtest/gtest.h>

#include "core/dlru.h"
#include "core/windowed_profiler.h"
#include "sim/klru_cache.h"
#include "sim/miniature.h"
#include "sim/sampled_priority_cache.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/synthetic.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key, std::uint32_t size = 1) {
  return Request{key, size, Op::kGet};
}

// ---------------- miniature simulation ----------------

TEST(Miniature, ApproximatesFullKLruSimulation) {
  ZipfianGenerator gen(20000, 0.8, 3, true);
  const auto trace = materialize(gen, 200000);
  const auto sizes = capacity_grid_objects(trace, 10);
  const MissRatioCurve full = sweep_klru(trace, sizes, 5, true, 7);
  MiniatureConfig cfg;
  cfg.rate = 0.2;
  const MissRatioCurve mini = miniature_klru_mrc(trace, sizes, 5, cfg);
  EXPECT_LT(mini.mae(full, sizes), 0.04);
}

TEST(Miniature, RedisVariantApproximatesFullRedisSimulation) {
  ZipfianGenerator gen(15000, 0.8, 5, true);
  const auto trace = materialize(gen, 150000);
  const auto sizes = capacity_grid_objects(trace, 8);
  RedisLruConfig redis_cfg;
  redis_cfg.seed = 9;
  const MissRatioCurve full = sweep_redis(trace, sizes, redis_cfg);
  MiniatureConfig cfg;
  cfg.rate = 0.2;
  const MissRatioCurve mini = miniature_redis_mrc(trace, sizes, redis_cfg, cfg);
  EXPECT_LT(mini.mae(full, sizes), 0.05);
}

TEST(Miniature, CapacityFloorPreventsDegenerateCaches) {
  ZipfianGenerator gen(1000, 0.9, 7);
  const auto trace = materialize(gen, 20000);
  MiniatureConfig cfg;
  cfg.rate = 0.001;  // 1000 * 0.001 = 1 object without the floor
  cfg.min_capacity = 8;
  const MissRatioCurve mini = miniature_klru_mrc(trace, {1000.0}, 5, cfg);
  EXPECT_LE(mini.eval(1000.0), 1.0);  // just exercises the floor path
}

// ---------------- sampled-priority cache ----------------

TEST(SampledPriority, ValidatesConfig) {
  SampledPriorityConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(SampledPriorityCache{cfg}, std::invalid_argument);
  cfg.capacity = 10;
  cfg.sample_size = 0;
  EXPECT_THROW(SampledPriorityCache{cfg}, std::invalid_argument);
}

TEST(SampledPriority, LruPolicyMatchesKLruCacheStatistically) {
  ZipfianGenerator gen(2000, 0.9, 11);
  const auto trace = materialize(gen, 60000);
  SampledPriorityConfig cfg;
  cfg.capacity = 400;
  cfg.sample_size = 5;
  cfg.policy = SampledEvictionPolicy::kLru;
  cfg.seed = 3;
  SampledPriorityCache generalized(cfg);
  KLruConfig kc;
  kc.capacity = 400;
  kc.sample_size = 5;
  kc.seed = 3;
  KLruCache reference(kc);
  for (const Request& r : trace) {
    generalized.access(r);
    reference.access(r);
  }
  EXPECT_NEAR(generalized.miss_ratio(), reference.miss_ratio(), 0.01);
}

TEST(SampledPriority, LfuRetainsHotObjectsUnderScans) {
  // A Zipfian hot set plus an aggressive scan: LFU protects the hot set
  // where LRU lets the scan flush it.
  std::vector<Request> trace;
  ZipfianGenerator hot(200, 1.2, 13);
  std::uint64_t scan_key = 1000;
  Xoshiro256ss rng(17);
  for (int i = 0; i < 60000; ++i) {
    if (rng.next_double() < 0.5) {
      trace.push_back(hot.next());
    } else {
      trace.push_back(get(scan_key++));
    }
  }
  auto run = [&](SampledEvictionPolicy policy) {
    SampledPriorityConfig cfg;
    cfg.capacity = 150;
    cfg.sample_size = 5;
    cfg.policy = policy;
    cfg.seed = 5;
    SampledPriorityCache cache(cfg);
    for (const Request& r : trace) cache.access(r);
    return cache.miss_ratio();
  };
  EXPECT_LT(run(SampledEvictionPolicy::kLfu), run(SampledEvictionPolicy::kLru));
}

TEST(SampledPriority, TtlExpiresObjects) {
  SampledPriorityConfig cfg;
  cfg.capacity = 1000;
  cfg.policy = SampledEvictionPolicy::kTtl;
  cfg.ttl_base = 100;
  cfg.ttl_spread = 0;
  SampledPriorityCache cache(cfg);
  cache.access(get(1));
  for (int i = 0; i < 50; ++i) cache.access(get(2));
  EXPECT_TRUE(cache.access(get(1)));  // still fresh at tick 52
  for (int i = 0; i < 150; ++i) cache.access(get(2));
  EXPECT_FALSE(cache.access(get(1)));  // expired: miss and readmit
  EXPECT_GE(cache.expirations(), 1u);
  EXPECT_TRUE(cache.access(get(1)));  // readmitted fresh
}

TEST(SampledPriority, PolicyNamesAreStable) {
  EXPECT_EQ(to_string(SampledEvictionPolicy::kLru), "sampled_lru");
  EXPECT_EQ(to_string(SampledEvictionPolicy::kLfu), "sampled_lfu");
  EXPECT_EQ(to_string(SampledEvictionPolicy::kTtl), "sampled_ttl");
}

TEST(SampledPriority, CapacityIsRespected) {
  SampledPriorityConfig cfg;
  cfg.capacity = 64;
  cfg.policy = SampledEvictionPolicy::kLfu;
  SampledPriorityCache cache(cfg);
  UniformGenerator gen(1000, 19);
  for (int i = 0; i < 20000; ++i) {
    cache.access(gen.next());
    ASSERT_LE(cache.used(), 64u);
  }
  cache.reset();
  EXPECT_EQ(cache.object_count(), 0u);
}

// ---------------- DLRU adaptive cache ----------------

TEST(AdaptiveKLru, ValidatesConfig) {
  AdaptiveKLruConfig cfg;
  cfg.capacity = 100;
  cfg.candidate_ks = {};
  EXPECT_THROW(AdaptiveKLruCache{cfg}, std::invalid_argument);
  cfg.candidate_ks = {1, 4};
  cfg.epoch = 0;
  EXPECT_THROW(AdaptiveKLruCache{cfg}, std::invalid_argument);
}

TEST(AdaptiveKLru, PicksSmallKOnLoopWorkload) {
  // Below the loop size, random replacement (K=1) beats LRU, so the
  // controller should settle on the smallest K.
  LoopGenerator gen(2000);
  AdaptiveKLruConfig cfg;
  cfg.capacity = 1000;
  cfg.epoch = 20000;
  cfg.sampling_rate = 1.0;
  AdaptiveKLruCache cache(cfg);
  for (int i = 0; i < 100000; ++i) cache.access(gen.next());
  ASSERT_FALSE(cache.k_history().empty());
  EXPECT_EQ(cache.k_history().back(), 1u);
}

TEST(AdaptiveKLru, PicksLargerKOnRecencyFriendlyWorkload) {
  // A drift-driven workload at a small cache fraction is where LRU-like
  // eviction (larger K) clearly beats random replacement (Fig. 1.1's
  // low-size region), so the controller must move off K = 1.
  MsrGenerator gen(msr_profile("web"), 23, 15000, 1);
  AdaptiveKLruConfig cfg;
  cfg.capacity = 1500;  // ~10% of the footprint
  cfg.epoch = 40000;
  cfg.sampling_rate = 1.0;
  cfg.tolerance = 0.002;
  AdaptiveKLruCache cache(cfg);
  for (int i = 0; i < 160000; ++i) cache.access(gen.next());
  ASSERT_FALSE(cache.k_history().empty());
  EXPECT_GE(cache.k_history().back(), 4u);
}

TEST(AdaptiveKLru, BeatsOrMatchesTheWorstFixedK) {
  LoopGenerator gen(2000);
  const auto trace = materialize(gen, 100000);
  AdaptiveKLruConfig cfg;
  cfg.capacity = 1000;
  cfg.epoch = 10000;
  cfg.sampling_rate = 1.0;
  AdaptiveKLruCache adaptive(cfg);
  KLruConfig fixed_cfg;
  fixed_cfg.capacity = 1000;
  fixed_cfg.sample_size = 32;  // worst choice for a loop
  fixed_cfg.seed = 4;
  KLruCache fixed(fixed_cfg);
  for (const Request& r : trace) {
    adaptive.access(r);
    fixed.access(r);
  }
  EXPECT_LT(adaptive.miss_ratio(), fixed.miss_ratio() + 0.01);
}

// ---------------- windowed profiler ----------------

TEST(WindowedProfiler, ValidatesWindow) {
  WindowedKrrConfig cfg;
  cfg.window = 1;
  EXPECT_THROW(WindowedKrrProfiler{cfg}, std::invalid_argument);
}

TEST(WindowedProfiler, RetiresWindowsOnSchedule) {
  // Staggered windows: the first retirement happens after one full window,
  // then every half window (each profiler lives one window, offset by
  // window/2), so the active view always holds [window/2, window] history.
  WindowedKrrConfig cfg;
  cfg.window = 1000;
  WindowedKrrProfiler profiler(cfg);
  ZipfianGenerator gen(500, 0.9, 29);
  for (int i = 0; i < 5500; ++i) profiler.access(gen.next());
  EXPECT_EQ(profiler.windows_retired(), 10u);
  EXPECT_LE(profiler.active_window_fill(), 1000u);
  EXPECT_GE(profiler.active_window_fill(), 500u);
}

TEST(WindowedProfiler, TracksPhaseChangeWhereSinglePassAverages) {
  // Phase 1 touches keys [0, 1000); phase 2 touches [100000, 101000).
  // After phase 2 has run for > one window, the windowed MRC must reflect
  // only ~1000 distinct objects, while a whole-trace profiler reports the
  // union working set.
  WindowedKrrConfig cfg;
  cfg.window = 20000;
  cfg.profiler.k_sample = 5;
  WindowedKrrProfiler windowed(cfg);
  KrrProfiler whole({.k_sample = 5});
  UniformGenerator phase1(1000, 31);
  for (int i = 0; i < 50000; ++i) {
    const Request r = phase1.next();
    windowed.access(r);
    whole.access(r);
  }
  UniformGenerator phase2_gen(1000, 37);
  for (int i = 0; i < 50000; ++i) {
    Request r = phase2_gen.next();
    r.key += 100000;
    windowed.access(r);
    whole.access(r);
  }
  EXPECT_LE(windowed.mrc().max_size(), 1100.0);
  EXPECT_GE(whole.mrc().max_size(), 1900.0);
}

}  // namespace
}  // namespace krr
