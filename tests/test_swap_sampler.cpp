#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/swap_sampler.h"
#include "util/prng.h"

namespace krr {
namespace {

class SwapSamplerStrategies : public ::testing::TestWithParam<UpdateStrategy> {};

TEST_P(SwapSamplerStrategies, ChainIsAscendingAndBracketed) {
  SwapSampler sampler(GetParam(), 3.0);
  Xoshiro256ss rng(1);
  std::vector<std::uint64_t> chain;
  for (std::uint64_t phi : {2ULL, 3ULL, 10ULL, 257ULL, 1024ULL}) {
    for (int rep = 0; rep < 200; ++rep) {
      sampler.sample(phi, rng, chain);
      ASSERT_GE(chain.size(), 2u);
      EXPECT_EQ(chain.front(), 1u);
      EXPECT_EQ(chain.back(), phi);
      for (std::size_t j = 1; j < chain.size(); ++j) {
        ASSERT_LT(chain[j - 1], chain[j]) << "phi=" << phi;
      }
    }
  }
}

TEST_P(SwapSamplerStrategies, PhiOneYieldsTrivialChain) {
  SwapSampler sampler(GetParam(), 2.0);
  Xoshiro256ss rng(2);
  std::vector<std::uint64_t> chain;
  sampler.sample(1, rng, chain);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], 1u);
}

TEST_P(SwapSamplerStrategies, PhiTwoHasNoInteriorPositions) {
  SwapSampler sampler(GetParam(), 5.0);
  Xoshiro256ss rng(3);
  std::vector<std::uint64_t> chain;
  for (int rep = 0; rep < 100; ++rep) {
    sampler.sample(2, rng, chain);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], 1u);
    EXPECT_EQ(chain[1], 2u);
  }
}

// Each interior position i must be a swap with probability 1-((i-1)/i)^K,
// independently — verified against the marginal with 5-sigma tolerance.
TEST_P(SwapSamplerStrategies, MarginalSwapProbabilityMatchesTheLaw) {
  constexpr std::uint64_t kPhi = 32;
  constexpr double kK = 4.0;
  constexpr int kTrials = 60000;
  SwapSampler sampler(GetParam(), kK);
  Xoshiro256ss rng(7);
  std::vector<std::uint64_t> chain;
  std::vector<int> swap_count(kPhi + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    sampler.sample(kPhi, rng, chain);
    for (std::uint64_t v : chain) ++swap_count[v];
  }
  for (std::uint64_t i = 2; i < kPhi; ++i) {
    const double p = 1.0 - std::pow(static_cast<double>(i - 1) / static_cast<double>(i), kK);
    const double observed = static_cast<double>(swap_count[i]) / kTrials;
    const double sigma = std::sqrt(p * (1.0 - p) / kTrials);
    EXPECT_NEAR(observed, p, 5.0 * sigma) << "position " << i;
  }
  EXPECT_EQ(swap_count[1], kTrials);
  EXPECT_EQ(swap_count[kPhi], kTrials);
}

// Pairwise-joint check: the largest interior swap position's distribution
// is the eviction law of Eq. 4.2 restricted to a cache boundary. For a
// boundary C < phi, the resident crossing out of prefix [1, C] is the
// largest swap <= C, with P(cross at i) = (i^K - (i-1)^K)/C^K.
TEST_P(SwapSamplerStrategies, CrossingLawMatchesEquation42) {
  constexpr std::uint64_t kPhi = 64;
  constexpr std::uint64_t kBoundary = 24;
  constexpr double kK = 3.0;
  constexpr int kTrials = 60000;
  SwapSampler sampler(GetParam(), kK);
  Xoshiro256ss rng(11);
  std::vector<std::uint64_t> chain;
  std::vector<int> crossing(kBoundary + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    sampler.sample(kPhi, rng, chain);
    std::uint64_t largest = 1;
    for (std::uint64_t v : chain) {
      if (v <= kBoundary) largest = v;
    }
    ++crossing[largest];
  }
  const double ck = std::pow(static_cast<double>(kBoundary), kK);
  for (std::uint64_t i = 1; i <= kBoundary; ++i) {
    const double p = (std::pow(static_cast<double>(i), kK) -
                      std::pow(static_cast<double>(i - 1), kK)) /
                     ck;
    const double observed = static_cast<double>(crossing[i]) / kTrials;
    const double sigma = std::sqrt(p * (1.0 - p) / kTrials);
    EXPECT_NEAR(observed, p, 5.0 * sigma + 1e-12) << "position " << i;
  }
}

// Corollary 1: the mean chain length matches the analytic expectation.
TEST_P(SwapSamplerStrategies, MeanChainLengthMatchesExpectation) {
  constexpr std::uint64_t kPhi = 200;
  constexpr double kK = 5.0;
  constexpr int kTrials = 40000;
  SwapSampler sampler(GetParam(), kK);
  Xoshiro256ss rng(13);
  std::vector<std::uint64_t> chain;
  double total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    sampler.sample(kPhi, rng, chain);
    total += static_cast<double>(chain.size());
  }
  EXPECT_NEAR(total / kTrials, sampler.expected_swaps(kPhi), 0.15);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SwapSamplerStrategies,
                         ::testing::Values(UpdateStrategy::kLinear,
                                           UpdateStrategy::kTopDown,
                                           UpdateStrategy::kBackward),
                         [](const auto& info) { return to_string(info.param); });

TEST(SwapSampler, RejectsExponentBelowOne) {
  EXPECT_THROW(SwapSampler(UpdateStrategy::kBackward, 0.9), std::invalid_argument);
}

TEST(SwapSampler, RejectsPhiZero) {
  SwapSampler sampler(UpdateStrategy::kBackward, 2.0);
  Xoshiro256ss rng(1);
  std::vector<std::uint64_t> chain;
  EXPECT_THROW(sampler.sample(0, rng, chain), std::invalid_argument);
}

TEST(SwapSampler, NoSwapProbabilityTelescopes) {
  SwapSampler sampler(UpdateStrategy::kBackward, 3.0);
  // P(no swap in [a,b]) must equal the product of per-position stays.
  double product = 1.0;
  for (std::uint64_t i = 5; i <= 20; ++i) product *= sampler.no_swap_probability(i, i);
  EXPECT_NEAR(sampler.no_swap_probability(5, 20), product, 1e-12);
  EXPECT_DOUBLE_EQ(sampler.no_swap_probability(7, 6), 1.0);  // empty interval
}

TEST(SwapSampler, ExpectedSwapsGrowsLogarithmically) {
  SwapSampler sampler(UpdateStrategy::kBackward, 1.0);
  // For K=1, E[swaps] = 2 + sum_{i=2}^{phi-1} 1/i ~ ln(phi) + 1.
  const double e1k = sampler.expected_swaps(1000);
  EXPECT_NEAR(e1k, 2.0 + std::log(999.0) - std::log(2.0) + 0.5, 0.6);
  // Doubling phi adds ~K*ln(2).
  SwapSampler k4(UpdateStrategy::kBackward, 4.0);
  const double delta = k4.expected_swaps(2000) - k4.expected_swaps(1000);
  EXPECT_NEAR(delta, 4.0 * std::log(2.0), 0.1);
}

TEST(SwapSampler, StrategyNamesAreStable) {
  EXPECT_EQ(to_string(UpdateStrategy::kLinear), "linear");
  EXPECT_EQ(to_string(UpdateStrategy::kTopDown), "top_down");
  EXPECT_EQ(to_string(UpdateStrategy::kBackward), "backward");
}

}  // namespace
}  // namespace krr
